# Helpers shared by every layer's CMakeLists.txt.

# Warning set applied to all first-party targets (never to FetchContent'd
# third-party code, which is why this is not a global add_compile_options).
set(UNICLEAN_WARNING_FLAGS -Wall -Wextra)
if(UNICLEAN_WERROR)
  list(APPEND UNICLEAN_WARNING_FLAGS -Werror)
endif()

# uniclean_add_library(<name> SOURCES <src>... [DEPS <target>...])
#
# Declares the static library `uniclean_<name>` with an alias
# `uniclean::<name>`, rooted include paths at src/ (so all includes are
# written as "layer/header.h"), and PUBLIC deps so transitive layers
# propagate automatically.
function(uniclean_add_library name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  set(target uniclean_${name})
  add_library(${target} STATIC ${ARG_SOURCES})
  add_library(uniclean::${name} ALIAS ${target})
  target_include_directories(${target} PUBLIC
    $<BUILD_INTERFACE:${uniclean_SOURCE_DIR}/src>)
  if(ARG_DEPS)
    target_link_libraries(${target} PUBLIC ${ARG_DEPS})
  endif()
  target_compile_options(${target} PRIVATE ${UNICLEAN_WARNING_FLAGS})
endfunction()

# uniclean_add_executable(<name> SOURCES <src>... [DEPS <target>...])
#
# Declares a first-party executable with the same warning set.
function(uniclean_add_executable name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  add_executable(${name} ${ARG_SOURCES})
  if(ARG_DEPS)
    target_link_libraries(${name} PRIVATE ${ARG_DEPS})
  endif()
  target_compile_options(${name} PRIVATE ${UNICLEAN_WARNING_FLAGS})
endfunction()
