// End-to-end file pipeline: write a dirty dataset and its master data to
// CSV, read them back, clean, and export the repaired relation with a
// per-cell fix-provenance report — the shape of a production deployment of
// the library (files in, files out).

#include <cstdio>
#include <string>

#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

int main() {
  const std::string dir = "/tmp/uniclean_example";
  (void)std::system(("mkdir -p " + dir).c_str());

  gen::GeneratorConfig config;
  config.num_tuples = 500;
  config.master_size = 150;
  config.seed = 99;
  gen::Dataset ds = gen::GenerateHosp(config);

  // Export the inputs.
  Status s = data::WriteCsvFile(dir + "/dirty.csv", ds.dirty);
  if (!s.ok()) {
    std::printf("write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  s = data::WriteCsvFile(dir + "/master.csv", ds.master);
  if (!s.ok()) return 1;
  std::printf("wrote %s/dirty.csv and master.csv\n", dir.c_str());

  // Read them back (as an external user would).
  auto dirty = data::ReadCsvFile(dir + "/dirty.csv", ds.dirty.schema_ptr());
  auto master =
      data::ReadCsvFile(dir + "/master.csv", ds.master.schema_ptr());
  if (!dirty.ok() || !master.ok()) {
    std::printf("read failed\n");
    return 1;
  }
  // CSV does not carry confidences; restore the asserted cells from the
  // original (a deployment would load them from provenance metadata).
  data::Relation d = std::move(dirty).value();
  for (data::TupleId t = 0; t < d.size(); ++t) {
    for (data::AttributeId a = 0; a < d.schema().arity(); ++a) {
      d.mutable_tuple(t).set_confidence(a, ds.dirty.tuple(t).confidence(a));
    }
  }

  core::UniCleanOptions options;
  options.eta = 1.0;
  auto report = core::UniClean(&d, master.value(), ds.rules, options);
  std::printf("cleaned: %d deterministic, %d reliable, %d possible fixes\n",
              report.crepair.deterministic_fixes,
              report.erepair.reliable_fixes, report.hrepair.possible_fixes);

  s = data::WriteCsvFile(dir + "/repaired.csv", d);
  if (!s.ok()) return 1;

  // Fix-provenance report: one line per modified cell.
  std::string prov_path = dir + "/fixes.txt";
  FILE* f = std::fopen(prov_path.c_str(), "w");
  if (f == nullptr) return 1;
  int listed = 0;
  for (data::TupleId t = 0; t < d.size(); ++t) {
    for (data::AttributeId a = 0; a < d.schema().arity(); ++a) {
      if (d.tuple(t).mark(a) == data::FixMark::kNone) continue;
      std::fprintf(f, "row %d %s: '%s' -> '%s' [%s]\n", t,
                   d.schema().attribute_name(a).c_str(),
                   ds.dirty.tuple(t).value(a).ToString().c_str(),
                   d.tuple(t).value(a).ToString().c_str(),
                   data::FixMarkToString(d.tuple(t).mark(a)));
      ++listed;
    }
  }
  std::fclose(f);
  std::printf("wrote %s/repaired.csv and fixes.txt (%d entries)\n",
              dir.c_str(), listed);
  return 0;
}
