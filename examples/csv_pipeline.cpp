// End-to-end file pipeline: write a dirty dataset, its master data and its
// per-cell confidences to CSV, then clean files-in / files-out through the
// single-session Cleaner shim (CleanerBuilder::Build() — now a thin wrapper
// over CleanEngine + Session; see serving_engine.cpp for the shared-engine
// form). The builder owns all loading: schemas are inferred from the CSV
// headers, the rule program is parsed against them, and the confidence CSV
// is validated cell-by-cell — the Build()-only conveniences that keep the
// shim the right tool for one-shot file jobs.

#include <cstdio>
#include <string>

#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

int main() {
  const std::string dir = "/tmp/uniclean_example";
  (void)std::system(("mkdir -p " + dir).c_str());

  gen::GeneratorConfig config;
  config.num_tuples = 500;
  config.master_size = 150;
  config.seed = 99;
  gen::Dataset ds = gen::GenerateHosp(config);

  // Export the inputs (a deployment would receive these from upstream).
  Status s = data::WriteCsvFile(dir + "/dirty.csv", ds.dirty);
  if (s.ok()) s = data::WriteCsvFile(dir + "/master.csv", ds.master);
  if (s.ok()) s = data::WriteConfidenceCsvFile(dir + "/confidence.csv",
                                               ds.dirty);
  if (!s.ok()) {
    std::printf("write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s/{dirty,master,confidence}.csv\n", dir.c_str());

  // Clean files-in / files-out: every input is a path.
  auto cleaner = CleanerBuilder()
                     .WithDataCsv(dir + "/dirty.csv")
                     .WithMasterCsv(dir + "/master.csv")
                     .WithRuleText(ds.rule_text)
                     .WithConfidenceCsv(dir + "/confidence.csv")
                     .WithEta(1.0)  // §8: confidence threshold 1.0
                     .Build();
  if (!cleaner.ok()) {
    std::printf("config error: %s\n", cleaner.status().ToString().c_str());
    return 1;
  }
  auto result = cleaner->Run();
  if (!result.ok()) {
    std::printf("run error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("cleaned: %d deterministic, %d reliable, %d possible fixes\n",
              result->journal.CountForPhase(CRepairPhase::kName),
              result->journal.CountForPhase(ERepairPhase::kName),
              result->journal.CountForPhase(HRepairPhase::kName));

  // Export the repaired relation and the structured fix provenance.
  s = data::WriteCsvFile(dir + "/repaired.csv", cleaner->data());
  if (s.ok()) s = result->journal.WriteTextFile(dir + "/fixes.txt");
  if (s.ok()) s = result->journal.WriteCsvFile(dir + "/fixes.csv");
  if (!s.ok()) {
    std::printf("write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s/repaired.csv, fixes.txt and fixes.csv (%zu entries)\n",
              dir.c_str(), result->journal.size());
  return 0;
}
