// Rule discovery: profiling a dataset for the rules UniClean needs (§2:
// "Both CFDs and MDs can be automatically discovered from data via
// profiling algorithms"). Discovers FDs and constant CFDs from a clean
// sample, calibrates an MD similarity threshold from labeled matches, and
// prints a ready-to-parse rule program.

#include <cstdio>
#include <string>

#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

int main() {
  gen::GeneratorConfig config;
  config.num_tuples = 800;
  config.master_size = 250;
  config.seed = 31;
  gen::Dataset ds = gen::GenerateHosp(config);
  const data::Schema& schema = ds.clean.schema();

  // --- FDs from the clean sample -------------------------------------------
  discovery::FdDiscoveryOptions fd_opts;
  fd_opts.max_lhs_size = 1;
  auto fds = discovery::DiscoverFds(ds.clean, fd_opts);
  std::printf("# discovered %zu minimal single-attribute FDs, e.g.:\n",
              fds.size());
  int shown = 0;
  for (const auto& fd : fds) {
    if (shown >= 8) break;
    std::printf("%s\n",
                fd.ToRuleLine(schema, "f" + std::to_string(shown)).c_str());
    ++shown;
  }

  // --- Constant CFDs --------------------------------------------------------
  discovery::CfdDiscoveryOptions cfd_opts;
  cfd_opts.min_support = 8;
  cfd_opts.max_lhs_distinct = 80;
  auto cfds = discovery::DiscoverConstantCfds(ds.clean, cfd_opts);
  std::printf("\n# discovered %zu constant CFD patterns, e.g.:\n",
              cfds.size());
  shown = 0;
  for (const auto& cfd : cfds) {
    if (shown >= 5) break;
    std::printf("%s   # support %d, confidence %.2f\n",
                cfd.ToRuleLine(schema, "k" + std::to_string(shown)).c_str(),
                cfd.support, cfd.confidence);
    ++shown;
  }

  // --- MD threshold calibration ---------------------------------------------
  // Labeled pairs: the dirty hospital name vs its master counterpart
  // (matched), and names of unrelated providers (unmatched).
  data::AttributeId name_attr = schema.MustFindAttribute("HospitalName");
  std::vector<std::pair<std::string, std::string>> matched;
  std::vector<std::pair<std::string, std::string>> unmatched;
  for (auto [t, s] : ds.true_matches) {
    matched.emplace_back(ds.dirty.tuple(t).value(name_attr).str(),
                         ds.master.tuple(s).value(1).str());
    data::TupleId other = (s + 1) % ds.master.size();
    unmatched.emplace_back(ds.dirty.tuple(t).value(name_attr).str(),
                           ds.master.tuple(other).value(1).str());
  }
  auto jw = discovery::CalibrateJaroWinkler(matched, unmatched, 0.95);
  std::printf(
      "\n# calibrated HospitalName predicate: ~%s "
      "(recall %.3f, false-accept %.3f)\n",
      jw.predicate.ToString().c_str(), jw.recall, jw.false_accept_rate);
  std::printf(
      "MD md1: HospitalName ~jw:%.2f HospitalName & ZIP=ZIP -> "
      "Phone:=Phone\n",
      jw.predicate.threshold());

  return fds.empty() || cfds.empty() ? 1 : 0;
}
