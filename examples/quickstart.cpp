// Quickstart: the paper's running example (Fig. 1 / Example 1.1).
//
// A UK bank holds master data `card` (credit-card holders) and transaction
// records `tran`. Tuples t3 and t4 are suspected to be the same person —
// purchases in the UK and the US at about the same time would mean fraud.
// No single rule matches them directly, but interleaved repairing (CFDs)
// and matching (MD against master data) identifies them.

#include <cstdio>
#include <string>

#include "uniclean/uniclean.h"

namespace {

using namespace uniclean;  // NOLINT

data::SchemaPtr CardSchema() {
  return data::MakeSchema(
      "card", {"FN", "LN", "St", "city", "AC", "zip", "tel", "dob", "gd"});
}

data::SchemaPtr TranSchema() {
  return data::MakeSchema("tran", {"FN", "LN", "St", "city", "AC", "post",
                                   "phn", "gd", "item", "when", "where"});
}

data::Relation MasterData() {
  data::Relation dm(CardSchema());
  dm.AddRow({"Mark", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE",
             "3256778", "10/10/1987", "Male"},
            1.0);
  dm.AddRow({"Robert", "Brady", "5 Wren St", "Ldn", "020", "WC1H 9SE",
             "3887644", "12/08/1975", "Male"},
            1.0);
  return dm;
}

data::Relation Transactions() {
  data::Relation d(TranSchema());
  auto add = [&d](const std::vector<std::string>& values,
                  const std::vector<double>& cf, int null_at) {
    data::Tuple t(d.schema().arity());
    for (int a = 0; a < d.schema().arity(); ++a) {
      t.set_value(a, a == null_at
                         ? data::Value::Null()
                         : data::Value(values[static_cast<size_t>(a)]));
      t.set_confidence(a, cf[static_cast<size_t>(a)]);
    }
    d.AddTuple(std::move(t));
  };
  add({"M.", "Smith", "10 Oak St", "Ldn", "131", "EH8 9LE", "9999999",
       "Male", "watch, 350 GBP", "11am 28/08/10", "UK"},
      {0.9, 1.0, 0.9, 0.5, 0.9, 0.9, 0.0, 0.8, 1.0, 1.0, 1.0}, -1);
  add({"Max", "Smith", "Po Box 25", "Edi", "131", "EH8 9AB", "3256778",
       "Male", "DVD, 800 INR", "8pm 28/09/10", "India"},
      {0.7, 1.0, 0.5, 0.9, 0.7, 0.6, 0.8, 0.8, 1.0, 1.0, 1.0}, -1);
  add({"Bob", "Brady", "5 Wren St", "Edi", "020", "WC1H 9SE", "3887834",
       "Male", "iPhone, 599 GBP", "6pm 06/11/09", "UK"},
      {0.6, 1.0, 0.9, 0.2, 0.9, 0.8, 0.9, 0.8, 1.0, 1.0, 1.0}, -1);
  add({"Robert", "Brady", "", "Ldn", "020", "WC1E 7HX", "3887644", "Male",
       "ring, 2,100 USD", "1pm 06/11/09", "USA"},
      {0.7, 1.0, 0.0, 0.5, 0.7, 0.3, 0.7, 0.8, 1.0, 1.0, 1.0}, 2);
  return d;
}

void PrintRelation(const char* title, const data::Relation& d) {
  std::printf("%s\n", title);
  for (int t = 0; t < d.size(); ++t) {
    std::printf("  t%d:", t + 1);
    for (int a = 0; a < d.schema().arity(); ++a) {
      const data::Value& v = d.tuple(t).value(a);
      char mark = ' ';
      switch (d.tuple(t).mark(a)) {
        case data::FixMark::kDeterministic:
          mark = '*';
          break;
        case data::FixMark::kReliable:
          mark = '+';
          break;
        case data::FixMark::kPossible:
          mark = '?';
          break;
        default:
          break;
      }
      std::printf(" %s=%s%c", d.schema().attribute_name(a).c_str(),
                  v.is_null() ? "NULL" : v.str().c_str(), mark);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // The data quality rules of Example 1.1 (ϕ1–ϕ4 and the MD ψ).
  const std::string rule_text = R"(
CFD phi1: AC='131' -> city='Edi'
CFD phi2: AC='020' -> city='Ldn'
CFD phi3: city, phn -> St, AC, post
CFD phi4: FN='Bob' -> FN='Robert'
MD psi: LN=LN & city=city & St=St & post=zip & FN ~jw:0.6 FN -> FN:=FN, phn:=tel
)";
  data::Relation d = Transactions();
  PrintRelation("== Dirty transactions (Fig. 1(b)) ==", d);

  // Build the shared engine: the builder validates the thresholds, parses
  // the rules against the declared schemas and — with CheckConsistency —
  // verifies the rules are consistent before cleaning (§4.1). The engine is
  // immutable and thread-safe; each run is a cheap Session against it.
  auto engine = EngineBuilder()
                    .WithDataSchema(d.schema_ptr())
                    .WithMaster(MasterData())
                    .WithRuleText(rule_text)
                    .WithEta(0.8)
                    .CheckConsistency()
                    .BuildEngine();
  if (!engine.ok()) {
    std::printf("config error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("\nrules consistent: yes\n");

  Session session = (*engine)->NewSession();
  auto result = session.Run(&d);  // cleaned in place
  if (!result.ok()) {
    std::printf("run error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "\nfixes: %d deterministic (*), %d reliable (+), %d possible (?)\n\n",
      result->journal.CountForPhase(CRepairPhase::kName),
      result->journal.CountForPhase(ERepairPhase::kName),
      result->journal.CountForPhase(HRepairPhase::kName));
  PrintRelation("== Repaired transactions ==", d);

  // The structured journal records every fix with its justifying rule.
  std::printf("\n== Fix journal ==\n");
  for (const FixEntry& fix : result->journal.entries()) {
    std::printf("  t%d[%s]: '%s' -> '%s' (%s, rule %s)\n", fix.tuple + 1,
                fix.attribute.c_str(), fix.old_value.ToString().c_str(),
                fix.new_value.ToString().c_str(), fix.phase.c_str(),
                fix.rule.empty() ? "-" : fix.rule.c_str());
  }

  // The fraud check of Example 1.1: do t3 and t4 refer to the same person?
  bool same_person = true;
  for (const char* attr : {"FN", "LN", "city", "AC", "post", "phn"}) {
    data::AttributeId a = d.schema().MustFindAttribute(attr);
    if (!data::Value::SqlEquals(d.tuple(2).value(a), d.tuple(3).value(a))) {
      same_person = false;
    }
  }
  std::printf(
      "\nt3 and t4 are %s -> %s\n", same_person ? "the SAME person" : "different people",
      same_person
          ? "purchases in the UK and the USA within hours: FRAUD detected"
          : "no fraud evidence");
  return same_person ? 0 : 1;
}
