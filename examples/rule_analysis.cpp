// Static analysis of data quality rules (§4): consistency of Σ ∪ Γ,
// implication of candidate rules (redundancy pruning), the dependency-graph
// application order (§6.2), and the bounded termination / determinism
// analysis of the rule-based cleaning process — including the oscillating
// pair of Example 4.6.

#include <cstdio>
#include <string>

#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

int main() {
  auto schema = data::MakeSchema(
      "tran", {"FN", "LN", "St", "city", "AC", "post", "phn", "gd"});
  auto master = data::MakeSchema(
      "card", {"FN", "LN", "St", "city", "AC", "zip", "tel", "gd"});
  data::Relation dm(master);
  dm.AddRow({"Mark", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE",
             "3256778", "Male"},
            1.0);

  // --- Consistency (Thm 4.1) -----------------------------------------------
  auto good = rules::ParseRuleSet(
      "CFD phi1: AC='131' -> city='Edi'\n"
      "CFD phi2: AC='020' -> city='Ldn'\n"
      "MD psi: LN=LN & FN ~jw:0.8 FN -> phn:=tel\n",
      schema, master);
  auto bad = rules::ParseRuleSet(
      "CFD c1: AC -> city='Edi'\n"   // every tuple: city = Edi
      "CFD c2: AC -> city='Ldn'\n",  // ... and city = Ldn: impossible
      schema, master);
  std::printf("consistency (Thm 4.1):\n");
  std::printf("  paper-style rules: %s\n",
              reasoning::IsConsistent(good.value(), dm).value()
                  ? "consistent"
                  : "INCONSISTENT");
  std::printf("  contradictory constants: %s\n",
              reasoning::IsConsistent(bad.value(), dm).value()
                  ? "consistent"
                  : "INCONSISTENT");

  // --- Implication (Thm 4.2) -----------------------------------------------
  auto fds = rules::ParseRuleSet(
      "CFD f1: AC -> city\nCFD f2: city, phn -> St\n", schema, master);
  auto implied = rules::ParseRules("CFD t: AC, phn -> St\n", schema, master);
  auto not_implied = rules::ParseRules("CFD t: St -> AC\n", schema, master);
  std::printf("\nimplication (Thm 4.2):\n");
  std::printf("  {AC->city, city phn->St} |= AC phn->St : %s\n",
              reasoning::Implies(fds.value(), dm, implied->cfds[0]).value()
                  ? "yes"
                  : "no");
  std::printf("  {AC->city, city phn->St} |= St->AC     : %s\n",
              reasoning::Implies(fds.value(), dm, not_implied->cfds[0])
                      .value()
                  ? "yes"
                  : "no");

  // --- Dependency-graph rule order (§6.2) ----------------------------------
  auto paper_rules = rules::ParseRuleSet(
      "CFD phi1: AC='131' -> city='Edi'\n"
      "CFD phi2: AC='020' -> city='Ldn'\n"
      "CFD phi3: city, phn -> St, AC, post\n"
      "CFD phi4: FN='Bob' -> FN='Robert'\n"
      "MD psi: LN=LN & city=city & St=St & post=zip & FN ~jw:0.6 FN "
      "-> FN:=FN, phn:=tel\n",
      schema, master);
  reasoning::DependencyGraph graph(paper_rules.value());
  std::printf("\nrule application order (dependency graph, Example 6.1):\n ");
  for (rules::RuleId r : graph.ApplicationOrder()) {
    std::printf(" %s(out %d/in %d)",
                paper_rules.value().rule_name(r).c_str(), graph.OutDegree(r),
                graph.InDegree(r));
  }
  std::printf("\n");

  // --- Termination / determinism (Thms 4.7, 4.8; Example 4.6) --------------
  auto oscillating = rules::ParseRuleSet(
      "CFD phi1: AC='131' -> city='Edi'\n"
      "CFD phi5: post='EH8 9AB' -> city='Ldn'\n",
      schema, master);
  data::Relation d(schema);
  d.AddRow({"Max", "Smith", "Po Box 25", "Edi", "131", "EH8 9AB", "3256778",
            "Male"});
  reasoning::ChaseOptions chase_opts;
  chase_opts.max_steps = 10000;
  auto chase = reasoning::RunChase(d, dm, oscillating.value(), chase_opts);
  std::printf("\ntermination (Example 4.6): {phi1, phi5} on t2 %s after %d steps\n",
              chase.terminated ? "terminated" : "DID NOT terminate",
              chase.steps);

  auto det = reasoning::AnalyzeDeterminism(d, dm, paper_rules.value(), 8);
  std::printf("determinism probe (8 schedules): %s (%d distinct fixpoints)\n",
              det.deterministic ? "deterministic" : "order-sensitive",
              det.distinct_fixpoints);
  return 0;
}
