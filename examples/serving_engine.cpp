// Serving with a shared engine: the ROADMAP's "millions of users" shape in
// miniature. One CleanEngine is built once — rules, master data, and (after
// Warmup) the MD match indexes and memos — and then serves many cleaning
// requests, each as a cheap per-request Session. The second half hands a
// whole batch of relations to Engine::RunBatch, which fans sessions out
// over a worker pool; results are byte-identical to the serial loop because
// the shared memos only cache pure functions of the static master data.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

int main() {
  gen::GeneratorConfig config;
  config.num_tuples = 300;
  config.master_size = 150;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.seed = 7;
  gen::Dataset ds = gen::GenerateHosp(config);

  // Build the shared engine once. WithDataSchema lets the rule text parse
  // without binding any data relation — batches only arrive later.
  auto engine = EngineBuilder()
                    .WithDataSchema(ds.dirty.schema_ptr())
                    .WithMaster(&ds.master)
                    .WithRules(&ds.rules)
                    .WithEta(1.0)
                    .BuildEngine();
  if (!engine.ok()) {
    std::printf("config error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  (*engine)->Warmup();  // pay the MD index build up front, once
  std::printf("engine ready: %zu CFDs, %zu MDs, %d match indexes\n",
              (*engine)->rules().cfds().size(),
              (*engine)->rules().mds().size(),
              (*engine)->environment().num_matchers());

  // --- The serving loop: one cheap session per incoming request. ----------
  std::printf("\nserving loop (session per request):\n");
  for (int request = 0; request < 3; ++request) {
    data::Relation batch = ds.dirty.Clone();  // "incoming" dirty batch
    Session session = (*engine)->NewSession();
    auto result = session.Run(&batch);
    if (!result.ok()) {
      std::printf("request %d failed: %s\n", request,
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("  request %d: %d fixes (%zu journal entries)\n", request,
                result->total_fixes(), result->journal.size());
  }

  // --- The batch form: a worker pool of sessions over many relations. -----
  constexpr int kBatch = 4;
  std::vector<data::Relation> storage;
  std::vector<data::Relation*> batch;
  for (int i = 0; i < kBatch; ++i) storage.push_back(ds.dirty.Clone());
  for (data::Relation& r : storage) batch.push_back(&r);

  auto results = (*engine)->RunBatch(batch, /*n_threads=*/2);
  std::printf("\nRunBatch over %d relations on 2 threads:\n", kBatch);
  int total = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::printf("  relation %zu failed: %s\n", i,
                  results[i].status().ToString().c_str());
      return 1;
    }
    total += results[i]->total_fixes();
    std::printf("  relation %zu: %d fixes\n", i, results[i]->total_fixes());
  }

  // The warm shared memos mean the whole batch probed the master through
  // caches populated by the first request.
  const core::MemoStats stats = (*engine)->MemoStats();
  std::printf(
      "\nmemo stats after serving: %llu entries, %llu hits, %llu misses\n",
      static_cast<unsigned long long>(stats.entries),
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses));
  return total > 0 ? 0 : 1;
}
