// Hospital data cleaning: the paper's HOSP scenario at a glance. Generates
// a synthetic hospital quality dataset (19 attributes, 23 CFDs + 3 MDs),
// dirties it, cleans it with UniClean and reports per-phase accuracy — the
// miniature version of §8's Exp-1/Exp-3.

#include <cstdio>

#include "baselines/quaid.h"
#include "eval/metrics.h"
#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

int main() {
  gen::GeneratorConfig config;
  config.num_tuples = 2000;
  config.master_size = 500;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.asserted_rate = 0.4;
  config.seed = 2026;
  gen::Dataset ds = gen::GenerateHosp(config);

  std::printf("HOSP: %d tuples x %d attrs, %d master tuples, %zu CFDs, %zu MDs\n",
              ds.dirty.size(), ds.dirty.schema().arity(), ds.master.size(),
              ds.rules.cfds().size(), ds.rules.mds().size());
  std::printf("injected errors: %d cells\n\n",
              ds.dirty.CellDiffCount(ds.clean));

  core::UniCleanOptions options;
  options.eta = 1.0;  // §8: confidence threshold 1.0
  options.delta2 = 0.8;

  // Phase-by-phase accuracy (the paper's Exp-3).
  data::Relation after_c = ds.dirty.Clone();
  core::CRepairOptions copts;
  copts.eta = options.eta;
  auto cstats = core::CRepair(&after_c, ds.master, ds.rules, copts);
  auto c_pr = eval::RepairAccuracy(ds.dirty, after_c, ds.clean);
  std::printf("cRepair:           %5d fixes  precision %.3f  recall %.3f\n",
              cstats.deterministic_fixes, c_pr.precision, c_pr.recall);

  data::Relation after_e = after_c.Clone();
  core::ERepairOptions eopts;
  eopts.eta = options.eta;
  auto estats = core::ERepair(&after_e, ds.master, ds.rules, eopts);
  auto e_pr = eval::RepairAccuracy(ds.dirty, after_e, ds.clean);
  std::printf("+ eRepair:         %5d fixes  precision %.3f  recall %.3f\n",
              estats.reliable_fixes, e_pr.precision, e_pr.recall);

  data::Relation after_h = after_e.Clone();
  auto hstats = core::HRepair(&after_h, ds.master, ds.rules, {});
  auto h_pr = eval::RepairAccuracy(ds.dirty, after_h, ds.clean);
  std::printf("+ hRepair (Uni):   %5d fixes  precision %.3f  recall %.3f  F %.3f\n",
              hstats.possible_fixes, h_pr.precision, h_pr.recall, h_pr.F());

  // The CFD-only baseline for contrast (Exp-1).
  data::Relation quaid_out = ds.dirty.Clone();
  baselines::Quaid(&quaid_out, ds.rules);
  auto q_pr = eval::RepairAccuracy(ds.dirty, quaid_out, ds.clean);
  std::printf("quaid (CFD-only):  %5s        precision %.3f  recall %.3f  F %.3f\n",
              "-", q_pr.precision, q_pr.recall, q_pr.F());

  std::printf("\nUni F-measure %.3f vs quaid %.3f -> matching helps repairing\n",
              h_pr.F(), q_pr.F());
  return h_pr.F() > q_pr.F() ? 0 : 1;
}
