// Hospital data cleaning: the paper's HOSP scenario at a glance. Generates
// a synthetic hospital quality dataset (19 attributes, 23 CFDs + 3 MDs),
// dirties it, and cleans it with a Cleaner whose progress callback reports
// per-phase accuracy as the pipeline advances — the miniature version of
// §8's Exp-1/Exp-3, built on the observer hook instead of running the
// phases by hand.

#include <cstdio>

#include "baselines/quaid.h"
#include "eval/metrics.h"
#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

int main() {
  gen::GeneratorConfig config;
  config.num_tuples = 2000;
  config.master_size = 500;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.asserted_rate = 0.4;
  config.seed = 2026;
  gen::Dataset ds = gen::GenerateHosp(config);

  std::printf("HOSP: %d tuples x %d attrs, %d master tuples, %zu CFDs, %zu MDs\n",
              ds.dirty.size(), ds.dirty.schema().arity(), ds.master.size(),
              ds.rules.cfds().size(), ds.rules.mds().size());
  std::printf("injected errors: %d cells\n\n",
              ds.dirty.CellDiffCount(ds.clean));

  // Phase-by-phase accuracy (the paper's Exp-3) from the progress observer:
  // after every phase the callback scores the pipeline's current data
  // against the ground truth. The observer is per-session state, so it is
  // installed on the Session rather than the shared engine.
  eval::PrecisionRecall final_pr;
  auto engine = EngineBuilder()
                    .WithDataSchema(ds.dirty.schema_ptr())
                    .WithMaster(&ds.master)
                    .WithRules(&ds.rules)
                    .WithEta(1.0)  // §8: confidence threshold 1.0
                    .WithDelta2(0.8)
                    .BuildEngine();
  if (!engine.ok()) {
    std::printf("config error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  data::Relation repaired = ds.dirty.Clone();
  Session session = (*engine)->NewSession();
  session.set_progress_callback([&](const PhaseEvent& event) {
    if (event.kind != PhaseEvent::Kind::kPhaseFinished) return;
    auto pr = eval::RepairAccuracy(ds.dirty, *event.data, ds.clean);
    std::printf("[%d/%d] %-8.*s %5d fixes  precision %.3f  recall %.3f\n",
                event.index + 1, event.total,
                static_cast<int>(event.phase.size()), event.phase.data(),
                event.stats->fixes, pr.precision, pr.recall);
    final_pr = pr;
  });
  auto result = session.Run(&repaired);
  if (!result.ok()) {
    std::printf("run error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Uni: %d total fixes, F-measure %.3f\n\n",
              result->total_fixes(), final_pr.F());

  // The CFD-only baseline for contrast (Exp-1).
  data::Relation quaid_out = ds.dirty.Clone();
  baselines::Quaid(&quaid_out, ds.rules);
  auto q_pr = eval::RepairAccuracy(ds.dirty, quaid_out, ds.clean);
  std::printf("quaid (CFD-only): precision %.3f  recall %.3f  F %.3f\n",
              q_pr.precision, q_pr.recall, q_pr.F());

  std::printf("\nUni F-measure %.3f vs quaid %.3f -> matching helps repairing\n",
              final_pr.F(), q_pr.F());
  return final_pr.F() > q_pr.F() ? 0 : 1;
}
