// Bibliography deduplication: the paper's DBLP scenario. Shows that
// repairing helps matching (§8 Exp-2): sorted-neighborhood matching on the
// dirty data misses duplicates whose corrupted keys sort far from their
// master record; cleaning the data first recovers them.

#include <cstdio>

#include "baselines/sortn.h"
#include "eval/metrics.h"
#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

int main() {
  gen::GeneratorConfig config;
  // Sized so the example stays fast under sanitizers; the bench drivers
  // (fig11) run the full-size experiment.
  config.num_tuples = 1000;
  config.master_size = 300;
  config.noise_rate = 0.08;
  config.dup_rate = 0.4;
  // Dirty matching attributes are the point of the scenario: without them a
  // plain window match already finds everything (see gen/dataset.h).
  config.md_premise_noise_boost = 2.0;
  config.seed = 4711;
  gen::Dataset ds = gen::GenerateDblp(config);

  std::printf("DBLP: %d publications, %d master records, %zu true matches\n\n",
              ds.dirty.size(), ds.master.size(), ds.true_matches.size());

  baselines::SortNOptions sortn_opts;
  sortn_opts.window = 5;
  auto sortn = baselines::SortedNeighborhoodMatch(ds.dirty, ds.master,
                                                  ds.rules.mds(), sortn_opts);
  auto sortn_pr = eval::MatchAccuracy(sortn, ds.true_matches);
  std::printf("SortN(MD) on dirty data:   %4zu matches  P %.3f  R %.3f  F %.3f\n",
              sortn.size(), sortn_pr.precision, sortn_pr.recall,
              sortn_pr.F());

  auto engine = EngineBuilder()
                    .WithDataSchema(ds.dirty.schema_ptr())
                    .WithMaster(&ds.master)
                    .WithRules(&ds.rules)
                    .WithEta(1.0)
                    .BuildEngine();
  if (!engine.ok()) {
    std::printf("config error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  data::Relation repaired = ds.dirty.Clone();
  Session session = (*engine)->NewSession();
  auto run = session.Run(&repaired);
  if (!run.ok()) {
    std::printf("run error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  auto uni = baselines::FindAllMatches(repaired, ds.master, ds.rules.mds());
  auto uni_pr = eval::MatchAccuracy(uni, ds.true_matches);
  std::printf("Uni (repair, then match):  %4zu matches  P %.3f  R %.3f  F %.3f\n",
              uni.size(), uni_pr.precision, uni_pr.recall, uni_pr.F());

  std::printf("\nrepairing helps matching: F %.3f -> %.3f\n", sortn_pr.F(),
              uni_pr.F());
  return uni_pr.F() >= sortn_pr.F() ? 0 : 1;
}
