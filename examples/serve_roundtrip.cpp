// The serving daemon in-process: start a serve::Daemon on an ephemeral
// port, connect a serve::Client, batch-clean a generated HOSP relation over
// the wire, stream an incremental DELTA into the tracked session, hot-reload
// the ruleset, and read the STATS document — the whole unicleand protocol
// without leaving one process. The wire results are checked against an
// in-process Session run on the same bytes: the journals must match exactly.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "data/csv.h"
#include "gen/dataset.h"
#include "serve/client.h"
#include "serve/server.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

namespace {

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return out.good();
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main() {
  // The daemon rebuilds engines from files on RELOAD, so the generated
  // dataset goes to disk first (as a deployment's would be).
  gen::GeneratorConfig config;
  config.num_tuples = 250;
  config.master_size = 80;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.seed = 11;
  gen::Dataset ds = gen::GenerateHosp(config);

  const std::string dir = "serve_roundtrip_data";
  std::remove((dir + "/dirty.csv").c_str());
  if (::system(("mkdir -p " + dir).c_str()) != 0) return 1;
  if (!data::WriteCsvFile(dir + "/dirty.csv", ds.dirty).ok() ||
      !data::WriteCsvFile(dir + "/master.csv", ds.master).ok() ||
      !WriteTextFile(dir + "/rules.txt", ds.rule_text)) {
    std::printf("cannot write the dataset files\n");
    return 1;
  }
  const std::string dirty_csv = SlurpFile(dir + "/dirty.csv");

  serve::RulesetConfig ruleset;
  ruleset.name = "hosp";
  ruleset.master_csv = dir + "/master.csv";
  ruleset.rules_file = dir + "/rules.txt";
  ruleset.schema_csv = dir + "/dirty.csv";

  serve::DaemonOptions options;
  options.port = 0;  // ephemeral
  options.n_workers = 2;
  serve::Daemon daemon(options, {ruleset});
  Status started = daemon.Start();
  if (!started.ok()) {
    std::printf("daemon start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("daemon listening on port %d\n", daemon.port());

  auto connected = serve::Client::Connect("127.0.0.1", daemon.port());
  if (!connected.ok()) {
    std::printf("connect failed: %s\n", connected.status().ToString().c_str());
    return 1;
  }
  serve::Client client = std::move(connected).value();

  // 1. Batch clean over the wire, tracked for the delta that follows.
  serve::CleanRequest clean;
  clean.data_csv = dirty_csv;
  clean.track = true;
  auto cleaned = client.Clean(clean);
  if (!cleaned.ok()) {
    std::printf("clean failed: %s\n", cleaned.status().ToString().c_str());
    return 1;
  }
  std::printf("wire clean: %u fixes (%s), session %llu\n",
              cleaned->total_fixes, cleaned->phase_summary.c_str(),
              static_cast<unsigned long long>(cleaned->session_id));

  // The same bytes cleaned in-process must journal identically.
  auto schema = data::InferCsvSchema(dir + "/dirty.csv", "data");
  auto engine = EngineBuilder()
                    .WithDataSchema(*schema)
                    .WithMasterCsv(ruleset.master_csv)
                    .WithRulesFile(ruleset.rules_file)
                    .BuildEngine();
  if (!engine.ok()) return 1;
  auto relation =
      data::ReadCsvFile(dir + "/dirty.csv", (*engine)->rules().data_schema_ptr());
  Session reference = (*engine)->NewTrackedSession();
  auto ref_result = reference.Run(&*relation);
  if (!ref_result.ok()) return 1;
  std::ostringstream ref_journal;
  if (!ref_result->journal.WriteCsv(ref_journal).ok()) return 1;
  if (cleaned->journal_csv != ref_journal.str()) {
    std::printf("FAIL: wire journal differs from the in-process run\n");
    return 1;
  }
  std::printf("wire journal is byte-identical to the in-process run\n");

  // 2. Stream a delta: re-insert the first two dirty rows.
  std::istringstream lines(dirty_csv);
  std::string header, row0, row1;
  std::getline(lines, header);
  std::getline(lines, row0);
  std::getline(lines, row1);
  serve::DeltaRequest delta;
  delta.session_id = cleaned->session_id;
  delta.inserts_csv = header + "\n" + row0 + "\n" + row1 + "\n";
  auto applied = client.Delta(delta);
  if (!applied.ok()) {
    std::printf("delta failed: %s\n", applied.status().ToString().c_str());
    return 1;
  }
  std::printf("wire delta: generation %u, %u tuples re-cleaned, %u fixes\n",
              applied->generation, applied->affected, applied->total_fixes);

  // 3. Hot reload: the files are unchanged, so the fingerprint must hold.
  auto report = client.Reload("hosp");
  if (!report.ok() || report->find("(unchanged)") == std::string::npos) {
    std::printf("FAIL: reload did not report an unchanged fingerprint\n");
    return 1;
  }
  std::printf("reload: %s\n", report->c_str());

  // 4. Observability: the STATS document and the shutdown summary.
  auto stats = client.Stats();
  if (!stats.ok() || stats->find("\"CLEAN\"") == std::string::npos) {
    std::printf("FAIL: stats missing request metrics\n");
    return 1;
  }
  std::printf("stats: %zu bytes of JSON\n", stats->size());

  client.Close();
  daemon.Shutdown();
  std::printf("%s", daemon.SummaryText().c_str());
  std::printf("serve_roundtrip: OK\n");
  return 0;
}
