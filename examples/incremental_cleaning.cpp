// Incremental cleaning: a tracked session keeps the batch run's violation
// groups alive, so later edits (inserts, updates, deletes) re-clean only the
// tuples they can actually affect instead of the whole relation. The example
// drives a stream of single-tuple edits through Session::ApplyDelta and then
// checks the incremental result — repaired cells and canonical fix set —
// matches a from-scratch batch clean of the final relation, the convergence
// guarantee delta_test pins.

#include <cstdio>
#include <string>

#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

int main() {
  gen::GeneratorConfig config;
  config.num_tuples = 400;
  config.master_size = 150;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.asserted_rate = 0.4;
  config.seed = 42;
  gen::Dataset ds = gen::GenerateHosp(config);

  // Hold the last 8 tuples out of the initial load; they arrive later as
  // the "stream" of edits.
  constexpr int kHeld = 8;
  data::Relation initial(ds.dirty.schema_ptr());
  for (data::TupleId t = 0; t < ds.dirty.size() - kHeld; ++t) {
    initial.AddTuple(ds.dirty.tuple(t));
  }

  auto engine = EngineBuilder()
                    .WithDataSchema(ds.dirty.schema_ptr())
                    .WithMaster(&ds.master)
                    .WithRules(&ds.rules)
                    .WithEta(1.0)
                    .BuildEngine();
  if (!engine.ok()) {
    std::printf("config error: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // --- Batch-clean the initial load under delta tracking. -----------------
  Session session = (*engine)->NewTrackedSession();
  auto batch = session.Run(&initial);
  if (!batch.ok()) {
    std::printf("batch run failed: %s\n", batch.status().ToString().c_str());
    return 1;
  }
  std::printf("batch clean: %d tuples, %d fixes\n", initial.size(),
              batch->total_fixes());

  // --- Stream the held-out tuples in, one ApplyDelta each. ----------------
  int recleaned = 0;
  for (int k = 0; k < kHeld; ++k) {
    Delta delta;
    delta.inserts.push_back(ds.dirty.tuple(ds.dirty.size() - kHeld + k));
    auto dr = session.ApplyDelta(delta);
    if (!dr.ok()) {
      std::printf("delta %d failed: %s\n", k,
                  dr.status().ToString().c_str());
      return 1;
    }
    recleaned += dr->affected;
    std::printf(
        "  delta %d (generation %d): %d of %d tuples re-cleaned, %d fixes\n",
        k, dr->generation, dr->affected, initial.size(), dr->total_fixes());
  }
  std::printf("stream done: %d tuple-cleanings instead of %d\n", recleaned,
              kHeld * initial.size());

  // --- Convergence: same fixes as cleaning the final relation cold. -------
  data::Relation full = ds.dirty.Clone();
  Session batch_session = (*engine)->NewTrackedSession();
  auto full_run = batch_session.Run(&full);
  if (!full_run.ok()) {
    std::printf("full run failed: %s\n",
                full_run.status().ToString().c_str());
    return 1;
  }
  const bool same_cells = initial.CellDiffCount(full) == 0;
  const bool same_fixes =
      session.CanonicalJournal().CanonicalFixSetCsv() ==
      batch_session.CanonicalJournal().CanonicalFixSetCsv();
  std::printf("incremental == batch: cells %s, canonical fix set %s\n",
              same_cells ? "identical" : "DIFFER",
              same_fixes ? "identical" : "DIFFERS");
  return same_cells && same_fixes ? 0 : 1;
}
