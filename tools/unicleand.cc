// unicleand: the serving daemon. Holds one warm CleanEngine per configured
// ruleset and serves CLEAN / DELTA / STATS / RELOAD / PING over the framed
// TCP protocol of serve/wire.h (uniclean_client is the companion).
//
//   unicleand --master M.csv --rules R.txt --schema D.csv
//             [--name default] [--host 127.0.0.1] [--port 0]
//             [--listen unix:PATH] [--port-file P] [--workers 4]
//             [--eta F] [--delta1 N] [--delta2 F] [--memo-cap N]
//             [--phases c,e,h] [--no-warmup]
//             [--max-queue N] [--max-inflight-per-ruleset N]
//             [--request-timeout-ms N] [--drain-grace-ms N]
//             [--log-requests PATH] [--snapshot-dir DIR]
//             [--ruleset NAME:MASTER:RULES:SCHEMA]...
//
// --schema names a CSV whose header row declares the data schema requests
// are parsed against (the dirty data itself or a header-only file). With
// --port 0 the kernel picks an ephemeral port; --port-file writes the
// bound port once the daemon is listening, so scripts can wait for it.
// Additional rulesets come from repeatable --ruleset specs (thresholds
// shared with the flag values). SIGTERM/SIGINT trigger a graceful drain:
// in-flight and queued requests finish, then the per-opcode latency and
// memo hit-rate summary is printed and the daemon exits 0.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/server.h"

using namespace uniclean;  // NOLINT

namespace {

// Self-pipe: the signal handler writes one byte; main() polls the read end.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char byte = 1;
  // write(2) is async-signal-safe; a full pipe just means a wakeup is
  // already pending.
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

struct DaemonCli {
  serve::DaemonOptions options;
  serve::RulesetConfig base;  // filled from the simple flags
  std::vector<std::string> ruleset_specs;
  std::string port_file;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --master M.csv --rules R.txt --schema D.csv\n"
      "  [--name default]          ruleset name for the simple flags\n"
      "  [--host 127.0.0.1] [--port 0]   bind address (port 0 = ephemeral)\n"
      "  [--listen unix:PATH]      listen on an AF_UNIX socket instead of "
      "TCP\n"
      "  [--port-file P]           write the bound port (or unix address) "
      "here once listening\n"
      "  [--workers 4]             request worker threads\n"
      "  [--eta F] [--delta1 N] [--delta2 F]   thresholds (0.8 / 5 / 0.8)\n"
      "  [--memo-cap N]            cap resident entries per memo map\n"
      "  [--phases c,e,h]          subset of phases to run\n"
      "  [--no-warmup]             skip building match indexes at startup\n"
      "  [--max-queue N]           refuse requests beyond N queued "
      "(0 = unbounded)\n"
      "  [--max-inflight-per-ruleset N]   cap concurrent CLEANs per ruleset\n"
      "  [--request-timeout-ms N]  default per-request deadline "
      "(0 = none)\n"
      "  [--drain-grace-ms N]      shutdown drain budget before requests "
      "are cancelled\n"
      "  [--log-requests PATH]     append one JSON line per request\n"
      "  [--snapshot-dir DIR]      warm-start engines from DIR/<name>.ucsnap "
      "and keep the snapshots fresh\n"
      "  [--ruleset NAME:MASTER:RULES:SCHEMA]   additional rulesets "
      "(repeatable)\n",
      argv0);
}

bool ParseDouble(const char* flag, const char* v, double* out) {
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s expects a number, got '%s'\n", flag, v);
    return false;
  }
  *out = parsed;
  return true;
}

bool ParseInt(const char* flag, const char* v, int* out) {
  errno = 0;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed < INT_MIN ||
      parsed > INT_MAX) {
    std::fprintf(stderr, "%s expects an integer, got '%s'\n", flag, v);
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

bool ParsePhases(const char* v, serve::RulesetConfig* cfg) {
  cfg->run_crepair = cfg->run_erepair = cfg->run_hrepair = false;
  for (const char* p = v; *p != '\0'; ++p) {
    switch (*p) {
      case 'c':
        cfg->run_crepair = true;
        break;
      case 'e':
        cfg->run_erepair = true;
        break;
      case 'h':
        cfg->run_hrepair = true;
        break;
      case ',':
        break;
      default:
        std::fprintf(stderr, "--phases: unknown phase character '%c'\n", *p);
        return false;
    }
  }
  return true;
}

bool ParseRulesetSpec(const std::string& spec, const serve::RulesetConfig& base,
                      serve::RulesetConfig* out) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ':') {
      parts.push_back(spec.substr(start, i - start));
      start = i + 1;
    }
  }
  if (parts.size() != 4 || parts[0].empty()) {
    std::fprintf(stderr,
                 "--ruleset expects NAME:MASTER:RULES:SCHEMA, got '%s'\n",
                 spec.c_str());
    return false;
  }
  *out = base;  // inherit thresholds / phase set from the simple flags
  out->name = parts[0];
  out->master_csv = parts[1];
  out->rules_file = parts[2];
  out->schema_csv = parts[3];
  return true;
}

bool ParseArgs(int argc, char** argv, DaemonCli* cli) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--master") {
      if ((v = next()) == nullptr) return false;
      cli->base.master_csv = v;
    } else if (arg == "--rules") {
      if ((v = next()) == nullptr) return false;
      cli->base.rules_file = v;
    } else if (arg == "--schema") {
      if ((v = next()) == nullptr) return false;
      cli->base.schema_csv = v;
    } else if (arg == "--name") {
      if ((v = next()) == nullptr) return false;
      cli->base.name = v;
    } else if (arg == "--host") {
      if ((v = next()) == nullptr) return false;
      cli->options.host = v;
    } else if (arg == "--port") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--port", v, &cli->options.port)) return false;
    } else if (arg == "--listen") {
      if ((v = next()) == nullptr) return false;
      cli->options.listen = v;
    } else if (arg == "--port-file") {
      if ((v = next()) == nullptr) return false;
      cli->port_file = v;
    } else if (arg == "--workers") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--workers", v, &cli->options.n_workers)) return false;
    } else if (arg == "--eta") {
      if ((v = next()) == nullptr) return false;
      if (!ParseDouble("--eta", v, &cli->base.eta)) return false;
    } else if (arg == "--delta1") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--delta1", v, &cli->base.delta1)) return false;
    } else if (arg == "--delta2") {
      if ((v = next()) == nullptr) return false;
      if (!ParseDouble("--delta2", v, &cli->base.delta2)) return false;
    } else if (arg == "--memo-cap") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--memo-cap", v, &cli->base.memo_cap)) return false;
    } else if (arg == "--phases") {
      if ((v = next()) == nullptr) return false;
      if (!ParsePhases(v, &cli->base)) return false;
    } else if (arg == "--no-warmup") {
      cli->options.warmup = false;
    } else if (arg == "--max-queue") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--max-queue", v, &cli->options.max_queue)) return false;
    } else if (arg == "--max-inflight-per-ruleset") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--max-inflight-per-ruleset", v,
                    &cli->options.max_inflight_per_ruleset)) {
        return false;
      }
    } else if (arg == "--request-timeout-ms") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--request-timeout-ms", v,
                    &cli->options.request_timeout_ms)) {
        return false;
      }
    } else if (arg == "--drain-grace-ms") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--drain-grace-ms", v, &cli->options.drain_grace_ms)) {
        return false;
      }
    } else if (arg == "--log-requests") {
      if ((v = next()) == nullptr) return false;
      cli->options.request_log_path = v;
    } else if (arg == "--snapshot-dir") {
      if ((v = next()) == nullptr) return false;
      cli->options.snapshot_dir = v;
    } else if (arg == "--ruleset") {
      if ((v = next()) == nullptr) return false;
      cli->ruleset_specs.push_back(v);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonCli cli;
  if (!ParseArgs(argc, argv, &cli)) {
    Usage(argv[0]);
    return 1;
  }

  std::vector<serve::RulesetConfig> rulesets;
  if (!cli.base.master_csv.empty() || !cli.base.rules_file.empty()) {
    rulesets.push_back(cli.base);
  }
  for (const std::string& spec : cli.ruleset_specs) {
    serve::RulesetConfig cfg;
    if (!ParseRulesetSpec(spec, cli.base, &cfg)) {
      Usage(argv[0]);
      return 1;
    }
    rulesets.push_back(std::move(cfg));
  }
  if (rulesets.empty()) {
    std::fprintf(stderr, "no ruleset configured\n");
    Usage(argv[0]);
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 2;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  serve::Daemon daemon(cli.options, std::move(rulesets));
  Status status = daemon.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "unicleand: start failed: %s\n",
                 status.ToString().c_str());
    return 2;
  }
  std::fprintf(stderr, "unicleand: listening on %s (%d workers)\n",
               daemon.address().c_str(), cli.options.n_workers);
  if (!cli.port_file.empty()) {
    // Write-then-rename so a watcher never reads a half-written port.
    const std::string tmp = cli.port_file + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::perror("fopen(port-file)");
      return 2;
    }
    // TCP mode writes the bound port (the historical contract scripts
    // parse); unix mode writes the connectable address.
    if (cli.options.listen.empty()) {
      std::fprintf(f, "%d\n", daemon.port());
    } else {
      std::fprintf(f, "%s\n", daemon.address().c_str());
    }
    std::fclose(f);
    if (std::rename(tmp.c_str(), cli.port_file.c_str()) != 0) {
      std::perror("rename(port-file)");
      return 2;
    }
  }

  // Block until SIGTERM/SIGINT.
  for (;;) {
    pollfd pfd{};
    pfd.fd = g_signal_pipe[0];
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, -1);
    if (r > 0) break;
    if (r < 0 && errno != EINTR) break;
  }

  std::fprintf(stderr, "unicleand: draining...\n");
  daemon.Shutdown();
  std::fputs(daemon.SummaryText().c_str(), stderr);
  return 0;
}
