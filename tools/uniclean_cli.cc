// uniclean: command-line front end for the library, built on the
// uniclean::CleanEngine / Session API.
//
//   uniclean --data dirty.csv --master master.csv --rules rules.txt
//            [--confidence conf.csv] [--out repaired.csv]
//            [--report fixes.txt] [--journal fixes.csv]
//            [--eta 0.8] [--delta1 5] [--delta2 0.8]
//            [--phases c,e,h] [--check-consistency]
//            [--memo-stats] [--memo-cap N] [--delta edits.csv]
//
// The data / master CSV files must start with a header row naming the
// attributes; the rule file uses the syntax of rules/parser.h. The optional
// confidence CSV has the same shape as the data file with cells holding
// numbers in [0, 1]. The fix report (--report, text) and fix journal
// (--journal, CSV) list every repaired cell with its old/new value, the
// phase that produced the fix and the justifying rule. --memo-stats prints
// the engine's match-memo statistics after the run; --memo-cap bounds each
// memo map's resident entries (0 = unbounded), the long-lived-serving knob.
// --delta names a CSV (same header as the data file) whose rows are applied
// as *inserts* after the batch clean, through Session::ApplyDelta — only the
// tuples they can affect are re-cleaned, and the journal written afterwards
// is the canonical (batch-equivalent) one.

#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

namespace {

struct CliOptions {
  std::string data_path;
  std::string master_path;
  std::string rules_path;
  std::string confidence_path;
  std::string out_path = "repaired.csv";
  std::string report_path;
  std::string journal_path;
  double eta = 0.8;
  int delta1 = 5;
  double delta2 = 0.8;
  bool run_c = true, run_e = true, run_h = true;
  bool check_consistency = false;
  bool memo_stats = false;
  int memo_cap = 0;
  std::string delta_path;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --data D.csv --master M.csv --rules R.txt\n"
      "  [--confidence C.csv]      per-cell confidences (same shape as D)\n"
      "  [--out repaired.csv]      output path (default repaired.csv)\n"
      "  [--report fixes.txt]      per-cell fix provenance report (text)\n"
      "  [--journal fixes.csv]     per-cell fix provenance journal (CSV)\n"
      "  [--eta F] [--delta1 N] [--delta2 F]   thresholds (0.8 / 5 / 0.8)\n"
      "  [--phases c,e,h]          subset of phases to run\n"
      "  [--check-consistency]     verify the rules are consistent first\n"
      "  [--memo-stats]            print match-memo statistics after the run\n"
      "  [--memo-cap N]            cap resident entries per memo map (0 = "
      "unbounded)\n"
      "  [--delta E.csv]           rows (same header as D) inserted after "
      "the clean\n"
      "                            and re-cleaned incrementally\n",
      argv0);
}

/// Strict double parse: the whole string must be consumed.
bool ParseDouble(const char* flag, const char* v, double* out) {
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s expects a number, got '%s'\n", flag, v);
    return false;
  }
  *out = parsed;
  return true;
}

/// Strict int parse: the whole string must be consumed.
bool ParseInt(const char* flag, const char* v, int* out) {
  errno = 0;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed < INT_MIN ||
      parsed > INT_MAX) {
    std::fprintf(stderr, "%s expects an integer, got '%s'\n", flag, v);
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

/// Parses a --phases spec like "c,e,h" or "ce". Unknown characters are an
/// error (they used to silently disable all phases).
bool ParsePhases(const char* v, CliOptions* opts) {
  opts->run_c = opts->run_e = opts->run_h = false;
  for (const char* p = v; *p != '\0'; ++p) {
    switch (*p) {
      case 'c':
        opts->run_c = true;
        break;
      case 'e':
        opts->run_e = true;
        break;
      case 'h':
        opts->run_h = true;
        break;
      case ',':
        break;
      default:
        std::fprintf(stderr,
                     "--phases: unknown phase character '%c' in '%s' "
                     "(expected a subset of c,e,h)\n",
                     *p, v);
        return false;
    }
  }
  return true;
}

std::string PhaseSetToString(const CliOptions& opts) {
  std::string out;
  auto add = [&out](const char* name) {
    if (!out.empty()) out += ", ";
    out += name;
  };
  if (opts.run_c) add("cRepair");
  if (opts.run_e) add("eRepair");
  if (opts.run_h) add("hRepair");
  return out.empty() ? "(none)" : out;
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--data") {
      if ((v = next()) == nullptr) return false;
      opts->data_path = v;
    } else if (arg == "--master") {
      if ((v = next()) == nullptr) return false;
      opts->master_path = v;
    } else if (arg == "--rules") {
      if ((v = next()) == nullptr) return false;
      opts->rules_path = v;
    } else if (arg == "--confidence") {
      if ((v = next()) == nullptr) return false;
      opts->confidence_path = v;
    } else if (arg == "--out") {
      if ((v = next()) == nullptr) return false;
      opts->out_path = v;
    } else if (arg == "--report") {
      if ((v = next()) == nullptr) return false;
      opts->report_path = v;
    } else if (arg == "--journal") {
      if ((v = next()) == nullptr) return false;
      opts->journal_path = v;
    } else if (arg == "--eta") {
      if ((v = next()) == nullptr) return false;
      if (!ParseDouble("--eta", v, &opts->eta)) return false;
    } else if (arg == "--delta1") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--delta1", v, &opts->delta1)) return false;
    } else if (arg == "--delta2") {
      if ((v = next()) == nullptr) return false;
      if (!ParseDouble("--delta2", v, &opts->delta2)) return false;
    } else if (arg == "--phases") {
      if ((v = next()) == nullptr) return false;
      if (!ParsePhases(v, opts)) return false;
    } else if (arg == "--check-consistency") {
      opts->check_consistency = true;
    } else if (arg == "--memo-stats") {
      opts->memo_stats = true;
    } else if (arg == "--delta") {
      if ((v = next()) == nullptr) return false;
      opts->delta_path = v;
    } else if (arg == "--memo-cap") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--memo-cap", v, &opts->memo_cap)) return false;
      if (opts->memo_cap < 0) {
        std::fprintf(stderr, "--memo-cap must be >= 0, got %d\n",
                     opts->memo_cap);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts->data_path.empty() && !opts->master_path.empty() &&
         !opts->rules_path.empty();
}

int Run(const CliOptions& opts) {
  // Load the data relation here (not via WithDataCsv) so the original is
  // available for the repair-cost summary.
  auto schema = data::InferCsvSchema(opts.data_path, "data");
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 2;
  }
  auto d = data::ReadCsvFile(opts.data_path, schema.value());
  if (!d.ok()) {
    std::fprintf(stderr, "%s\n", d.status().ToString().c_str());
    return 2;
  }
  data::Relation original = d->Clone();

  // Per-cell confidences ride on the data relation before the run.
  if (!opts.confidence_path.empty()) {
    Status cs = data::ReadConfidenceCsvFile(opts.confidence_path, &d.value());
    if (!cs.ok()) {
      std::fprintf(stderr, "%s\n", cs.ToString().c_str());
      return 2;
    }
  }

  // The engine owns everything immutable (master, rules, indexes, memos);
  // the CLI's single run is one session against it.
  core::MdMatcherOptions matcher;
  matcher.memo_capacity = static_cast<size_t>(opts.memo_cap);
  auto engine = EngineBuilder()
                    .WithDataSchema(d->schema_ptr())
                    .WithMasterCsv(opts.master_path)
                    .WithRulesFile(opts.rules_path)
                    .WithEta(opts.eta)
                    .WithDelta1(opts.delta1)
                    .WithDelta2(opts.delta2)
                    .WithMatcherOptions(matcher)
                    .WithDefaultPhases(opts.run_c, opts.run_e, opts.run_h)
                    .CheckConsistency(opts.check_consistency)
                    .BuildEngine();
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    // Exit 3 distinguishes "the rules themselves are bad" for scripts;
    // anchored on the builder's exact inconsistency diagnostic so e.g. a
    // NotFound for a file *named* "inconsistent.txt" still exits 2.
    bool rules_inconsistent =
        engine.status().code() == StatusCode::kInvalidArgument &&
        engine.status().message().rfind("the rule set is inconsistent", 0) ==
            0;
    return rules_inconsistent ? 3 : 2;
  }
  std::printf("loaded %d data tuples, %d master tuples, %zu CFDs, %zu MDs\n",
              d->size(), (*engine)->master().size(),
              (*engine)->rules().cfds().size(),
              (*engine)->rules().mds().size());
  if (opts.check_consistency) std::printf("rules are consistent\n");
  std::printf("phases: %s\n", PhaseSetToString(opts).c_str());

  // Warm the engine's match environment up front so the index-build cost
  // is reported separately from the repair itself (the same split the
  // serving scenario sees: build once, then clean many batches warm).
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();
  (*engine)->Warmup();
  auto t1 = Clock::now();
  // A tracked session keeps the violation-group indexes the incremental
  // path needs; without --delta the plain session skips that bookkeeping.
  Session session = opts.delta_path.empty() ? (*engine)->NewSession()
                                            : (*engine)->NewTrackedSession();
  session.set_progress_callback([](const PhaseEvent& event) {
    if (event.kind == PhaseEvent::Kind::kPhaseFinished) {
      std::printf("  [%d/%d] %.*s: %d fixes\n", event.index + 1, event.total,
                  static_cast<int>(event.phase.size()), event.phase.data(),
                  event.stats->fixes);
    }
  });
  auto result = session.Run(&d.value());
  auto t2 = Clock::now();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  std::printf("match index build: %.3fs, repair: %.3fs\n",
              std::chrono::duration<double>(t1 - t0).count(),
              std::chrono::duration<double>(t2 - t1).count());

  if (!opts.delta_path.empty()) {
    auto edits = data::ReadCsvFile(opts.delta_path, d->schema_ptr());
    if (!edits.ok()) {
      std::fprintf(stderr, "%s\n", edits.status().ToString().c_str());
      return 2;
    }
    Delta delta;
    for (data::TupleId t = 0; t < edits->size(); ++t) {
      delta.inserts.push_back(edits->tuple(t));
    }
    auto t3 = Clock::now();
    auto dr = session.ApplyDelta(delta);
    auto t4 = Clock::now();
    if (!dr.ok()) {
      std::fprintf(stderr, "%s\n", dr.status().ToString().c_str());
      return 2;
    }
    // The inserts grew the relation; the cost baseline is their raw rows.
    for (const data::Tuple& tuple : delta.inserts) {
      original.AddTuple(tuple);
    }
    std::printf(
        "delta: %zu inserts, %d tuples re-cleaned in %d round(s), "
        "%d fixes, %.3fs\n",
        delta.inserts.size(), dr->affected, dr->refinement_rounds,
        dr->total_fixes(),
        std::chrono::duration<double>(t4 - t3).count());
  }

  for (const PhaseStats& stats : result->phases) {
    std::string counters;
    for (const auto& [name, value] : stats.counters) {
      counters += "  " + name + "=" + std::to_string(value);
    }
    std::printf("%s: %d fixes, %zu matches%s\n", stats.phase.c_str(),
                stats.fixes, stats.matches.size(), counters.c_str());
  }
  std::printf("total fixes: %d (journal entries: %zu)\n",
              result->total_fixes(), result->journal.size());
  std::printf("repair cost (Σ cf·dist): %.3f\n",
              core::RepairCost(original, d.value()));
  if (opts.memo_stats) {
    const core::MemoStats stats = (*engine)->MemoStats();
    std::printf(
        "memo stats: %llu entries, ~%llu KB, %llu hits, %llu misses, "
        "%llu evictions%s\n",
        static_cast<unsigned long long>(stats.entries),
        static_cast<unsigned long long>(stats.bytes / 1024),
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.evictions),
        opts.memo_cap > 0 ? " (capped)" : "");
  }
  if (const PhaseStats* h = result->phase(HRepairPhase::kName)) {
    int64_t anomalies = h->counter("anomalies");
    if (anomalies > 0) {
      std::fprintf(stderr,
                   "warning: %lld unresolvable conflicts (contradictory "
                   "deterministic fixes or inconsistent rules)\n",
                   static_cast<long long>(anomalies));
    }
  }

  Status s = data::WriteCsvFile(opts.out_path, d.value());
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  std::printf("wrote %s\n", opts.out_path.c_str());

  // After a delta the batch journal is stale for the re-cleaned tuples;
  // the canonical journal is the batch-equivalent covering set.
  const FixJournal written_journal = opts.delta_path.empty()
                                         ? result->journal
                                         : session.CanonicalJournal();
  if (!opts.report_path.empty()) {
    s = written_journal.WriteTextFile(opts.report_path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s\n", opts.report_path.c_str());
  }
  if (!opts.journal_path.empty()) {
    s = written_journal.WriteCsvFile(opts.journal_path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s\n", opts.journal_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage(argv[0]);
    return 1;
  }
  return Run(opts);
}
