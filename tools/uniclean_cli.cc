// uniclean: command-line front end for the library.
//
//   uniclean --data dirty.csv --master master.csv --rules rules.txt
//            [--confidence conf.csv] [--out repaired.csv]
//            [--report fixes.txt] [--eta 0.8] [--delta1 5] [--delta2 0.8]
//            [--phases c,e,h] [--check-consistency]
//
// The data / master CSV files must start with a header row naming the
// attributes; the rule file uses the syntax of rules/parser.h. The optional
// confidence CSV has the same shape as the data file with cells holding
// numbers in [0, 1]. The fix report lists every repaired cell with its
// provenance (deterministic / reliable / possible).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

namespace {

struct CliOptions {
  std::string data_path;
  std::string master_path;
  std::string rules_path;
  std::string confidence_path;
  std::string out_path = "repaired.csv";
  std::string report_path;
  double eta = 0.8;
  int delta1 = 5;
  double delta2 = 0.8;
  bool run_c = true, run_e = true, run_h = true;
  bool check_consistency = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --data D.csv --master M.csv --rules R.txt\n"
      "  [--confidence C.csv]      per-cell confidences (same shape as D)\n"
      "  [--out repaired.csv]      output path (default repaired.csv)\n"
      "  [--report fixes.txt]      per-cell fix provenance report\n"
      "  [--eta F] [--delta1 N] [--delta2 F]   thresholds (0.8 / 5 / 0.8)\n"
      "  [--phases c,e,h]          subset of phases to run\n"
      "  [--check-consistency]     verify the rules are consistent first\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--data") {
      const char* v = next();
      if (!v) return false;
      opts->data_path = v;
    } else if (arg == "--master") {
      const char* v = next();
      if (!v) return false;
      opts->master_path = v;
    } else if (arg == "--rules") {
      const char* v = next();
      if (!v) return false;
      opts->rules_path = v;
    } else if (arg == "--confidence") {
      const char* v = next();
      if (!v) return false;
      opts->confidence_path = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      opts->out_path = v;
    } else if (arg == "--report") {
      const char* v = next();
      if (!v) return false;
      opts->report_path = v;
    } else if (arg == "--eta") {
      const char* v = next();
      if (!v) return false;
      opts->eta = std::atof(v);
    } else if (arg == "--delta1") {
      const char* v = next();
      if (!v) return false;
      opts->delta1 = std::atoi(v);
    } else if (arg == "--delta2") {
      const char* v = next();
      if (!v) return false;
      opts->delta2 = std::atof(v);
    } else if (arg == "--phases") {
      const char* v = next();
      if (!v) return false;
      opts->run_c = std::strchr(v, 'c') != nullptr;
      opts->run_e = std::strchr(v, 'e') != nullptr;
      opts->run_h = std::strchr(v, 'h') != nullptr;
    } else if (arg == "--check-consistency") {
      opts->check_consistency = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts->data_path.empty() && !opts->master_path.empty() &&
         !opts->rules_path.empty();
}

/// Reads a whole file; empty optional-style via Status.
Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Infers a schema from a CSV header line.
Result<data::SchemaPtr> SchemaFromCsvHeader(const std::string& path,
                                            const std::string& name) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::string header;
  if (!std::getline(in, header)) {
    return Status::Corruption("empty CSV: " + path);
  }
  if (!header.empty() && header.back() == '\r') header.pop_back();
  std::vector<std::string> names = Split(header, ',');
  for (auto& n : names) n = std::string(Trim(n));
  return data::MakeSchema(name, names);
}

Status LoadConfidences(const std::string& path, data::Relation* d) {
  UC_ASSIGN_OR_RETURN(data::SchemaPtr schema,
                      SchemaFromCsvHeader(path, "confidence"));
  if (schema->arity() != d->schema().arity()) {
    return Status::InvalidArgument("confidence CSV arity mismatch");
  }
  UC_ASSIGN_OR_RETURN(data::Relation conf, data::ReadCsvFile(path, schema));
  if (conf.size() != d->size()) {
    return Status::InvalidArgument("confidence CSV row count mismatch");
  }
  for (data::TupleId t = 0; t < d->size(); ++t) {
    for (data::AttributeId a = 0; a < d->schema().arity(); ++a) {
      const data::Value& v = conf.tuple(t).value(a);
      double cf = v.is_null() ? 0.0 : std::atof(v.str().c_str());
      if (cf < 0.0 || cf > 1.0) {
        return Status::InvalidArgument("confidence out of [0,1] at row " +
                                       std::to_string(t));
      }
      d->mutable_tuple(t).set_confidence(a, cf);
    }
  }
  return Status::OK();
}

int Run(const CliOptions& opts) {
  auto data_schema = SchemaFromCsvHeader(opts.data_path, "data");
  if (!data_schema.ok()) {
    std::fprintf(stderr, "%s\n", data_schema.status().ToString().c_str());
    return 2;
  }
  auto master_schema = SchemaFromCsvHeader(opts.master_path, "master");
  if (!master_schema.ok()) {
    std::fprintf(stderr, "%s\n", master_schema.status().ToString().c_str());
    return 2;
  }
  auto d = data::ReadCsvFile(opts.data_path, data_schema.value());
  auto dm = data::ReadCsvFile(opts.master_path, master_schema.value());
  if (!d.ok() || !dm.ok()) {
    std::fprintf(stderr, "failed to read CSV inputs\n");
    return 2;
  }
  auto rule_text = ReadFileToString(opts.rules_path);
  if (!rule_text.ok()) {
    std::fprintf(stderr, "%s\n", rule_text.status().ToString().c_str());
    return 2;
  }
  auto rules = rules::ParseRuleSet(rule_text.value(), data_schema.value(),
                                   master_schema.value());
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 2;
  }
  std::printf("loaded %d data tuples, %d master tuples, %zu CFDs, %zu MDs\n",
              d->size(), dm->size(), rules->cfds().size(),
              rules->mds().size());

  if (!opts.confidence_path.empty()) {
    Status s = LoadConfidences(opts.confidence_path, &d.value());
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
  }

  if (opts.check_consistency) {
    auto consistent = reasoning::IsConsistent(rules.value(), dm.value());
    if (!consistent.ok()) {
      std::fprintf(stderr, "consistency check: %s\n",
                   consistent.status().ToString().c_str());
      return 2;
    }
    if (!consistent.value()) {
      std::fprintf(stderr,
                   "the rule set is INCONSISTENT: no nonempty database can "
                   "satisfy it; refusing to clean\n");
      return 3;
    }
    std::printf("rules are consistent\n");
  }

  data::Relation original = d->Clone();
  core::UniCleanOptions options;
  options.eta = opts.eta;
  options.delta1 = opts.delta1;
  options.delta2 = opts.delta2;
  options.run_crepair = opts.run_c;
  options.run_erepair = opts.run_e;
  options.run_hrepair = opts.run_h;
  auto report = core::UniClean(&d.value(), dm.value(), rules.value(),
                               options);
  std::printf("fixes: %d deterministic, %d reliable, %d possible\n",
              report.crepair.deterministic_fixes,
              report.erepair.reliable_fixes, report.hrepair.possible_fixes);
  std::printf("repair cost (Σ cf·dist): %.3f\n",
              core::RepairCost(original, d.value()));
  if (report.hrepair.anomalies > 0) {
    std::fprintf(stderr,
                 "warning: %d unresolvable conflicts (contradictory "
                 "deterministic fixes or inconsistent rules)\n",
                 report.hrepair.anomalies);
  }

  Status s = data::WriteCsvFile(opts.out_path, d.value());
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  std::printf("wrote %s\n", opts.out_path.c_str());

  if (!opts.report_path.empty()) {
    FILE* f = std::fopen(opts.report_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opts.report_path.c_str());
      return 2;
    }
    for (data::TupleId t = 0; t < d->size(); ++t) {
      for (data::AttributeId a = 0; a < d->schema().arity(); ++a) {
        if (d->tuple(t).mark(a) == data::FixMark::kNone) continue;
        std::fprintf(f, "row %d %s: '%s' -> '%s' [%s]\n", t,
                     d->schema().attribute_name(a).c_str(),
                     original.tuple(t).value(a).ToString().c_str(),
                     d->tuple(t).value(a).ToString().c_str(),
                     data::FixMarkToString(d->tuple(t).mark(a)));
      }
    }
    std::fclose(f);
    std::printf("wrote %s\n", opts.report_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage(argv[0]);
    return 1;
  }
  return Run(opts);
}
