// unicleanctl: spawn, inspect and drive a local unicleand cluster from one
// spec file (src/cluster/spec.h). Every command recomputes the ring from
// the spec, so ownership shown here is exactly what the routing client
// computes.
//
//   unicleanctl COMMAND SPEC [flags]
//
//   spawn SPEC --unicleand BIN [--state-dir D]
//       Start one unicleand per replica that owns at least one ruleset,
//       each serving only its owned rulesets, listening on the replica's
//       spec address, warm-starting from the spec's snapshot-dir. Pid files
//       land in the state dir (default: SPEC.state). Waits until every
//       spawned replica answers PING.
//   ring SPEC
//       Print the ownership table: each ruleset's owner list (primary
//       first), and each replica's owned rulesets.
//   status SPEC
//       Probe every replica once; print health, load and per-ruleset
//       engine fingerprints.
//   clean SPEC --ruleset NAME --data D.csv [--journal J.csv] [--out R.csv]
//       Route a CLEAN through the cluster client (with failover).
//   stats SPEC
//       Print the merged cluster STATS document.
//   rolling-reload SPEC [--ruleset NAME]
//       RELOAD replica-by-replica: each replica reloads and answers a
//       PING (fingerprints included) before the next one starts, so the
//       cluster never has two replicas rebuilding at once.
//   stop SPEC [--state-dir D]
//       SIGTERM every pid the state dir knows about and wait for exit.
//
// Exit codes: 0 success, 1 usage/spec error, 2 cluster unreachable,
// 3 command failed.

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.h"
#include "cluster/membership.h"
#include "cluster/ring.h"
#include "cluster/spec.h"
#include "serve/client.h"

using namespace uniclean;  // NOLINT

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s COMMAND SPEC [flags]\n"
      "  spawn SPEC --unicleand BIN [--state-dir D]   start the replicas\n"
      "  ring SPEC                                    print ownership\n"
      "  status SPEC                                  probe + print health\n"
      "  clean SPEC --ruleset NAME --data D.csv\n"
      "        [--journal J.csv] [--out R.csv]        routed CLEAN\n"
      "  stats SPEC                                   merged cluster stats\n"
      "  rolling-reload SPEC [--ruleset NAME]         reload one-by-one\n"
      "  stop SPEC [--state-dir D]                    SIGTERM the replicas\n",
      argv0);
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "unicleanctl: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "unicleanctl: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

std::shared_ptr<cluster::Membership> MakeMembership(
    const cluster::ClusterSpec& spec) {
  auto membership = std::make_shared<cluster::Membership>();
  for (const cluster::ReplicaSpec& r : spec.replicas) {
    (void)membership->AddReplica(r.name, r.address);
  }
  return membership;
}

// --- spawn -----------------------------------------------------------------

std::string PidFilePath(const std::string& state_dir,
                        const std::string& replica) {
  return state_dir + "/" + replica + ".pid";
}

int CmdSpawn(const cluster::ClusterSpec& spec, const std::string& unicleand,
             const std::string& state_dir) {
  if (unicleand.empty()) {
    std::fprintf(stderr, "unicleanctl spawn: --unicleand BIN is required\n");
    return 1;
  }
  if (::mkdir(state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "unicleanctl spawn: mkdir %s: %s\n",
                 state_dir.c_str(), std::strerror(errno));
    return 1;
  }
  std::vector<std::string> spawned;
  for (const cluster::ReplicaSpec& replica : spec.replicas) {
    const std::vector<std::string> owned =
        spec.RulesetsOwnedBy(replica.name);
    if (owned.empty()) {
      // The ring assigned this replica nothing; routing never targets it,
      // so a daemon would only waste an engine build.
      std::fprintf(stderr, "unicleanctl: replica %s owns no ruleset, idle\n",
                   replica.name.c_str());
      continue;
    }
    std::vector<std::string> args;
    args.push_back(unicleand);
    args.push_back("--workers");
    args.push_back(std::to_string(spec.workers));
    if (replica.address.rfind("unix:", 0) == 0) {
      args.push_back("--listen");
      args.push_back(replica.address);
    } else {
      const size_t colon = replica.address.rfind(':');
      args.push_back("--host");
      args.push_back(replica.address.substr(0, colon));
      args.push_back("--port");
      args.push_back(replica.address.substr(colon + 1));
    }
    if (!spec.snapshot_dir.empty()) {
      args.push_back("--snapshot-dir");
      args.push_back(spec.snapshot_dir);
    }
    for (const std::string& name : owned) {
      const cluster::RulesetSpec rs = spec.FindRuleset(name).value();
      args.push_back("--ruleset");
      args.push_back(rs.name + ":" + rs.master_csv + ":" + rs.rules_file +
                     ":" + rs.schema_csv);
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "unicleanctl spawn: fork: %s\n",
                   std::strerror(errno));
      return 3;
    }
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      // Route the daemon's stderr into the state dir so spawn output stays
      // readable and crashes stay diagnosable.
      const std::string log = state_dir + "/" + replica.name + ".log";
      FILE* f = std::freopen(log.c_str(), "a", stderr);
      (void)f;
      ::execv(argv[0], argv.data());
      std::fprintf(stdout, "unicleanctl spawn: execv %s: %s\n",
                   argv[0], std::strerror(errno));
      _exit(127);
    }
    if (!WriteFile(PidFilePath(state_dir, replica.name),
                   std::to_string(pid) + "\n")) {
      return 3;
    }
    std::fprintf(stderr, "unicleanctl: spawned %s (pid %d) serving",
                 replica.name.c_str(), static_cast<int>(pid));
    for (const std::string& name : owned) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, " on %s\n", replica.address.c_str());
    spawned.push_back(replica.name);
  }
  // Readiness: every spawned replica must answer a PING. Engine builds
  // (cold) can take a while; snapshot-warmed starts are near-instant.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  for (const std::string& name : spawned) {
    const std::string address =
        spec.FindReplica(name).value().address;
    for (;;) {
      Result<serve::Client> client = serve::Client::ConnectAddress(address);
      if (client.ok() && client.value().Ping().ok()) break;
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "unicleanctl spawn: %s (%s) never came up\n",
                     name.c_str(), address.c_str());
        return 2;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::fprintf(stderr, "unicleanctl: %s is up\n", name.c_str());
  }
  return 0;
}

int CmdStop(const cluster::ClusterSpec& spec, const std::string& state_dir) {
  int failures = 0;
  for (const cluster::ReplicaSpec& replica : spec.replicas) {
    const std::string pid_file = PidFilePath(state_dir, replica.name);
    std::string text;
    {
      std::ifstream in(pid_file);
      if (!in) continue;  // never spawned (idle replica) or already stopped
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
    const pid_t pid = static_cast<pid_t>(std::strtol(text.c_str(), nullptr, 10));
    if (pid <= 0) continue;
    if (::kill(pid, SIGTERM) != 0 && errno != ESRCH) {
      std::fprintf(stderr, "unicleanctl stop: kill %d: %s\n",
                   static_cast<int>(pid), std::strerror(errno));
      ++failures;
      continue;
    }
    // The pids are children only when stop runs in the spawner's process;
    // from a fresh invocation waitpid fails with ECHILD and polling kill(0)
    // is the portable wait.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (::kill(pid, 0) == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      int ignored = 0;
      (void)::waitpid(pid, &ignored, WNOHANG);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::remove(pid_file.c_str());
    std::fprintf(stderr, "unicleanctl: stopped %s (pid %d)\n",
                 replica.name.c_str(), static_cast<int>(pid));
  }
  return failures == 0 ? 0 : 3;
}

// --- inspection ------------------------------------------------------------

int CmdRing(const cluster::ClusterSpec& spec) {
  const cluster::Ring ring = spec.BuildRing();
  std::printf("ring: %d replica(s), %d vnode(s) each, replication %d\n",
              ring.size(), spec.ring.vnodes_per_replica, spec.replication);
  for (const cluster::RulesetSpec& rs : spec.rulesets) {
    const std::vector<std::string> owners =
        ring.Owners(rs.name, spec.replication);
    std::printf("  ruleset %-16s ->", rs.name.c_str());
    for (size_t i = 0; i < owners.size(); ++i) {
      std::printf(" %s%s", owners[i].c_str(), i == 0 ? " (primary)" : "");
    }
    std::printf("\n");
  }
  for (const cluster::ReplicaSpec& replica : spec.replicas) {
    const std::vector<std::string> owned =
        spec.RulesetsOwnedBy(replica.name);
    std::printf("  replica %-16s %-28s serves %zu ruleset(s)",
                replica.name.c_str(), replica.address.c_str(), owned.size());
    for (const std::string& name : owned) std::printf(" %s", name.c_str());
    std::printf("\n");
  }
  return 0;
}

int CmdStatus(const cluster::ClusterSpec& spec) {
  auto membership = MakeMembership(spec);
  const int answered = membership->ProbeAll();
  for (const cluster::ReplicaStatus& status : membership->Snapshot()) {
    std::printf("%-16s %-28s %-8s", status.name.c_str(),
                status.address.c_str(),
                cluster::HealthName(status.health));
    if (status.health == cluster::Health::kHealthy) {
      std::printf(" inflight=%u queued=%u", status.inflight, status.queued);
      for (const auto& [name, fingerprint] : status.rulesets) {
        std::printf(" %s=%016llx", name.c_str(),
                    static_cast<unsigned long long>(fingerprint));
      }
    }
    std::printf("\n");
  }
  return answered == static_cast<int>(spec.replicas.size()) ? 0 : 2;
}

// --- routed commands -------------------------------------------------------

int CmdClean(const cluster::ClusterSpec& spec, const std::string& ruleset,
             const std::string& data_path, const std::string& journal_path,
             const std::string& out_path) {
  if (ruleset.empty() || data_path.empty()) {
    std::fprintf(stderr,
                 "unicleanctl clean: --ruleset and --data are required\n");
    return 1;
  }
  auto membership = MakeMembership(spec);
  membership->ProbeAll();
  cluster::ClusterClientOptions options;
  options.replication = spec.replication;
  options.retry.max_retries = 3;
  cluster::ClusterClient client(spec.BuildRing(), membership, options);
  serve::CleanRequest request;
  request.ruleset = ruleset;
  request.want_data = !out_path.empty();
  if (!ReadFile(data_path, &request.data_csv)) return 1;
  Result<serve::CleanReply> reply = client.Clean(request);
  if (!reply.ok()) {
    std::fprintf(stderr, "unicleanctl clean: %s\n",
                 reply.status().ToString().c_str());
    return 3;
  }
  std::printf("cleaned: %u fixes (%s), %u journal entries, %llu failover(s)\n",
              reply->total_fixes, reply->phase_summary.c_str(),
              reply->journal_entries,
              static_cast<unsigned long long>(client.failovers()));
  if (!journal_path.empty() && !WriteFile(journal_path, reply->journal_csv)) {
    return 3;
  }
  if (!out_path.empty() && !WriteFile(out_path, reply->data_csv)) return 3;
  return 0;
}

int CmdStats(const cluster::ClusterSpec& spec) {
  auto membership = MakeMembership(spec);
  membership->ProbeAll();
  cluster::ClusterClient client(spec.BuildRing(), membership, {});
  Result<std::string> merged = client.Stats();
  if (!merged.ok()) {
    std::fprintf(stderr, "unicleanctl stats: %s\n",
                 merged.status().ToString().c_str());
    return 3;
  }
  std::fputs(merged->c_str(), stdout);
  return 0;
}

int CmdRollingReload(const cluster::ClusterSpec& spec,
                     const std::string& ruleset) {
  // Replica-by-replica: reload one, verify it answers a PING with engine
  // fingerprints again, only then move on — the ring's other owners keep
  // serving each ruleset throughout.
  for (const cluster::ReplicaSpec& replica : spec.replicas) {
    const std::vector<std::string> owned = spec.RulesetsOwnedBy(replica.name);
    if (owned.empty()) continue;
    // Reloading one ruleset only touches its owners; a RELOAD for a ruleset
    // a replica doesn't serve would just be refused NotFound.
    if (!ruleset.empty() &&
        std::find(owned.begin(), owned.end(), ruleset) == owned.end()) {
      continue;
    }
    Result<serve::Client> connected =
        serve::Client::ConnectAddress(replica.address);
    if (!connected.ok()) {
      std::fprintf(stderr, "unicleanctl rolling-reload: %s unreachable: %s\n",
                   replica.name.c_str(),
                   connected.status().ToString().c_str());
      return 2;
    }
    serve::Client client = std::move(connected).value();
    Result<std::string> report = client.Reload(ruleset);
    if (!report.ok()) {
      std::fprintf(stderr, "unicleanctl rolling-reload: %s failed: %s\n",
                   replica.name.c_str(), report.status().ToString().c_str());
      return 3;
    }
    Result<serve::PingInfo> pong = client.PingEx();
    if (!pong.ok()) {
      std::fprintf(stderr,
                   "unicleanctl rolling-reload: %s not serving after "
                   "reload: %s\n",
                   replica.name.c_str(), pong.status().ToString().c_str());
      return 3;
    }
    std::printf("reloaded %s: %s", replica.name.c_str(), report->c_str());
    for (const auto& [name, fingerprint] : pong->rulesets) {
      std::printf(" %s=%016llx", name.c_str(),
                  static_cast<unsigned long long>(fingerprint));
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    Usage(argv[0]);
    return 1;
  }
  const std::string command = argv[1];
  const std::string spec_path = argv[2];

  std::string unicleand_bin;
  std::string state_dir = spec_path + ".state";
  std::string ruleset;
  std::string data_path;
  std::string journal_path;
  std::string out_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--unicleand") {
      if ((v = next()) == nullptr) return 1;
      unicleand_bin = v;
    } else if (arg == "--state-dir") {
      if ((v = next()) == nullptr) return 1;
      state_dir = v;
    } else if (arg == "--ruleset") {
      if ((v = next()) == nullptr) return 1;
      ruleset = v;
    } else if (arg == "--data") {
      if ((v = next()) == nullptr) return 1;
      data_path = v;
    } else if (arg == "--journal") {
      if ((v = next()) == nullptr) return 1;
      journal_path = v;
    } else if (arg == "--out") {
      if ((v = next()) == nullptr) return 1;
      out_path = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      Usage(argv[0]);
      return 1;
    }
  }

  Result<cluster::ClusterSpec> loaded = cluster::ClusterSpec::Load(spec_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "unicleanctl: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const cluster::ClusterSpec spec = std::move(loaded).value();

  ::signal(SIGPIPE, SIG_IGN);

  if (command == "spawn") return CmdSpawn(spec, unicleand_bin, state_dir);
  if (command == "ring") return CmdRing(spec);
  if (command == "status") return CmdStatus(spec);
  if (command == "clean") {
    return CmdClean(spec, ruleset, data_path, journal_path, out_path);
  }
  if (command == "stats") return CmdStats(spec);
  if (command == "rolling-reload") return CmdRollingReload(spec, ruleset);
  if (command == "stop") return CmdStop(spec, state_dir);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  Usage(argv[0]);
  return 1;
}
