// uniclean_client: command-line companion of unicleand (serve/client.h).
//
//   uniclean_client --port N [--host 127.0.0.1 | --port-file P |
//                             --address unix:PATH|HOST:PORT]
//     --ping                         liveness probe
//     --stats                        print the daemon's STATS JSON
//     --reload [NAME]                hot-reload a ruleset ("" = all)
//     --clean D.csv                  batch-clean D.csv over the wire
//       [--confidence C.csv]         per-cell confidences
//       [--ruleset NAME]             ruleset to clean against
//       [--journal J.csv]            write the fix journal CSV here
//       [--out R.csv]                write the repaired relation here
//       [--track]                    keep the session for --delta
//       [--delta E.csv]              insert E.csv's rows incrementally
//                                    (implies --track)
//       [--delta-journal J2.csv]     canonical journal after the delta
//     --deadline-ms N                per-request deadline (server-enforced;
//                                    0 = the daemon's default)
//     --max-retries N                retry kUnavailable rejections up to N
//                                    times with capped exponential backoff,
//                                    honouring the daemon's retry-after hint
//     --retry-seed N                 jitter seed for the retry backoff
//                                    (default: pid), so tests replay
//                                    byte-identical schedules
//
// Tracked sessions live exactly as long as their connection, so --clean
// --track --delta runs both requests over one connection in one
// invocation — the same contract uniclean_cli's --delta flag has
// in-process. The journal written by --journal (and --delta-journal) is
// byte-identical to the in-process run's.
//
// Exit codes: 0 success, 1 usage error, 2 connection error, 3 request
// failed (the daemon's error message is printed to stderr).

#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/client.h"

using namespace uniclean;  // NOLINT

namespace {

struct ClientCli {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string port_file;
  std::string address;  // "unix:PATH" or "host:port"; overrides host/port
  bool ping = false;
  bool stats = false;
  bool reload = false;
  std::string reload_name;
  std::string clean_path;
  std::string confidence_path;
  std::string ruleset;
  std::string journal_path;
  std::string out_path;
  bool track = false;
  std::string delta_path;
  std::string delta_journal_path;
  int deadline_ms = 0;
  int max_retries = 0;
  bool have_retry_seed = false;
  uint64_t retry_seed = 0;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port N [--host H | --port-file P | --address A] COMMAND\n"
      "  --address A               unix:PATH or HOST:PORT\n"
      "  --ping | --stats | --reload [NAME]\n"
      "  --clean D.csv [--confidence C.csv] [--ruleset NAME]\n"
      "          [--journal J.csv] [--out R.csv] [--track]\n"
      "          [--delta E.csv] [--delta-journal J2.csv]\n"
      "  [--deadline-ms N] [--max-retries N] [--retry-seed N]\n",
      argv0);
}

bool ParseInt(const char* flag, const char* v, int* out) {
  errno = 0;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed < INT_MIN ||
      parsed > INT_MAX) {
    std::fprintf(stderr, "%s expects an integer, got '%s'\n", flag, v);
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

bool ParseArgs(int argc, char** argv, ClientCli* cli) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto peek = [&]() -> const char* {
      return i + 1 < argc ? argv[i + 1] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host") {
      if ((v = next()) == nullptr) return false;
      cli->host = v;
    } else if (arg == "--port") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--port", v, &cli->port)) return false;
    } else if (arg == "--port-file") {
      if ((v = next()) == nullptr) return false;
      cli->port_file = v;
    } else if (arg == "--address") {
      if ((v = next()) == nullptr) return false;
      cli->address = v;
    } else if (arg == "--ping") {
      cli->ping = true;
    } else if (arg == "--stats") {
      cli->stats = true;
    } else if (arg == "--reload") {
      cli->reload = true;
      // Optional operand: a NAME not starting with "--".
      if (peek() != nullptr && std::string(peek()).rfind("--", 0) != 0) {
        cli->reload_name = next();
      }
    } else if (arg == "--clean") {
      if ((v = next()) == nullptr) return false;
      cli->clean_path = v;
    } else if (arg == "--confidence") {
      if ((v = next()) == nullptr) return false;
      cli->confidence_path = v;
    } else if (arg == "--ruleset") {
      if ((v = next()) == nullptr) return false;
      cli->ruleset = v;
    } else if (arg == "--journal") {
      if ((v = next()) == nullptr) return false;
      cli->journal_path = v;
    } else if (arg == "--out") {
      if ((v = next()) == nullptr) return false;
      cli->out_path = v;
    } else if (arg == "--track") {
      cli->track = true;
    } else if (arg == "--delta") {
      if ((v = next()) == nullptr) return false;
      cli->delta_path = v;
      cli->track = true;
    } else if (arg == "--delta-journal") {
      if ((v = next()) == nullptr) return false;
      cli->delta_journal_path = v;
    } else if (arg == "--deadline-ms") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--deadline-ms", v, &cli->deadline_ms)) return false;
    } else if (arg == "--max-retries") {
      if ((v = next()) == nullptr) return false;
      if (!ParseInt("--max-retries", v, &cli->max_retries)) return false;
    } else if (arg == "--retry-seed") {
      if ((v = next()) == nullptr) return false;
      errno = 0;
      char* end = nullptr;
      cli->retry_seed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "--retry-seed expects an integer, got '%s'\n", v);
        return false;
      }
      cli->have_retry_seed = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ClientCli cli;
  if (!ParseArgs(argc, argv, &cli)) {
    Usage(argv[0]);
    return 1;
  }
  if (!cli.port_file.empty()) {
    std::string text;
    if (!ReadFile(cli.port_file, &text)) return 1;
    const std::string line = text.substr(0, text.find('\n'));
    // A unix-mode daemon writes its "unix:PATH" address to the port file.
    if (line.rfind("unix:", 0) == 0) {
      cli.address = line;
    } else if (!ParseInt("--port-file", line.c_str(), &cli.port)) {
      return 1;
    }
  }
  if (cli.address.empty() && cli.port <= 0) {
    std::fprintf(stderr, "--port (or --port-file / --address) is required\n");
    Usage(argv[0]);
    return 1;
  }
  if (!cli.ping && !cli.stats && !cli.reload && cli.clean_path.empty()) {
    std::fprintf(stderr, "no command given\n");
    Usage(argv[0]);
    return 1;
  }

  Result<serve::Client> connected =
      cli.address.empty()
          ? serve::Client::Connect(cli.host, cli.port)
          : serve::Client::ConnectAddress(cli.address);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.status().ToString().c_str());
    return 2;
  }
  serve::Client client = std::move(connected).value();
  if (cli.deadline_ms > 0) {
    client.set_default_deadline_ms(static_cast<uint32_t>(cli.deadline_ms));
  }
  if (cli.max_retries > 0) {
    serve::RetryPolicy policy;
    policy.max_retries = cli.max_retries;
    // Default seed is the pid so concurrent invocations spread their
    // retries; --retry-seed pins it so tests replay identical schedules.
    policy.jitter_seed = cli.have_retry_seed
                             ? cli.retry_seed
                             : static_cast<uint64_t>(::getpid());
    client.set_retry_policy(policy);
  }

  if (cli.ping) {
    Status status = client.Ping();
    if (!status.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", status.ToString().c_str());
      return 3;
    }
    std::printf("pong\n");
  }

  if (cli.reload) {
    Result<std::string> report = client.Reload(cli.reload_name);
    if (!report.ok()) {
      std::fprintf(stderr, "reload failed: %s\n",
                   report.status().ToString().c_str());
      return 3;
    }
    std::printf("%s\n", report->c_str());
  }

  if (!cli.clean_path.empty()) {
    serve::CleanRequest request;
    request.ruleset = cli.ruleset;
    request.track = cli.track;
    request.want_data = !cli.out_path.empty();
    if (!ReadFile(cli.clean_path, &request.data_csv)) return 1;
    if (!cli.confidence_path.empty() &&
        !ReadFile(cli.confidence_path, &request.confidence_csv)) {
      return 1;
    }
    Result<serve::CleanReply> reply = client.Clean(request);
    if (!reply.ok()) {
      std::fprintf(stderr, "clean failed: %s\n",
                   reply.status().ToString().c_str());
      return 3;
    }
    std::printf("cleaned: %u fixes (%s), %u journal entries\n",
                reply->total_fixes, reply->phase_summary.c_str(),
                reply->journal_entries);
    if (!cli.journal_path.empty() &&
        !WriteFile(cli.journal_path, reply->journal_csv)) {
      return 1;
    }
    if (!cli.out_path.empty() && !WriteFile(cli.out_path, reply->data_csv)) {
      return 1;
    }

    if (!cli.delta_path.empty()) {
      serve::DeltaRequest delta;
      delta.session_id = reply->session_id;
      if (!ReadFile(cli.delta_path, &delta.inserts_csv)) return 1;
      Result<serve::DeltaReply> dr = client.Delta(delta);
      if (!dr.ok()) {
        std::fprintf(stderr, "delta failed: %s\n",
                     dr.status().ToString().c_str());
        return 3;
      }
      std::printf(
          "delta: generation %u, %u tuples re-cleaned in %u round(s), "
          "%u fixes, %zu inserted\n",
          dr->generation, dr->affected, dr->refinement_rounds,
          dr->total_fixes, dr->inserted_ids.size());
      if (!cli.delta_journal_path.empty() &&
          !WriteFile(cli.delta_journal_path, dr->journal_csv)) {
        return 1;
      }
    }
  }

  if (cli.stats) {
    Result<std::string> json = client.Stats();
    if (!json.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   json.status().ToString().c_str());
      return 3;
    }
    std::fputs(json->c_str(), stdout);
  }
  return 0;
}
