// make_hosp_sample: writes a tiny generated HOSP dataset to disk in the
// file formats uniclean_cli consumes — dirty.csv, master.csv, a rule
// program rules.txt, and a per-cell confidence.csv. Used by the CTest
// end-to-end smoke test and handy for quickstart experiments:
//
//   make_hosp_sample --out-dir sample --tuples 60 --master 30
//   uniclean_cli --data sample/dirty.csv --master sample/master.csv
//                --rules sample/rules.txt --confidence sample/confidence.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

namespace {

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << text;
  return out.good();
}

}  // namespace

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out-dir D] [--tuples N] [--master M] [--seed S]\n",
               argv0);
}

int ParseCount(const char* flag, const char* v) {
  char* end = nullptr;
  long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || n < 0) {
    std::fprintf(stderr, "%s wants a non-negative integer, got '%s'\n", flag,
                 v);
    std::exit(1);
  }
  return static_cast<int>(n);
}

int main(int argc, char** argv) {
  std::string out_dir = ".";
  gen::GeneratorConfig config;
  config.num_tuples = 60;
  config.master_size = 30;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        Usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--out-dir") {
      out_dir = next();
    } else if (arg == "--tuples") {
      config.num_tuples = ParseCount("--tuples", next());
    } else if (arg == "--master") {
      config.master_size = ParseCount("--master", next());
    } else if (arg == "--seed") {
      config.seed = static_cast<uint64_t>(std::atoll(next()));
    } else {
      Usage(argv[0]);
      return 1;
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 2;
  }

  gen::Dataset ds = gen::GenerateHosp(config);

  Status s = data::WriteCsvFile(out_dir + "/dirty.csv", ds.dirty);
  if (s.ok()) s = data::WriteCsvFile(out_dir + "/master.csv", ds.master);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  // The confidence CSV mirrors the data file's shape with cells holding the
  // per-cell confidences assigned by the generator (asserted cells are 1.0).
  s = data::WriteConfidenceCsvFile(out_dir + "/confidence.csv", ds.dirty);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  if (!WriteTextFile(out_dir + "/rules.txt", ds.rule_text)) {
    std::fprintf(stderr, "cannot write to %s\n", out_dir.c_str());
    return 2;
  }
  std::printf("wrote HOSP sample (%d data, %d master tuples) to %s\n",
              ds.dirty.size(), ds.master.size(), out_dir.c_str());
  return 0;
}
