// uniclean_snapshot: inspect, verify and write engine snapshot files
// (src/snapshot/, the .ucsnap format unicleand --snapshot-dir serves from).
//
//   uniclean_snapshot inspect FILE
//       Decode the header and section table: format version, engine
//       fingerprint, pool generation, per-section ids/sizes/CRCs.
//   uniclean_snapshot verify FILE
//       Full container validation (header CRC, every section CRC, pool
//       content hash). Exit 0 = intact, 1 = corrupt/unreadable.
//   uniclean_snapshot write FILE --master M.csv --rules R.txt --schema D.csv
//       [--eta F] [--delta1 N] [--delta2 F] [--memo-cap N] [--no-memos]
//       Build + warm an engine from the given sources (the same flags
//       unicleand takes) and snapshot it to FILE.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/csv.h"
#include "snapshot/snapshot.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: uniclean_snapshot inspect FILE\n"
               "       uniclean_snapshot verify FILE\n"
               "       uniclean_snapshot write FILE --master M.csv "
               "--rules R.txt --schema D.csv\n"
               "         [--eta F] [--delta1 N] [--delta2 F] [--memo-cap N] "
               "[--no-memos]\n");
  return 2;
}

const char* SectionName(uint32_t id) {
  switch (static_cast<snapshot::SectionId>(id)) {
    case snapshot::SectionId::kStringPool:
      return "string_pool";
    case snapshot::SectionId::kEnvironment:
      return "environment";
    case snapshot::SectionId::kMatcher:
      return "matcher";
    case snapshot::SectionId::kMemos:
      return "memos";
  }
  return "unknown";
}

int Inspect(const std::string& path) {
  Result<snapshot::SnapshotInfo> info = snapshot::Inspect(path);
  if (!info.ok()) {
    std::fprintf(stderr, "uniclean_snapshot: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  const snapshot::Header& h = info->header;
  std::printf("%s: %" PRIu64 " bytes, format v%u\n", path.c_str(),
              info->file_bytes, h.version);
  std::printf("  engine fingerprint  %016" PRIx64 "\n", h.engine_fingerprint);
  std::printf("  matcher             top_l=%u flags=%u memo_capacity=%" PRIu64
              "\n",
              h.matcher_top_l, h.matcher_flags, h.memo_capacity);
  std::printf("  string pool         %" PRIu64 " ids, hash %016" PRIx64 "\n",
              h.pool_count, h.pool_hash);
  std::printf("  flags               %s\n",
              (h.flags & snapshot::kFlagHasMemos) ? "has_memos" : "(none)");
  std::printf("  sections            %u\n", h.section_count);
  for (const snapshot::SectionInfo& s : info->sections) {
    std::printf("    %-12s", SectionName(s.id));
    if (s.rule_id == snapshot::kNoRule) {
      std::printf(" rule=-   ");
    } else {
      std::printf(" rule=%-4u", s.rule_id);
    }
    std::printf(" %10" PRIu64 " bytes  crc %08x\n", s.length, s.crc);
  }
  return 0;
}

int Verify(const std::string& path) {
  const Status status = snapshot::Verify(path);
  if (!status.ok()) {
    std::fprintf(stderr, "uniclean_snapshot: %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("%s: OK\n", path.c_str());
  return 0;
}

int Write(const std::string& path, int argc, char** argv) {
  std::string master_csv;
  std::string rules_file;
  std::string schema_csv;
  double eta = 0.8;
  int delta1 = 5;
  double delta2 = 0.8;
  int memo_cap = 0;
  snapshot::SnapshotWriteOptions options;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--master" && (v = next()) != nullptr) {
      master_csv = v;
    } else if (arg == "--rules" && (v = next()) != nullptr) {
      rules_file = v;
    } else if (arg == "--schema" && (v = next()) != nullptr) {
      schema_csv = v;
    } else if (arg == "--eta" && (v = next()) != nullptr) {
      eta = std::atof(v);
    } else if (arg == "--delta1" && (v = next()) != nullptr) {
      delta1 = std::atoi(v);
    } else if (arg == "--delta2" && (v = next()) != nullptr) {
      delta2 = std::atof(v);
    } else if (arg == "--memo-cap" && (v = next()) != nullptr) {
      memo_cap = std::atoi(v);
    } else if (arg == "--no-memos") {
      options.include_memos = false;
    } else {
      std::fprintf(stderr, "uniclean_snapshot: bad argument '%s'\n",
                   arg.c_str());
      return Usage();
    }
  }
  if (master_csv.empty() || rules_file.empty() || schema_csv.empty()) {
    std::fprintf(stderr,
                 "uniclean_snapshot write needs --master, --rules and "
                 "--schema\n");
    return Usage();
  }
  Result<data::SchemaPtr> schema = data::InferCsvSchema(schema_csv, "data");
  if (!schema.ok()) {
    std::fprintf(stderr, "uniclean_snapshot: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }
  core::MdMatcherOptions matcher;
  matcher.memo_capacity = static_cast<size_t>(memo_cap);
  Result<std::shared_ptr<CleanEngine>> engine =
      EngineBuilder()
          .WithDataSchema(schema.value())
          .WithMasterCsv(master_csv)
          .WithRulesFile(rules_file)
          .WithEta(eta)
          .WithDelta1(delta1)
          .WithDelta2(delta2)
          .WithMatcherOptions(matcher)
          .BuildEngine();
  if (!engine.ok()) {
    std::fprintf(stderr, "uniclean_snapshot: engine build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  const Status status = snapshot::WriteSnapshot(**engine, path, options);
  if (!status.ok()) {
    std::fprintf(stderr, "uniclean_snapshot: write failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return Inspect(path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string path = argv[2];
  if (command == "inspect" && argc == 3) return Inspect(path);
  if (command == "verify" && argc == 3) return Verify(path);
  if (command == "write") return Write(path, argc - 3, argv + 3);
  return Usage();
}
