// Figure 12 (Exp-3): precision and recall of the fixes produced by each
// prefix of the pipeline —
//   cRepair            (deterministic fixes only),
//   cRepair + eRepair  (deterministic + reliable),
//   Uni                (all three phases),
// on HOSP (12a-b) and DBLP (12c-d), dup% = 40, noi% in {2,4,6,8,10}.
// Expected shape: precision(cRepair) >= precision(+eRepair) >= precision(Uni),
// recall in the opposite order; deterministic precision near 1 and
// insensitive to noise.

#include <cstdio>

#include "bench_util.h"
#include "eval/metrics.h"
#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

namespace {

void RunSeries(const char* name,
               gen::Dataset (*generate)(const gen::GeneratorConfig&)) {
  std::printf("\n-- %s --\n", name);
  std::printf("%6s | %9s %9s | %9s %9s | %9s %9s\n", "noi%", "cRep P",
              "cRep R", "c+e P", "c+e R", "Uni P", "Uni R");
  for (int noi = 2; noi <= 10; noi += 2) {
    gen::GeneratorConfig config;
    config.num_tuples = 1000 * bench::Scale();
    config.master_size = 300 * bench::Scale();
    config.noise_rate = noi / 100.0;
    config.dup_rate = 0.4;
    config.asserted_rate = 0.4;
    config.seed = 300 + static_cast<uint64_t>(noi);
    gen::Dataset ds = generate(config);

    core::MatchEnvironment env(ds.rules, ds.master);

    core::CRepairOptions copts;
    copts.eta = 1.0;
    data::Relation after_c = ds.dirty.Clone();
    core::CRepair(&after_c, env, copts);
    auto c_pr = eval::RepairAccuracy(ds.dirty, after_c, ds.clean);

    core::ERepairOptions eopts;
    eopts.eta = 1.0;
    data::Relation after_e = after_c.Clone();
    core::ERepair(&after_e, env, eopts);
    auto e_pr = eval::RepairAccuracy(ds.dirty, after_e, ds.clean);

    data::Relation after_h = after_e.Clone();
    core::HRepair(&after_h, env, {});
    auto h_pr = eval::RepairAccuracy(ds.dirty, after_h, ds.clean);

    std::printf("%6d | %9.3f %9.3f | %9.3f %9.3f | %9.3f %9.3f\n", noi,
                c_pr.precision, c_pr.recall, e_pr.precision, e_pr.recall,
                h_pr.precision, h_pr.recall);
  }
}

}  // namespace

int main() {
  bench::Header("Figure 12: accuracy of deterministic and reliable fixes "
                "(Exp-3)",
                "Deterministic fixes have the highest precision (noise-"
                "insensitive) and lowest recall; Uni the reverse.");
  RunSeries("Fig 12(a,b) HOSP: precision / recall by phase",
            gen::GenerateHosp);
  RunSeries("Fig 12(c,d) DBLP: precision / recall by phase",
            gen::GenerateDblp);
  return 0;
}
