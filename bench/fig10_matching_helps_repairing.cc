// Figure 10 (Exp-1, "matching helps repairing"): repair F-measure of
//   Uni       — UniClean with CFDs + MDs (all three phases),
//   Uni(CFD)  — UniClean with CFDs only,
//   quaid     — the heuristic CFD-only repairing baseline,
// on HOSP (10a) and DBLP (10b), with dup% = 40 and noi% in {2,4,6,8,10}.

#include <cstdio>

#include "baselines/quaid.h"
#include "bench_util.h"
#include "eval/metrics.h"
#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

namespace {

void RunSeries(const char* figure, gen::Dataset (*generate)(
                                       const gen::GeneratorConfig&)) {
  std::printf("\n-- %s --\n", figure);
  std::printf("%8s %12s %12s %12s\n", "noi%", "Uni", "Uni(CFD)", "quaid");
  for (int noi = 2; noi <= 10; noi += 2) {
    gen::GeneratorConfig config;
    config.num_tuples = 1000 * bench::Scale();
    config.master_size = 300 * bench::Scale();
    config.noise_rate = noi / 100.0;
    config.dup_rate = 0.4;
    config.asserted_rate = 0.4;
    config.seed = 100 + static_cast<uint64_t>(noi);
    gen::Dataset ds = generate(config);

    core::UniCleanOptions options;
    options.eta = 1.0;  // §8's confidence threshold
    options.delta2 = 0.8;

    data::Relation uni = ds.dirty.Clone();
    core::UniClean(&uni, ds.master, ds.rules, options);
    double uni_f = eval::RepairAccuracy(ds.dirty, uni, ds.clean).F();

    // Uni(CFD): same pipeline, CFDs only.
    auto cfd_only = rules::RuleSet::Make(ds.rules.data_schema_ptr(),
                                         ds.rules.master_schema_ptr(),
                                         ds.rules.cfds(), {});
    data::Relation uni_cfd = ds.dirty.Clone();
    core::UniClean(&uni_cfd, ds.master, cfd_only.value(), options);
    double cfd_f = eval::RepairAccuracy(ds.dirty, uni_cfd, ds.clean).F();

    data::Relation quaid_out = ds.dirty.Clone();
    baselines::Quaid(&quaid_out, ds.rules);
    double quaid_f = eval::RepairAccuracy(ds.dirty, quaid_out, ds.clean).F();

    std::printf("%8d %12.3f %12.3f %12.3f\n", noi, uni_f, cfd_f, quaid_f);
  }
}

}  // namespace

int main() {
  bench::Header("Figure 10: matching helps repairing (Exp-1)",
                "Uni should dominate Uni(CFD), which dominates quaid; the "
                "gap widens with noise.");
  RunSeries("Fig 10(a) HOSP: F-measure of repairing", gen::GenerateHosp);
  RunSeries("Fig 10(b) DBLP: F-measure of repairing", gen::GenerateDblp);
  return 0;
}
