// Shared helpers for the benchmark harness. Every bench prints the same
// rows/series the paper's figures plot. Default sizes are scaled down so
// the whole suite runs in minutes; set UNICLEAN_BENCH_SCALE=<n> to multiply
// the data sizes toward paper scale.

#ifndef UNICLEAN_BENCH_BENCH_UTIL_H_
#define UNICLEAN_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace uniclean {
namespace bench {

/// Data-size multiplier from the environment (default 1).
inline int Scale() {
  const char* s = std::getenv("UNICLEAN_BENCH_SCALE");
  if (s == nullptr) return 1;
  int v = std::atoi(s);
  return v >= 1 ? v : 1;
}

/// Wall-clock seconds of a callable.
template <typename F>
double Seconds(F&& f) {
  auto start = std::chrono::steady_clock::now();
  f();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

inline void Header(const char* figure, const char* claim) {
  std::printf("==== %s ====\n", figure);
  std::printf("# %s\n", claim);
}

}  // namespace bench
}  // namespace uniclean

#endif  // UNICLEAN_BENCH_BENCH_UTIL_H_
