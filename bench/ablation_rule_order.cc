// Ablation (§6.2's design choice): eRepair applies rules in the dependency-
// graph order (SCC condensation, topological, out/in-degree ratio). This
// bench compares the number of passes to fixpoint and the fix quality
// against pessimal (reversed) rule orderings, by permuting the rule set fed
// to the engine.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "eval/metrics.h"
#include "gen/dataset.h"
#include "reasoning/dependency_graph.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

namespace {

/// Rebuilds the rule set with CFDs/MDs permuted by `order` (positions into
/// the normalized rule list).
rules::RuleSet Reorder(const rules::RuleSet& rs,
                       const std::vector<rules::RuleId>& order) {
  std::vector<rules::Cfd> cfds;
  std::vector<rules::Md> mds;
  for (rules::RuleId r : order) {
    if (rs.IsCfd(r)) {
      cfds.push_back(rs.cfd(r));
    } else {
      mds.push_back(rs.md(r));
    }
  }
  return rules::RuleSet::Make(rs.data_schema_ptr(), rs.master_schema_ptr(),
                              std::move(cfds), std::move(mds))
      .value();
}

}  // namespace

int main() {
  bench::Header("Ablation: dependency-graph rule order in eRepair (§6.2)",
                "The graph-derived order should need no more passes (and no "
                "worse F) than a reversed order.");
  std::printf("%8s %20s %20s\n", "dataset", "graph order",
              "reversed order");
  std::printf("%8s %9s %10s %9s %10s\n", "", "passes", "F", "passes", "F");
  for (int which = 0; which < 2; ++which) {
    gen::GeneratorConfig config;
    config.num_tuples = 1200 * bench::Scale();
    config.master_size = 300 * bench::Scale();
    config.noise_rate = 0.08;
    config.seed = 700;
    gen::Dataset ds =
        which == 0 ? gen::GenerateHosp(config) : gen::GenerateDblp(config);

    reasoning::DependencyGraph graph(ds.rules);
    std::vector<rules::RuleId> good = graph.ApplicationOrder();
    std::vector<rules::RuleId> bad(good.rbegin(), good.rend());

    auto run = [&](const std::vector<rules::RuleId>& order, int* passes,
                   double* f) {
      rules::RuleSet rs = Reorder(ds.rules, order);
      data::Relation d = ds.dirty.Clone();
      core::MatchEnvironment env(rs, ds.master);
      core::CRepairOptions copts;
      copts.eta = 1.0;
      core::CRepair(&d, env, copts);
      core::ERepairOptions eopts;
      eopts.eta = 1.0;
      auto stats = core::ERepair(&d, env, eopts);
      *passes = stats.passes;
      *f = eval::RepairAccuracy(ds.dirty, d, ds.clean).F();
    };

    int good_passes = 0, bad_passes = 0;
    double good_f = 0, bad_f = 0;
    run(good, &good_passes, &good_f);
    run(bad, &bad_passes, &bad_f);
    std::printf("%8s %9d %10.3f %9d %10.3f\n",
                which == 0 ? "HOSP" : "DBLP", good_passes, good_f,
                bad_passes, bad_f);
  }
  return 0;
}
