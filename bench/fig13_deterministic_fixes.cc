// Figure 13 (Exp-4): the percentage of errors receiving deterministic fixes
// as a function of
//   (a) the duplicate rate dup% in {20,...,100} at asr% = 40, and
//   (b) the asserted rate asr% in {0,...,80} at dup% = 40,
// on HOSP and DBLP. Expected shape: both curves increase — more master
// counterparts and more asserted cells both enable more deterministic fixes.

#include <cstdio>

#include "bench_util.h"
#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

namespace {

double DeterministicFixPercentage(gen::Dataset& ds) {
  int errors = ds.dirty.CellDiffCount(ds.clean);
  if (errors == 0) return 100.0;
  core::CRepairOptions copts;
  copts.eta = 1.0;
  core::MatchEnvironment env(ds.rules, ds.master);
  core::CRepairStats stats = core::CRepair(&ds.dirty, env, copts);
  return 100.0 * stats.deterministic_fixes / errors;
}

}  // namespace

int main() {
  bench::Header("Figure 13: impact of dup% and asr% on deterministic fixes "
                "(Exp-4)",
                "Deterministic-fix share grows with the duplicate rate and "
                "(strongly) with the asserted rate.");

  std::printf("\n-- Fig 13(a): deterministic fixes (%%) vs dup%% (asr%%=40) --\n");
  std::printf("%8s %10s %10s\n", "dup%", "HOSP", "DBLP");
  for (int dup = 20; dup <= 100; dup += 20) {
    gen::GeneratorConfig config;
    config.num_tuples = 1000 * bench::Scale();
    config.master_size = 300 * bench::Scale();
    config.noise_rate = 0.06;
    config.dup_rate = dup / 100.0;
    config.asserted_rate = 0.4;
    config.seed = 400;
    gen::Dataset hosp = gen::GenerateHosp(config);
    gen::Dataset dblp = gen::GenerateDblp(config);
    std::printf("%8d %10.1f %10.1f\n", dup, DeterministicFixPercentage(hosp),
                DeterministicFixPercentage(dblp));
  }

  std::printf("\n-- Fig 13(b): deterministic fixes (%%) vs asr%% (dup%%=40) --\n");
  std::printf("%8s %10s %10s\n", "asr%", "HOSP", "DBLP");
  for (int asr = 0; asr <= 80; asr += 20) {
    gen::GeneratorConfig config;
    config.num_tuples = 1000 * bench::Scale();
    config.master_size = 300 * bench::Scale();
    config.noise_rate = 0.06;
    config.dup_rate = 0.4;
    config.asserted_rate = asr / 100.0;
    config.seed = 500;
    gen::Dataset hosp = gen::GenerateHosp(config);
    gen::Dataset dblp = gen::GenerateDblp(config);
    std::printf("%8d %10.1f %10.1f\n", asr, DeterministicFixPercentage(hosp),
                DeterministicFixPercentage(dblp));
  }
  return 0;
}
