// Ablation (§5.2's claim): MD matching with the suffix-tree blocking index
// vs brute-force scanning of the master relation. The paper reports that
// without blocking, a 20K-tuple run took more than 5 hours while the full
// pipeline with blocking ran in minutes; here we reproduce the shape — the
// speedup grows linearly with |Dm|.

#include <cstdio>

#include "bench_util.h"
#include "core/md_matcher.h"
#include "gen/dataset.h"

using namespace uniclean;  // NOLINT

int main() {
  bench::Header("Ablation: suffix-tree blocking (§5.2)",
                "Match time per probe should stay near-flat with blocking "
                "and grow linearly without.");
  std::printf("%8s %16s %16s %10s\n", "|Dm|", "blocking (ms)",
              "brute force (ms)", "speedup");
  for (int dm_size : {250, 500, 1000, 2000, 4000}) {
    gen::GeneratorConfig config;
    config.num_tuples = 300;
    config.master_size = dm_size * bench::Scale();
    config.seed = 600 + static_cast<uint64_t>(dm_size);
    gen::Dataset ds = gen::GenerateHosp(config);
    // md3 is the similarity-only MD (suffix-tree path).
    const rules::Md& md = ds.rules.mds().back();

    core::MdMatcherOptions with;
    core::MdMatcherOptions without;
    without.use_blocking = false;
    // Compare per-probe candidate-generation cost; the memo caches would
    // otherwise turn repeated (duplicated) probes into hash hits.
    with.use_memos = false;
    without.use_memos = false;

    // The index is built once per cleaning run; time the queries, which is
    // where the pipeline spends its MD effort (every tuple, every pass).
    core::MdMatcher fast(md, ds.master, with);
    core::MdMatcher brute(md, ds.master, without);
    double t_with = bench::Seconds([&] {
      int found = 0;
      for (data::TupleId t = 0; t < ds.dirty.size(); ++t) {
        found += fast.FindMatches(ds.dirty.tuple(t)).empty() ? 0 : 1;
      }
      if (found < 0) std::printf("impossible\n");
    });
    double t_without = bench::Seconds([&] {
      int found = 0;
      for (data::TupleId t = 0; t < ds.dirty.size(); ++t) {
        found += brute.FindMatches(ds.dirty.tuple(t)).empty() ? 0 : 1;
      }
      if (found < 0) std::printf("impossible\n");
    });
    std::printf("%8d %16.1f %16.1f %9.1fx\n", config.master_size,
                t_with * 1e3, t_without * 1e3, t_without / t_with);
  }
  return 0;
}
