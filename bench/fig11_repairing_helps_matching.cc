// Figure 11 (Exp-2, "repairing helps matching"): match accuracy of
//   Uni       — clean with UniClean, then match via the MDs,
//   SortN(MD) — sorted-neighborhood matching on the dirty data,
// on HOSP (11a) and DBLP (11b), dup% = 40, noi% in {2,4,6,8,10}. The paper
// plots "matched attributes (%)"; we report the match F-measure (x100),
// which carries the same signal.

#include <cstdio>

#include "baselines/sortn.h"
#include "bench_util.h"
#include "eval/metrics.h"
#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

namespace {

void RunSeries(const char* figure, gen::Dataset (*generate)(
                                       const gen::GeneratorConfig&)) {
  std::printf("\n-- %s --\n", figure);
  std::printf("%8s %12s %12s\n", "noi%", "Uni", "SortN(MD)");
  for (int noi = 2; noi <= 10; noi += 2) {
    gen::GeneratorConfig config;
    config.num_tuples = 1000 * bench::Scale();
    config.master_size = 300 * bench::Scale();
    config.noise_rate = noi / 100.0;
    config.dup_rate = 0.4;
    config.asserted_rate = 0.4;
    // The paper's matching attributes are systematically dirty (that is
    // why matching needs repairing); concentrate noise on the MD premise
    // attributes accordingly.
    config.md_premise_noise_boost = 4.0;
    config.seed = 200 + static_cast<uint64_t>(noi);
    gen::Dataset ds = generate(config);

    baselines::SortNOptions sortn_opts;
    sortn_opts.window = 3;
    auto sortn = baselines::SortedNeighborhoodMatch(
        ds.dirty, ds.master, ds.rules.mds(), sortn_opts);
    double sortn_f =
        eval::MatchAccuracy(sortn, ds.true_matches).F() * 100.0;

    // Uni's matches are the (t, s) pairs whose MD premise held while the
    // cleaning rules were applied — matching and repairing interleaved.
    core::UniCleanOptions options;
    options.eta = 1.0;
    data::Relation cleaned = ds.dirty.Clone();
    auto report = core::UniClean(&cleaned, ds.master, ds.rules, options);
    double uni_f =
        eval::MatchAccuracy(report.AllMatches(), ds.true_matches).F() * 100.0;

    std::printf("%8d %12.1f %12.1f\n", noi, uni_f, sortn_f);
  }
}

}  // namespace

int main() {
  bench::Header("Figure 11: repairing helps matching (Exp-2)",
                "Uni should dominate SortN(MD) and degrade more slowly "
                "with noise.");
  RunSeries("Fig 11(a) HOSP: matched (%)", gen::GenerateHosp);
  RunSeries("Fig 11(b) DBLP: matched (%)", gen::GenerateDblp);
  return 0;
}
