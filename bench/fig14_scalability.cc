// Figure 14 (Exp-5): scalability of the pipeline (google-benchmark).
//   14(a,c,e)  time vs |D|   on HOSP / DBLP / TPCH (|Dm| fixed),
//   14(b,d,f)  time vs |Dm|  on HOSP / DBLP / TPCH (|D| fixed),
//   14(g)      time vs |Σ|   on TPCH,
//   14(h)      time vs |Γ|   on TPCH,
// each reporting the three cumulative stages cRepair, cRepair+eRepair and
// the full pipeline (Uni), as the paper's curves do. Expected shape: near-
// linear growth in |D| and |Dm| (suffix-tree blocking), linear in |Σ|, |Γ|.

#include <benchmark/benchmark.h>

#include "gen/dataset.h"
#include "uniclean/uniclean.h"

using namespace uniclean;  // NOLINT

namespace {

enum Stage { kCRepair = 0, kCPlusE = 1, kFull = 2 };

gen::Dataset Generate(int dataset, const gen::GeneratorConfig& config) {
  switch (dataset) {
    case 0:
      return gen::GenerateHosp(config);
    case 1:
      return gen::GenerateDblp(config);
    default:
      return gen::GenerateTpch(config);
  }
}

void RunStages(benchmark::State& state, gen::Dataset& ds, Stage stage) {
  core::UniCleanOptions options;
  options.eta = 1.0;
  options.run_erepair = stage >= kCPlusE;
  options.run_hrepair = stage >= kFull;
  for (auto _ : state) {
    state.PauseTiming();
    data::Relation d = ds.dirty.Clone();
    state.ResumeTiming();
    auto report = core::UniClean(&d, ds.master, ds.rules, options);
    benchmark::DoNotOptimize(report.total_fixes());
  }
  state.SetItemsProcessed(state.iterations() * ds.dirty.size());
}

// 14(a,c,e): vary |D|, fixed |Dm|.
void BM_VaryD(benchmark::State& state) {
  gen::GeneratorConfig config;
  config.num_tuples = static_cast<int>(state.range(1));
  config.master_size = 500;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.seed = 1;
  gen::Dataset ds = Generate(static_cast<int>(state.range(0)), config);
  RunStages(state, ds, static_cast<Stage>(state.range(2)));
}

// 14(b,d,f): vary |Dm|, fixed |D|.
void BM_VaryDm(benchmark::State& state) {
  gen::GeneratorConfig config;
  config.num_tuples = 1000;
  config.master_size = static_cast<int>(state.range(1));
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.seed = 2;
  gen::Dataset ds = Generate(static_cast<int>(state.range(0)), config);
  RunStages(state, ds, static_cast<Stage>(state.range(2)));
}

// 14(g): vary |Σ| on TPCH (55..275 CFDs as in the paper).
void BM_VarySigma(benchmark::State& state) {
  gen::GeneratorConfig config;
  config.num_tuples = 800;
  config.master_size = 300;
  config.extra_cfds = static_cast<int>(state.range(0)) - 55;
  config.seed = 3;
  gen::Dataset ds = gen::GenerateTpch(config);
  RunStages(state, ds, kFull);
}

// 14(h): vary |Γ| on TPCH (10..50 MDs as in the paper).
void BM_VaryGamma(benchmark::State& state) {
  gen::GeneratorConfig config;
  config.num_tuples = 800;
  config.master_size = 300;
  config.extra_mds = static_cast<int>(state.range(0)) - 10;
  config.seed = 4;
  gen::Dataset ds = gen::GenerateTpch(config);
  RunStages(state, ds, kFull);
}

void SizeArgs(benchmark::internal::Benchmark* b) {
  for (int dataset : {0, 1, 2}) {
    for (int size : {250, 500, 1000, 2000}) {
      for (int stage : {kCRepair, kCPlusE, kFull}) {
        b->Args({dataset, size, stage});
      }
    }
  }
}

}  // namespace

// Iterations are pinned: a full pipeline run is seconds at the larger
// sizes, and the figure needs the growth shape, not nanosecond precision.
BENCHMARK(BM_VaryD)
    ->Apply(SizeArgs)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VaryDm)
    ->Apply(SizeArgs)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VarySigma)
    ->Arg(55)
    ->Arg(110)
    ->Arg(165)
    ->Arg(220)
    ->Arg(275)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VaryGamma)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Arg(40)
    ->Arg(50)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
