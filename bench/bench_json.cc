// bench_json: the machine-readable perf harness. Executes the fig14-style
// pipeline points (full Uni plus the cumulative cRepair / cRepair+eRepair
// stages on HOSP, full Uni on DBLP and TPC-H), the cold-vs-warm session
// points (MatchEnvironment index build reported separately from repair
// time, then a cold and a warm Session::Run over identical dirty copies),
// the concurrent-session points (one shared CleanEngine, a batch of
// relations through Engine::RunBatch at 1/2/4 threads, journals asserted
// byte-identical to the serial arm) and the §5.2 blocking ablation, and
// writes every measurement to a JSON file so each PR records a comparable
// perf trajectory (BENCH_pipeline.json at the repo root).
//
// Per point it records wall time, items/sec, peak RSS and the number/volume
// of heap allocations (via a counting operator new hook local to this
// binary).
//
// Usage:
//   bench_json [--out FILE] [--quick] [--smoke SECONDS]
//     --out FILE       where to write the JSON (default BENCH_pipeline.json)
//     --quick          CI sizes only (caps |D| at 1000, skips the 4000-tuple
//                      point and the large ablation sweep)
//     --smoke SECONDS  exit non-zero if the 1k-tuple HOSP full-pipeline
//                      point exceeds this wall-clock budget (perf smoke)

#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/md_matcher.h"
#include "data/string_pool.h"
#include "gen/dataset.h"
#include "snapshot/snapshot.h"
#include "uniclean/uniclean.h"

#ifdef UNICLEAN_HAVE_SERVE
#include "cluster/cluster_client.h"
#include "cluster/membership.h"
#include "cluster/ring.h"
#include "serve/client.h"
#include "serve/server.h"
#endif

// ---------------------------------------------------------------------------
// Allocation counting hook. Only linked into this binary; counts every
// global operator new so a point's `allocs` / `alloc_bytes` expose how much
// the hot paths churn the heap.
// ---------------------------------------------------------------------------

namespace {
std::atomic<unsigned long long> g_alloc_count{0};
std::atomic<unsigned long long> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace uniclean;  // NOLINT

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long PeakRssKb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return -1;
  return ru.ru_maxrss;  // Linux: kilobytes
}

/// Current resident set size from /proc/self/statm, in KB. Unlike the
/// getrusage high-water mark (which is process-cumulative and never
/// decreases), this is a genuine per-point figure.
long CurrentRssKb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return -1;
  long pages_total = 0;
  long pages_resident = 0;
  int n = std::fscanf(f, "%ld %ld", &pages_total, &pages_resident);
  std::fclose(f);
  if (n != 2) return -1;
  return pages_resident * (sysconf(_SC_PAGESIZE) / 1024);
}

struct Measurement {
  std::string name;
  std::string dataset;
  int num_tuples = 0;
  int master_size = 0;
  std::string phases;  // "c", "ce", "ceh", or "probe"/"scan" for ablation
  double wall_s = 0.0;
  double items_per_sec = 0.0;
  long rss_kb = 0;       // resident set right after the point (per-point)
  long peak_rss_kb = 0;  // process high-water mark (cumulative)
  unsigned long long allocs = 0;
  unsigned long long alloc_bytes = 0;
  long long extra = -1;  // total_fixes for pipeline points, matches for
                         // ablation points; -1 when not applicable
  // Overload-point extras (emitted only when >= 0): client-observed
  // end-to-end request latency including retry backoff, and the fraction of
  // admission attempts the daemon refused.
  double p50_ms = -1.0;
  double p99_ms = -1.0;
  double reject_rate = -1.0;
};

std::vector<Measurement>& Results() {
  static std::vector<Measurement> r;
  return r;
}

/// Runs `fn` once, recording wall time, allocation deltas and peak RSS.
template <typename F>
Measurement Measure(const std::string& name, const std::string& dataset,
                    int num_tuples, int master_size,
                    const std::string& phases, int items, F&& fn) {
  Measurement m;
  m.name = name;
  m.dataset = dataset;
  m.num_tuples = num_tuples;
  m.master_size = master_size;
  m.phases = phases;
  unsigned long long a0 = g_alloc_count.load(std::memory_order_relaxed);
  unsigned long long b0 = g_alloc_bytes.load(std::memory_order_relaxed);
  double t0 = Now();
  m.extra = fn();
  m.wall_s = Now() - t0;
  m.allocs = g_alloc_count.load(std::memory_order_relaxed) - a0;
  m.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed) - b0;
  m.rss_kb = CurrentRssKb();
  m.peak_rss_kb = PeakRssKb();
  m.items_per_sec =
      m.wall_s > 0 ? static_cast<double>(items) / m.wall_s : 0.0;
  std::printf("%-34s %10.3fs %12.0f items/s %10lluk allocs %8ld KB rss\n",
              m.name.c_str(), m.wall_s, m.items_per_sec, m.allocs / 1000,
              m.rss_kb);
  std::fflush(stdout);
  Results().push_back(m);
  return m;
}

gen::Dataset Generate(const std::string& dataset,
                      const gen::GeneratorConfig& config) {
  if (dataset == "hosp") return gen::GenerateHosp(config);
  if (dataset == "dblp") return gen::GenerateDblp(config);
  return gen::GenerateTpch(config);
}

/// One fig14-style pipeline point: |D| data tuples, full or partial stage
/// set ("c" = cRepair, "ce" = +eRepair, "ceh" = full Uni).
Measurement PipelinePoint(const std::string& dataset, int num_tuples,
                          int master_size, const std::string& phases) {
  gen::GeneratorConfig config;
  config.num_tuples = num_tuples;
  config.master_size = master_size;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.seed = 1;
  gen::Dataset ds = Generate(dataset, config);

  core::UniCleanOptions options;
  options.eta = 1.0;
  options.run_erepair = phases.find('e') != std::string::npos;
  options.run_hrepair = phases.find('h') != std::string::npos;

  data::Relation d = ds.dirty.Clone();
  std::string name = "fig14_" + dataset + "_" + phases + "_n" +
                     std::to_string(num_tuples);
  return Measure(name, dataset, num_tuples, master_size, phases, num_tuples,
                 [&]() -> long long {
                   auto report = core::UniClean(&d, ds.master, ds.rules,
                                                options);
                   return report.total_fixes();
                 });
}

/// Builds the shared engine the session/concurrency points run against.
std::shared_ptr<CleanEngine> BuildEngineFor(const gen::Dataset& ds) {
  auto engine = EngineBuilder()
                    .WithDataSchema(ds.dirty.schema_ptr())
                    .WithMaster(&ds.master)
                    .WithRules(&ds.rules)
                    .WithEta(1.0)
                    .BuildEngine();
  if (!engine.ok()) {
    std::fprintf(stderr, "bench_json: engine build failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(engine).value();
}

/// One cold-vs-warm session triple: a single CleanEngine (one shared
/// MatchEnvironment) cleans two identical dirty copies in successive
/// sessions. The "build" point is Warmup() — pure MD index construction;
/// "cold" is the first run, which fills the similarity / blocking / match
/// memos; "warm" is the second run, where every probe hits the warm memos —
/// the serving scenario's steady state.
void SessionPoint(const std::string& dataset, int num_tuples,
                  int master_size) {
  gen::GeneratorConfig config;
  config.num_tuples = num_tuples;
  config.master_size = master_size;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.seed = 1;
  gen::Dataset ds = Generate(dataset, config);
  std::shared_ptr<CleanEngine> engine = BuildEngineFor(ds);

  const std::string suffix = "_n" + std::to_string(num_tuples);
  // The build point indexes the *master* relation, so its rate is per
  // master tuple (the dirty data plays no part in Warmup).
  Measure("session_" + dataset + "_build" + suffix, dataset, num_tuples,
          master_size, "build", master_size, [&]() -> long long {
            engine->Warmup();
            return 0;
          });
  data::Relation cold_copy = ds.dirty.Clone();
  data::Relation warm_copy = ds.dirty.Clone();
  for (const char* stage : {"cold", "warm"}) {
    data::Relation* copy =
        std::strcmp(stage, "cold") == 0 ? &cold_copy : &warm_copy;
    Measure("session_" + dataset + "_" + stage + suffix, dataset, num_tuples,
            master_size, stage, num_tuples, [&]() -> long long {
              Session session = engine->NewSession();
              auto result = session.Run(copy);
              if (!result.ok()) {
                std::fprintf(stderr, "bench_json: session run failed: %s\n",
                             result.status().ToString().c_str());
                std::exit(2);
              }
              return result->total_fixes();
            });
  }
}

/// Concurrent-session throughput: one shared warm engine, a batch of
/// kRelations identical dirty copies, Engine::RunBatch at 1 / 2 / 4
/// threads. The memos are pre-warmed by a throwaway run so every arm
/// measures the steady serving state rather than crediting later arms with
/// the earlier arms' cache fills; the t1 arm is the serial reference and
/// every other arm's journals must be byte-identical to it.
void ConcurrentPoint(const std::string& dataset, int num_tuples,
                     int master_size) {
  constexpr int kRelations = 12;  // divisible by every thread count
  gen::GeneratorConfig config;
  config.num_tuples = num_tuples;
  config.master_size = master_size;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.seed = 1;
  gen::Dataset ds = Generate(dataset, config);
  std::shared_ptr<CleanEngine> engine = BuildEngineFor(ds);
  engine->Warmup();
  {
    data::Relation scratch = ds.dirty.Clone();
    Session session = engine->NewSession();
    auto warm = session.Run(&scratch);
    if (!warm.ok()) {
      std::fprintf(stderr, "bench_json: memo pre-warm failed: %s\n",
                   warm.status().ToString().c_str());
      std::exit(2);
    }
  }

  std::vector<std::string> serial_journals;  // t1 reference, CSV-serialized
  double t1_wall = 0.0;
  for (int threads : {1, 2, 4}) {
    std::vector<data::Relation> storage;
    storage.reserve(kRelations);
    std::vector<data::Relation*> batch;
    for (int i = 0; i < kRelations; ++i) {
      storage.push_back(ds.dirty.Clone());
      batch.push_back(&storage.back());
    }
    const std::string name = "concurrent_" + dataset + "_n" +
                             std::to_string(num_tuples) + "_t" +
                             std::to_string(threads);
    std::vector<Result<CleanResult>> results;
    Measurement m = Measure(
        name, dataset, num_tuples, master_size, "t" + std::to_string(threads),
        kRelations * num_tuples, [&]() -> long long {
              results = engine->RunBatch(batch, threads);
              long long fixes = 0;
              for (const auto& r : results) {
                if (!r.ok()) {
                  std::fprintf(stderr, "bench_json: %s failed: %s\n",
                               name.c_str(), r.status().ToString().c_str());
                  std::exit(2);
                }
                fixes += r->total_fixes();
              }
              return fixes;
            });
    // Byte-identical journals across arms: serialize each relation's
    // journal and pin the concurrent arms to the serial reference.
    for (int i = 0; i < kRelations; ++i) {
      std::ostringstream csv;
      Status s = results[static_cast<size_t>(i)]->journal.WriteCsv(csv);
      if (!s.ok()) {
        std::fprintf(stderr, "bench_json: journal serialize failed\n");
        std::exit(2);
      }
      if (threads == 1) {
        serial_journals.push_back(csv.str());
      } else if (csv.str() != serial_journals[static_cast<size_t>(i)]) {
        std::fprintf(stderr,
                     "bench_json: %s journal %d differs from the serial "
                     "reference — concurrent runs are not deterministic\n",
                     name.c_str(), i);
        std::exit(2);
      }
    }
    if (threads == 1) {
      t1_wall = m.wall_s;
    } else if (t1_wall > 0.0) {
      const double speedup = t1_wall / m.wall_s;
      std::printf("    %s speedup over t1: %.2fx\n", name.c_str(), speedup);
      // Scaling only exists where cores do; on a multi-core box a t4 arm
      // that fails to clear 1.5x means RunBatch serialized somewhere
      // (coarse lock, contended shard) — flag it loudly so the CI bench
      // log catches the regression even though the run still succeeds.
      const unsigned cores = std::thread::hardware_concurrency();
      if (threads == 4 && cores >= 4 && speedup < 1.5) {
        std::fprintf(stderr,
                     "bench_json: WARNING: %s is only %.2fx over t1 on a "
                     "%u-core machine — concurrent sessions are not "
                     "scaling\n",
                     name.c_str(), speedup, cores);
      }
    }
  }
}

/// Incremental cleaning: a tracked session batch-cleans all but k tuples
/// (unmeasured setup), then one ApplyDelta folds the k held-out tuples in.
/// The reference arm is a full memo-warm Session::Run over the complete
/// relation — what a caller without ApplyDelta would pay per edit batch.
/// The k=1 point is the acceptance criterion: single-tuple maintenance must
/// beat the full warm re-run by an order of magnitude.
void DeltaPoint(const std::string& dataset, int num_tuples, int master_size) {
  gen::GeneratorConfig config;
  config.num_tuples = num_tuples;
  config.master_size = master_size;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.seed = 1;
  gen::Dataset ds = Generate(dataset, config);
  std::shared_ptr<CleanEngine> engine = BuildEngineFor(ds);
  engine->Warmup();
  {
    // Pre-warm the memos so both arms measure the steady serving state.
    data::Relation scratch = ds.dirty.Clone();
    Session session = engine->NewSession();
    auto warm = session.Run(&scratch);
    if (!warm.ok()) {
      std::fprintf(stderr, "bench_json: delta pre-warm failed: %s\n",
                   warm.status().ToString().c_str());
      std::exit(2);
    }
  }

  const std::string suffix = "_n" + std::to_string(num_tuples);
  data::Relation full = ds.dirty.Clone();
  Measure("delta_" + dataset + suffix + "_full_rerun", dataset, num_tuples,
          master_size, "warm", num_tuples, [&]() -> long long {
            Session session = engine->NewSession();
            auto result = session.Run(&full);
            if (!result.ok()) {
              std::fprintf(stderr, "bench_json: full re-run failed: %s\n",
                           result.status().ToString().c_str());
              std::exit(2);
            }
            return result->total_fixes();
          });

  for (int k : {1, 16, 64}) {
    data::Relation initial(ds.dirty.schema_ptr());
    for (data::TupleId t = 0; t < ds.dirty.size() - k; ++t) {
      initial.AddTuple(ds.dirty.tuple(t));
    }
    Session session = engine->NewTrackedSession();
    auto batch = session.Run(&initial);  // unmeasured: the standing state
    if (!batch.ok()) {
      std::fprintf(stderr, "bench_json: tracked batch run failed: %s\n",
                   batch.status().ToString().c_str());
      std::exit(2);
    }
    Delta delta;
    for (int i = 0; i < k; ++i) {
      delta.inserts.push_back(ds.dirty.tuple(ds.dirty.size() - k + i));
    }
    // `result` reports the closure size (tuples re-cleaned), the
    // incremental cost driver.
    Measure("delta_" + dataset + suffix + "_k" + std::to_string(k), dataset,
            num_tuples, master_size, "delta", k, [&]() -> long long {
              auto dr = session.ApplyDelta(delta);
              if (!dr.ok()) {
                std::fprintf(stderr, "bench_json: ApplyDelta failed: %s\n",
                             dr.status().ToString().c_str());
                std::exit(2);
              }
              return dr->affected;
            });
  }
}

/// Snapshot warm starts (src/snapshot/): how long until a fresh process has
/// a warm engine, cold vs from a snapshot file. Every iteration runs under
/// a fresh ScopedStringPool so it replays the full intern sequence a
/// restarted daemon would; the minimum over iterations is recorded — the
/// honest startup floor on jittery single-core CI boxes (Measure()'s
/// single-shot wall time would compare noise, not paths). The master is
/// sized up: index build scales with |Dm|, and snapshots exist for masters
/// big enough that rebuilding hurts.
void SnapshotPoint(const std::string& dataset, int num_tuples,
                   int master_size) {
  const std::string path = "/tmp/uniclean_bench_" + dataset + ".ucsnap";
  const std::string base =
      "snapshot_" + dataset + "_n" + std::to_string(num_tuples);
  gen::GeneratorConfig config;
  config.num_tuples = num_tuples;
  config.master_size = master_size;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.seed = 1;

  auto record = [&](const std::string& name, const std::string& phase,
                    double wall_s, long long extra) {
    Measurement m;
    m.name = name;
    m.dataset = dataset;
    m.num_tuples = num_tuples;
    m.master_size = master_size;
    m.phases = phase;
    m.wall_s = wall_s;
    m.items_per_sec = wall_s > 0 ? 1.0 / wall_s : 0.0;
    m.rss_kb = CurrentRssKb();
    m.peak_rss_kb = PeakRssKb();
    m.extra = extra;
    std::printf("%-34s %10.3fs %12.0f items/s %10lluk allocs %8ld KB rss\n",
                m.name.c_str(), m.wall_s, m.items_per_sec, 0ull, m.rss_kb);
    std::fflush(stdout);
    Results().push_back(m);
  };

  // Write cost: one warm engine, min-of-3 WriteSnapshot (extra = bytes).
  double write_s = 1e100;
  long long file_bytes = 0;
  {
    data::ScopedStringPool scoped;
    gen::Dataset ds = Generate(dataset, config);
    auto engine = BuildEngineFor(ds);
    engine->Warmup();
    for (int i = 0; i < 3; ++i) {
      const double t0 = Now();
      Status written = snapshot::WriteSnapshot(*engine, path);
      if (!written.ok()) {
        std::fprintf(stderr, "bench_json: snapshot write failed: %s\n",
                     written.ToString().c_str());
        std::exit(2);
      }
      write_s = std::min(write_s, Now() - t0);
    }
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    file_bytes = static_cast<long long>(in.tellg());
  }
  record(base + "_write", "write", write_s, file_bytes);

  // Cold start: BuildEngine + Warmup — what a daemon pays without a
  // snapshot. Dataset generation happens inside the scope but outside the
  // timed region (a real process reads files; neither path is the index
  // build this point isolates).
  double cold_s = 1e100;
  for (int i = 0; i < 3; ++i) {
    data::ScopedStringPool scoped;
    gen::Dataset ds = Generate(dataset, config);
    const double t0 = Now();
    auto engine = BuildEngineFor(ds);
    engine->Warmup();
    cold_s = std::min(cold_s, Now() - t0);
  }
  record("serve_" + dataset + "_cold_start", "cold", cold_s, -1);

  // Warm start: FromSnapshot, same configuration (the load verifies the
  // pool prefix, fingerprint and matcher options, restores every index and
  // hands back a serving-ready engine).
  double warm_s = 1e100;
  for (int i = 0; i < 7; ++i) {
    data::ScopedStringPool scoped;
    gen::Dataset ds = Generate(dataset, config);
    const double t0 = Now();
    auto engine = EngineBuilder()
                      .WithDataSchema(ds.dirty.schema_ptr())
                      .WithMaster(&ds.master)
                      .WithRules(&ds.rules)
                      .WithEta(1.0)
                      .FromSnapshot(path);
    if (!engine.ok()) {
      std::fprintf(stderr, "bench_json: snapshot load failed: %s\n",
                   engine.status().ToString().c_str());
      std::exit(2);
    }
    Session session = (*engine)->NewSession();
    warm_s = std::min(warm_s, Now() - t0);
  }
  record(base + "_load", "load", warm_s, -1);
  record("serve_" + dataset + "_snapshot_start", "warm", warm_s, -1);
  std::printf("%-34s %10.1fx cold/warm startup\n",
              ("snapshot_" + dataset + "_speedup").c_str(), cold_s / warm_s);
  std::remove(path.c_str());
}

#ifdef UNICLEAN_HAVE_SERVE
/// Full wire round-trips through an in-process unicleand: the generated
/// sample goes to disk (the daemon builds engines from files), a Daemon
/// starts on an ephemeral port, and one Client measures a complete CLEAN
/// round trip — CSV out, journal streamed back — twice. "cold" is the
/// first request (it fills the engine's match memos); "warm" is the second,
/// the steady serving state. The gap between a serve point and its
/// session_* sibling is the protocol + framing + threading overhead.
void ServePoint(const std::string& dataset, int num_tuples, int master_size) {
  gen::GeneratorConfig config;
  config.num_tuples = num_tuples;
  config.master_size = master_size;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.seed = 1;
  gen::Dataset ds = Generate(dataset, config);

  char dir_template[] = "/tmp/uniclean_bench_serve.XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "bench_json: mkdtemp failed\n");
    std::exit(2);
  }
  const std::string dir = dir_template;
  if (!data::WriteCsvFile(dir + "/dirty.csv", ds.dirty).ok() ||
      !data::WriteCsvFile(dir + "/master.csv", ds.master).ok()) {
    std::fprintf(stderr, "bench_json: cannot write the serve dataset\n");
    std::exit(2);
  }
  {
    std::ofstream rules(dir + "/rules.txt");
    rules << ds.rule_text;
  }
  std::ostringstream dirty_csv;
  if (!data::WriteCsv(dirty_csv, ds.dirty).ok()) std::exit(2);

  serve::RulesetConfig ruleset;
  ruleset.name = dataset;
  ruleset.master_csv = dir + "/master.csv";
  ruleset.rules_file = dir + "/rules.txt";
  ruleset.schema_csv = dir + "/dirty.csv";
  ruleset.eta = 1.0;
  serve::DaemonOptions options;
  options.port = 0;
  options.n_workers = 2;
  serve::Daemon daemon(options, {ruleset});
  Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_json: daemon start failed: %s\n",
                 started.ToString().c_str());
    std::exit(2);
  }
  auto connected = serve::Client::Connect("127.0.0.1", daemon.port());
  if (!connected.ok()) {
    std::fprintf(stderr, "bench_json: connect failed: %s\n",
                 connected.status().ToString().c_str());
    std::exit(2);
  }
  serve::Client client = std::move(connected).value();

  const std::string prefix =
      "serve_" + dataset + "_n" + std::to_string(num_tuples) + "_";
  for (const char* stage : {"cold", "warm"}) {
    Measure(prefix + stage, dataset, num_tuples, master_size, stage,
            num_tuples, [&]() -> long long {
              serve::CleanRequest request;
              request.data_csv = dirty_csv.str();
              auto reply = client.Clean(request);
              if (!reply.ok()) {
                std::fprintf(stderr, "bench_json: wire clean failed: %s\n",
                             reply.status().ToString().c_str());
                std::exit(2);
              }
              return reply->total_fixes;
            });
  }
  client.Close();
  daemon.Shutdown();
}

/// Overload point: a daemon sized for 4 concurrent CLEANs (2 workers + 2
/// queue slots) takes 8 concurrent retrying clients — 2x capacity. The
/// excess is refused at admission with kUnavailable + retry-after and the
/// clients' capped exponential backoff carries every request to success;
/// the point records client-observed p50/p99 end-to-end latency (backoff
/// included) and the daemon's admission rejection rate.
void ServeOverloadPoint(const std::string& dataset, int num_tuples,
                        int master_size) {
  gen::GeneratorConfig config;
  config.num_tuples = num_tuples;
  config.master_size = master_size;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.seed = 1;
  gen::Dataset ds = Generate(dataset, config);

  char dir_template[] = "/tmp/uniclean_bench_overload.XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "bench_json: mkdtemp failed\n");
    std::exit(2);
  }
  const std::string dir = dir_template;
  if (!data::WriteCsvFile(dir + "/dirty.csv", ds.dirty).ok() ||
      !data::WriteCsvFile(dir + "/master.csv", ds.master).ok()) {
    std::fprintf(stderr, "bench_json: cannot write the overload dataset\n");
    std::exit(2);
  }
  {
    std::ofstream rules(dir + "/rules.txt");
    rules << ds.rule_text;
  }
  std::ostringstream dirty_csv;
  if (!data::WriteCsv(dirty_csv, ds.dirty).ok()) std::exit(2);

  serve::RulesetConfig ruleset;
  ruleset.name = dataset;
  ruleset.master_csv = dir + "/master.csv";
  ruleset.rules_file = dir + "/rules.txt";
  ruleset.schema_csv = dir + "/dirty.csv";
  ruleset.eta = 1.0;
  serve::DaemonOptions options;
  options.port = 0;
  options.n_workers = 2;
  options.max_queue = 2;
  serve::Daemon daemon(options, {ruleset});
  Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_json: overload daemon start failed: %s\n",
                 started.ToString().c_str());
    std::exit(2);
  }
  {
    // Pre-warm the engine memos so the measured phase is the serving
    // steady state, not the first request's cache fill.
    auto warm = serve::Client::Connect("127.0.0.1", daemon.port());
    if (!warm.ok()) std::exit(2);
    serve::CleanRequest request;
    request.data_csv = dirty_csv.str();
    if (!warm->Clean(request).ok()) {
      std::fprintf(stderr, "bench_json: overload pre-warm failed\n");
      std::exit(2);
    }
  }

  constexpr int kClients = 8;            // 2x the admission capacity
  constexpr int kRequestsPerClient = 4;
  std::vector<double> latencies_ms;      // joined before reading
  std::mutex latencies_mu;
  const std::string name =
      "serve_" + dataset + "_overload_n" + std::to_string(num_tuples);
  Measure(name, dataset, num_tuples, master_size, "overload",
          kClients * kRequestsPerClient * num_tuples, [&]() -> long long {
            std::atomic<long long> fixes{0};
            std::vector<std::thread> threads;
            for (int i = 0; i < kClients; ++i) {
              threads.emplace_back([&, i] {
                auto connected =
                    serve::Client::Connect("127.0.0.1", daemon.port());
                if (!connected.ok()) std::exit(2);
                serve::Client client = std::move(connected).value();
                serve::RetryPolicy policy;
                policy.max_retries = 200;
                policy.base_backoff_ms = 5;
                policy.max_backoff_ms = 100;
                policy.jitter_seed = static_cast<uint64_t>(i + 1);
                client.set_retry_policy(policy);
                std::vector<double> mine;
                for (int r = 0; r < kRequestsPerClient; ++r) {
                  serve::CleanRequest request;
                  request.data_csv = dirty_csv.str();
                  const double t0 = Now();
                  auto reply = client.Clean(request);
                  if (!reply.ok()) {
                    std::fprintf(stderr,
                                 "bench_json: overloaded clean failed: %s\n",
                                 reply.status().ToString().c_str());
                    std::exit(2);
                  }
                  mine.push_back((Now() - t0) * 1000.0);
                  fixes.fetch_add(reply->total_fixes);
                }
                std::lock_guard<std::mutex> lock(latencies_mu);
                latencies_ms.insert(latencies_ms.end(), mine.begin(),
                                    mine.end());
              });
            }
            for (std::thread& t : threads) t.join();
            return fixes.load();
          });

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const size_t n = latencies_ms.size();
  Measurement& m = Results().back();
  m.p50_ms = latencies_ms[n / 2];
  m.p99_ms = latencies_ms[(n * 99) / 100 < n ? (n * 99) / 100 : n - 1];
  const double rejected = static_cast<double>(daemon.requests_rejected());
  const double attempts =
      rejected + static_cast<double>(kClients * kRequestsPerClient);
  m.reject_rate = attempts > 0 ? rejected / attempts : 0.0;
  std::printf(
      "    %s: p50 %.1f ms, p99 %.1f ms, reject rate %.2f "
      "(%llu refusals)\n",
      name.c_str(), m.p50_ms, m.p99_ms, m.reject_rate,
      static_cast<unsigned long long>(daemon.requests_rejected()));
  daemon.Shutdown();
}

/// Cluster points (src/cluster): a 2-replica R=2 fleet over unix sockets
/// sharing a snapshot dir.
///
///  * cluster_<ds>_route_overhead — a warm CLEAN through the consistent-hash
///    routing client vs the same request on a direct serve::Client
///    connection (cluster_<ds>_direct_warm): the ring hash, health ranking
///    and session bookkeeping must cost ~nothing on top of the wire round
///    trip.
///
///  * cluster_failover_recovery_{cold,warm} — the primary owner is killed
///    and a replacement daemon starts on the same address; the point times
///    replacement start + the first successful routed CLEAN. The warm arm
///    boots from the snapshot the original fleet persisted (the cluster
///    acceptance pin: warm recovery >= 5x faster than the cold rebuild).
void ClusterPoint(const std::string& dataset, int num_tuples,
                  int master_size) {
  gen::GeneratorConfig config;
  config.num_tuples = num_tuples;
  config.master_size = master_size;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.seed = 1;
  gen::Dataset ds = Generate(dataset, config);

  char dir_template[] = "/tmp/uniclean_bench_cluster.XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "bench_json: mkdtemp failed\n");
    std::exit(2);
  }
  const std::string dir = dir_template;
  if (!data::WriteCsvFile(dir + "/dirty.csv", ds.dirty).ok() ||
      !data::WriteCsvFile(dir + "/master.csv", ds.master).ok()) {
    std::fprintf(stderr, "bench_json: cannot write the cluster dataset\n");
    std::exit(2);
  }
  {
    std::ofstream rules(dir + "/rules.txt");
    rules << ds.rule_text;
  }
  if (::mkdir((dir + "/snapshots").c_str(), 0755) != 0) {
    std::fprintf(stderr, "bench_json: mkdir snapshots failed\n");
    std::exit(2);
  }
  std::ostringstream dirty_csv;
  if (!data::WriteCsv(dirty_csv, ds.dirty).ok()) std::exit(2);

  serve::RulesetConfig ruleset;
  ruleset.name = dataset;
  ruleset.master_csv = dir + "/master.csv";
  ruleset.rules_file = dir + "/rules.txt";
  ruleset.schema_csv = dir + "/dirty.csv";
  ruleset.eta = 1.0;

  const std::vector<std::string> names = {"r1", "r2"};
  auto sock_of = [&](const std::string& name) {
    return "unix:" + dir + "/" + name + ".sock";
  };
  auto daemon_options = [&](const std::string& name, bool with_snapshots) {
    serve::DaemonOptions o;
    o.listen = sock_of(name);
    o.n_workers = 2;
    if (with_snapshots) o.snapshot_dir = dir + "/snapshots";
    return o;
  };

  cluster::Ring ring;
  std::map<std::string, std::unique_ptr<serve::Daemon>> daemons;
  for (const std::string& name : names) {
    if (!ring.AddReplica(name).ok()) std::exit(2);
    daemons[name] = std::make_unique<serve::Daemon>(
        daemon_options(name, /*with_snapshots=*/true),
        std::vector<serve::RulesetConfig>{ruleset});
    Status started = daemons[name]->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "bench_json: cluster daemon start failed: %s\n",
                   started.ToString().c_str());
      std::exit(2);
    }
  }
  auto make_membership = [&]() {
    auto membership = std::make_shared<cluster::Membership>();
    for (const std::string& name : names) {
      (void)membership->AddReplica(name, sock_of(name));
    }
    return membership;
  };
  auto make_client = [&]() {
    cluster::ClusterClientOptions options;
    options.replication = 2;
    return std::make_unique<cluster::ClusterClient>(ring, make_membership(),
                                                    options);
  };

  serve::CleanRequest request;
  request.ruleset = dataset;
  request.data_csv = dirty_csv.str();

  // Pre-warm the primary's memos and capture the reference journal every
  // later arm must reproduce byte-identically.
  const std::string primary = ring.PrimaryOwner(dataset);
  auto routed = make_client();
  auto warmed = routed->Clean(request);
  if (!warmed.ok()) {
    std::fprintf(stderr, "bench_json: cluster pre-warm failed: %s\n",
                 warmed.status().ToString().c_str());
    std::exit(2);
  }
  const std::string reference_journal = warmed->journal_csv;

  auto check_journal = [&](const Result<serve::CleanReply>& reply,
                           const char* what) -> long long {
    if (!reply.ok()) {
      std::fprintf(stderr, "bench_json: %s failed: %s\n", what,
                   reply.status().ToString().c_str());
      std::exit(2);
    }
    if (reply->journal_csv != reference_journal) {
      std::fprintf(stderr, "bench_json: %s journal diverged\n", what);
      std::exit(2);
    }
    return reply->total_fixes;
  };

  const std::string prefix = "cluster_" + dataset + "_";
  auto direct_connected = serve::Client::ConnectAddress(sock_of(primary));
  if (!direct_connected.ok()) std::exit(2);
  serve::Client direct = std::move(direct_connected).value();
  const Measurement direct_m = Measure(
      prefix + "direct_warm", dataset, num_tuples, master_size, "warm",
      num_tuples, [&]() -> long long {
        return check_journal(direct.Clean(request), "direct warm clean");
      });
  const Measurement routed_m = Measure(
      prefix + "route_overhead", dataset, num_tuples, master_size, "warm",
      num_tuples, [&]() -> long long {
        return check_journal(routed->Clean(request), "routed warm clean");
      });
  if (direct_m.wall_s > 0) {
    std::printf("    %sroute_overhead: %.1f%% over the direct connection\n",
                prefix.c_str(),
                (routed_m.wall_s / direct_m.wall_s - 1.0) * 100.0);
  }
  direct.Close();

  // Failover recovery: retire the ruleset's primary owner, start a
  // replacement on the same address, time start -> first routed CLEAN.
  // The cold arm's drain persists the memo heat the primary earned above,
  // so the warm arm restores warmed memos, not just the index build -- the
  // rolling-restart story the snapshot layer exists for.
  double recovery_s[2] = {0.0, 0.0};
  int arm_index = 0;
  for (const char* arm : {"cold", "warm"}) {
    const bool warm = arm_index == 1;
    daemons[primary]->Shutdown();  // the "crash"
    const Measurement m = Measure(
        "cluster_failover_recovery_" + std::string(arm), dataset, num_tuples,
        master_size, arm, num_tuples, [&]() -> long long {
          auto replacement = std::make_unique<serve::Daemon>(
              daemon_options(primary, /*with_snapshots=*/warm),
              std::vector<serve::RulesetConfig>{ruleset});
          Status started = replacement->Start();
          if (!started.ok()) {
            std::fprintf(stderr,
                         "bench_json: replacement start failed: %s\n",
                         started.ToString().c_str());
            std::exit(2);
          }
          daemons[primary] = std::move(replacement);
          auto client = make_client();
          return check_journal(client->Clean(request),
                               "post-failover routed clean");
        });
    recovery_s[arm_index++] = m.wall_s;
  }
  if (recovery_s[1] > 0) {
    std::printf("    cluster_failover_recovery: warm %.2fx faster than cold\n",
                recovery_s[0] / recovery_s[1]);
  }
  for (auto& [name, daemon] : daemons) daemon->Shutdown();
}
#endif  // UNICLEAN_HAVE_SERVE

/// The §5.2 blocking ablation: per-probe match cost with the suffix-tree
/// index vs a brute-force master scan.
void AblationPoint(int master_size, bool use_blocking) {
  gen::GeneratorConfig config;
  config.num_tuples = 300;
  config.master_size = master_size;
  config.seed = 600 + static_cast<uint64_t>(master_size);
  gen::Dataset ds = gen::GenerateHosp(config);
  const rules::Md& md = ds.rules.mds().back();  // similarity-only MD

  core::MdMatcherOptions options;
  options.use_blocking = use_blocking;
  // Measure per-probe match cost, not memo hits: duplicates (dup_rate)
  // would otherwise resolve from the match cache in both arms.
  options.use_memos = false;
  core::MdMatcher matcher(md, ds.master, options);

  std::string name = std::string("ablation_blocking_") +
                     (use_blocking ? "on" : "off") + "_m" +
                     std::to_string(master_size);
  Measure(name, "hosp", config.num_tuples, master_size,
          use_blocking ? "probe" : "scan", config.num_tuples,
          [&]() -> long long {
            long long found = 0;
            for (data::TupleId t = 0; t < ds.dirty.size(); ++t) {
              found += matcher.FindMatches(ds.dirty.tuple(t)).empty() ? 0 : 1;
            }
            return found;
          });
}

void WriteJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"schema\": \"uniclean-bench-v1\",\n  \"results\": [\n");
  const std::vector<Measurement>& rs = Results();
  for (size_t i = 0; i < rs.size(); ++i) {
    const Measurement& m = rs[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"dataset\": \"%s\", \"num_tuples\": %d, "
        "\"master_size\": %d, \"phases\": \"%s\", \"wall_s\": %.6f, "
        "\"items_per_sec\": %.1f, \"rss_kb\": %ld, "
        "\"cumulative_peak_rss_kb\": %ld, \"allocs\": %llu, "
        "\"alloc_bytes\": %llu, \"result\": %lld",
        m.name.c_str(), m.dataset.c_str(), m.num_tuples, m.master_size,
        m.phases.c_str(), m.wall_s, m.items_per_sec, m.rss_kb, m.peak_rss_kb,
        m.allocs, m.alloc_bytes, m.extra);
    if (m.p50_ms >= 0) {
      std::fprintf(f,
                   ", \"p50_ms\": %.2f, \"p99_ms\": %.2f, "
                   "\"reject_rate\": %.4f",
                   m.p50_ms, m.p99_ms, m.reject_rate);
    }
    std::fprintf(f, "}%s\n", i + 1 < rs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu points)\n", path.c_str(), rs.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_pipeline.json";
  bool quick = false;
  double smoke_budget_s = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0 && i + 1 < argc) {
      char* end = nullptr;
      smoke_budget_s = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || smoke_budget_s <= 0) {
        std::fprintf(stderr, "bench_json: bad --smoke budget '%s'\n",
                     argv[i]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_json [--out FILE] [--quick] "
                   "[--smoke SECONDS]\n");
      return 2;
    }
  }

  // HOSP: the paper's primary scalability subject — cumulative stages like
  // Fig. 14(a), plus the 4000-tuple acceptance point (full runs only).
  for (int n : quick ? std::vector<int>{250, 1000}
                     : std::vector<int>{250, 1000, 4000}) {
    PipelinePoint("hosp", n, 500, "c");
    PipelinePoint("hosp", n, 500, "ce");
    PipelinePoint("hosp", n, 500, "ceh");
  }
  // DBLP / TPC-H: full pipeline shape.
  for (int n : quick ? std::vector<int>{250} : std::vector<int>{250, 1000}) {
    PipelinePoint("dblp", n, 500, "ceh");
    PipelinePoint("tpch", n, 300, "ceh");
  }
  // Cold-vs-warm sessions: index build, memo-cold first run and memo-warm
  // second run over identical dirty copies (warm reuse acceptance: the warm
  // DBLP run must beat the cold one).
  SessionPoint("hosp", 1000, 500);
  SessionPoint("dblp", 1000, 500);
  SessionPoint("tpch", 1000, 300);
#ifdef UNICLEAN_HAVE_SERVE
  // Serving round trips: the same cold/warm pair measured end-to-end
  // through unicleand's wire protocol (in-process daemon + client), then
  // the admission-control point at 2x capacity (8 retrying clients vs
  // 2 workers + 2 queue slots): p50/p99 end-to-end latency and the
  // rejection rate.
  ServePoint("hosp", 1000, 500);
  ServeOverloadPoint("hosp", quick ? 250 : 1000, quick ? 125 : 500);
  // Cluster routing + failover: route overhead over a direct connection,
  // then kill-the-primary recovery cold vs snapshot-warm (cluster
  // acceptance: warm recovery >= 5x faster). The big master makes the
  // replacement's engine build the dominant recovery cost, as in a serving
  // deployment; --quick keeps the point.
  ClusterPoint("hosp", 250, 4000);
#endif
  // Concurrent sessions: a shared warm engine cleans a 12-relation batch
  // through RunBatch at 1 / 2 / 4 threads (journals pinned byte-identical
  // to the serial arm). Scaling needs real cores; a 1-core runner measures
  // the locking overhead instead.
  ConcurrentPoint("hosp", 1000, 500);
  ConcurrentPoint("dblp", 1000, 500);
  // Incremental cleaning: one ApplyDelta of k held-out tuples against a
  // tracked session, vs a full memo-warm re-run of the whole relation.
  DeltaPoint("hosp", 1000, 500);
  DeltaPoint("dblp", 1000, 500);
  // Snapshot warm starts: snapshot write/load cost and cold-vs-warm daemon
  // startup (snapshot acceptance: the warm start must beat the cold index
  // build by >= 10x). The 8000-tuple master matches a serving deployment —
  // index build grows superlinearly with |Dm| while the restore path stays
  // near its flat floor, which is the layer's whole reason to exist.
  // --quick keeps the point.
  SnapshotPoint("hosp", 1000, 8000);
  // Blocking ablation (§5.2).
  for (int m : quick ? std::vector<int>{500} : std::vector<int>{500, 2000}) {
    AblationPoint(m, /*use_blocking=*/true);
    AblationPoint(m, /*use_blocking=*/false);
  }

  WriteJson(out);

  if (smoke_budget_s > 0) {
    for (const Measurement& m : Results()) {
      if (m.name == "fig14_hosp_ceh_n1000" && m.wall_s > smoke_budget_s) {
        std::fprintf(stderr,
                     "PERF SMOKE FAILED: 1k-tuple HOSP pipeline took %.2fs "
                     "(budget %.2fs)\n",
                     m.wall_s, smoke_budget_s);
        return 1;
      }
    }
  }
  return 0;
}
