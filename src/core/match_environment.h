// MatchEnvironment: the session-scoped record-matching state shared by every
// cleaning phase. The paper's unified framework interleaves matching and
// repairing, so cRepair (§5), eRepair (§6) and hRepair (§7) all probe the
// same MDs against the same static master relation — yet historically each
// engine built its own MdMatcher (suffix tree + equality index) and re-warmed
// its own memo caches per run, paying the §5.2 index cost three times per
// pipeline. A MatchEnvironment is scoped to a (rule set, master relation)
// pair instead: it builds each MD's matcher exactly once and owns the
// similarity / blocking / match memos, which — because cell values are
// interned ids in the process-wide StringPool — stay valid across phases
// *and* across successive data relations cleaned against the same master
// (the warm serving scenario; see uniclean::Cleaner::Run(data::Relation*)).
//
// Lifetime: the environment borrows `rules` and `master`; both must outlive
// it. The rules must never be mutated; the master may only grow by appends,
// and only while no session runs — after appending, call
// RefreshMasterAppend() (with exclusive access) to fold the new tuples into
// the indexes. Until then probes see the master as of the last refresh.
//
// Thread safety: after construction the environment is an immutable
// artifact plus internally synchronized memos — matcher() and every
// MdMatcher probe are safe from any number of threads, which is what lets
// one warm environment serve concurrent uniclean::Session runs (see
// uniclean::CleanEngine).

#ifndef UNICLEAN_CORE_MATCH_ENVIRONMENT_H_
#define UNICLEAN_CORE_MATCH_ENVIRONMENT_H_

#include <memory>
#include <vector>

#include "core/md_matcher.h"
#include "data/relation.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace snapshot {
class Codec;  // snapshot/codec.h: persists / restores the environment
}  // namespace snapshot
namespace core {

class MatchEnvironment {
 public:
  /// Builds one MdMatcher per MD rule of `rules` over `master`, eagerly, so
  /// construction time is the whole index-build cost (benches report it
  /// separately from repair time). CFD rule ids get no matcher.
  MatchEnvironment(const rules::RuleSet& rules, const data::Relation& master,
                   const MdMatcherOptions& options = {});

  // Matchers are held behind stable unique_ptrs; moving the environment
  // keeps every matcher reference handed out so far valid.
  MatchEnvironment(MatchEnvironment&&) = default;
  MatchEnvironment& operator=(MatchEnvironment&&) = default;
  MatchEnvironment(const MatchEnvironment&) = delete;
  MatchEnvironment& operator=(const MatchEnvironment&) = delete;

  const rules::RuleSet& rules() const { return *rules_; }
  const data::Relation& master() const { return *master_; }
  const MdMatcherOptions& matcher_options() const { return options_; }

  /// The shared matcher of an MD rule, or null when `rule` is a CFD. The
  /// returned matcher is owned by the environment and stays valid for the
  /// environment's lifetime.
  const MdMatcher* matcher(rules::RuleId rule) const {
    return matchers_[static_cast<size_t>(rule)].get();
  }

  /// Number of matchers this environment built (== number of MD rules).
  int num_matchers() const { return num_matchers_; }

  /// Master tuples covered by the matchers' indexes: master().size() at
  /// construction, catching up on RefreshMasterAppend(). Falls behind when
  /// the caller appends tuples to the (caller-owned) master relation.
  int indexed_master_size() const { return indexed_master_size_; }

  /// Folds master tuples appended since construction (or the previous
  /// refresh) into every matcher's indexes (see MdMatcher::AppendMaster):
  /// equality indexes and all-master lists grow incrementally, suffix trees
  /// are rebuilt, match/blocking memos are dropped, similarity memos
  /// survive. Requires exclusive access — no Session may be running against
  /// this environment and no references into its memos may be live. The
  /// master must only have grown by appends; indexed tuples must be
  /// unchanged. Returns the number of newly indexed master tuples.
  int RefreshMasterAppend();

  /// Aggregated memo statistics across every matcher of the environment:
  /// resident entries, a bytes estimate, hit/miss counters and the number
  /// of results refused admission past MdMatcherOptions::memo_capacity.
  /// Safe to call while sessions are running (counters are atomics; the
  /// entry walk briefly locks each memo shard).
  core::MemoStats MemoStats() const;

 private:
  // snapshot::Codec restores an environment from a snapshot: the tag
  // constructor binds rules/master/options without building any matcher;
  // the codec then installs one deserialized matcher per MD section.
  friend class ::uniclean::snapshot::Codec;
  struct RestoreTag {};
  MatchEnvironment(const rules::RuleSet& rules, const data::Relation& master,
                   const MdMatcherOptions& options, RestoreTag)
      : rules_(&rules),
        master_(&master),
        options_(options),
        indexed_master_size_(master.size()) {
    matchers_.resize(static_cast<size_t>(rules.num_rules()));
  }

  const rules::RuleSet* rules_;
  const data::Relation* master_;
  MdMatcherOptions options_;
  std::vector<std::unique_ptr<MdMatcher>> matchers_;  // indexed by rule id
  int num_matchers_ = 0;
  int indexed_master_size_ = 0;  // see RefreshMasterAppend()
};

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_MATCH_ENVIRONMENT_H_
