#include "core/md_matcher.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace uniclean {
namespace core {

namespace {

std::atomic<uint64_t> g_constructed_count{0};

data::GroupKey EqualityKey(const std::vector<size_t>& clause_idx,
                           const rules::Md& md, const data::Tuple& tuple,
                           bool master_side) {
  data::GroupKey key;
  for (size_t i : clause_idx) {
    const rules::MdClause& c = md.premise()[i];
    key.Append(
        tuple.value(master_side ? c.master_attr : c.data_attr).id());
  }
  return key;
}

}  // namespace

uint64_t MdMatcher::ConstructedCount() {
  return g_constructed_count.load(std::memory_order_relaxed);
}

namespace {

/// Per-(thread, matcher) scratch for results that bypass the memos
/// (use_memos = false, or admission refused past memo_capacity). Keyed by
/// matcher so a reference handed out by one matcher survives the same
/// thread probing *another* matcher — the guarantee user phases iterating
/// several MD rules rely on (a plain shared thread_local would alias them).
/// Entries for destroyed matchers linger (the key is never dereferenced);
/// so a long-lived worker thread in a server that keeps rebuilding engines
/// does not accumulate them forever, the map is emptied whenever it
/// exceeds kScratchMapLimit — far above any live rule set's matcher count,
/// so in practice only dead matchers' entries are dropped.
constexpr size_t kScratchMapLimit = 1024;

std::vector<data::TupleId>& ScratchFor(
    const void* matcher,
    std::unordered_map<const void*, std::vector<data::TupleId>>& map) {
  if (map.size() > kScratchMapLimit && map.count(matcher) == 0) map.clear();
  return map[matcher];
}

thread_local std::unordered_map<const void*, std::vector<data::TupleId>>
    t_candidate_scratch;
thread_local std::unordered_map<const void*, std::vector<data::TupleId>>
    t_match_scratch;

}  // namespace

MdMatcher::MdMatcher(const rules::Md& md, const data::Relation& dm,
                     const MdMatcherOptions& options)
    : md_(md),
      dm_(dm),
      options_(options),
      blocking_cache_(options.memo_capacity),
      match_cache_(options.memo_capacity),
      indexed_masters_(dm.size()) {
  g_constructed_count.fetch_add(1, std::memory_order_relaxed);
  UC_CHECK(md_.normalized()) << "MdMatcher requires a normalized MD";
  // Matches() keys its memo on the full premise projection; enforce the
  // GroupKey width limit here for matchers built outside RuleSet::Make.
  UC_CHECK_LE(md_.premise().size(), data::GroupKey::kMaxParts)
      << "MdMatcher: MD " << md_.name() << " premise too wide";
  for (size_t i = 0; i < md_.premise().size(); ++i) {
    sim_cache_.emplace_back(options.memo_capacity);
  }
  if (options_.use_blocking) {
    for (size_t i = 0; i < md_.premise().size(); ++i) {
      if (md_.premise()[i].predicate.is_equality()) {
        equality_clauses_.push_back(i);
      } else if (blocking_clause_ < 0) {
        blocking_clause_ = static_cast<int>(i);
      }
    }
  }
  // The brute-force and empty-premise paths scan every master tuple; the
  // list is materialized here so probes share it without synchronization.
  if (!options_.use_blocking ||
      (equality_clauses_.empty() && blocking_clause_ < 0)) {
    all_masters_.resize(static_cast<size_t>(dm_.size()));
    for (data::TupleId s = 0; s < dm_.size(); ++s) {
      all_masters_[static_cast<size_t>(s)] = s;
    }
  }
  if (!options_.use_blocking) return;
  if (!equality_clauses_.empty()) {
    IndexEqualityRange(0, dm_.size());
    return;
  }
  if (blocking_clause_ >= 0) RebuildSuffixTree();
}

MdMatcher::MdMatcher(const rules::Md& md, const data::Relation& dm,
                     const MdMatcherOptions& options, RestoreTag)
    : md_(md),
      dm_(dm),
      options_(options),
      blocking_cache_(options.memo_capacity),
      match_cache_(options.memo_capacity),
      indexed_masters_(dm.size()) {
  // The snapshot restore path: identical derived state (clause roles,
  // memo shapes, the materialized all-masters list) but no index build —
  // snapshot::Codec installs the deserialized equality index / suffix tree
  // afterwards — and no ConstructedCount() bump, so tests can assert that a
  // snapshot-warmed engine paid zero index builds.
  UC_CHECK(md_.normalized()) << "MdMatcher requires a normalized MD";
  UC_CHECK_LE(md_.premise().size(), data::GroupKey::kMaxParts)
      << "MdMatcher: MD " << md_.name() << " premise too wide";
  for (size_t i = 0; i < md_.premise().size(); ++i) {
    sim_cache_.emplace_back(options.memo_capacity);
  }
  if (options_.use_blocking) {
    for (size_t i = 0; i < md_.premise().size(); ++i) {
      if (md_.premise()[i].predicate.is_equality()) {
        equality_clauses_.push_back(i);
      } else if (blocking_clause_ < 0) {
        blocking_clause_ = static_cast<int>(i);
      }
    }
  }
  if (!options_.use_blocking ||
      (equality_clauses_.empty() && blocking_clause_ < 0)) {
    all_masters_.resize(static_cast<size_t>(dm_.size()));
    for (data::TupleId s = 0; s < dm_.size(); ++s) {
      all_masters_[static_cast<size_t>(s)] = s;
    }
  }
}

void MdMatcher::IndexEqualityRange(data::TupleId begin, data::TupleId end) {
  for (data::TupleId s = begin; s < end; ++s) {
    bool has_null = false;
    for (size_t i : equality_clauses_) {
      if (dm_.tuple(s).value(md_.premise()[i].master_attr).is_null()) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;  // null never satisfies a premise clause
    equality_index_[EqualityKey(equality_clauses_, md_, dm_.tuple(s),
                                /*master_side=*/true)]
        .push_back(s);
  }
}

void MdMatcher::RebuildSuffixTree() {
  // Index the distinct master values of the blocking clause's attribute.
  // Ukkonen's build is one-shot (AddString then a single Build), so a
  // master append rebuilds the tree from scratch.
  tree_ = similarity::GeneralizedSuffixTree();
  value_owners_.clear();
  const data::AttributeId attr =
      md_.premise()[static_cast<size_t>(blocking_clause_)].master_attr;
  std::unordered_map<data::ValueId, int> value_to_string_id;
  for (data::TupleId s = 0; s < dm_.size(); ++s) {
    const data::Value& v = dm_.tuple(s).value(attr);
    if (v.is_null()) continue;
    auto [it, inserted] = value_to_string_id.emplace(
        v.id(), static_cast<int>(value_owners_.size()));
    if (inserted) {
      tree_.AddString(v.view());
      value_owners_.emplace_back();
    }
    value_owners_[static_cast<size_t>(it->second)].push_back(s);
  }
  tree_.Build();
}

int MdMatcher::AppendMaster() {
  const data::TupleId old_size = indexed_masters_;
  if (dm_.size() == old_size) return 0;
  UC_CHECK_GT(dm_.size(), old_size)
      << "MdMatcher::AppendMaster: master relation shrank (append-only "
         "growth is required)";
  // Paths that materialize every master id extend incrementally.
  if (!options_.use_blocking ||
      (equality_clauses_.empty() && blocking_clause_ < 0)) {
    for (data::TupleId s = old_size; s < dm_.size(); ++s) {
      all_masters_.push_back(s);
    }
  }
  if (options_.use_blocking) {
    if (!equality_clauses_.empty()) {
      IndexEqualityRange(old_size, dm_.size());
    } else if (blocking_clause_ >= 0) {
      RebuildSuffixTree();
    }
  }
  // Match lists and blocking candidates were computed against the smaller
  // master and may be missing the new tuples; drop them. Similarity
  // outcomes are per (data value, master value) pair and stay valid.
  match_cache_.Clear();
  blocking_cache_.Clear();
  indexed_masters_ = dm_.size();
  return dm_.size() - old_size;
}

bool MdMatcher::Verify(const data::Tuple& t, data::TupleId s) const {
  const data::Tuple& m = dm_.tuple(s);
  if (!options_.use_memos) {
    return md_.PremiseHoldsWith(
        t, m,
        [](size_t, const rules::MdClause& c, const data::Value& dv,
           const data::Value& mv) {
          return c.predicate.Evaluate(dv.view(), mv.view());
        });
  }
  return md_.PremiseHoldsWith(
      t, m,
      [this](size_t i, const rules::MdClause& c, const data::Value& dv,
             const data::Value& mv) {
        const uint64_t pair_key =
            (static_cast<uint64_t>(dv.id()) << 32) | mv.id();
        const ShardedMemo<uint64_t, bool>& cache = sim_cache_[i];
        if (const bool* hit = cache.Find(pair_key)) return *hit;
        bool holds = c.predicate.Evaluate(dv.view(), mv.view());
        cache.Insert(pair_key, std::move(holds));
        return holds;
      });
}

const std::vector<data::TupleId>& MdMatcher::Candidates(
    const data::Tuple& t) const {
  static const std::vector<data::TupleId> kNoCandidates;
  if (!options_.use_blocking) return all_masters_;
  if (!equality_clauses_.empty()) {
    auto it = equality_index_.find(
        EqualityKey(equality_clauses_, md_, t, /*master_side=*/false));
    return it != equality_index_.end() ? it->second : kNoCandidates;
  }
  if (blocking_clause_ >= 0) {
    const rules::MdClause& clause =
        md_.premise()[static_cast<size_t>(blocking_clause_)];
    const data::Value& v = t.value(clause.data_attr);
    if (v.is_null()) return kNoCandidates;
    if (options_.use_memos) {
      if (const auto* hit = blocking_cache_.Find(v.id())) return *hit;
    }
    // Per-probe scratch reuses capacity across probes instead of allocating
    // fresh vectors per miss. `top` never escapes this call, so it can be a
    // plain thread_local; `candidates` may be returned (memos off / cap
    // refusal), so it is per-(thread, matcher).
    static thread_local std::vector<similarity::BlockingCandidate> top;
    std::vector<data::TupleId>& candidates =
        ScratchFor(this, t_candidate_scratch);
    tree_.TopL(v.view(), options_.top_l, /*max_leaves_per_probe=*/64, &top);
    candidates.clear();
    for (const similarity::BlockingCandidate& cand : top) {
      for (data::TupleId s :
           value_owners_[static_cast<size_t>(cand.string_id)]) {
        candidates.push_back(s);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    if (options_.use_memos) {
      // InsertWith: the move happens only if admission succeeds (the memo
      // entry is what gets returned then), so a capped memo in steady state
      // pays no per-miss allocation and an admitted miss pays no copy; on
      // refusal or a lost race the scratch is left intact and served below.
      if (const auto* inserted = blocking_cache_.InsertWith(
              v.id(), [&]() { return std::move(candidates); })) {
        return *inserted;
      }
    }
    // Memos off or admission refused past the cap: serve from scratch,
    // valid until this thread's next probe.
    return candidates;
  }
  // Premise with no clauses at all: every master tuple is a candidate.
  return all_masters_;
}

const std::vector<data::TupleId>& MdMatcher::Matches(
    const data::Tuple& t) const {
  // ScratchFor is resolved only on the paths that hand scratch out — the
  // dominant memo-hit path must not pay its map lookup.
  if (!options_.use_memos) {
    std::vector<data::TupleId>& scratch_matches =
        ScratchFor(this, t_match_scratch);
    const std::vector<data::TupleId>& candidates = Candidates(t);
    scratch_matches.clear();
    for (data::TupleId s : candidates) {
      if (Verify(t, s)) scratch_matches.push_back(s);
    }
    return scratch_matches;
  }
  data::GroupKey key;
  for (const rules::MdClause& c : md_.premise()) {
    key.Append(t.value(c.data_attr).id());
  }
  if (const auto* hit = match_cache_.Find(key)) return *hit;
  // Compute outside any shard lock; a concurrent probe of the same
  // projection recomputes the identical list and the insert below keeps
  // whichever landed first.
  std::vector<data::TupleId> matches;
  for (data::TupleId s : Candidates(t)) {
    if (Verify(t, s)) matches.push_back(s);
  }
  if (const auto* resident = match_cache_.Insert(key, std::move(matches))) {
    return *resident;
  }
  // Admission refused past the cap. `matches` was not consumed (Insert only
  // moves on success); hand it out via per-(thread, matcher) scratch.
  std::vector<data::TupleId>& scratch_matches =
      ScratchFor(this, t_match_scratch);
  scratch_matches = std::move(matches);
  return scratch_matches;
}

std::vector<data::TupleId> MdMatcher::FindMatches(const data::Tuple& t) const {
  return Matches(t);
}

data::TupleId MdMatcher::FindFirstMatch(const data::Tuple& t) const {
  if (!options_.use_memos) {
    // No cache to amortize a full match list: keep the early exit.
    for (data::TupleId s : Candidates(t)) {
      if (Verify(t, s)) return s;
    }
    return -1;
  }
  const std::vector<data::TupleId>& matches = Matches(t);
  return matches.empty() ? -1 : matches.front();
}

MemoStats MdMatcher::memo_stats() const {
  MemoStats total;
  const auto list_bytes = [](const auto& k,
                             const std::vector<data::TupleId>& v) {
    return sizeof(k) + sizeof(v) + v.capacity() * sizeof(data::TupleId);
  };
  total += match_cache_.Stats(list_bytes);
  total += blocking_cache_.Stats(list_bytes);
  for (const ShardedMemo<uint64_t, bool>& clause_cache : sim_cache_) {
    total += clause_cache.Stats(
        [](uint64_t, bool) { return sizeof(uint64_t) + sizeof(bool); });
  }
  return total;
}

}  // namespace core
}  // namespace uniclean
