#include "core/md_matcher.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace uniclean {
namespace core {

namespace {

std::atomic<uint64_t> g_constructed_count{0};

data::GroupKey EqualityKey(const std::vector<size_t>& clause_idx,
                           const rules::Md& md, const data::Tuple& tuple,
                           bool master_side) {
  data::GroupKey key;
  for (size_t i : clause_idx) {
    const rules::MdClause& c = md.premise()[i];
    key.Append(
        tuple.value(master_side ? c.master_attr : c.data_attr).id());
  }
  return key;
}

}  // namespace

uint64_t MdMatcher::ConstructedCount() {
  return g_constructed_count.load(std::memory_order_relaxed);
}

MdMatcher::MdMatcher(const rules::Md& md, const data::Relation& dm,
                     const MdMatcherOptions& options)
    : md_(md), dm_(dm), options_(options) {
  g_constructed_count.fetch_add(1, std::memory_order_relaxed);
  UC_CHECK(md_.normalized()) << "MdMatcher requires a normalized MD";
  // Matches() keys its memo on the full premise projection; enforce the
  // GroupKey width limit here for matchers built outside RuleSet::Make.
  UC_CHECK_LE(md_.premise().size(), data::GroupKey::kMaxParts)
      << "MdMatcher: MD " << md_.name() << " premise too wide";
  sim_cache_.resize(md_.premise().size());
  if (!options_.use_blocking) return;
  for (size_t i = 0; i < md_.premise().size(); ++i) {
    if (md_.premise()[i].predicate.is_equality()) {
      equality_clauses_.push_back(i);
    } else if (blocking_clause_ < 0) {
      blocking_clause_ = static_cast<int>(i);
    }
  }
  if (!equality_clauses_.empty()) {
    for (data::TupleId s = 0; s < dm_.size(); ++s) {
      bool has_null = false;
      for (size_t i : equality_clauses_) {
        if (dm_.tuple(s).value(md_.premise()[i].master_attr).is_null()) {
          has_null = true;
          break;
        }
      }
      if (has_null) continue;  // null never satisfies a premise clause
      equality_index_[EqualityKey(equality_clauses_, md_, dm_.tuple(s),
                                  /*master_side=*/true)]
          .push_back(s);
    }
    return;
  }
  if (blocking_clause_ >= 0) {
    // Index the distinct master values of the blocking clause's attribute.
    const data::AttributeId attr =
        md_.premise()[static_cast<size_t>(blocking_clause_)].master_attr;
    std::unordered_map<data::ValueId, int> value_to_string_id;
    for (data::TupleId s = 0; s < dm_.size(); ++s) {
      const data::Value& v = dm_.tuple(s).value(attr);
      if (v.is_null()) continue;
      auto [it, inserted] = value_to_string_id.emplace(
          v.id(), static_cast<int>(value_owners_.size()));
      if (inserted) {
        tree_.AddString(v.view());
        value_owners_.emplace_back();
      }
      value_owners_[static_cast<size_t>(it->second)].push_back(s);
    }
    tree_.Build();
  }
}

bool MdMatcher::Verify(const data::Tuple& t, data::TupleId s) const {
  return md_.PremiseHolds(t, dm_.tuple(s),
                          options_.use_memos ? &sim_cache_ : nullptr);
}

const std::vector<data::TupleId>& MdMatcher::AllMasters() const {
  if (all_masters_.empty() && dm_.size() > 0) {
    all_masters_.resize(static_cast<size_t>(dm_.size()));
    for (data::TupleId s = 0; s < dm_.size(); ++s) {
      all_masters_[static_cast<size_t>(s)] = s;
    }
  }
  return all_masters_;
}

const std::vector<data::TupleId>& MdMatcher::Candidates(
    const data::Tuple& t) const {
  static const std::vector<data::TupleId> kNoCandidates;
  if (!options_.use_blocking) return AllMasters();
  if (!equality_clauses_.empty()) {
    auto it = equality_index_.find(
        EqualityKey(equality_clauses_, md_, t, /*master_side=*/false));
    return it != equality_index_.end() ? it->second : kNoCandidates;
  }
  if (blocking_clause_ >= 0) {
    const rules::MdClause& clause =
        md_.premise()[static_cast<size_t>(blocking_clause_)];
    const data::Value& v = t.value(clause.data_attr);
    if (v.is_null()) return kNoCandidates;
    if (options_.use_memos) {
      auto cached = blocking_cache_.find(v.id());
      if (cached != blocking_cache_.end()) return cached->second;
    }
    std::vector<data::TupleId> candidates;
    for (const auto& cand : tree_.TopL(v.view(), options_.top_l)) {
      for (data::TupleId s :
           value_owners_[static_cast<size_t>(cand.string_id)]) {
        candidates.push_back(s);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    if (!options_.use_memos) {
      scratch_candidates_ = std::move(candidates);
      return scratch_candidates_;
    }
    return blocking_cache_.emplace(v.id(), std::move(candidates))
        .first->second;
  }
  // Premise with no clauses at all: every master tuple is a candidate.
  return AllMasters();
}

const std::vector<data::TupleId>& MdMatcher::Matches(
    const data::Tuple& t) const {
  if (!options_.use_memos) {
    const std::vector<data::TupleId>& candidates = Candidates(t);
    scratch_matches_.clear();
    for (data::TupleId s : candidates) {
      if (Verify(t, s)) scratch_matches_.push_back(s);
    }
    return scratch_matches_;
  }
  data::GroupKey key;
  for (const rules::MdClause& c : md_.premise()) {
    key.Append(t.value(c.data_attr).id());
  }
  auto it = match_cache_.find(key);
  if (it != match_cache_.end()) return it->second;
  std::vector<data::TupleId> matches;
  for (data::TupleId s : Candidates(t)) {
    if (Verify(t, s)) matches.push_back(s);
  }
  return match_cache_.emplace(key, std::move(matches)).first->second;
}

std::vector<data::TupleId> MdMatcher::FindMatches(const data::Tuple& t) const {
  return Matches(t);
}

data::TupleId MdMatcher::FindFirstMatch(const data::Tuple& t) const {
  if (!options_.use_memos) {
    // No cache to amortize a full match list: keep the early exit.
    for (data::TupleId s : Candidates(t)) {
      if (Verify(t, s)) return s;
    }
    return -1;
  }
  const std::vector<data::TupleId>& matches = Matches(t);
  return matches.empty() ? -1 : matches.front();
}

}  // namespace core
}  // namespace uniclean
