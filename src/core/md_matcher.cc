#include "core/md_matcher.h"

#include <algorithm>

#include "common/check.h"

namespace uniclean {
namespace core {

namespace {

std::string EqualityKey(const std::vector<size_t>& clause_idx,
                        const rules::Md& md, const data::Tuple& tuple,
                        bool master_side) {
  std::string key;
  for (size_t i : clause_idx) {
    const rules::MdClause& c = md.premise()[i];
    const data::Value& v =
        tuple.value(master_side ? c.master_attr : c.data_attr);
    key += v.str();
    key.push_back('\x1f');
  }
  return key;
}

}  // namespace

MdMatcher::MdMatcher(const rules::Md& md, const data::Relation& dm,
                     const MdMatcherOptions& options)
    : md_(md), dm_(dm), options_(options) {
  UC_CHECK(md_.normalized()) << "MdMatcher requires a normalized MD";
  if (!options_.use_blocking) return;
  for (size_t i = 0; i < md_.premise().size(); ++i) {
    if (md_.premise()[i].predicate.is_equality()) {
      equality_clauses_.push_back(i);
    } else if (blocking_clause_ < 0) {
      blocking_clause_ = static_cast<int>(i);
    }
  }
  if (!equality_clauses_.empty()) {
    for (data::TupleId s = 0; s < dm_.size(); ++s) {
      bool has_null = false;
      for (size_t i : equality_clauses_) {
        if (dm_.tuple(s).value(md_.premise()[i].master_attr).is_null()) {
          has_null = true;
          break;
        }
      }
      if (has_null) continue;  // null never satisfies a premise clause
      equality_index_[EqualityKey(equality_clauses_, md_, dm_.tuple(s),
                                  /*master_side=*/true)]
          .push_back(s);
    }
    return;
  }
  if (blocking_clause_ >= 0) {
    // Index the distinct master values of the blocking clause's attribute.
    const data::AttributeId attr =
        md_.premise()[static_cast<size_t>(blocking_clause_)].master_attr;
    std::unordered_map<std::string, int> value_to_string_id;
    for (data::TupleId s = 0; s < dm_.size(); ++s) {
      const data::Value& v = dm_.tuple(s).value(attr);
      if (v.is_null()) continue;
      auto [it, inserted] = value_to_string_id.emplace(
          v.str(), static_cast<int>(value_owners_.size()));
      if (inserted) {
        tree_.AddString(v.str());
        value_owners_.emplace_back();
      }
      value_owners_[static_cast<size_t>(it->second)].push_back(s);
    }
    tree_.Build();
  }
}

bool MdMatcher::Verify(const data::Tuple& t, data::TupleId s) const {
  return md_.PremiseHolds(t, dm_.tuple(s));
}

std::vector<data::TupleId> MdMatcher::Candidates(const data::Tuple& t) const {
  std::vector<data::TupleId> candidates;
  if (!options_.use_blocking) {
    candidates.resize(static_cast<size_t>(dm_.size()));
    for (data::TupleId s = 0; s < dm_.size(); ++s) {
      candidates[static_cast<size_t>(s)] = s;
    }
    return candidates;
  }
  if (!equality_clauses_.empty()) {
    auto it = equality_index_.find(
        EqualityKey(equality_clauses_, md_, t, /*master_side=*/false));
    if (it != equality_index_.end()) candidates = it->second;
    return candidates;
  }
  if (blocking_clause_ >= 0) {
    const rules::MdClause& clause =
        md_.premise()[static_cast<size_t>(blocking_clause_)];
    const data::Value& v = t.value(clause.data_attr);
    if (v.is_null()) return candidates;
    for (const auto& cand : tree_.TopL(v.str(), options_.top_l)) {
      for (data::TupleId s :
           value_owners_[static_cast<size_t>(cand.string_id)]) {
        candidates.push_back(s);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    return candidates;
  }
  // Premise with no clauses at all: every master tuple is a candidate.
  candidates.resize(static_cast<size_t>(dm_.size()));
  for (data::TupleId s = 0; s < dm_.size(); ++s) {
    candidates[static_cast<size_t>(s)] = s;
  }
  return candidates;
}

std::vector<data::TupleId> MdMatcher::FindMatches(const data::Tuple& t) const {
  std::vector<data::TupleId> matches;
  for (data::TupleId s : Candidates(t)) {
    if (Verify(t, s)) matches.push_back(s);
  }
  return matches;
}

data::TupleId MdMatcher::FindFirstMatch(const data::Tuple& t) const {
  for (data::TupleId s : Candidates(t)) {
    if (Verify(t, s)) return s;
  }
  return -1;
}

}  // namespace core
}  // namespace uniclean
