#include "core/crepair.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "data/group_key.h"

namespace uniclean {
namespace core {

namespace {

using data::AttributeId;
using data::FixMark;
using data::GroupKey;
using data::GroupKeyHash;
using data::Relation;
using data::TupleId;
using data::Value;
using rules::Cfd;
using rules::Md;
using rules::RuleId;
using rules::RuleSet;

/// One entry of the per-variable-CFD hash table Hϕ (§5.2): the pending
/// tuples of a group ∆(ȳ) and the group's asserted RHS value once known.
struct GroupEntry {
  bool val_set = false;
  Value val;
  std::vector<TupleId> list;
};

/// The full state of one cRepair run (Fig. 4's indexing structures).
class CRepairRun {
 public:
  CRepairRun(Relation* d, const MatchEnvironment& env,
             const CRepairOptions& options)
      : d_(*d),
        env_(env),
        dm_(env.master()),
        ruleset_(env.rules()),
        options_(options) {
    const size_t n = static_cast<size_t>(d_.size());
    const size_t r = static_cast<size_t>(ruleset_.num_rules());
    const size_t arity = static_cast<size_t>(d_.schema().arity());
    asserted_.assign(n * arity, 0);
    in_pending_.assign(n * r, 0);
    count_.assign(n * r, 0);

    rules_by_lhs_attr_.assign(arity, {});
    vcfds_by_rhs_attr_.assign(arity, {});
    lhs_required_.assign(r, 0);
    groups_.resize(r);
    for (RuleId rule = 0; rule < ruleset_.num_rules(); ++rule) {
      std::vector<AttributeId> unique_lhs = ruleset_.DataLhs(rule);
      std::sort(unique_lhs.begin(), unique_lhs.end());
      unique_lhs.erase(std::unique(unique_lhs.begin(), unique_lhs.end()),
                       unique_lhs.end());
      lhs_required_[static_cast<size_t>(rule)] =
          static_cast<int>(unique_lhs.size());
      for (AttributeId a : unique_lhs) {
        rules_by_lhs_attr_[static_cast<size_t>(a)].push_back(rule);
      }
      if (ruleset_.kind(rule) == rules::RuleKind::kVariableCfd) {
        // Update() only needs the variable CFDs whose RHS is the asserted
        // attribute; index them once instead of scanning all vCFDs per call.
        vcfds_by_rhs_attr_[static_cast<size_t>(ruleset_.DataRhs(rule))]
            .push_back(rule);
      }
    }
  }

  CRepairStats Run() {
    // Initialization (Fig. 4 lines 1-6): assert every cell with cf >= η.
    // Tombstoned tuples never enter the worklist here, so they stay out of
    // every group table and queue downstream.
    for (TupleId t = 0; t < d_.size(); ++t) {
      if ((t & (kCancelStride - 1)) == 0 && Interrupted()) return stats_;
      if (!d_.live(t)) continue;
      // Rules with an empty premise apply unconditionally.
      for (RuleId rule = 0; rule < ruleset_.num_rules(); ++rule) {
        if (lhs_required_[static_cast<size_t>(rule)] == 0) {
          worklist_.emplace_back(t, rule);
        }
      }
      for (AttributeId a : ruleset_.RuleAttributes()) {
        if (d_.tuple(t).confidence(a) >= options_.eta) {
          Update(t, a);
        }
      }
    }
    // Main loop (Fig. 4 lines 7-15). The token is polled only here, at the
    // top of a pop — i.e. between committed Fix() applications — so an
    // interrupted run never leaves a half-written cell.
    while (!worklist_.empty()) {
      if ((stats_.rule_applications & (kCancelStride - 1)) == 0 &&
          Interrupted()) {
        return stats_;
      }
      auto [t, rule] = worklist_.front();
      worklist_.pop_front();
      ++stats_.rule_applications;
      switch (ruleset_.kind(rule)) {
        case rules::RuleKind::kVariableCfd:
          VCfdInfer(t, rule);
          break;
        case rules::RuleKind::kConstantCfd:
          CCfdInfer(t, rule);
          break;
        case rules::RuleKind::kMd:
          MdInfer(t, rule);
          break;
      }
    }
    return stats_;
  }

 private:
  // Poll granularity for the cancellation token: every 64 worklist pops /
  // init tuples. Cheap enough to keep cancellation latency in the
  // microseconds on the HOSP workloads without a measurable polling cost.
  static constexpr int64_t kCancelStride = 64;

  bool Interrupted() {
    if (options_.cancel == nullptr || !options_.cancel->IsCancelled()) {
      return false;
    }
    stats_.interrupt = options_.cancel->status();
    return true;
  }

  size_t CellIndex(TupleId t, AttributeId a) const {
    return static_cast<size_t>(t) *
               static_cast<size_t>(d_.schema().arity()) +
           static_cast<size_t>(a);
  }
  size_t RuleIndex(TupleId t, RuleId rule) const {
    return static_cast<size_t>(t) *
               static_cast<size_t>(ruleset_.num_rules()) +
           static_cast<size_t>(rule);
  }

  bool Asserted(TupleId t, AttributeId a) const {
    return asserted_[CellIndex(t, a)] != 0;
  }

  /// Procedure update (Fig. 5): t[A] has just become asserted.
  void Update(TupleId t, AttributeId a) {
    size_t cell = CellIndex(t, a);
    if (asserted_[cell]) return;  // propagate each assertion exactly once
    asserted_[cell] = 1;
    for (RuleId rule : rules_by_lhs_attr_[static_cast<size_t>(a)]) {
      size_t idx = RuleIndex(t, rule);
      if (++count_[idx] == lhs_required_[static_cast<size_t>(rule)]) {
        worklist_.emplace_back(t, rule);
      }
    }
    // Variable CFDs waiting in P[t] whose RHS is A: t may now be the donor.
    for (RuleId rule : vcfds_by_rhs_attr_[static_cast<size_t>(a)]) {
      size_t idx = RuleIndex(t, rule);
      if (!in_pending_[idx]) continue;
      in_pending_[idx] = 0;
      auto& table = groups_[static_cast<size_t>(rule)];
      auto it =
          table.find(GroupKey::Project(d_.tuple(t), ruleset_.cfd(rule).lhs()));
      if (it == table.end() || !it->second.val_set) {
        worklist_.emplace_back(t, rule);
      } else if (it->second.val != d_.tuple(t).value(a)) {
        ++stats_.conflicts;
      }
    }
  }

  /// Writes `v` into t[A] (confidence η), marking a deterministic fix when
  /// the value actually changes, then propagates. `rule` justifies the write.
  void Fix(TupleId t, AttributeId a, const Value& v, RuleId rule) {
    data::Tuple& tuple = d_.mutable_tuple(t);
    if (tuple.value(a) != v) {
      if (options_.on_fix) options_.on_fix(t, a, tuple.value(a), v, rule);
      tuple.set_value(a, v);
      tuple.set_mark(a, FixMark::kDeterministic);
      ++stats_.deterministic_fixes;
    } else {
      ++stats_.confidence_upgrades;
    }
    tuple.set_confidence(a, options_.eta);
    Update(t, a);
  }

  /// Procedure vCFDInfer (Fig. 5).
  void VCfdInfer(TupleId t, RuleId rule) {
    const Cfd& cfd = ruleset_.cfd(rule);
    if (!cfd.MatchesLhs(d_.tuple(t))) return;
    const AttributeId b = cfd.rhs()[0];
    GroupEntry& entry = groups_[static_cast<size_t>(
        rule)][GroupKey::Project(d_.tuple(t), cfd.lhs())];
    if (Asserted(t, b)) {
      if (!entry.val_set) {
        // t supplies the group's asserted value; fix everyone waiting.
        entry.val_set = true;
        entry.val = d_.tuple(t).value(b);
        for (TupleId waiting : entry.list) {
          if (waiting == t || Asserted(waiting, b)) continue;
          Fix(waiting, b, entry.val, rule);
        }
        entry.list.clear();
      } else if (entry.val != d_.tuple(t).value(b)) {
        ++stats_.conflicts;  // two asserted donors disagree (§5.1(3)(c))
      }
      return;
    }
    if (entry.val_set) {
      Fix(t, b, entry.val, rule);
    } else {
      entry.list.push_back(t);
      in_pending_[RuleIndex(t, rule)] = 1;  // P[t].add(ξ)
    }
  }

  /// Procedure cCFDInfer (Fig. 5).
  void CCfdInfer(TupleId t, RuleId rule) {
    const Cfd& cfd = ruleset_.cfd(rule);
    if (!cfd.MatchesLhs(d_.tuple(t))) return;
    const AttributeId b = cfd.rhs()[0];
    const Value& target = cfd.rhs_pattern()[0].value();
    if (Asserted(t, b)) {
      if (d_.tuple(t).value(b) != target) ++stats_.conflicts;
      return;
    }
    Fix(t, b, target, rule);
  }

  /// Procedure MDInfer (Fig. 5).
  void MdInfer(TupleId t, RuleId rule) {
    const Md& md = ruleset_.md(rule);
    const MdMatcher* matcher = env_.matcher(rule);
    UC_CHECK(matcher != nullptr);
    TupleId s = matcher->FindFirstMatch(d_.tuple(t));
    if (s < 0) return;
    stats_.md_matches.emplace_back(t, s);
    const rules::MdAction& action = md.actions()[0];
    const Value& master_value = dm_.tuple(s).value(action.master_attr);
    if (master_value.is_null()) return;
    if (Asserted(t, action.data_attr)) {
      if (d_.tuple(t).value(action.data_attr) != master_value) {
        ++stats_.conflicts;
      }
      return;
    }
    Fix(t, action.data_attr, master_value, rule);
  }

  Relation& d_;
  const MatchEnvironment& env_;
  const Relation& dm_;
  const RuleSet& ruleset_;
  const CRepairOptions& options_;
  CRepairStats stats_;

  std::vector<uint8_t> asserted_;    // per cell
  std::vector<uint8_t> in_pending_;  // P[t] membership, per (t, rule)
  std::vector<int> count_;           // count[t, ξ], per (t, rule)
  std::vector<int> lhs_required_;    // |unique LHS(ξ)|
  std::vector<std::vector<RuleId>> rules_by_lhs_attr_;
  std::vector<std::vector<RuleId>> vcfds_by_rhs_attr_;  // variable CFDs only
  // Hϕ per rule id (populated for variable CFDs, empty otherwise).
  std::vector<std::unordered_map<GroupKey, GroupEntry, GroupKeyHash>> groups_;
  std::deque<std::pair<TupleId, RuleId>> worklist_;  // the queues Q[t]
};

}  // namespace

CRepairStats CRepair(Relation* d, const MatchEnvironment& env,
                     const CRepairOptions& options) {
  UC_CHECK(d != nullptr);
  CRepairRun run(d, env, options);
  return run.Run();
}

CRepairStats CRepair(Relation* d, const Relation& dm, const RuleSet& ruleset,
                     const CRepairOptions& options) {
  MatchEnvironment env(ruleset, dm, options.matcher);
  return CRepair(d, env, options);
}

}  // namespace core
}  // namespace uniclean
