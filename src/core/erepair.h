// eRepair (§6, Fig. 6): reliable fixes with information entropy. Rules are
// applied in the dependency-graph order of §6.2; conflicts among the tuples
// of a variable-CFD group ∆(ȳ) are resolved to the majority value when the
// group's entropy H(ϕ|Y=ȳ) is below the threshold δ2; each cell may be
// rewritten at most δ1 times ("update threshold"), which bounds oscillation
// and guarantees termination. Deterministic fixes from cRepair are never
// overwritten, and neither are asserted cells (cf >= η).

#ifndef UNICLEAN_CORE_EREPAIR_H_
#define UNICLEAN_CORE_EREPAIR_H_

#include "common/cancellation.h"
#include "common/status.h"
#include "core/fix_observer.h"
#include "core/match_environment.h"
#include "core/md_matcher.h"
#include "data/relation.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace core {

struct ERepairOptions {
  /// Update threshold δ1: maximum rewrites per cell.
  int delta1 = 5;
  /// Entropy threshold δ2: groups with H(ϕ|Y=ȳ) < δ2 are resolved.
  double delta2 = 0.8;
  /// Cells with confidence >= eta are treated as asserted and not modified.
  double eta = 0.8;
  /// Only consulted by the deprecated environment-less entry point; when a
  /// MatchEnvironment is borrowed, its own options govern retrieval.
  MdMatcherOptions matcher;
  /// Optional per-fix callback (see fix_observer.h); called once per reliable
  /// fix — a cell rewritten twice produces two calls.
  FixObserver on_fix;
  /// Optional cooperative-cancellation token, polled between rule
  /// resolutions (never mid-write). On trip the run stops early with
  /// ERepairStats::interrupt set; every fix applied so far was observed,
  /// nothing is torn.
  const common::CancelToken* cancel = nullptr;
};

struct ERepairStats {
  /// Record matches identified while cleaning (see CRepairStats).
  std::vector<std::pair<data::TupleId, data::TupleId>> md_matches;
  /// Cells rewritten and marked FixMark::kReliable.
  int reliable_fixes = 0;
  /// Variable-CFD groups resolved via entropy.
  int groups_resolved = 0;
  /// Groups left alone because their entropy was >= δ2.
  int groups_skipped_high_entropy = 0;
  /// Full passes over the rule order until fixpoint.
  int passes = 0;
  /// OK for a completed run; DeadlineExceeded/Cancelled when
  /// ERepairOptions::cancel tripped and the run stopped early.
  Status interrupt;
};

/// Entropy of a variable CFD for one group (§6.1):
///   H = Σ_i (c_i/n) * log_k(n/c_i)
/// where the c_i are the frequencies of the k distinct RHS values and
/// n = Σ c_i. H is 0 when the group agrees (k = 1) and 1 when all values
/// are equally frequent. `counts` must be non-empty with positive entries.
double GroupEntropy(const std::vector<int>& counts);

/// Runs eRepair in place; returns statistics. Tombstoned tuples
/// (data::Relation::EraseTuple) are skipped — they join no group and are
/// never rewritten. Borrows the shared match environment (master relation,
/// rules, warm MD indexes and memos) instead of building per-run matchers;
/// `options.matcher` is ignored on this path.
ERepairStats ERepair(data::Relation* d, const MatchEnvironment& env,
                     const ERepairOptions& options = {});

/// DEPRECATED: environment-less entry point. Rebuilds every MD index and
/// memo per call; share a core::MatchEnvironment (or use
/// uniclean::CleanEngine) and call the overload above. Kept only for the
/// parity pins in match_environment_test; removed next release.
[[deprecated(
    "build a core::MatchEnvironment once and call "
    "ERepair(d, env, options)")]]
ERepairStats ERepair(data::Relation* d, const data::Relation& dm,
                     const rules::RuleSet& ruleset,
                     const ERepairOptions& options = {});

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_EREPAIR_H_
