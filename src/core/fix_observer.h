// FixObserver: an optional per-fix callback threaded through the three
// repair phases. The cleaning engines invoke it once for every cell write
// that changes a value, passing the justifying rule — this is how the
// uniclean::FixJournal façade records structured provenance without the
// phases knowing about journals.

#ifndef UNICLEAN_CORE_FIX_OBSERVER_H_
#define UNICLEAN_CORE_FIX_OBSERVER_H_

#include <functional>

#include "data/relation.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace core {

/// Called once per value-changing cell write: (tuple, attribute, value
/// before, value after, justifying rule). The rule id indexes into the
/// RuleSet the phase was run with, or is -1 when no single rule can be
/// attributed. Invoked before any later rewrite of the same cell, in
/// application order.
using FixObserver = std::function<void(
    data::TupleId, data::AttributeId, const data::Value& old_value,
    const data::Value& new_value, rules::RuleId)>;

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_FIX_OBSERVER_H_
