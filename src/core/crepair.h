// cRepair (§5, Figs. 4-5): deterministic fixes with data confidence. A
// cleaning rule is applied to a tuple only when every premise attribute is
// asserted (confidence >= η) and the target attribute is not; the written
// cell is then itself asserted (cf := η, per Fig. 5 / Example 5.2) and the
// change propagates recursively through the per-tuple queues.

#ifndef UNICLEAN_CORE_CREPAIR_H_
#define UNICLEAN_CORE_CREPAIR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "core/fix_observer.h"
#include "core/match_environment.h"
#include "core/md_matcher.h"
#include "data/relation.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace core {

struct CRepairOptions {
  /// Confidence threshold η: cells at or above are asserted correct.
  double eta = 0.8;
  /// Options for MD candidate retrieval (suffix-tree blocking, §5.2). Only
  /// consulted by the deprecated environment-less entry point; when a
  /// MatchEnvironment is borrowed, its own options govern retrieval.
  MdMatcherOptions matcher;
  /// Optional per-fix callback (see fix_observer.h); called exactly once per
  /// deterministic fix, with the rule that produced it.
  FixObserver on_fix;
  /// Optional cooperative-cancellation token, polled between committed fixes
  /// (never mid-write). On trip the run stops early and reports the token's
  /// status in CRepairStats::interrupt; the relation keeps every fix applied
  /// so far and nothing torn.
  const common::CancelToken* cancel = nullptr;
};

struct CRepairStats {
  /// Cells whose value changed, marked FixMark::kDeterministic.
  int deterministic_fixes = 0;
  /// Cells whose value was confirmed by a rule and upgraded to cf = η
  /// without changing (Fig. 5 assigns unconditionally; only real changes are
  /// counted as fixes).
  int confidence_upgrades = 0;
  /// Rule pops from the per-tuple queues (diagnostics).
  int64_t rule_applications = 0;
  /// Asserted-vs-asserted disagreements encountered (the paper assumes
  /// confidence is placed correctly, so these indicate bad confidence).
  int conflicts = 0;
  /// Record matches identified while cleaning: (data tuple, master tuple)
  /// pairs whose MD premise held when an MD rule was applied. Used by the
  /// Exp-2 evaluation ("repairing helps matching").
  std::vector<std::pair<data::TupleId, data::TupleId>> md_matches;
  /// OK for a completed run; DeadlineExceeded/Cancelled when
  /// CRepairOptions::cancel tripped and the run stopped early.
  Status interrupt;
};

/// Runs cRepair in place: fixes cells of `d`, upgrades their confidence and
/// marks them deterministic. Returns statistics. Tombstoned tuples
/// (data::Relation::EraseTuple) are skipped. Borrows the shared match
/// environment (master relation, rules, warm MD indexes and memos) instead
/// of building per-run matchers; `options.matcher` is ignored on this path.
CRepairStats CRepair(data::Relation* d, const MatchEnvironment& env,
                     const CRepairOptions& options = {});

/// DEPRECATED: environment-less entry point. Builds a throwaway
/// MatchEnvironment from `options.matcher` on every call — every MD index
/// and memo is rebuilt and re-warmed, which is exactly the cost the shared
/// environment removes. Construct a core::MatchEnvironment (or use
/// uniclean::CleanEngine, which owns one) and call the overload above; this
/// shim remains only to pin env/env-less parity in match_environment_test
/// and will be removed next release.
[[deprecated(
    "build a core::MatchEnvironment once and call "
    "CRepair(d, env, options)")]]
CRepairStats CRepair(data::Relation* d, const data::Relation& dm,
                     const rules::RuleSet& ruleset,
                     const CRepairOptions& options = {});

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_CREPAIR_H_
