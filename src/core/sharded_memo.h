// ShardedMemo: the concurrency primitive behind the MdMatcher memos. A
// memo entry is the result of a pure function of its key (a similarity
// outcome, a blocking candidate list, a full match list over the static
// master data), so the only thing a shared cache must guarantee under
// concurrent Session runs is data-race freedom — any interleaving of hits
// and inserts yields the same values. The map is split into kShards
// mutex-guarded shards keyed on a mixed hash of the interned-id key, so
// concurrent probes of different keys rarely contend and the critical
// section is a single hash lookup or insert.
//
// Entries are never erased: handed-out pointers stay valid for the memo's
// lifetime (unordered_map node stability). Growth is bounded by an optional
// capacity cap enforced by *admission control* — once `entries() ==
// capacity`, new results are still computed but refused admission (counted
// in MemoStats::evictions) instead of evicting a resident entry, which
// would dangle references. This is the eviction policy the long-lived
// serving scenario needs: the memo converges on the first `capacity`
// distinct keys and stops growing.

#ifndef UNICLEAN_CORE_SHARDED_MEMO_H_
#define UNICLEAN_CORE_SHARDED_MEMO_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "data/string_pool.h"

namespace uniclean {
namespace core {

/// Aggregate memo statistics; summed across memos (and across the matchers
/// of a MatchEnvironment) with operator+=.
struct MemoStats {
  /// Cached entries currently resident.
  uint64_t entries = 0;
  /// Rough footprint estimate: key + value payload + per-node bookkeeping.
  uint64_t bytes = 0;
  /// Lookups answered from the memo.
  uint64_t hits = 0;
  /// Lookups that had to compute their result.
  uint64_t misses = 0;
  /// Results refused admission because the capacity cap was reached.
  uint64_t evictions = 0;

  MemoStats& operator+=(const MemoStats& o) {
    entries += o.entries;
    bytes += o.bytes;
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    return *this;
  }
};

template <typename Key, typename Mapped, typename Hash = std::hash<Key>>
class ShardedMemo {
 public:
  /// `capacity` caps the number of resident entries; 0 means unbounded.
  explicit ShardedMemo(size_t capacity = 0) : capacity_(capacity) {}

  ShardedMemo(const ShardedMemo&) = delete;
  ShardedMemo& operator=(const ShardedMemo&) = delete;

  /// Looks up `key`. Returns a pointer to the cached value — stable until
  /// the memo is destroyed — or nullptr on a miss. Counts a hit or miss.
  const Mapped* Find(const Key& key) const {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return &it->second;
  }

  /// Admits (key, value) unless the cap is reached. Returns the resident
  /// entry — the inserted one, or the entry a concurrent inserter of the
  /// same key won with (`value` is left untouched then) — or nullptr when
  /// admission was refused, in which case the caller serves the result from
  /// its own scratch.
  const Mapped* Insert(const Key& key, Mapped&& value) const {
    return InsertWith(key, [&value]() -> Mapped&& { return std::move(value); });
  }

  /// Like Insert, but materializes the value via `make()` only after
  /// admission is granted — so a capped memo in steady state (every insert
  /// refused) costs no value construction per miss. `make()` runs under the
  /// shard lock; keep it to a move or a copy.
  template <typename MakeFn>
  const Mapped* InsertWith(const Key& key, MakeFn&& make) const {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) return &it->second;
    if (capacity_ != 0) {
      // Strict cap: reserve a slot before inserting; back out on overflow so
      // entries() never exceeds capacity() even under concurrent admission
      // into different shards.
      if (entries_.fetch_add(1, std::memory_order_relaxed) >= capacity_) {
        entries_.fetch_sub(1, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
    } else {
      entries_.fetch_add(1, std::memory_order_relaxed);
    }
    return &shard.map.emplace(key, make()).first->second;
  }

  size_t entries() const {
    return static_cast<size_t>(entries_.load(std::memory_order_relaxed));
  }
  size_t capacity() const { return capacity_; }

  /// Drops every resident entry and resets the entry count, invalidating
  /// all pointers ever handed out by Find/Insert/InsertWith. The caller
  /// must guarantee exclusive access: no concurrent probes and no live
  /// references (e.g. a master-data refresh performed while no Session is
  /// running). Hit/miss/eviction counters are preserved.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
    }
    entries_.store(0, std::memory_order_relaxed);
  }

  /// Visits every resident entry as `fn(key, mapped)`, one shard at a time
  /// under that shard's lock (keep `fn` cheap and lock-free). Entry order is
  /// unspecified. Concurrent inserts into a not-yet-visited shard may or may
  /// not be seen; for an exact enumeration (e.g. snapshot serialization)
  /// the caller must quiesce writers.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [key, mapped] : shard.map) fn(key, mapped);
    }
  }

  /// Counter snapshot plus a footprint estimate:
  /// `entry_bytes(key, mapped)` returns the payload size of one entry.
  template <typename EntryBytesFn>
  MemoStats Stats(EntryBytesFn&& entry_bytes) const {
    MemoStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      stats.entries += shard.map.size();
      for (const auto& [key, mapped] : shard.map) {
        stats.bytes += entry_bytes(key, mapped) + kNodeOverheadBytes;
      }
    }
    return stats;
  }

 private:
  static constexpr size_t kShards = 16;
  /// Ballpark unordered_map node + bucket bookkeeping per entry (libstdc++:
  /// next pointer + cached hash + bucket slot share).
  static constexpr uint64_t kNodeOverheadBytes = 24;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Mapped, Hash> map;
  };

  Shard& ShardFor(const Key& key) const {
    // Re-mix the map hash for shard selection so shard index and in-shard
    // bucket are decorrelated.
    const uint64_t h = data::MixU64(static_cast<uint64_t>(Hash{}(key)));
    return shards_[h & (kShards - 1)];
  }

  const size_t capacity_;
  mutable Shard shards_[kShards];
  mutable std::atomic<uint64_t> entries_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> evictions_{0};
};

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_SHARDED_MEMO_H_
