#include "core/erepair.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/avl_tree.h"
#include "data/group_key.h"
#include "reasoning/dependency_graph.h"

namespace uniclean {
namespace core {

namespace {

using data::AttributeId;
using data::FixMark;
using data::GroupKey;
using data::GroupKeyHash;
using data::Relation;
using data::TupleId;
using data::Value;
using rules::Cfd;
using rules::Md;
using rules::RuleId;
using rules::RuleSet;

class ERepairRun {
 public:
  ERepairRun(Relation* d, const MatchEnvironment& env,
             const ERepairOptions& options)
      : d_(*d),
        env_(env),
        dm_(env.master()),
        ruleset_(env.rules()),
        options_(options) {
    change_count_.assign(static_cast<size_t>(d_.size()) *
                             static_cast<size_t>(d_.schema().arity()),
                         0);
  }

  ERepairStats Run() {
    // §6.2: sort the rules via the dependency graph (SCC condensation in
    // topological order, out/in-degree ratio within SCCs).
    reasoning::DependencyGraph graph(ruleset_);
    std::vector<RuleId> order = graph.ApplicationOrder();
    touched_prev_.assign(static_cast<size_t>(d_.size()), 1);  // pass 1: all
    touched_cur_.assign(static_cast<size_t>(d_.size()), 0);
    bool changed = true;
    while (changed) {
      changed = false;
      ++stats_.passes;
      for (RuleId rule : order) {
        // Polled between rule resolutions — every fix applied so far has
        // already been observed, so an interrupted run is never torn.
        if (options_.cancel != nullptr && options_.cancel->IsCancelled()) {
          stats_.interrupt = options_.cancel->status();
          return stats_;
        }
        int before = stats_.reliable_fixes;
        switch (ruleset_.kind(rule)) {
          case rules::RuleKind::kVariableCfd:
            VCfdResolve(rule);
            break;
          case rules::RuleKind::kConstantCfd:
            CCfdResolve(rule);
            break;
          case rules::RuleKind::kMd:
            MdResolve(rule);
            break;
        }
        if (stats_.reliable_fixes != before) changed = true;
      }
      std::swap(touched_prev_, touched_cur_);
      touched_cur_.assign(touched_cur_.size(), 0);
    }
    return stats_;
  }

 private:
  size_t CellIndex(TupleId t, AttributeId a) const {
    return static_cast<size_t>(t) *
               static_cast<size_t>(d_.schema().arity()) +
           static_cast<size_t>(a);
  }

  /// A cell may be rewritten unless it is a deterministic fix, asserted by
  /// confidence, or already rewritten δ1 times.
  bool Changeable(TupleId t, AttributeId a) const {
    const data::Tuple& tuple = d_.tuple(t);
    if (tuple.mark(a) == FixMark::kDeterministic) return false;
    if (tuple.confidence(a) >= options_.eta) return false;
    return change_count_[CellIndex(t, a)] < options_.delta1;
  }

  void ApplyFix(TupleId t, AttributeId a, const Value& v, RuleId rule) {
    data::Tuple& tuple = d_.mutable_tuple(t);
    UC_CHECK(tuple.value(a) != v);
    if (options_.on_fix) options_.on_fix(t, a, tuple.value(a), v, rule);
    tuple.set_value(a, v);
    tuple.set_mark(a, FixMark::kReliable);
    ++change_count_[CellIndex(t, a)];
    ++stats_.reliable_fixes;
    touched_cur_[static_cast<size_t>(t)] = 1;
  }

  /// Procedure vCFDReslove (§6.2) backed by the 2-in-1 structure of §6.3:
  /// a hash table from group key to the group's member list and value
  /// counts, plus an AVL tree keyed by entropy for the ascending walk.
  void VCfdResolve(RuleId rule) {
    const Cfd& cfd = ruleset_.cfd(rule);
    const AttributeId b = cfd.rhs()[0];
    struct Group {
      std::vector<TupleId> members;
      std::unordered_map<data::ValueId, int> value_counts;
    };
    std::unordered_map<GroupKey, Group, GroupKeyHash> table;  // HTab (Fig. 9)
    // First-encounter group order: iteration must not depend on the hash of
    // the (id-valued) keys, or fix order would vary with id assignment.
    std::vector<const Group*> group_order;
    for (TupleId t = 0; t < d_.size(); ++t) {
      if (!d_.live(t)) continue;
      const data::Tuple& tuple = d_.tuple(t);
      if (!cfd.MatchesLhs(tuple)) continue;
      if (tuple.value(b).is_null()) continue;  // satisfies trivially (§7)
      auto [it, inserted] =
          table.try_emplace(GroupKey::Project(tuple, cfd.lhs()));
      Group& g = it->second;
      if (inserted) group_order.push_back(&g);
      g.members.push_back(t);
      ++g.value_counts[tuple.value(b).id()];
    }
    // AVL tree T of Fig. 9: only groups with nonzero entropy appear. The
    // majority target is picked here, while the counts are already sorted,
    // so resolution does not re-sort.
    struct Resolvable {
      const Group* group;
      data::ValueId target;
    };
    AvlTree<double, Resolvable> tree;
    for (const Group* group_ptr : group_order) {
      const Group& group = *group_ptr;
      if (group.value_counts.size() <= 1) continue;
      // Accumulate in lexicographic value order: keeps the floating-point
      // sum (and thus the entropy threshold decision) identical to the
      // pre-interning std::map<std::string> iteration. The same order makes
      // the first strict maximum the lexicographically-smallest majority
      // value (deterministic tie-break).
      std::vector<std::pair<data::ValueId, int>> items =
          SortedValueCounts(group.value_counts);
      std::vector<int> counts;
      counts.reserve(items.size());
      for (const auto& [id, c] : items) counts.push_back(c);
      data::ValueId best = items[0].first;
      int best_count = items[0].second;
      for (const auto& [id, count] : items) {
        if (count > best_count) {
          best = id;
          best_count = count;
        }
      }
      tree.Insert(GroupEntropy(counts), Resolvable{&group, best});
    }
    int skipped = tree.size();
    tree.VisitBelow(
        options_.delta2,
        [this, b, rule](double entropy, const Resolvable& entry) {
          (void)entropy;
          ResolveGroup(entry.group->members, Value::FromId(entry.target), b,
                       rule);
          return true;
        });
    // Everything not visited had entropy >= δ2.
    stats_.groups_skipped_high_entropy += skipped - resolved_this_call_;
    stats_.groups_resolved += resolved_this_call_;
    resolved_this_call_ = 0;
  }

  /// The group's (value id, count) pairs sorted lexicographically by the
  /// resolved strings — the iteration order the pre-interning
  /// std::map<std::string, int> provided for free.
  static std::vector<std::pair<data::ValueId, int>> SortedValueCounts(
      const std::unordered_map<data::ValueId, int>& value_counts) {
    std::vector<std::pair<data::ValueId, int>> items(value_counts.begin(),
                                                     value_counts.end());
    std::sort(items.begin(), items.end(),
              [](const std::pair<data::ValueId, int>& a,
                 const std::pair<data::ValueId, int>& b) {
                return Value::FromId(a.first).view() <
                       Value::FromId(b.first).view();
              });
    return items;
  }

  /// Rewrites every changeable member that disagrees with the group's
  /// (pre-computed) majority value.
  void ResolveGroup(const std::vector<TupleId>& members, const Value& target,
                    AttributeId b, RuleId rule) {
    ++resolved_this_call_;
    for (TupleId t : members) {
      if (d_.tuple(t).value(b) == target) continue;
      if (!Changeable(t, b)) continue;
      ApplyFix(t, b, target, rule);
    }
  }

  /// Procedure cCFDReslove (§6.2).
  void CCfdResolve(RuleId rule) {
    const Cfd& cfd = ruleset_.cfd(rule);
    const AttributeId b = cfd.rhs()[0];
    const Value& target = cfd.rhs_pattern()[0].value();
    for (TupleId t = 0; t < d_.size(); ++t) {
      if (!d_.live(t)) continue;
      const data::Tuple& tuple = d_.tuple(t);
      if (!cfd.MatchesLhs(tuple)) continue;
      if (cfd.RhsSatisfied(tuple)) continue;
      if (!Changeable(t, b)) continue;
      ApplyFix(t, b, target, rule);
    }
  }

  /// Procedure MDReslove (§6.2).
  void MdResolve(RuleId rule) {
    const Md& md = ruleset_.md(rule);
    const rules::MdAction& action = md.actions()[0];
    const MdMatcher& matcher = *env_.matcher(rule);
    for (TupleId t = 0; t < d_.size(); ++t) {
      if (!d_.live(t)) continue;
      // MD premises depend only on this tuple and the static master data:
      // skip tuples untouched since the previous pass.
      if (!touched_prev_[static_cast<size_t>(t)] &&
          !touched_cur_[static_cast<size_t>(t)]) {
        continue;
      }
      TupleId s = matcher.FindFirstMatch(d_.tuple(t));
      if (s < 0) continue;
      stats_.md_matches.emplace_back(t, s);
      const Value& master_value = dm_.tuple(s).value(action.master_attr);
      if (master_value.is_null()) continue;
      if (Value::SqlEquals(d_.tuple(t).value(action.data_attr),
                           master_value) &&
          !d_.tuple(t).value(action.data_attr).is_null()) {
        continue;
      }
      if (d_.tuple(t).value(action.data_attr) == master_value) continue;
      if (!Changeable(t, action.data_attr)) continue;
      ApplyFix(t, action.data_attr, master_value, rule);
    }
  }

  Relation& d_;
  const MatchEnvironment& env_;
  const Relation& dm_;
  const RuleSet& ruleset_;
  const ERepairOptions& options_;
  ERepairStats stats_;
  int resolved_this_call_ = 0;

  std::vector<int> change_count_;  // per cell
  std::vector<uint8_t> touched_prev_;  // tuples changed in the last pass
  std::vector<uint8_t> touched_cur_;   // tuples changed in this pass
};

}  // namespace

double GroupEntropy(const std::vector<int>& counts) {
  UC_CHECK(!counts.empty());
  const size_t k = counts.size();
  if (k <= 1) return 0.0;
  double n = 0;
  for (int c : counts) {
    UC_CHECK_GT(c, 0);
    n += c;
  }
  double h = 0.0;
  const double log_k = std::log(static_cast<double>(k));
  for (int c : counts) {
    double p = static_cast<double>(c) / n;
    h += p * (std::log(1.0 / p) / log_k);
  }
  return h;
}

ERepairStats ERepair(Relation* d, const MatchEnvironment& env,
                     const ERepairOptions& options) {
  UC_CHECK(d != nullptr);
  ERepairRun run(d, env, options);
  return run.Run();
}

ERepairStats ERepair(Relation* d, const Relation& dm, const RuleSet& ruleset,
                     const ERepairOptions& options) {
  MatchEnvironment env(ruleset, dm, options.matcher);
  return ERepair(d, env, options);
}

}  // namespace core
}  // namespace uniclean
