#include "core/erepair.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "core/avl_tree.h"
#include "reasoning/dependency_graph.h"

namespace uniclean {
namespace core {

namespace {

using data::AttributeId;
using data::FixMark;
using data::Relation;
using data::TupleId;
using data::Value;
using rules::Cfd;
using rules::Md;
using rules::RuleId;
using rules::RuleSet;

std::string LhsKey(const data::Tuple& t,
                   const std::vector<AttributeId>& attrs) {
  std::string key;
  for (AttributeId a : attrs) {
    key += t.value(a).str();
    key.push_back('\x1f');
  }
  return key;
}

class ERepairRun {
 public:
  ERepairRun(Relation* d, const Relation& dm, const RuleSet& ruleset,
             const ERepairOptions& options)
      : d_(*d), dm_(dm), ruleset_(ruleset), options_(options) {
    change_count_.assign(static_cast<size_t>(d_.size()) *
                             static_cast<size_t>(d_.schema().arity()),
                         0);
    for (RuleId rule = 0; rule < ruleset_.num_rules(); ++rule) {
      if (!ruleset_.IsCfd(rule)) {
        matchers_.emplace(rule, std::make_unique<MdMatcher>(
                                    ruleset_.md(rule), dm_, options_.matcher));
      }
    }
  }

  ERepairStats Run() {
    // §6.2: sort the rules via the dependency graph (SCC condensation in
    // topological order, out/in-degree ratio within SCCs).
    reasoning::DependencyGraph graph(ruleset_);
    std::vector<RuleId> order = graph.ApplicationOrder();
    touched_prev_.assign(static_cast<size_t>(d_.size()), 1);  // pass 1: all
    touched_cur_.assign(static_cast<size_t>(d_.size()), 0);
    bool changed = true;
    while (changed) {
      changed = false;
      ++stats_.passes;
      for (RuleId rule : order) {
        int before = stats_.reliable_fixes;
        switch (ruleset_.kind(rule)) {
          case rules::RuleKind::kVariableCfd:
            VCfdResolve(rule);
            break;
          case rules::RuleKind::kConstantCfd:
            CCfdResolve(rule);
            break;
          case rules::RuleKind::kMd:
            MdResolve(rule);
            break;
        }
        if (stats_.reliable_fixes != before) changed = true;
      }
      std::swap(touched_prev_, touched_cur_);
      touched_cur_.assign(touched_cur_.size(), 0);
    }
    return stats_;
  }

 private:
  size_t CellIndex(TupleId t, AttributeId a) const {
    return static_cast<size_t>(t) *
               static_cast<size_t>(d_.schema().arity()) +
           static_cast<size_t>(a);
  }

  /// A cell may be rewritten unless it is a deterministic fix, asserted by
  /// confidence, or already rewritten δ1 times.
  bool Changeable(TupleId t, AttributeId a) const {
    const data::Tuple& tuple = d_.tuple(t);
    if (tuple.mark(a) == FixMark::kDeterministic) return false;
    if (tuple.confidence(a) >= options_.eta) return false;
    return change_count_[CellIndex(t, a)] < options_.delta1;
  }

  void ApplyFix(TupleId t, AttributeId a, const Value& v, RuleId rule) {
    data::Tuple& tuple = d_.mutable_tuple(t);
    UC_CHECK(tuple.value(a) != v);
    if (options_.on_fix) options_.on_fix(t, a, tuple.value(a), v, rule);
    tuple.set_value(a, v);
    tuple.set_mark(a, FixMark::kReliable);
    ++change_count_[CellIndex(t, a)];
    ++stats_.reliable_fixes;
    touched_cur_[static_cast<size_t>(t)] = 1;
  }

  /// Procedure vCFDReslove (§6.2) backed by the 2-in-1 structure of §6.3:
  /// a hash table from group key to the group's member list and value
  /// counts, plus an AVL tree keyed by entropy for the ascending walk.
  void VCfdResolve(RuleId rule) {
    const Cfd& cfd = ruleset_.cfd(rule);
    const AttributeId b = cfd.rhs()[0];
    struct Group {
      std::vector<TupleId> members;
      std::map<std::string, int> value_counts;
    };
    std::unordered_map<std::string, Group> table;  // HTab of Fig. 9
    for (TupleId t = 0; t < d_.size(); ++t) {
      const data::Tuple& tuple = d_.tuple(t);
      if (!cfd.MatchesLhs(tuple)) continue;
      if (tuple.value(b).is_null()) continue;  // satisfies trivially (§7)
      Group& g = table[LhsKey(tuple, cfd.lhs())];
      g.members.push_back(t);
      ++g.value_counts[tuple.value(b).str()];
    }
    // AVL tree T of Fig. 9: only groups with nonzero entropy appear.
    AvlTree<double, const Group*> tree;
    for (const auto& [key, group] : table) {
      if (group.value_counts.size() <= 1) continue;
      std::vector<int> counts;
      counts.reserve(group.value_counts.size());
      for (const auto& [value, c] : group.value_counts) counts.push_back(c);
      tree.Insert(GroupEntropy(counts), &group);
    }
    int skipped = tree.size();
    tree.VisitBelow(
        options_.delta2,
        [this, b, rule](double entropy, const Group* const& group) {
          (void)entropy;
          ResolveGroup(*group, b, rule);
          return true;
        });
    // Everything not visited had entropy >= δ2.
    stats_.groups_skipped_high_entropy += skipped - resolved_this_call_;
    stats_.groups_resolved += resolved_this_call_;
    resolved_this_call_ = 0;
  }

  template <typename Group>
  void ResolveGroup(const Group& group, AttributeId b, RuleId rule) {
    ++resolved_this_call_;
    // Majority value; ties break to the lexicographically smallest so the
    // outcome is deterministic.
    const std::string* best = nullptr;
    int best_count = -1;
    for (const auto& [value, count] : group.value_counts) {
      if (count > best_count) {
        best = &value;
        best_count = count;
      }
    }
    UC_CHECK(best != nullptr);
    Value target(*best);
    for (TupleId t : group.members) {
      if (d_.tuple(t).value(b) == target) continue;
      if (!Changeable(t, b)) continue;
      ApplyFix(t, b, target, rule);
    }
  }

  /// Procedure cCFDReslove (§6.2).
  void CCfdResolve(RuleId rule) {
    const Cfd& cfd = ruleset_.cfd(rule);
    const AttributeId b = cfd.rhs()[0];
    const Value target(cfd.rhs_pattern()[0].constant());
    for (TupleId t = 0; t < d_.size(); ++t) {
      const data::Tuple& tuple = d_.tuple(t);
      if (!cfd.MatchesLhs(tuple)) continue;
      if (cfd.RhsSatisfied(tuple)) continue;
      if (!Changeable(t, b)) continue;
      ApplyFix(t, b, target, rule);
    }
  }

  /// Procedure MDReslove (§6.2).
  void MdResolve(RuleId rule) {
    const Md& md = ruleset_.md(rule);
    const rules::MdAction& action = md.actions()[0];
    const MdMatcher& matcher = *matchers_.at(rule);
    for (TupleId t = 0; t < d_.size(); ++t) {
      // MD premises depend only on this tuple and the static master data:
      // skip tuples untouched since the previous pass.
      if (!touched_prev_[static_cast<size_t>(t)] &&
          !touched_cur_[static_cast<size_t>(t)]) {
        continue;
      }
      TupleId s = matcher.FindFirstMatch(d_.tuple(t));
      if (s < 0) continue;
      stats_.md_matches.emplace_back(t, s);
      const Value& master_value = dm_.tuple(s).value(action.master_attr);
      if (master_value.is_null()) continue;
      if (Value::SqlEquals(d_.tuple(t).value(action.data_attr),
                           master_value) &&
          !d_.tuple(t).value(action.data_attr).is_null()) {
        continue;
      }
      if (d_.tuple(t).value(action.data_attr) == master_value) continue;
      if (!Changeable(t, action.data_attr)) continue;
      ApplyFix(t, action.data_attr, master_value, rule);
    }
  }

  Relation& d_;
  const Relation& dm_;
  const RuleSet& ruleset_;
  const ERepairOptions& options_;
  ERepairStats stats_;
  int resolved_this_call_ = 0;

  std::vector<int> change_count_;  // per cell
  std::unordered_map<RuleId, std::unique_ptr<MdMatcher>> matchers_;
  std::vector<uint8_t> touched_prev_;  // tuples changed in the last pass
  std::vector<uint8_t> touched_cur_;   // tuples changed in this pass
};

}  // namespace

double GroupEntropy(const std::vector<int>& counts) {
  UC_CHECK(!counts.empty());
  const size_t k = counts.size();
  if (k <= 1) return 0.0;
  double n = 0;
  for (int c : counts) {
    UC_CHECK_GT(c, 0);
    n += c;
  }
  double h = 0.0;
  const double log_k = std::log(static_cast<double>(k));
  for (int c : counts) {
    double p = static_cast<double>(c) / n;
    h += p * (std::log(1.0 / p) / log_k);
  }
  return h;
}

ERepairStats ERepair(Relation* d, const Relation& dm, const RuleSet& ruleset,
                     const ERepairOptions& options) {
  UC_CHECK(d != nullptr);
  ERepairRun run(d, dm, ruleset, options);
  return run.Run();
}

}  // namespace core
}  // namespace uniclean
