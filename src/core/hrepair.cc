#include "core/hrepair.h"

#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/cost_model.h"
#include "core/equivalence.h"
#include "data/group_key.h"

namespace uniclean {
namespace core {

namespace {

using data::AttributeId;
using data::FixMark;
using data::Relation;
using data::TupleId;
using data::Value;
using rules::Cfd;
using rules::Md;
using rules::RuleId;
using rules::RuleSet;

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

using data::GroupKey;
using data::GroupKeyHash;

class HRepairRun {
 public:
  HRepairRun(Relation* d, const MatchEnvironment& env,
             const HRepairOptions& options)
      : view_(*d),
        original_(d->Clone()),
        env_(env),
        dm_(env.master()),
        ruleset_(env.rules()),
        options_(options),
        eq_(d->size(), d->schema().arity()),
        last_rule_(static_cast<size_t>(d->size()) *
                       static_cast<size_t>(d->schema().arity()),
                   -1) {
    // Corollary 7.1: deterministic fixes are preserved — freeze them.
    // Tombstoned tuples stay out of the class structure entirely: their
    // cells are never frozen, probed or retargeted.
    for (TupleId t = 0; t < view_.size(); ++t) {
      if (!view_.live(t)) continue;
      for (AttributeId a = 0; a < view_.schema().arity(); ++a) {
        if (view_.tuple(t).mark(a) == FixMark::kDeterministic) {
          eq_.Freeze(eq_.Cell(t, a), view_.tuple(t).value(a));
        }
      }
    }
  }

  HRepairStats Run() {
    touched_prev_.assign(static_cast<size_t>(view_.size()), 1);  // pass 1: all
    touched_cur_.assign(static_cast<size_t>(view_.size()), 0);
    bool changed = true;
    while (changed) {
      changed = false;
      ++stats_.passes;
      for (RuleId rule = 0; rule < ruleset_.num_rules(); ++rule) {
        // hRepair only observes fixes after the fixpoint below, so a
        // cancelled run rolls the view back to the phase entry state
        // (original_ is already a clone): zero committed fixes, no tear.
        if (options_.cancel != nullptr && options_.cancel->IsCancelled()) {
          stats_.interrupt = options_.cancel->status();
          view_ = original_;
          return stats_;
        }
        current_rule_ = rule;
        switch (ruleset_.kind(rule)) {
          case rules::RuleKind::kConstantCfd:
            changed |= ResolveConstantCfd(rule);
            break;
          case rules::RuleKind::kVariableCfd:
            changed |= ResolveVariableCfd(rule);
            break;
          case rules::RuleKind::kMd:
            changed |= ResolveMd(rule);
            break;
        }
      }
      std::swap(touched_prev_, touched_cur_);
      touched_cur_.assign(touched_cur_.size(), 0);
    }
    // Mark every cell whose value changed in this phase as a possible fix.
    for (TupleId t = 0; t < view_.size(); ++t) {
      if (!view_.live(t)) continue;
      for (AttributeId a = 0; a < view_.schema().arity(); ++a) {
        if (view_.tuple(t).value(a) != original_.tuple(t).value(a)) {
          if (options_.on_fix) {
            options_.on_fix(t, a, original_.tuple(t).value(a),
                            view_.tuple(t).value(a),
                            last_rule_[static_cast<size_t>(eq_.Cell(t, a))]);
          }
          view_.mutable_tuple(t).set_mark(a, FixMark::kPossible);
          ++stats_.possible_fixes;
        }
      }
    }
    return stats_;
  }

 private:
  /// Pushes the class target of `cell`'s class into the view and marks the
  /// affected tuples for re-probing in the next pass.
  void SyncClass(CellId cell) {
    CellId root = eq_.Find(cell);
    TargetKind kind = eq_.target_kind(root);
    if (kind == TargetKind::kUnfixed) return;  // singletons keep their value
    Value v = kind == TargetKind::kNull ? Value::Null()
                                        : eq_.target_constant(root);
    for (CellId member : eq_.Members(root)) {
      data::TupleId t = eq_.TupleOf(member);
      view_.mutable_tuple(t).set_value(eq_.AttrOf(member), v);
      last_rule_[static_cast<size_t>(member)] = current_rule_;
      touched_cur_[static_cast<size_t>(t)] = 1;
    }
  }

  /// Cost of retargeting the class of `cell` to constant `v` (or to null
  /// when `v` is the null value), measured against the original data.
  double ClassRetargetCost(CellId cell, const Value& v) {
    double cost = 0.0;
    for (CellId member : eq_.Members(eq_.Find(cell))) {
      TupleId t = eq_.TupleOf(member);
      AttributeId a = eq_.AttrOf(member);
      cost += CellCost(original_.tuple(t).value(a),
                       original_.tuple(t).confidence(a), v);
    }
    return cost;
  }

  /// Cost of `SetConstant(cell, v)` accounting for the upgrade-to-null case;
  /// kInfeasible when the class is frozen to a different constant.
  double SetConstantCost(CellId cell, const Value& v) {
    CellId root = eq_.Find(cell);
    if (eq_.frozen(root)) {
      return eq_.target_constant(root) == v ? 0.0 : kInfeasible;
    }
    if (eq_.target_kind(root) == TargetKind::kConstant &&
        eq_.target_constant(root) != v) {
      return ClassRetargetCost(root, Value::Null());  // will upgrade to null
    }
    if (eq_.target_kind(root) == TargetKind::kNull) return 0.0;
    return ClassRetargetCost(root, v);
  }

  double SetNullCost(CellId cell) {
    CellId root = eq_.Find(cell);
    if (eq_.frozen(root)) return kInfeasible;
    return ClassRetargetCost(root, Value::Null());
  }

  /// Cheapest non-frozen LHS cell of tuple `t` among `attrs`; -1 if all are
  /// frozen. Cost output in *cost.
  CellId CheapestNullableCell(TupleId t,
                              const std::vector<AttributeId>& attrs,
                              double* cost) {
    CellId best = -1;
    *cost = kInfeasible;
    for (AttributeId a : attrs) {
      CellId c = eq_.Cell(t, a);
      double null_cost = SetNullCost(c);
      if (null_cost < *cost) {
        *cost = null_cost;
        best = c;
      }
    }
    return best;
  }

  void ApplySetConstant(CellId cell, const Value& v) {
    bool ok = eq_.SetConstant(cell, v);
    UC_CHECK(ok);
    SyncClass(cell);
  }

  void ApplySetNull(CellId cell) {
    bool ok = eq_.SetNull(cell);
    UC_CHECK(ok);
    ++stats_.nulls_introduced;
    SyncClass(cell);
  }

  /// Resolves all current violations of a constant CFD; returns whether any
  /// change was made.
  bool ResolveConstantCfd(RuleId rule) {
    const Cfd& cfd = ruleset_.cfd(rule);
    const AttributeId b = cfd.rhs()[0];
    const Value& target = cfd.rhs_pattern()[0].value();
    bool changed = false;
    for (TupleId t = 0; t < view_.size(); ++t) {
      if (!view_.live(t)) continue;
      if (!cfd.MatchesLhs(view_.tuple(t))) continue;
      if (cfd.RhsSatisfied(view_.tuple(t))) continue;
      // Option 1: fix the RHS (to the constant, or upgrade to null).
      CellId rhs_cell = eq_.Cell(t, b);
      double fix_cost = SetConstantCost(rhs_cell, target);
      // Option 2: break the pattern match by nulling an LHS cell.
      double break_cost;
      CellId break_cell = CheapestNullableCell(t, cfd.lhs(), &break_cost);
      if (fix_cost == kInfeasible && break_cost == kInfeasible) {
        ++stats_.anomalies;
        continue;
      }
      if (fix_cost <= break_cost) {
        ApplySetConstant(rhs_cell, target);
      } else {
        ApplySetNull(break_cell);
      }
      changed = true;
    }
    return changed;
  }

  /// Resolves all current violations of a variable CFD pairwise within each
  /// conflicting group, then enriches original nulls from the group
  /// consensus (Example 1.1 step (d): t4[St] is filled from t3 once the
  /// group agrees).
  bool ResolveVariableCfd(RuleId rule) {
    const Cfd& cfd = ruleset_.cfd(rule);
    const AttributeId b = cfd.rhs()[0];
    std::unordered_map<GroupKey, std::vector<TupleId>, GroupKeyHash> groups;
    std::unordered_map<GroupKey, std::vector<TupleId>, GroupKeyHash>
        null_members;
    // First-encounter iteration order: resolution and enrichment order must
    // not depend on the hash of the (id-valued) group keys, or the repair
    // trace would vary with id assignment. Pointers into the node-stable
    // maps avoid re-hashing the keys at iteration time.
    std::vector<const std::vector<TupleId>*> group_order;
    std::vector<std::pair<GroupKey, const std::vector<TupleId>*>> null_order;
    for (TupleId t = 0; t < view_.size(); ++t) {
      if (!view_.live(t)) continue;
      const data::Tuple& tuple = view_.tuple(t);
      if (!cfd.MatchesLhs(tuple)) continue;
      if (tuple.value(b).is_null()) {
        // Only cells that were null in the input are enrichable; nulls this
        // phase introduced are final (lattice top).
        if (eq_.target_kind(eq_.Cell(t, b)) == TargetKind::kUnfixed) {
          auto [it, inserted] = null_members.try_emplace(
              GroupKey::Project(tuple, cfd.lhs()));
          if (inserted) null_order.emplace_back(it->first, &it->second);
          it->second.push_back(t);
        }
        continue;
      }
      auto [it, inserted] =
          groups.try_emplace(GroupKey::Project(tuple, cfd.lhs()));
      if (inserted) group_order.push_back(&it->second);
      it->second.push_back(t);
    }
    bool changed = false;
    for (const std::vector<TupleId>* members_ptr : group_order) {
      const std::vector<TupleId>& members = *members_ptr;
      if (members.size() < 2) continue;
      // Frequency of each RHS value within the group: on cost ties the
      // majority value wins (with zero-confidence cells every change is
      // free, and majority is by far the better heuristic).
      std::unordered_map<data::ValueId, int> value_votes;
      for (TupleId t : members) {
        ++value_votes[view_.tuple(t).value(b).id()];
      }
      TupleId anchor = members[0];
      for (size_t i = 1; i < members.size(); ++i) {
        TupleId t = members[i];
        // Re-validate on the live view: earlier resolutions may have fixed
        // this pair or nulled its cells already.
        if (!cfd.MatchesLhs(view_.tuple(anchor)) ||
            !cfd.MatchesLhs(view_.tuple(t))) {
          continue;
        }
        if (!view_.tuple(anchor).ProjectionEquals(view_.tuple(t),
                                                  cfd.lhs())) {
          continue;
        }
        if (Value::SqlEquals(view_.tuple(anchor).value(b),
                             view_.tuple(t).value(b))) {
          continue;
        }
        changed |= ResolveVariablePair(cfd, anchor, t, b, value_votes);
      }
    }
    // Enrichment: a null cell joins its group's consensus value.
    for (const auto& [key, nulls_ptr] : null_order) {
      const std::vector<TupleId>& nulls = *nulls_ptr;
      auto it = groups.find(key);
      if (it == groups.end()) continue;
      // The conflict resolution above ran first; use the (possibly updated)
      // live value of the group's anchor and require group agreement.
      const Value consensus = view_.tuple(it->second[0]).value(b);
      if (consensus.is_null()) continue;
      bool agrees = true;
      for (TupleId t : it->second) {
        if (!Value::SqlEquals(view_.tuple(t).value(b), consensus)) {
          agrees = false;
          break;
        }
      }
      if (!agrees) continue;
      for (TupleId t : nulls) {
        CellId cell = eq_.Cell(t, b);
        if (eq_.target_kind(cell) != TargetKind::kUnfixed) continue;
        if (!view_.tuple(t).value(b).is_null()) continue;
        ApplySetConstant(cell, consensus);
        changed = true;
      }
    }
    return changed;
  }

  bool ResolveVariablePair(
      const Cfd& cfd, TupleId t1, TupleId t2, AttributeId b,
      const std::unordered_map<data::ValueId, int>& value_votes) {
    CellId c1 = eq_.Cell(t1, b);
    CellId c2 = eq_.Cell(t2, b);
    const Value v1 = view_.tuple(t1).value(b);
    const Value v2 = view_.tuple(t2).value(b);
    // Option 1: merge the RHS classes, keeping the cheaper value (group
    // majority breaks cost ties). Frozen classes force their constant.
    double merge_cost = kInfeasible;
    Value winner;
    const bool f1 = eq_.frozen(c1);
    const bool f2 = eq_.frozen(c2);
    if (f1 && f2) {
      // Different constants (we are at a violation): merge impossible.
    } else if (f1 || f2) {
      winner = f1 ? v1 : v2;
      merge_cost = ClassRetargetCost(f1 ? c2 : c1, winner);
    } else {
      double cost1 = ClassRetargetCost(c2, v1) + ClassRetargetCost(c1, v1);
      double cost2 = ClassRetargetCost(c1, v2) + ClassRetargetCost(c2, v2);
      auto votes = [&value_votes](const Value& v) {
        auto it = value_votes.find(v.id());
        return it == value_votes.end() ? 0 : it->second;
      };
      if (cost1 < cost2) {
        winner = v1;
      } else if (cost2 < cost1) {
        winner = v2;
      } else {
        winner = votes(v1) >= votes(v2) ? v1 : v2;
      }
      merge_cost = std::min(cost1, cost2);
    }
    // Option 2: detach t2 (or t1) from the group by nulling an LHS cell.
    double break2_cost;
    CellId break2 = CheapestNullableCell(t2, cfd.lhs(), &break2_cost);
    double break1_cost;
    CellId break1 = CheapestNullableCell(t1, cfd.lhs(), &break1_cost);
    double break_cost = std::min(break1_cost, break2_cost);
    CellId break_cell = break1_cost <= break2_cost ? break1 : break2;

    if (merge_cost == kInfeasible && break_cost == kInfeasible) {
      ++stats_.anomalies;
      return false;
    }
    if (merge_cost <= break_cost) {
      if (f1 || f2) {
        // Equalize against a frozen class WITHOUT union: unioning would
        // freeze the dirty cell forever, and a later rule constraining the
        // same cell (e.g. a nation->region constant CFD whose LHS is also
        // frozen) would have no resolution left. Setting the constant keeps
        // the violation resolved while the cell can still upgrade to null.
        ApplySetConstant(f1 ? c2 : c1, winner);
      } else {
        bool ok = eq_.Merge(c1, c2, winner);
        UC_CHECK(ok);
        ++stats_.merges;
        SyncClass(c1);
      }
    } else {
      ApplySetNull(break_cell);
    }
    return true;
  }

  /// Resolves all current violations of an MD. After a fix the tuple's
  /// matches are re-derived on the live view (the written attribute may
  /// itself appear in the premise, as in ψ's FN clause); each re-derivation
  /// follows a lattice upgrade, so the inner loop is bounded.
  bool ResolveMd(RuleId rule) {
    const Md& md = ruleset_.md(rule);
    const rules::MdAction& action = md.actions()[0];
    const MdMatcher& matcher = *env_.matcher(rule);
    std::vector<AttributeId> premise_attrs;
    premise_attrs.reserve(md.premise().size());
    for (const rules::MdClause& c : md.premise()) {
      premise_attrs.push_back(c.data_attr);
    }
    bool changed = false;
    for (TupleId t = 0; t < view_.size(); ++t) {
      if (!view_.live(t)) continue;
      // MD premises depend only on this tuple's values and the (static)
      // master data: skip tuples untouched since the last pass.
      if (!touched_prev_[static_cast<size_t>(t)] &&
          !touched_cur_[static_cast<size_t>(t)]) {
        continue;
      }
      bool tuple_changed = true;
      while (tuple_changed) {
        tuple_changed = false;
      for (TupleId s : matcher.Matches(view_.tuple(t))) {
        stats_.md_matches.emplace_back(t, s);
        const Value& master_value = dm_.tuple(s).value(action.master_attr);
        if (Value::SqlEquals(view_.tuple(t).value(action.data_attr),
                             master_value)) {
          continue;
        }
        // Option 1: adopt the master value (or upgrade to null).
        CellId e_cell = eq_.Cell(t, action.data_attr);
        double fix_cost = master_value.is_null()
                              ? SetNullCost(e_cell)
                              : SetConstantCost(e_cell, master_value);
        // Option 2: break the premise.
        double break_cost;
        CellId break_cell =
            CheapestNullableCell(t, premise_attrs, &break_cost);
        if (fix_cost == kInfeasible && break_cost == kInfeasible) {
          ++stats_.anomalies;
          continue;
        }
        if (fix_cost <= break_cost) {
          if (master_value.is_null()) {
            ApplySetNull(e_cell);
          } else {
            ApplySetConstant(e_cell, master_value);
          }
        } else {
          ApplySetNull(break_cell);
        }
        changed = true;
        tuple_changed = true;
        break;  // re-derive this tuple's matches on the live view
      }
      }
    }
    return changed;
  }

  Relation& view_;
  Relation original_;
  const MatchEnvironment& env_;
  const Relation& dm_;
  const RuleSet& ruleset_;
  const HRepairOptions& options_;
  EquivalenceClasses eq_;
  HRepairStats stats_;
  RuleId current_rule_ = -1;         // rule whose violations are being fixed
  std::vector<RuleId> last_rule_;    // per cell: last rule that rewrote it
  std::vector<uint8_t> touched_prev_;  // tuples changed in the last pass
  std::vector<uint8_t> touched_cur_;   // tuples changed in this pass
};

}  // namespace

HRepairStats HRepair(Relation* d, const MatchEnvironment& env,
                     const HRepairOptions& options) {
  UC_CHECK(d != nullptr);
  HRepairRun run(d, env, options);
  return run.Run();
}

HRepairStats HRepair(Relation* d, const Relation& dm, const RuleSet& ruleset,
                     const HRepairOptions& options) {
  MatchEnvironment env(ruleset, dm, options.matcher);
  return HRepair(d, env, options);
}

}  // namespace core
}  // namespace uniclean
