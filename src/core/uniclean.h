// UniClean (Fig. 2): the tri-level data cleaning pipeline. Runs
//   1. cRepair  — deterministic fixes from confidence + master data (§5),
//   2. eRepair  — reliable fixes from entropy (§6),
//   3. hRepair  — possible fixes from heuristics, yielding a repair with
//                 Dr |= Σ and (Dr, Dm) |= Γ (§7),
// consecutively (no iteration between phases is needed — see the Remark at
// the end of §3.2). Every modified cell carries a FixMark identifying the
// phase that produced it.
//
// Not to be confused with "uniclean/uniclean.h": that is the library-wide
// umbrella header (which includes this one); this header declares only the
// core pipeline entry point.

#ifndef UNICLEAN_CORE_UNICLEAN_H_
#define UNICLEAN_CORE_UNICLEAN_H_

#include "core/crepair.h"
#include "core/erepair.h"
#include "core/hrepair.h"
#include "data/relation.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace core {

struct UniCleanOptions {
  /// Confidence threshold η (§5). The paper's experiments use 1.0 (only
  /// cells explicitly asserted by the user count); the running example uses
  /// 0.8.
  double eta = 0.8;
  /// Update threshold δ1 (§6).
  int delta1 = 5;
  /// Entropy threshold δ2 (§6). The paper's experiments use 0.8.
  double delta2 = 0.8;
  /// Suffix-tree blocking configuration (§5.2).
  MdMatcherOptions matcher;
  /// Phase switches (Uni(CFD) and the accuracy-per-phase experiments toggle
  /// these).
  bool run_crepair = true;
  bool run_erepair = true;
  bool run_hrepair = true;
};

struct UniCleanReport {
  CRepairStats crepair;
  ERepairStats erepair;
  HRepairStats hrepair;

  int total_fixes() const {
    return crepair.deterministic_fixes + erepair.reliable_fixes +
           hrepair.possible_fixes;
  }

  /// All record matches identified across the phases, deduplicated and
  /// sorted — the paper's "matches found by Uni" (Exp-2).
  std::vector<std::pair<data::TupleId, data::TupleId>> AllMatches() const;
};

/// Cleans `*d` in place against master data `dm` and the rules Θ.
///
/// DEPRECATED COMPATIBILITY SHIM (kept for one release): this free function
/// predates the `uniclean::Cleaner` façade (uniclean/cleaner.h) and is now a
/// thin wrapper over it — new code should use `CleanerBuilder`, which adds
/// validated configuration, Status-based error propagation, pluggable
/// phases, progress callbacks, a structured FixJournal, and — since the
/// session-scoped core::MatchEnvironment — warm reuse of the MD indexes and
/// memos across runs and datasets, which a one-shot free-function call can
/// never amortize. The same applies to the environment-less
/// `core::CRepair/ERepair/HRepair(d, dm, ruleset, ...)` overloads: each call
/// builds and discards a full MatchEnvironment. The shim is kept for source
/// compatibility; its definition lives in the uniclean_api library
/// (src/uniclean/), so callers must link uniclean::uniclean or
/// uniclean::api.
UniCleanReport UniClean(data::Relation* d, const data::Relation& dm,
                        const rules::RuleSet& ruleset,
                        const UniCleanOptions& options = {});

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_UNICLEAN_H_
