#include "core/equivalence.h"

#include <utility>

namespace uniclean {
namespace core {

EquivalenceClasses::EquivalenceClasses(int num_tuples, int arity)
    : arity_(arity), num_classes_(num_tuples * arity) {
  const size_t n = static_cast<size_t>(num_classes_);
  parent_.resize(n);
  rank_.assign(n, 0);
  info_.resize(n);
  for (CellId c = 0; c < num_classes_; ++c) {
    parent_[static_cast<size_t>(c)] = c;
    info_[static_cast<size_t>(c)].members.push_back(c);
  }
}

CellId EquivalenceClasses::Find(CellId c) {
  CellId root = c;
  while (parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
  }
  while (parent_[static_cast<size_t>(c)] != root) {
    CellId next = parent_[static_cast<size_t>(c)];
    parent_[static_cast<size_t>(c)] = root;
    c = next;
  }
  return root;
}

void EquivalenceClasses::Freeze(CellId c, const data::Value& v) {
  ClassInfo& ci = info(Find(c));
  UC_CHECK(!ci.frozen || ci.constant == v)
      << "conflicting deterministic fixes in one equivalence class";
  ci.kind = TargetKind::kConstant;
  ci.constant = v;
  ci.frozen = true;
}

bool EquivalenceClasses::SetConstant(CellId c, const data::Value& v) {
  ClassInfo& ci = info(Find(c));
  if (ci.frozen) return ci.constant == v;
  switch (ci.kind) {
    case TargetKind::kUnfixed:
      ci.kind = TargetKind::kConstant;
      ci.constant = v;
      return true;
    case TargetKind::kConstant:
      if (ci.constant == v) return true;
      ci.kind = TargetKind::kNull;  // constant -> different constant: upgrade
      ci.constant = data::Value();
      return true;
    case TargetKind::kNull:
      return true;
  }
  return true;
}

bool EquivalenceClasses::SetNull(CellId c) {
  ClassInfo& ci = info(Find(c));
  if (ci.frozen) return false;
  ci.kind = TargetKind::kNull;
  ci.constant = data::Value();
  return true;
}

bool EquivalenceClasses::Merge(CellId a, CellId b, const data::Value& winner) {
  CellId ra = Find(a);
  CellId rb = Find(b);
  if (ra == rb) {
    // Already one class; just (try to) set the winner.
    return SetConstant(ra, winner);
  }
  ClassInfo& ia = info(ra);
  ClassInfo& ib = info(rb);
  if (ia.frozen && ib.frozen) {
    if (ia.constant != ib.constant) return false;
  }
  // Resolve the merged target before the union.
  ClassInfo merged;
  merged.frozen = ia.frozen || ib.frozen;
  if (ia.frozen) {
    merged.kind = TargetKind::kConstant;
    merged.constant = ia.constant;
  } else if (ib.frozen) {
    merged.kind = TargetKind::kConstant;
    merged.constant = ib.constant;
  } else if (ia.kind == TargetKind::kNull || ib.kind == TargetKind::kNull) {
    merged.kind = TargetKind::kNull;
  } else {
    merged.kind = TargetKind::kConstant;
    merged.constant = winner;
  }
  // Union by rank.
  CellId root = ra;
  CellId child = rb;
  if (rank_[static_cast<size_t>(ra)] < rank_[static_cast<size_t>(rb)]) {
    root = rb;
    child = ra;
  } else if (rank_[static_cast<size_t>(ra)] ==
             rank_[static_cast<size_t>(rb)]) {
    ++rank_[static_cast<size_t>(ra)];
  }
  parent_[static_cast<size_t>(child)] = root;
  ClassInfo& rc = info(root);
  ClassInfo& cc = info(child);
  merged.members = std::move(rc.members);
  merged.members.insert(merged.members.end(), cc.members.begin(),
                        cc.members.end());
  cc.members.clear();
  cc.members.shrink_to_fit();
  rc = std::move(merged);
  --num_classes_;
  return true;
}

}  // namespace core
}  // namespace uniclean
