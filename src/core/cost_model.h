// The repair cost model of §3.1:
//   cost(Dr, D) = Σ_t Σ_A  t[A].cf * dis(t[A], t'[A]) / max(|t[A]|, |t'[A]|)
// The higher the confidence of the original value and the further the new
// value, the more a change costs. Used by hRepair to pick cheap resolutions
// and to report repair quality.

#ifndef UNICLEAN_CORE_COST_MODEL_H_
#define UNICLEAN_CORE_COST_MODEL_H_

#include "data/relation.h"

namespace uniclean {
namespace core {

/// Cost of changing one cell from `from` (with confidence `cf`) to `to`.
/// Changing to/from null costs as a full-length edit; a no-op costs 0.
double CellCost(const data::Value& from, double cf, const data::Value& to);

/// cost(Dr, D) over all cells; relations must have equal schema and size.
double RepairCost(const data::Relation& original,
                  const data::Relation& repaired);

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_COST_MODEL_H_
