// Equivalence classes over cells (t, A) with target values, the §7 machinery
// (after [Cong et al. 2007; Bohannon et al. 2005]): every cell belongs to a
// class; a repair assigns each class one target value targ(E) which is
// either not-yet-fixed, a constant, or null. Resolving violations merges
// classes or upgrades targets along the lattice
//     unfixed -> constant -> null
// (never constant -> different constant), which makes the repair process
// terminate. Classes containing a deterministic fix are frozen: their
// constant can never change (Corollary 7.1 preserves cRepair's output).
//
// Invariant: a class with more than one member always has a constant or
// null target (merging picks a winner immediately), so the materialized
// view is always well defined.

#ifndef UNICLEAN_CORE_EQUIVALENCE_H_
#define UNICLEAN_CORE_EQUIVALENCE_H_

#include <vector>

#include "common/check.h"
#include "data/relation.h"

namespace uniclean {
namespace core {

/// Dense id of a cell: t * arity + a.
using CellId = int;

/// The lattice state of a class target.
enum class TargetKind { kUnfixed, kConstant, kNull };

class EquivalenceClasses {
 public:
  EquivalenceClasses(int num_tuples, int arity);

  CellId Cell(data::TupleId t, data::AttributeId a) const {
    return t * arity_ + a;
  }
  data::TupleId TupleOf(CellId c) const { return c / arity_; }
  data::AttributeId AttrOf(CellId c) const { return c % arity_; }

  /// Class representative (union-find with path compression).
  CellId Find(CellId c);

  TargetKind target_kind(CellId c) { return info(Find(c)).kind; }
  const data::Value& target_constant(CellId c) {
    ClassInfo& ci = info(Find(c));
    UC_CHECK(ci.kind == TargetKind::kConstant);
    return ci.constant;
  }
  bool frozen(CellId c) { return info(Find(c)).frozen; }

  /// Cells of the class containing `c`.
  const std::vector<CellId>& Members(CellId c) {
    return info(Find(c)).members;
  }

  /// Freezes the class of `c` to the constant `v` (deterministic fixes).
  /// Requires the class to be unfrozen or frozen to the same value.
  void Freeze(CellId c, const data::Value& v);

  /// Sets / upgrades the target: unfixed -> v; constant v -> no-op;
  /// constant w != v -> null (upgrade); null stays null. Returns false (and
  /// changes nothing) if the class is frozen to a different constant.
  bool SetConstant(CellId c, const data::Value& v);

  /// Upgrades the target to null. Returns false if the class is frozen.
  bool SetNull(CellId c);

  /// Merges the classes of `a` and `b` and resolves their targets:
  /// frozen wins over anything (two frozen classes must agree — otherwise
  /// returns false and changes nothing); otherwise the constant `winner`
  /// becomes the target (callers pick the cheaper side); null wins over all
  /// non-frozen targets. Returns true on success.
  bool Merge(CellId a, CellId b, const data::Value& winner);

  int num_classes() const { return num_classes_; }

 private:
  struct ClassInfo {
    TargetKind kind = TargetKind::kUnfixed;
    data::Value constant;
    bool frozen = false;
    std::vector<CellId> members;
  };

  ClassInfo& info(CellId root) {
    return info_[static_cast<size_t>(root)];
  }

  int arity_;
  int num_classes_;
  std::vector<CellId> parent_;
  std::vector<int> rank_;
  std::vector<ClassInfo> info_;  // valid at roots
};

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_EQUIVALENCE_H_
