#include "core/uniclean.h"

#include <algorithm>

#include "common/check.h"

namespace uniclean {
namespace core {

std::vector<std::pair<data::TupleId, data::TupleId>>
UniCleanReport::AllMatches() const {
  std::vector<std::pair<data::TupleId, data::TupleId>> all;
  all.insert(all.end(), crepair.md_matches.begin(),
             crepair.md_matches.end());
  all.insert(all.end(), erepair.md_matches.begin(),
             erepair.md_matches.end());
  all.insert(all.end(), hrepair.md_matches.begin(),
             hrepair.md_matches.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

UniCleanReport UniClean(data::Relation* d, const data::Relation& dm,
                        const rules::RuleSet& ruleset,
                        const UniCleanOptions& options) {
  UC_CHECK(d != nullptr);
  UniCleanReport report;
  if (options.run_crepair) {
    CRepairOptions copts;
    copts.eta = options.eta;
    copts.matcher = options.matcher;
    report.crepair = CRepair(d, dm, ruleset, copts);
  }
  if (options.run_erepair) {
    ERepairOptions eopts;
    eopts.delta1 = options.delta1;
    eopts.delta2 = options.delta2;
    eopts.eta = options.eta;
    eopts.matcher = options.matcher;
    report.erepair = ERepair(d, dm, ruleset, eopts);
  }
  if (options.run_hrepair) {
    HRepairOptions hopts;
    hopts.matcher = options.matcher;
    report.hrepair = HRepair(d, dm, ruleset, hopts);
  }
  return report;
}

}  // namespace core
}  // namespace uniclean
