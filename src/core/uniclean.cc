#include "core/uniclean.h"

#include <algorithm>

#include "common/check.h"

namespace uniclean {
namespace core {

std::vector<std::pair<data::TupleId, data::TupleId>>
UniCleanReport::AllMatches() const {
  std::vector<std::pair<data::TupleId, data::TupleId>> all;
  all.insert(all.end(), crepair.md_matches.begin(),
             crepair.md_matches.end());
  all.insert(all.end(), erepair.md_matches.begin(),
             erepair.md_matches.end());
  all.insert(all.end(), hrepair.md_matches.begin(),
             hrepair.md_matches.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

// NOTE: UniClean() itself is defined in src/uniclean/legacy_shim.cc — it is
// a compatibility shim over the uniclean::Cleaner façade, which the core
// layer cannot depend on. Link uniclean::uniclean (or uniclean::api) to get
// the symbol.

}  // namespace core
}  // namespace uniclean
