#include "core/match_environment.h"

namespace uniclean {
namespace core {

MatchEnvironment::MatchEnvironment(const rules::RuleSet& rules,
                                   const data::Relation& master,
                                   const MdMatcherOptions& options)
    : rules_(&rules),
      master_(&master),
      options_(options),
      indexed_master_size_(master.size()) {
  matchers_.resize(static_cast<size_t>(rules.num_rules()));
  for (rules::RuleId rule = 0; rule < rules.num_rules(); ++rule) {
    if (rules.IsCfd(rule)) continue;
    matchers_[static_cast<size_t>(rule)] =
        std::make_unique<MdMatcher>(rules.md(rule), master, options_);
    ++num_matchers_;
  }
}

int MatchEnvironment::RefreshMasterAppend() {
  for (auto& matcher : matchers_) {
    if (matcher != nullptr) matcher->AppendMaster();
  }
  const int newly_indexed = master_->size() - indexed_master_size_;
  indexed_master_size_ = master_->size();
  return newly_indexed;
}

core::MemoStats MatchEnvironment::MemoStats() const {
  core::MemoStats total;
  for (const auto& matcher : matchers_) {
    if (matcher != nullptr) total += matcher->memo_stats();
  }
  return total;
}

}  // namespace core
}  // namespace uniclean
