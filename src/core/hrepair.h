// hRepair (§7): heuristic "possible" fixes that make the database fully
// consistent. Extends the equivalence-class method of [Cong et al. 2007]
// with (a) matching against master data via MDs, (b) preservation of the
// deterministic fixes from cRepair (frozen classes), and (c) retention of
// reliable fixes whenever possible. Violations are resolved by the cheapest
// option under the §3.1 cost model:
//   * constant CFD:   write the pattern constant into the RHS class, or
//                     break the pattern match by nulling an LHS cell;
//   * variable CFD:   merge the two RHS classes (keeping the cheaper value),
//                     or null an LHS cell of one side;
//   * MD:             write the master value into the data class, or break
//                     the premise by nulling a premise cell.
// Targets only ever move up the lattice unfixed -> constant -> null and
// merges reduce the class count, so the process terminates (§7), with
// Dr |= Σ and (Dr, Dm) |= Γ under the §7 null semantics.

#ifndef UNICLEAN_CORE_HREPAIR_H_
#define UNICLEAN_CORE_HREPAIR_H_

#include "common/cancellation.h"
#include "common/status.h"
#include "core/fix_observer.h"
#include "core/match_environment.h"
#include "core/md_matcher.h"
#include "data/relation.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace core {

struct HRepairOptions {
  /// Only consulted by the deprecated environment-less entry point; when a
  /// MatchEnvironment is borrowed, its own options govern retrieval.
  MdMatcherOptions matcher;
  /// Optional per-fix callback (see fix_observer.h); called once per possible
  /// fix — i.e. per cell whose final value differs from the phase input —
  /// with the rule that last retargeted the cell's equivalence class.
  FixObserver on_fix;
  /// Optional cooperative-cancellation token, polled between rule
  /// resolutions. hRepair observes its fixes only once the fixpoint is
  /// reached, so on trip the phase rolls the relation back to its entry
  /// state (it already keeps a clone for the cost model): zero fixes
  /// committed, HRepairStats::interrupt set, never a torn relation.
  const common::CancelToken* cancel = nullptr;
};

struct HRepairStats {
  /// Record matches identified while cleaning (see CRepairStats).
  std::vector<std::pair<data::TupleId, data::TupleId>> md_matches;
  /// Cells whose final value differs from the phase input, marked
  /// FixMark::kPossible.
  int possible_fixes = 0;
  /// Equivalence-class merges performed.
  int merges = 0;
  /// Cells set to null to break otherwise-unresolvable conflicts.
  int nulls_introduced = 0;
  /// Passes over the rule set until no violations remained.
  int passes = 0;
  /// Violations that could not be resolved (conflicting frozen classes —
  /// indicates contradictory deterministic fixes; 0 for consistent input).
  int anomalies = 0;
  /// OK for a completed run; DeadlineExceeded/Cancelled when
  /// HRepairOptions::cancel tripped (the relation was rolled back to the
  /// phase's entry state).
  Status interrupt;
};

/// Runs hRepair in place; returns statistics. After the call (with zero
/// anomalies), the live tuples of `*d` satisfy every CFD and MD of the
/// environment's rules w.r.t. its master relation (tombstoned tuples are
/// skipped). Borrows the shared match environment instead of building
/// per-run matchers; `options.matcher` is ignored on this path.
HRepairStats HRepair(data::Relation* d, const MatchEnvironment& env,
                     const HRepairOptions& options = {});

/// DEPRECATED: environment-less entry point. Rebuilds every MD index and
/// memo per call; share a core::MatchEnvironment (or use
/// uniclean::CleanEngine) and call the overload above. Kept only for the
/// parity pins in match_environment_test; removed next release.
[[deprecated(
    "build a core::MatchEnvironment once and call "
    "HRepair(d, env, options)")]]
HRepairStats HRepair(data::Relation* d, const data::Relation& dm,
                     const rules::RuleSet& ruleset,
                     const HRepairOptions& options = {});

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_HREPAIR_H_
