// A self-balancing AVL tree with multiset semantics, the ordered half of the
// "2-in-1" structure of §6.3: eRepair keys conflict groups by entropy and
// walks them in ascending order, resolving the most certain groups first and
// stopping at the entropy threshold δ2.

#ifndef UNICLEAN_CORE_AVL_TREE_H_
#define UNICLEAN_CORE_AVL_TREE_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/check.h"

namespace uniclean {
namespace core {

/// AVL tree mapping ordered keys to values; duplicate keys allowed.
template <typename Key, typename Value, typename Compare = std::less<Key>>
class AvlTree {
 public:
  explicit AvlTree(Compare cmp = Compare()) : cmp_(std::move(cmp)) {}

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Insert(const Key& key, Value value) {
    root_ = Insert(std::move(root_), key, std::move(value));
    ++size_;
  }

  /// Removes one entry with exactly this (key, value); value must be
  /// equality-comparable. Returns true if an entry was removed.
  bool Erase(const Key& key, const Value& value) {
    bool erased = false;
    root_ = Erase(std::move(root_), key, value, &erased);
    if (erased) --size_;
    return erased;
  }

  /// In-order visit of entries with key < bound; the visitor returns false
  /// to stop early.
  void VisitBelow(const Key& bound,
                  const std::function<bool(const Key&, const Value&)>& visit)
      const {
    bool keep_going = true;
    VisitBelow(root_.get(), bound, visit, &keep_going);
  }

  /// In-order visit of all entries.
  void VisitAll(
      const std::function<bool(const Key&, const Value&)>& visit) const {
    bool keep_going = true;
    VisitAll(root_.get(), visit, &keep_going);
  }

  /// Smallest key (requires !empty()).
  const Key& MinKey() const {
    UC_CHECK(!empty());
    const Node* n = root_.get();
    while (n->left) n = n->left.get();
    return n->key;
  }

  /// Height of the tree (0 for empty); exposed for balance tests.
  int Height() const { return Height(root_.get()); }

  /// Validates AVL invariants (ordering + balance); for tests.
  bool CheckInvariants() const {
    bool ok = true;
    CheckNode(root_.get(), nullptr, nullptr, &ok);
    return ok;
  }

 private:
  struct Node {
    Key key;
    Value value;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
    int height = 1;

    Node(const Key& k, Value v) : key(k), value(std::move(v)) {}
  };
  using NodePtr = std::unique_ptr<Node>;

  static int Height(const Node* n) { return n ? n->height : 0; }
  static int Balance(const Node* n) {
    return n ? Height(n->left.get()) - Height(n->right.get()) : 0;
  }
  static void Update(Node* n) {
    n->height = 1 + std::max(Height(n->left.get()), Height(n->right.get()));
  }

  static NodePtr RotateRight(NodePtr y) {
    NodePtr x = std::move(y->left);
    y->left = std::move(x->right);
    Update(y.get());
    x->right = std::move(y);
    Update(x.get());
    return x;
  }

  static NodePtr RotateLeft(NodePtr x) {
    NodePtr y = std::move(x->right);
    x->right = std::move(y->left);
    Update(x.get());
    y->left = std::move(x);
    Update(y.get());
    return y;
  }

  static NodePtr Rebalance(NodePtr n) {
    Update(n.get());
    int balance = Balance(n.get());
    if (balance > 1) {
      if (Balance(n->left.get()) < 0) n->left = RotateLeft(std::move(n->left));
      return RotateRight(std::move(n));
    }
    if (balance < -1) {
      if (Balance(n->right.get()) > 0) {
        n->right = RotateRight(std::move(n->right));
      }
      return RotateLeft(std::move(n));
    }
    return n;
  }

  NodePtr Insert(NodePtr n, const Key& key, Value value) {
    if (!n) return std::make_unique<Node>(key, std::move(value));
    if (cmp_(key, n->key)) {
      n->left = Insert(std::move(n->left), key, std::move(value));
    } else {
      n->right = Insert(std::move(n->right), key, std::move(value));
    }
    return Rebalance(std::move(n));
  }

  NodePtr Erase(NodePtr n, const Key& key, const Value& value, bool* erased) {
    if (!n) return n;
    if (cmp_(key, n->key)) {
      n->left = Erase(std::move(n->left), key, value, erased);
    } else if (cmp_(n->key, key)) {
      n->right = Erase(std::move(n->right), key, value, erased);
    } else if (n->value == value) {
      *erased = true;
      if (!n->left) return std::move(n->right);
      if (!n->right) return std::move(n->left);
      // Replace with in-order successor.
      Node* succ = n->right.get();
      while (succ->left) succ = succ->left.get();
      n->key = succ->key;
      n->value = succ->value;
      bool dummy = false;
      n->right = EraseExact(std::move(n->right), succ, &dummy);
    } else {
      // Equal keys, different value: the match may be in either subtree
      // (duplicates are inserted to the right, but rotations move them).
      n->right = Erase(std::move(n->right), key, value, erased);
      if (!*erased) n->left = Erase(std::move(n->left), key, value, erased);
    }
    if (!n) return n;
    return Rebalance(std::move(n));
  }

  /// Erases the specific node `target` (by address) from the subtree.
  NodePtr EraseExact(NodePtr n, const Node* target, bool* erased) {
    if (!n) return n;
    if (n.get() == target) {
      *erased = true;
      if (!n->left) return std::move(n->right);
      if (!n->right) return std::move(n->left);
      Node* succ = n->right.get();
      while (succ->left) succ = succ->left.get();
      n->key = succ->key;
      n->value = succ->value;
      bool dummy = false;
      n->right = EraseExact(std::move(n->right), succ, &dummy);
    } else if (cmp_(target->key, n->key)) {
      n->left = EraseExact(std::move(n->left), target, erased);
      if (!*erased) n->right = EraseExact(std::move(n->right), target, erased);
    } else {
      n->right = EraseExact(std::move(n->right), target, erased);
      if (!*erased) n->left = EraseExact(std::move(n->left), target, erased);
    }
    return Rebalance(std::move(n));
  }

  void VisitBelow(const Node* n, const Key& bound,
                  const std::function<bool(const Key&, const Value&)>& visit,
                  bool* keep_going) const {
    if (!n || !*keep_going) return;
    VisitBelow(n->left.get(), bound, visit, keep_going);
    if (!*keep_going) return;
    if (!cmp_(n->key, bound)) return;  // n->key >= bound: stop this branch
    if (!visit(n->key, n->value)) {
      *keep_going = false;
      return;
    }
    VisitBelow(n->right.get(), bound, visit, keep_going);
  }

  void VisitAll(const Node* n,
                const std::function<bool(const Key&, const Value&)>& visit,
                bool* keep_going) const {
    if (!n || !*keep_going) return;
    VisitAll(n->left.get(), visit, keep_going);
    if (!*keep_going) return;
    if (!visit(n->key, n->value)) {
      *keep_going = false;
      return;
    }
    VisitAll(n->right.get(), visit, keep_going);
  }

  void CheckNode(const Node* n, const Key* lo, const Key* hi, bool* ok) const {
    if (!n || !*ok) return;
    if (lo && cmp_(n->key, *lo)) *ok = false;
    if (hi && cmp_(*hi, n->key)) *ok = false;
    if (std::abs(Balance(n)) > 1) *ok = false;
    int expected = 1 + std::max(Height(n->left.get()), Height(n->right.get()));
    if (n->height != expected) *ok = false;
    CheckNode(n->left.get(), lo, &n->key, ok);
    CheckNode(n->right.get(), &n->key, hi, ok);
  }

  Compare cmp_;
  NodePtr root_;
  int size_ = 0;
};

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_AVL_TREE_H_
