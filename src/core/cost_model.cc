#include "core/cost_model.h"

#include "common/check.h"
#include "similarity/metrics.h"

namespace uniclean {
namespace core {

double CellCost(const data::Value& from, double cf, const data::Value& to) {
  if (from == to) return 0.0;
  if (from.is_null() || to.is_null()) {
    // Treat null as maximally distant: dis/max = 1.
    return cf;
  }
  return cf * similarity::NormalizedEditDistance(from.view(), to.view());
}

double RepairCost(const data::Relation& original,
                  const data::Relation& repaired) {
  UC_CHECK_EQ(original.size(), repaired.size());
  UC_CHECK_EQ(original.schema().arity(), repaired.schema().arity());
  double cost = 0.0;
  for (data::TupleId t = 0; t < original.size(); ++t) {
    for (data::AttributeId a = 0; a < original.schema().arity(); ++a) {
      cost += CellCost(original.tuple(t).value(a),
                       original.tuple(t).confidence(a),
                       repaired.tuple(t).value(a));
    }
  }
  return cost;
}

}  // namespace core
}  // namespace uniclean
