// MdMatcher: finds the master tuples whose MD premise holds with a data
// tuple. Equality clauses use a hash index on the master projection (keyed
// on interned value ids); when an MD has only similarity clauses, the §5.2
// suffix-tree blocking retrieves the top-l master values by longest common
// substring and only those candidates are verified — reducing the per-tuple
// cost from O(|Dm|) to O(l). Similarity clause outcomes are memoized per
// (data id, master id) pair, so a value pair is scored at most once per
// clause over the whole cleaning run. A brute-force mode exists for the
// blocking ablation bench.

#ifndef UNICLEAN_CORE_MD_MATCHER_H_
#define UNICLEAN_CORE_MD_MATCHER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/group_key.h"
#include "data/relation.h"
#include "data/string_pool.h"
#include "rules/md.h"
#include "similarity/suffix_tree.h"

namespace uniclean {
namespace core {

struct MdMatcherOptions {
  /// Candidates retrieved per similarity probe ("we find that l <= 20
  /// typically suffices", §5.2).
  int top_l = 20;
  /// When false, every master tuple is verified (ablation baseline).
  bool use_blocking = true;
  /// When false, the blocking / similarity / match memos are bypassed and
  /// every probe pays its full cost. Only the ablation benches turn this
  /// off, so they measure per-probe match cost rather than cache hits.
  bool use_memos = true;
};

class MdMatcher {
 public:
  /// Builds the index for one normalized MD over the master relation.
  MdMatcher(const rules::Md& md, const data::Relation& dm,
            const MdMatcherOptions& options = {});

  /// Master tuple ids whose premise holds with `t`, ascending. Matching is
  /// a pure function of the premise projection's interned ids (the master
  /// data is static), so results are cached per projection: re-probing an
  /// unchanged tuple is a hash lookup. The returned reference is owned by
  /// the matcher's memo and stays valid until the matcher is destroyed —
  /// except with use_memos = false, where it points at scratch overwritten
  /// by the next call.
  const std::vector<data::TupleId>& Matches(const data::Tuple& t) const;

  /// Copying wrapper around Matches() (compatibility).
  std::vector<data::TupleId> FindMatches(const data::Tuple& t) const;

  /// First matching master tuple id, or -1.
  data::TupleId FindFirstMatch(const data::Tuple& t) const;

  const rules::Md& md() const { return md_; }

  /// Process-wide count of MdMatcher constructions (each construction pays
  /// the full index-build cost). Tests assert index sharing with it: a warm
  /// Cleaner re-run must not move this counter.
  static uint64_t ConstructedCount();

 private:
  const std::vector<data::TupleId>& Candidates(const data::Tuple& t) const;
  const std::vector<data::TupleId>& AllMasters() const;
  bool Verify(const data::Tuple& t, data::TupleId s) const;

  const rules::Md& md_;
  const data::Relation& dm_;
  MdMatcherOptions options_;

  // Equality-clause blocking: key over all equality clauses' master values.
  std::vector<size_t> equality_clauses_;
  std::unordered_map<data::GroupKey, std::vector<data::TupleId>,
                     data::GroupKeyHash>
      equality_index_;

  // Similarity blocking (used when no equality clause exists): suffix tree
  // over the distinct master values of the first similarity clause.
  int blocking_clause_ = -1;
  similarity::GeneralizedSuffixTree tree_;
  std::vector<std::vector<data::TupleId>> value_owners_;  // per string id

  // Per-premise-clause memo of similarity outcomes (see rules::ClauseMemo),
  // lazily filled by PremiseHolds during Verify.
  mutable rules::ClauseMemo sim_cache_;

  // Memo of suffix-tree blocking results per probed value id: TopL over the
  // static master index is a pure function of the probe string, and dirty
  // data re-probes the same (often duplicated) values constantly.
  mutable std::unordered_map<data::ValueId, std::vector<data::TupleId>>
      blocking_cache_;

  // Memo of full match lists keyed by the premise projection of the data
  // tuple. References handed out by Matches() point into this map (node
  // stability; entries are never erased).
  mutable std::unordered_map<data::GroupKey, std::vector<data::TupleId>,
                             data::GroupKeyHash>
      match_cache_;

  // Lazily materialized 0..|Dm|-1 (brute force / empty premise paths).
  mutable std::vector<data::TupleId> all_masters_;

  // Scratch results when use_memos is off (overwritten per call).
  mutable std::vector<data::TupleId> scratch_candidates_;
  mutable std::vector<data::TupleId> scratch_matches_;
};

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_MD_MATCHER_H_
