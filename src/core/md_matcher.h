// MdMatcher: finds the master tuples whose MD premise holds with a data
// tuple. Equality clauses use a hash index on the master projection (keyed
// on interned value ids); when an MD has only similarity clauses, the §5.2
// suffix-tree blocking retrieves the top-l master values by longest common
// substring and only those candidates are verified — reducing the per-tuple
// cost from O(|Dm|) to O(l). Similarity clause outcomes are memoized per
// (data id, master id) pair, so a value pair is scored at most once per
// clause over the whole cleaning run. A brute-force mode exists for the
// blocking ablation bench.
//
// Thread safety: after construction the indexes are immutable and the memos
// are sharded behind striped locks (see core/sharded_memo.h), so any number
// of threads may call Matches / FindMatches / FindFirstMatch concurrently —
// the engine entry point concurrent uniclean::Session runs rely on. Every
// memoized result is a pure function of its key over the static master
// data, so cache sharing across threads cannot change outcomes. The one
// mutating operation is AppendMaster() (master-data growth), which
// requires exclusive access. References
// returned by Matches() stay valid for the matcher's lifetime when they
// point into a memo; results that were refused admission (capacity cap, or
// use_memos = false) live in per-(thread, matcher) scratch valid until the
// same thread's next probe of the same matcher.

#ifndef UNICLEAN_CORE_MD_MATCHER_H_
#define UNICLEAN_CORE_MD_MATCHER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "core/sharded_memo.h"
#include "data/group_key.h"
#include "data/relation.h"
#include "data/string_pool.h"
#include "rules/md.h"
#include "similarity/suffix_tree.h"

namespace uniclean {
namespace snapshot {
class Codec;  // snapshot/codec.h: persists the matcher's built indexes
}  // namespace snapshot
namespace core {

struct MdMatcherOptions {
  /// Candidates retrieved per similarity probe ("we find that l <= 20
  /// typically suffices", §5.2).
  int top_l = 20;
  /// When false, every master tuple is verified (ablation baseline).
  bool use_blocking = true;
  /// When false, the blocking / similarity / match memos are bypassed and
  /// every probe pays its full cost. Only the ablation benches turn this
  /// off, so they measure per-probe match cost rather than cache hits.
  bool use_memos = true;
  /// Caps the resident entries of each memo map (the match-list memo, the
  /// blocking memo, and each premise clause's similarity memo are capped
  /// independently); 0 = unbounded. Past the cap new results are still
  /// computed but refused admission (counted as MemoStats::evictions), so
  /// handed-out references never dangle and a long-lived serving session's
  /// memory stops growing. See ROADMAP "memo growth in long-lived sessions".
  size_t memo_capacity = 0;
};

class MdMatcher {
 public:
  /// Builds the index for one normalized MD over the master relation.
  MdMatcher(const rules::Md& md, const data::Relation& dm,
            const MdMatcherOptions& options = {});

  MdMatcher(const MdMatcher&) = delete;
  MdMatcher& operator=(const MdMatcher&) = delete;

  /// Master tuple ids whose premise holds with `t`, ascending. Matching is
  /// a pure function of the premise projection's interned ids (the master
  /// data is static), so results are cached per projection: re-probing an
  /// unchanged tuple is a hash lookup. The returned reference is owned by
  /// the matcher's memo and stays valid until the matcher is destroyed —
  /// except with use_memos = false or past the memo capacity cap, where it
  /// points at per-(thread, matcher) scratch overwritten by the calling
  /// thread's next probe of *this* matcher (probing other matchers leaves
  /// it intact). Safe to call from any number of threads concurrently.
  const std::vector<data::TupleId>& Matches(const data::Tuple& t) const;

  /// Copying wrapper around Matches() (compatibility).
  std::vector<data::TupleId> FindMatches(const data::Tuple& t) const;

  /// First matching master tuple id, or -1.
  data::TupleId FindFirstMatch(const data::Tuple& t) const;

  const rules::Md& md() const { return md_; }

  /// Aggregated statistics of this matcher's memos (match lists, blocking
  /// candidates, per-clause similarity outcomes). Counters are live atomics;
  /// the entry/byte figures briefly lock each memo shard in turn.
  MemoStats memo_stats() const;

  /// Process-wide count of MdMatcher constructions (each construction pays
  /// the full index-build cost). Tests assert index sharing with it: a warm
  /// Cleaner re-run must not move this counter.
  static uint64_t ConstructedCount();

  /// Master tuples covered by the indexes: dm.size() at construction and
  /// after every AppendMaster() call; falls behind when the caller appends
  /// tuples to the master relation.
  int indexed_masters() const { return indexed_masters_; }

  /// Folds master tuples appended since construction (or the previous call)
  /// into the indexes: the equality index and the materialized all-masters
  /// list grow incrementally; the suffix tree is rebuilt (Ukkonen's build is
  /// one-shot). The match-list and blocking memos are dropped — their
  /// entries were computed against the smaller master — while the
  /// per-clause similarity memos survive: a similarity outcome is a pure
  /// function of the two value ids, independent of the master's extent.
  /// Returns the number of newly indexed master tuples.
  ///
  /// NOT thread-safe: requires exclusive access to the matcher (no
  /// concurrent probes, no live references into the dropped memos). The
  /// master relation must only have grown by appends since the last index;
  /// already-indexed tuples must be unchanged.
  int AppendMaster();

 private:
  // snapshot::Codec restores a matcher from a snapshot section: the restore
  // constructor below does everything the public one does *except* the
  // index build (the codec installs the deserialized equality index or
  // suffix tree afterwards) and except bumping ConstructedCount() — a
  // snapshot-warmed engine deliberately reports zero index builds.
  friend class ::uniclean::snapshot::Codec;
  struct RestoreTag {};
  MdMatcher(const rules::Md& md, const data::Relation& dm,
            const MdMatcherOptions& options, RestoreTag);

  const std::vector<data::TupleId>& Candidates(const data::Tuple& t) const;
  bool Verify(const data::Tuple& t, data::TupleId s) const;
  void IndexEqualityRange(data::TupleId begin, data::TupleId end);
  void RebuildSuffixTree();

  const rules::Md& md_;
  const data::Relation& dm_;
  MdMatcherOptions options_;

  // Equality-clause blocking: key over all equality clauses' master values.
  // Immutable after construction.
  std::vector<size_t> equality_clauses_;
  std::unordered_map<data::GroupKey, std::vector<data::TupleId>,
                     data::GroupKeyHash>
      equality_index_;

  // Similarity blocking (used when no equality clause exists): suffix tree
  // over the distinct master values of the first similarity clause.
  // Immutable after construction.
  int blocking_clause_ = -1;
  similarity::GeneralizedSuffixTree tree_;
  std::vector<std::vector<data::TupleId>> value_owners_;  // per string id

  // Per-premise-clause memo of similarity outcomes keyed on
  // (data id << 32 | master id), lazily filled during Verify. deque: the
  // sharded memos own mutexes and never move.
  std::deque<ShardedMemo<uint64_t, bool>> sim_cache_;

  // Memo of suffix-tree blocking results per probed value id: TopL over the
  // static master index is a pure function of the probe string, and dirty
  // data re-probes the same (often duplicated) values constantly.
  ShardedMemo<data::ValueId, std::vector<data::TupleId>> blocking_cache_;

  // Memo of full match lists keyed by the premise projection of the data
  // tuple. References handed out by Matches() point into this map (node
  // stability; entries are never erased).
  ShardedMemo<data::GroupKey, std::vector<data::TupleId>, data::GroupKeyHash>
      match_cache_;

  // Materialized 0..|Dm|-1 (brute force / empty premise paths); built in
  // the constructor when one of those paths is configured, immutable after.
  std::vector<data::TupleId> all_masters_;

  // Master tuples covered by the indexes above; see AppendMaster().
  int indexed_masters_ = 0;
};

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_MD_MATCHER_H_
