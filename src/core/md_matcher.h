// MdMatcher: finds the master tuples whose MD premise holds with a data
// tuple. Equality clauses use a hash index on the master projection; when an
// MD has only similarity clauses, the §5.2 suffix-tree blocking retrieves
// the top-l master values by longest common substring and only those
// candidates are verified — reducing the per-tuple cost from O(|Dm|) to
// O(l). A brute-force mode exists for the blocking ablation bench.

#ifndef UNICLEAN_CORE_MD_MATCHER_H_
#define UNICLEAN_CORE_MD_MATCHER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "data/relation.h"
#include "rules/md.h"
#include "similarity/suffix_tree.h"

namespace uniclean {
namespace core {

struct MdMatcherOptions {
  /// Candidates retrieved per similarity probe ("we find that l <= 20
  /// typically suffices", §5.2).
  int top_l = 20;
  /// When false, every master tuple is verified (ablation baseline).
  bool use_blocking = true;
};

class MdMatcher {
 public:
  /// Builds the index for one normalized MD over the master relation.
  MdMatcher(const rules::Md& md, const data::Relation& dm,
            const MdMatcherOptions& options = {});

  /// Master tuple ids whose premise holds with `t`, ascending.
  std::vector<data::TupleId> FindMatches(const data::Tuple& t) const;

  /// First matching master tuple id, or -1.
  data::TupleId FindFirstMatch(const data::Tuple& t) const;

  const rules::Md& md() const { return md_; }

 private:
  std::vector<data::TupleId> Candidates(const data::Tuple& t) const;
  bool Verify(const data::Tuple& t, data::TupleId s) const;

  const rules::Md& md_;
  const data::Relation& dm_;
  MdMatcherOptions options_;

  // Equality-clause blocking: key over all equality clauses' master values.
  std::vector<size_t> equality_clauses_;
  std::unordered_map<std::string, std::vector<data::TupleId>> equality_index_;

  // Similarity blocking (used when no equality clause exists): suffix tree
  // over the distinct master values of the first similarity clause.
  int blocking_clause_ = -1;
  similarity::GeneralizedSuffixTree tree_;
  std::vector<std::vector<data::TupleId>> value_owners_;  // per string id
};

}  // namespace core
}  // namespace uniclean

#endif  // UNICLEAN_CORE_MD_MATCHER_H_
