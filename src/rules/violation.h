// Violation detection for CFDs and MDs. Used by tests, examples and the
// heuristic repair phase; the phase-1/2 engines use incremental structures
// instead of re-scanning.

#ifndef UNICLEAN_RULES_VIOLATION_H_
#define UNICLEAN_RULES_VIOLATION_H_

#include <vector>

#include "data/relation.h"
#include "rules/cfd.h"
#include "rules/md.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace rules {

/// A CFD violation: for constant CFDs, `t2 == kNoTuple` and t1 alone matches
/// the LHS pattern with a wrong RHS; for variable CFDs, (t1, t2) agree on
/// the LHS but differ on the RHS.
struct CfdViolation {
  RuleId rule;
  data::TupleId t1;
  data::TupleId t2;

  static constexpr data::TupleId kNoTuple = -1;
};

/// An MD violation: data tuple t matches master tuple s on the premise but
/// disagrees on the action attribute.
struct MdViolation {
  RuleId rule;
  data::TupleId t;
  data::TupleId s;
};

/// Finds up to `limit` violations of the normalized CFD `ruleset.cfd(rule)`.
/// For variable CFDs, each LHS group contributes pairs between the group's
/// first tuple holding each distinct RHS value and every tuple disagreeing
/// with it, so every offending tuple appears in at least one violation.
std::vector<CfdViolation> FindCfdViolations(const data::Relation& d,
                                            const RuleSet& ruleset,
                                            RuleId rule,
                                            size_t limit = SIZE_MAX);

/// Finds up to `limit` violations of the normalized MD `ruleset.md(rule)`
/// by nested-loop comparison (reference implementation).
std::vector<MdViolation> FindMdViolations(const data::Relation& d,
                                          const data::Relation& dm,
                                          const RuleSet& ruleset, RuleId rule,
                                          size_t limit = SIZE_MAX);

/// Total number of violations across all rules (capped per rule by `limit`).
size_t CountViolations(const data::Relation& d, const data::Relation& dm,
                       const RuleSet& ruleset, size_t limit = SIZE_MAX);

}  // namespace rules
}  // namespace uniclean

#endif  // UNICLEAN_RULES_VIOLATION_H_
