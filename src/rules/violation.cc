#include "rules/violation.h"

#include <unordered_map>

#include "common/check.h"
#include "data/group_key.h"

namespace uniclean {
namespace rules {

std::vector<CfdViolation> FindCfdViolations(const data::Relation& d,
                                            const RuleSet& ruleset,
                                            RuleId rule, size_t limit) {
  const Cfd& cfd = ruleset.cfd(rule);
  std::vector<CfdViolation> out;
  if (cfd.IsConstantRule()) {
    for (data::TupleId t = 0; t < d.size(); ++t) {
      if (out.size() >= limit) break;
      if (cfd.MatchesLhs(d.tuple(t)) && !cfd.RhsSatisfied(d.tuple(t))) {
        out.push_back(CfdViolation{rule, t, CfdViolation::kNoTuple});
      }
    }
    return out;
  }
  // Variable CFD: group tuples by LHS projection; within a group, anchor on
  // the first tuple of each distinct RHS value.
  const data::AttributeId b = cfd.rhs()[0];
  // Groups and per-group value anchors in first-encounter order, so the
  // reported violations (and the subset chosen under `limit`) are a function
  // of the data only, never of the interned-id assignment.
  struct Group {
    std::vector<data::TupleId> members;
    std::unordered_map<data::ValueId, data::TupleId> anchor_of;
    std::vector<std::pair<data::ValueId, data::TupleId>> anchor_order;
  };
  std::unordered_map<data::GroupKey, Group, data::GroupKeyHash> groups;
  std::vector<Group*> group_order;
  for (data::TupleId t = 0; t < d.size(); ++t) {
    if (!cfd.MatchesLhs(d.tuple(t))) continue;
    const data::Value& v = d.tuple(t).value(b);
    if (v.is_null()) continue;  // satisfies trivially (§7)
    auto [it, inserted] =
        groups.try_emplace(data::GroupKey::Project(d.tuple(t), cfd.lhs()));
    Group& g = it->second;
    if (inserted) group_order.push_back(&g);
    g.members.push_back(t);
    if (g.anchor_of.emplace(v.id(), t).second) {
      g.anchor_order.emplace_back(v.id(), t);
    }
  }
  for (const Group* group : group_order) {
    if (group->anchor_order.size() <= 1) continue;  // group agrees
    for (data::TupleId t : group->members) {
      if (out.size() >= limit) return out;
      const data::ValueId v = d.tuple(t).value(b).id();
      // Pair t against the anchor of the first other value seen.
      for (const auto& [other_value, anchor] : group->anchor_order) {
        if (other_value == v) continue;
        out.push_back(CfdViolation{rule, anchor, t});
        break;
      }
    }
  }
  return out;
}

std::vector<MdViolation> FindMdViolations(const data::Relation& d,
                                          const data::Relation& dm,
                                          const RuleSet& ruleset, RuleId rule,
                                          size_t limit) {
  const Md& md = ruleset.md(rule);
  UC_CHECK(md.normalized());
  const MdAction& action = md.actions()[0];
  std::vector<MdViolation> out;
  for (data::TupleId t = 0; t < d.size(); ++t) {
    for (data::TupleId s = 0; s < dm.size(); ++s) {
      if (out.size() >= limit) return out;
      if (!md.PremiseHolds(d.tuple(t), dm.tuple(s))) continue;
      if (!data::Value::SqlEquals(d.tuple(t).value(action.data_attr),
                                  dm.tuple(s).value(action.master_attr))) {
        out.push_back(MdViolation{rule, t, s});
      }
    }
  }
  return out;
}

size_t CountViolations(const data::Relation& d, const data::Relation& dm,
                       const RuleSet& ruleset, size_t limit) {
  size_t total = 0;
  for (RuleId r = 0; r < ruleset.num_rules(); ++r) {
    if (ruleset.IsCfd(r)) {
      total += FindCfdViolations(d, ruleset, r, limit).size();
    } else {
      total += FindMdViolations(d, dm, ruleset, r, limit).size();
    }
  }
  return total;
}

}  // namespace rules
}  // namespace uniclean
