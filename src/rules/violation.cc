#include "rules/violation.h"

#include <string>
#include <unordered_map>

#include "common/check.h"

namespace uniclean {
namespace rules {

namespace {

std::string LhsKey(const data::Tuple& t,
                   const std::vector<data::AttributeId>& attrs) {
  std::string key;
  for (data::AttributeId a : attrs) {
    key += t.value(a).str();
    key.push_back('\x1f');
  }
  return key;
}

}  // namespace

std::vector<CfdViolation> FindCfdViolations(const data::Relation& d,
                                            const RuleSet& ruleset,
                                            RuleId rule, size_t limit) {
  const Cfd& cfd = ruleset.cfd(rule);
  std::vector<CfdViolation> out;
  if (cfd.IsConstantRule()) {
    for (data::TupleId t = 0; t < d.size(); ++t) {
      if (out.size() >= limit) break;
      if (cfd.MatchesLhs(d.tuple(t)) && !cfd.RhsSatisfied(d.tuple(t))) {
        out.push_back(CfdViolation{rule, t, CfdViolation::kNoTuple});
      }
    }
    return out;
  }
  // Variable CFD: group tuples by LHS projection; within a group, anchor on
  // the first tuple of each distinct RHS value.
  const data::AttributeId b = cfd.rhs()[0];
  std::unordered_map<std::string,
                     std::unordered_map<std::string, data::TupleId>>
      anchors;  // lhs key -> (rhs value -> first tuple)
  std::unordered_map<std::string, std::vector<data::TupleId>> groups;
  for (data::TupleId t = 0; t < d.size(); ++t) {
    if (!cfd.MatchesLhs(d.tuple(t))) continue;
    if (d.tuple(t).value(b).is_null()) continue;  // satisfies trivially (§7)
    std::string key = LhsKey(d.tuple(t), cfd.lhs());
    groups[key].push_back(t);
    anchors[key].emplace(d.tuple(t).value(b).str(), t);
  }
  for (const auto& [key, members] : groups) {
    const auto& value_anchor = anchors[key];
    if (value_anchor.size() <= 1) continue;  // group agrees
    for (data::TupleId t : members) {
      if (out.size() >= limit) return out;
      const std::string& v = d.tuple(t).value(b).str();
      // Pair t against the anchor of some other value.
      for (const auto& [other_value, anchor] : value_anchor) {
        if (other_value == v) continue;
        out.push_back(CfdViolation{rule, anchor, t});
        break;
      }
    }
  }
  return out;
}

std::vector<MdViolation> FindMdViolations(const data::Relation& d,
                                          const data::Relation& dm,
                                          const RuleSet& ruleset, RuleId rule,
                                          size_t limit) {
  const Md& md = ruleset.md(rule);
  UC_CHECK(md.normalized());
  const MdAction& action = md.actions()[0];
  std::vector<MdViolation> out;
  for (data::TupleId t = 0; t < d.size(); ++t) {
    for (data::TupleId s = 0; s < dm.size(); ++s) {
      if (out.size() >= limit) return out;
      if (!md.PremiseHolds(d.tuple(t), dm.tuple(s))) continue;
      if (!data::Value::SqlEquals(d.tuple(t).value(action.data_attr),
                                  dm.tuple(s).value(action.master_attr))) {
        out.push_back(MdViolation{rule, t, s});
      }
    }
  }
  return out;
}

size_t CountViolations(const data::Relation& d, const data::Relation& dm,
                       const RuleSet& ruleset, size_t limit) {
  size_t total = 0;
  for (RuleId r = 0; r < ruleset.num_rules(); ++r) {
    if (ruleset.IsCfd(r)) {
      total += FindCfdViolations(d, ruleset, r, limit).size();
    } else {
      total += FindMdViolations(d, dm, ruleset, r, limit).size();
    }
  }
  return total;
}

}  // namespace rules
}  // namespace uniclean
