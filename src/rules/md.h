// Matching dependencies across a data schema R and a master schema Rm
// (§2.2): positive MDs  ∧ (R[Aj] ≈j Rm[Bj]) -> ∧ (R[Ei] ⇋ Rm[Fi])  and
// negative MDs  ∧ (R[Aj] ≠ Rm[Bj]) -> ∨ (R[Ei] ≇ Rm[Fi]).

#ifndef UNICLEAN_RULES_MD_H_
#define UNICLEAN_RULES_MD_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/relation.h"
#include "data/schema.h"
#include "similarity/predicate.h"

namespace uniclean {
namespace rules {

/// One premise clause R[A] ≈ Rm[B].
struct MdClause {
  data::AttributeId data_attr;
  data::AttributeId master_attr;
  similarity::SimilarityPredicate predicate;
};

/// Per-premise-clause memo of fuzzy predicate outcomes, keyed by
/// (data value id << 32 | master value id). Equality clauses and identical
/// ids never consult it. Owned by callers that probe the same value pairs
/// repeatedly (MdMatcher); size() must equal the premise size.
using ClauseMemo = std::vector<std::unordered_map<uint64_t, bool>>;

/// One identification action R[E] ⇋ Rm[F]: the cleaning rule writes the
/// master value s[F] into t[E] (§3.1).
struct MdAction {
  data::AttributeId data_attr;
  data::AttributeId master_attr;

  bool operator==(const MdAction& o) const {
    return data_attr == o.data_attr && master_attr == o.master_attr;
  }
};

/// A positive matching dependency.
class Md {
 public:
  /// Builds an MD; aborts on empty actions. `name` is a diagnostic label.
  static Md Make(std::string name, std::vector<MdClause> premise,
                 std::vector<MdAction> actions);

  const std::string& name() const { return name_; }
  const std::vector<MdClause>& premise() const { return premise_; }
  const std::vector<MdAction>& actions() const { return actions_; }

  /// True if there is a single action (§2.2 normalization).
  bool normalized() const { return actions_.size() == 1; }

  /// Splits into one MD per action, named "<name>.<i>".
  std::vector<Md> Normalize() const;

  /// Whether the premise holds between data tuple t and master tuple s.
  /// A null on either side fails the clause (§7 semantics: rules only apply
  /// to tuples that precisely match). When `memo` is non-null (one map per
  /// premise clause), fuzzy-predicate outcomes are looked up / recorded
  /// there. Implemented on PremiseHoldsWith, the single premise-evaluation
  /// code path shared by the reference checkers and the memoizing MdMatcher.
  bool PremiseHolds(const data::Tuple& t, const data::Tuple& s,
                    ClauseMemo* memo = nullptr) const;

  /// Generic premise evaluation with the same null / identical-id /
  /// equality-clause semantics as PremiseHolds, delegating only the fuzzy
  /// predicate outcome: `eval(clause_index, clause, data_value,
  /// master_value) -> bool` is invoked solely for distinct, non-null value
  /// pairs on a non-equality clause. Memoizing callers (MdMatcher's sharded
  /// concurrent memo, the ClauseMemo overload above) plug their cache in
  /// here so the premise semantics exist exactly once.
  template <typename EvalFn>
  bool PremiseHoldsWith(const data::Tuple& t, const data::Tuple& s,
                        EvalFn&& eval) const {
    for (size_t i = 0; i < premise_.size(); ++i) {
      const MdClause& c = premise_[i];
      const data::Value& dv = t.value(c.data_attr);
      const data::Value& mv = s.value(c.master_attr);
      if (dv.is_null() || mv.is_null()) return false;
      // Identical interned ids satisfy any similarity predicate (distance 0
      // / similarity 1); only distinct strings need the metric.
      if (dv == mv) continue;
      if (c.predicate.is_equality()) return false;
      if (!eval(i, c, dv, mv)) return false;
    }
    return true;
  }

  /// Returns a copy with extra equality clauses prepended (used by the
  /// negative-MD embedding of Prop. 2.6).
  Md WithExtraEqualities(const std::vector<MdClause>& extra,
                         const std::string& new_name) const;

  /// Renders e.g. "psi: tran[LN]=card[LN] & tran[FN]~jw>=0.80 card[FN] ->
  /// tran[FN]:=card[FN]".
  std::string ToString(const data::Schema& data_schema,
                       const data::Schema& master_schema) const;

 private:
  Md(std::string name, std::vector<MdClause> premise,
     std::vector<MdAction> actions);

  std::string name_;
  std::vector<MdClause> premise_;
  std::vector<MdAction> actions_;
};

/// A negative matching dependency (§2.2): if all listed attribute pairs
/// differ, the tuples may not be identified on any of the blocked actions.
class NegativeMd {
 public:
  static NegativeMd Make(std::string name,
                         std::vector<std::pair<data::AttributeId,
                                               data::AttributeId>> inequalities,
                         std::vector<MdAction> blocked);

  const std::string& name() const { return name_; }
  const std::vector<std::pair<data::AttributeId, data::AttributeId>>&
  inequalities() const {
    return inequalities_;
  }
  const std::vector<MdAction>& blocked() const { return blocked_; }

 private:
  NegativeMd(std::string name,
             std::vector<std::pair<data::AttributeId, data::AttributeId>>
                 inequalities,
             std::vector<MdAction> blocked);

  std::string name_;
  std::vector<std::pair<data::AttributeId, data::AttributeId>> inequalities_;
  std::vector<MdAction> blocked_;
};

/// Proposition 2.6: folds negative MDs into the positive ones, producing a
/// set of positive MDs equivalent to Γ+ ∪ Γ−, in O(|Γ+||Γ−|) time. For each
/// positive MD whose action is blocked by a negative MD, the negative MD's
/// attribute pairs are added to the premise as equality clauses (Example
/// 2.5: adding gd = gd to ψ enforces "a male and a female may not refer to
/// the same person").
std::vector<Md> EmbedNegativeMds(const std::vector<Md>& positives,
                                 const std::vector<NegativeMd>& negatives);

/// Whether (D, Dm) |= ψ (§2.2): no more tuples of D can be matched and
/// updated against Dm. Requires ψ normalized. O(|D|·|Dm|) reference checker
/// (algorithms use the blocking index instead).
bool Satisfies(const data::Relation& d, const data::Relation& dm,
               const Md& md);

/// Whether (D, Dm) |= Γ for every MD in Γ.
bool SatisfiesAll(const data::Relation& d, const data::Relation& dm,
                  const std::vector<Md>& gamma);

}  // namespace rules
}  // namespace uniclean

#endif  // UNICLEAN_RULES_MD_H_
