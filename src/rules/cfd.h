// Conditional functional dependencies (§2.1): ϕ = R(X -> Y, tp) where tp is
// a pattern tuple over X ∪ Y of constants and wildcards. FDs are the special
// case where tp is all wildcards.

#ifndef UNICLEAN_RULES_CFD_H_
#define UNICLEAN_RULES_CFD_H_

#include <string>
#include <vector>

#include "data/relation.h"
#include "data/schema.h"
#include "rules/pattern.h"

namespace uniclean {
namespace rules {

/// A CFD over a single relation schema. Construct via Make() which validates
/// shape, or through RuleParser.
class Cfd {
 public:
  /// Builds a CFD; aborts on shape mismatches (sizes of ids vs patterns).
  /// `name` is a diagnostic label, e.g. "phi1".
  static Cfd Make(std::string name, std::vector<data::AttributeId> lhs,
                  std::vector<PatternValue> lhs_pattern,
                  std::vector<data::AttributeId> rhs,
                  std::vector<PatternValue> rhs_pattern);

  const std::string& name() const { return name_; }
  const std::vector<data::AttributeId>& lhs() const { return lhs_; }
  const std::vector<PatternValue>& lhs_pattern() const { return lhs_pattern_; }
  const std::vector<data::AttributeId>& rhs() const { return rhs_; }
  const std::vector<PatternValue>& rhs_pattern() const { return rhs_pattern_; }

  /// True if |RHS| = 1 (§2.2 "Normalized CFDs and MDs").
  bool normalized() const { return rhs_.size() == 1; }

  /// Splits a CFD with an n-attribute RHS into n normalized CFDs, named
  /// "<name>.<i>". A normalized CFD returns a singleton copy of itself.
  std::vector<Cfd> Normalize() const;

  /// For normalized CFDs: true if the RHS pattern is a constant — the rule is
  /// then a "constant CFD" whose cleaning rule writes that constant (§3.1).
  bool IsConstantRule() const;

  /// True if every pattern component is a wildcard (a traditional FD).
  bool IsFd() const;

  /// t[X] ≍ tp[X]: the tuple matches the LHS pattern (§2.1; null never
  /// matches, §7).
  bool MatchesLhs(const data::Tuple& t) const;

  /// For normalized constant rules: t[A] equals the RHS constant. A null
  /// t[A] is treated as matching under the SQL simple semantics of §7.
  bool RhsSatisfied(const data::Tuple& t) const;

  /// Renders e.g. "phi1: tran([AC='131'] -> [city='Edi'])".
  std::string ToString(const data::Schema& schema) const;

 private:
  Cfd(std::string name, std::vector<data::AttributeId> lhs,
      std::vector<PatternValue> lhs_pattern,
      std::vector<data::AttributeId> rhs,
      std::vector<PatternValue> rhs_pattern);

  std::string name_;
  std::vector<data::AttributeId> lhs_;
  std::vector<PatternValue> lhs_pattern_;
  std::vector<data::AttributeId> rhs_;
  std::vector<PatternValue> rhs_pattern_;
};

/// Whether D satisfies ϕ (D |= ϕ, §2.1) under the null semantics of §7.
/// Requires ϕ normalized.
bool Satisfies(const data::Relation& d, const Cfd& cfd);

/// Whether D satisfies every CFD in Σ.
bool SatisfiesAll(const data::Relation& d, const std::vector<Cfd>& sigma);

}  // namespace rules
}  // namespace uniclean

#endif  // UNICLEAN_RULES_CFD_H_
