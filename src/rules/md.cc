#include "rules/md.h"

#include "common/check.h"

namespace uniclean {
namespace rules {

Md::Md(std::string name, std::vector<MdClause> premise,
       std::vector<MdAction> actions)
    : name_(std::move(name)),
      premise_(std::move(premise)),
      actions_(std::move(actions)) {}

Md Md::Make(std::string name, std::vector<MdClause> premise,
            std::vector<MdAction> actions) {
  UC_CHECK(!actions.empty()) << "MD " << name << ": empty action list";
  return Md(std::move(name), std::move(premise), std::move(actions));
}

std::vector<Md> Md::Normalize() const {
  std::vector<Md> out;
  if (normalized()) {
    out.push_back(*this);
    return out;
  }
  for (size_t i = 0; i < actions_.size(); ++i) {
    out.push_back(Md(name_ + "." + std::to_string(i), premise_, {actions_[i]}));
  }
  return out;
}

bool Md::PremiseHolds(const data::Tuple& t, const data::Tuple& s,
                      ClauseMemo* memo) const {
  if (memo == nullptr) {
    return PremiseHoldsWith(
        t, s,
        [](size_t, const MdClause& c, const data::Value& dv,
           const data::Value& mv) {
          return c.predicate.Evaluate(dv.view(), mv.view());
        });
  }
  return PremiseHoldsWith(
      t, s,
      [memo](size_t i, const MdClause& c, const data::Value& dv,
             const data::Value& mv) {
        const uint64_t pair_key =
            (static_cast<uint64_t>(dv.id()) << 32) | mv.id();
        std::unordered_map<uint64_t, bool>& cache = (*memo)[i];
        auto it = cache.find(pair_key);
        if (it != cache.end()) return it->second;
        const bool holds = c.predicate.Evaluate(dv.view(), mv.view());
        cache.emplace(pair_key, holds);
        return holds;
      });
}

Md Md::WithExtraEqualities(const std::vector<MdClause>& extra,
                           const std::string& new_name) const {
  std::vector<MdClause> premise = premise_;
  for (const MdClause& c : extra) premise.push_back(c);
  return Md(new_name, std::move(premise), actions_);
}

std::string Md::ToString(const data::Schema& data_schema,
                         const data::Schema& master_schema) const {
  std::string out = name_ + ": ";
  for (size_t i = 0; i < premise_.size(); ++i) {
    if (i > 0) out += " & ";
    const MdClause& c = premise_[i];
    out += data_schema.relation_name() + "[" +
           data_schema.attribute_name(c.data_attr) + "]";
    if (c.predicate.is_equality()) {
      out += "=";
    } else {
      out += "~" + c.predicate.ToString() + " ";
    }
    out += master_schema.relation_name() + "[" +
           master_schema.attribute_name(c.master_attr) + "]";
  }
  out += " -> ";
  for (size_t i = 0; i < actions_.size(); ++i) {
    if (i > 0) out += " & ";
    out += data_schema.relation_name() + "[" +
           data_schema.attribute_name(actions_[i].data_attr) + "]:=" +
           master_schema.relation_name() + "[" +
           master_schema.attribute_name(actions_[i].master_attr) + "]";
  }
  return out;
}

NegativeMd::NegativeMd(
    std::string name,
    std::vector<std::pair<data::AttributeId, data::AttributeId>> inequalities,
    std::vector<MdAction> blocked)
    : name_(std::move(name)),
      inequalities_(std::move(inequalities)),
      blocked_(std::move(blocked)) {}

NegativeMd NegativeMd::Make(
    std::string name,
    std::vector<std::pair<data::AttributeId, data::AttributeId>> inequalities,
    std::vector<MdAction> blocked) {
  UC_CHECK(!inequalities.empty())
      << "negative MD " << name << ": empty premise";
  UC_CHECK(!blocked.empty()) << "negative MD " << name << ": empty RHS";
  return NegativeMd(std::move(name), std::move(inequalities),
                    std::move(blocked));
}

std::vector<Md> EmbedNegativeMds(const std::vector<Md>& positives,
                                 const std::vector<NegativeMd>& negatives) {
  // The Prop. 2.6 algorithm, with one refinement over its literal statement:
  // a negative MD's equality clauses are folded only into positive MDs whose
  // action it actually blocks (the proof normalizes negative MDs to a single
  // blocked pair; folding into unrelated positives would needlessly restrict
  // them). Example 2.5 behaves identically under both readings because ψ−
  // blocks every identification pair.
  std::vector<Md> out;
  for (const Md& pos : positives) {
    for (const Md& psi : pos.Normalize()) {
      std::vector<MdClause> extra;
      for (const NegativeMd& neg : negatives) {
        bool blocks = false;
        for (const MdAction& b : neg.blocked()) {
          if (b == psi.actions()[0]) {
            blocks = true;
            break;
          }
        }
        if (!blocks) continue;
        for (const auto& [data_attr, master_attr] : neg.inequalities()) {
          extra.push_back(MdClause{data_attr, master_attr,
                                   similarity::SimilarityPredicate::Equals()});
        }
      }
      if (extra.empty()) {
        out.push_back(psi);
      } else {
        out.push_back(psi.WithExtraEqualities(extra, psi.name() + "+neg"));
      }
    }
  }
  return out;
}

bool Satisfies(const data::Relation& d, const data::Relation& dm,
               const Md& md) {
  UC_CHECK(md.normalized());
  const MdAction& action = md.actions()[0];
  for (const data::Tuple& t : d.tuples()) {
    for (const data::Tuple& s : dm.tuples()) {
      if (!md.PremiseHolds(t, s)) continue;
      if (!data::Value::SqlEquals(t.value(action.data_attr),
                                  s.value(action.master_attr))) {
        return false;
      }
    }
  }
  return true;
}

bool SatisfiesAll(const data::Relation& d, const data::Relation& dm,
                  const std::vector<Md>& gamma) {
  for (const Md& md : gamma) {
    for (const Md& n : md.Normalize()) {
      if (!Satisfies(d, dm, n)) return false;
    }
  }
  return true;
}

}  // namespace rules
}  // namespace uniclean
