#include "rules/parser.h"

#include <cstdlib>

#include "common/string_util.h"

namespace uniclean {
namespace rules {

namespace {

Status SyntaxError(int line_no, const std::string& what) {
  return Status::InvalidArgument("rule syntax error at line " +
                                 std::to_string(line_no) + ": " + what);
}

/// Splits on `delim` at top level (outside single quotes).
std::vector<std::string> SplitOutsideQuotes(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  bool quoted = false;
  for (char c : s) {
    if (c == '\'') quoted = !quoted;
    if (c == delim && !quoted) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

/// Finds "->" outside quotes; returns npos if absent.
size_t FindArrow(std::string_view s) {
  bool quoted = false;
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    if (s[i] == '\'') quoted = !quoted;
    if (!quoted && s[i] == '-' && s[i + 1] == '>') return i;
  }
  return std::string_view::npos;
}

/// Parses a CFD item: `Attr` or `Attr='const'` / `Attr=const`.
Result<std::pair<data::AttributeId, PatternValue>> ParseCfdItem(
    std::string_view item, const data::Schema& schema, int line_no) {
  std::string_view trimmed = Trim(item);
  if (trimmed.empty()) {
    return SyntaxError(line_no, "empty CFD item");
  }
  size_t eq = std::string_view::npos;
  bool quoted = false;
  for (size_t i = 0; i < trimmed.size(); ++i) {
    if (trimmed[i] == '\'') quoted = !quoted;
    if (trimmed[i] == '=' && !quoted) {
      eq = i;
      break;
    }
  }
  if (eq == std::string_view::npos) {
    UC_ASSIGN_OR_RETURN(data::AttributeId id,
                        schema.FindAttribute(std::string(Trim(trimmed))));
    return std::make_pair(id, PatternValue::Wildcard());
  }
  std::string attr(Trim(trimmed.substr(0, eq)));
  std::string_view value = Trim(trimmed.substr(eq + 1));
  if (value.size() >= 2 && value.front() == '\'' && value.back() == '\'') {
    value = value.substr(1, value.size() - 2);
  }
  if (attr == "_" || attr.empty()) {
    return SyntaxError(line_no, "missing attribute name in CFD item");
  }
  UC_ASSIGN_OR_RETURN(data::AttributeId id, schema.FindAttribute(attr));
  if (value == "_") {
    return std::make_pair(id, PatternValue::Wildcard());
  }
  return std::make_pair(id, PatternValue::Constant(std::string(value)));
}

Result<Cfd> ParseCfdBody(const std::string& name, std::string_view body,
                         const data::Schema& schema, int line_no) {
  size_t arrow = FindArrow(body);
  if (arrow == std::string_view::npos) {
    return SyntaxError(line_no, "CFD missing '->'");
  }
  std::vector<data::AttributeId> lhs, rhs;
  std::vector<PatternValue> lhs_pattern, rhs_pattern;
  std::string_view lhs_text = Trim(body.substr(0, arrow));
  if (!lhs_text.empty()) {  // empty LHS allowed: unconditional constant rule
    for (const std::string& item : SplitOutsideQuotes(lhs_text, ',')) {
      UC_ASSIGN_OR_RETURN(auto pair, ParseCfdItem(item, schema, line_no));
      lhs.push_back(pair.first);
      lhs_pattern.push_back(pair.second);
    }
  }
  for (const std::string& item :
       SplitOutsideQuotes(Trim(body.substr(arrow + 2)), ',')) {
    UC_ASSIGN_OR_RETURN(auto pair, ParseCfdItem(item, schema, line_no));
    rhs.push_back(pair.first);
    rhs_pattern.push_back(pair.second);
  }
  if (rhs.empty()) {
    return SyntaxError(line_no, "CFD has empty RHS");
  }
  return Cfd::Make(name, std::move(lhs), std::move(lhs_pattern),
                   std::move(rhs), std::move(rhs_pattern));
}

/// Parses `A=B`, `A!=B` (negative) or `A ~kind:thr B`.
struct ClausePair {
  std::string data_attr;
  std::string master_attr;
  similarity::SimilarityPredicate predicate =
      similarity::SimilarityPredicate::Equals();
  bool negated = false;
};

Result<ClausePair> ParseMdClause(std::string_view clause, int line_no) {
  ClausePair out;
  std::string_view c = Trim(clause);
  size_t tilde = c.find('~');
  if (tilde != std::string_view::npos) {
    out.data_attr = std::string(Trim(c.substr(0, tilde)));
    std::string_view rest = Trim(c.substr(tilde + 1));
    size_t colon = rest.find(':');
    if (colon == std::string_view::npos) {
      return SyntaxError(line_no, "similarity clause missing ':threshold'");
    }
    std::string kind(Trim(rest.substr(0, colon)));
    std::string_view after = rest.substr(colon + 1);
    size_t space = after.find(' ');
    if (space == std::string_view::npos) {
      return SyntaxError(line_no,
                         "similarity clause missing master attribute");
    }
    std::string threshold_text(Trim(after.substr(0, space)));
    out.master_attr = std::string(Trim(after.substr(space + 1)));
    char* end = nullptr;
    double threshold = std::strtod(threshold_text.c_str(), &end);
    if (end == threshold_text.c_str()) {
      return SyntaxError(line_no, "bad similarity threshold '" +
                                      threshold_text + "'");
    }
    if (kind == "edit") {
      out.predicate =
          similarity::SimilarityPredicate::Edit(static_cast<int>(threshold));
    } else if (kind == "jw") {
      out.predicate = similarity::SimilarityPredicate::JaroWinkler(threshold);
    } else if (kind == "qgram") {
      out.predicate = similarity::SimilarityPredicate::QGram(threshold);
    } else {
      return SyntaxError(line_no, "unknown similarity kind '" + kind + "'");
    }
    return out;
  }
  size_t neq = c.find("!=");
  if (neq != std::string_view::npos) {
    out.negated = true;
    out.data_attr = std::string(Trim(c.substr(0, neq)));
    out.master_attr = std::string(Trim(c.substr(neq + 2)));
    return out;
  }
  size_t eq = c.find('=');
  if (eq == std::string_view::npos) {
    return SyntaxError(line_no, "MD clause missing '=' or '~'");
  }
  out.data_attr = std::string(Trim(c.substr(0, eq)));
  out.master_attr = std::string(Trim(c.substr(eq + 1)));
  return out;
}

Result<MdAction> ParseMdAction(std::string_view action,
                               const data::Schema& data_schema,
                               const data::Schema& master_schema,
                               int line_no) {
  std::string_view a = Trim(action);
  size_t assign = a.find(":=");
  if (assign == std::string_view::npos) {
    return SyntaxError(line_no, "MD action missing ':='");
  }
  UC_ASSIGN_OR_RETURN(
      data::AttributeId e,
      data_schema.FindAttribute(std::string(Trim(a.substr(0, assign)))));
  UC_ASSIGN_OR_RETURN(
      data::AttributeId f,
      master_schema.FindAttribute(std::string(Trim(a.substr(assign + 2)))));
  return MdAction{e, f};
}

}  // namespace

Result<ParsedRules> ParseRules(const std::string& text,
                               const data::SchemaPtr& data_schema,
                               const data::SchemaPtr& master_schema) {
  ParsedRules out;
  int line_no = 0;
  int auto_name = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string line = raw_line;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::string_view body = Trim(line);
    if (body.empty()) continue;

    bool is_cfd = StartsWith(body, "CFD ");
    bool is_md = StartsWith(body, "MD ");
    bool is_negmd = StartsWith(body, "NEGMD ");
    if (!is_cfd && !is_md && !is_negmd) {
      return SyntaxError(line_no, "expected CFD / MD / NEGMD");
    }
    body = Trim(body.substr(is_cfd ? 4 : (is_md ? 3 : 6)));

    // Optional "name:" prefix (the name may not contain '=' or '>').
    std::string name = "rule" + std::to_string(auto_name++);
    size_t colon = body.find(':');
    if (colon != std::string_view::npos) {
      std::string_view candidate = Trim(body.substr(0, colon));
      if (!candidate.empty() &&
          candidate.find('=') == std::string_view::npos &&
          candidate.find('~') == std::string_view::npos &&
          candidate.find(' ') == std::string_view::npos) {
        name = std::string(candidate);
        body = Trim(body.substr(colon + 1));
      }
    }

    if (is_cfd) {
      UC_ASSIGN_OR_RETURN(Cfd cfd,
                          ParseCfdBody(name, body, *data_schema, line_no));
      out.cfds.push_back(std::move(cfd));
      continue;
    }

    size_t arrow = FindArrow(body);
    if (arrow == std::string_view::npos) {
      return SyntaxError(line_no, "MD missing '->'");
    }
    std::vector<ClausePair> clauses;
    for (const std::string& clause_text :
         SplitOutsideQuotes(Trim(body.substr(0, arrow)), '&')) {
      UC_ASSIGN_OR_RETURN(ClausePair clause,
                          ParseMdClause(clause_text, line_no));
      clauses.push_back(std::move(clause));
    }
    std::vector<MdAction> actions;
    for (const std::string& action_text :
         SplitOutsideQuotes(Trim(body.substr(arrow + 2)), ',')) {
      UC_ASSIGN_OR_RETURN(
          MdAction action,
          ParseMdAction(action_text, *data_schema, *master_schema, line_no));
      actions.push_back(action);
    }
    if (actions.empty()) {
      return SyntaxError(line_no, "MD has no actions");
    }

    if (is_md) {
      std::vector<MdClause> premise;
      for (const ClausePair& c : clauses) {
        if (c.negated) {
          return SyntaxError(line_no, "'!=' clause in a positive MD");
        }
        UC_ASSIGN_OR_RETURN(data::AttributeId da,
                            data_schema->FindAttribute(c.data_attr));
        UC_ASSIGN_OR_RETURN(data::AttributeId ma,
                            master_schema->FindAttribute(c.master_attr));
        premise.push_back(MdClause{da, ma, c.predicate});
      }
      out.mds.push_back(Md::Make(name, std::move(premise), std::move(actions)));
    } else {
      std::vector<std::pair<data::AttributeId, data::AttributeId>> ineqs;
      for (const ClausePair& c : clauses) {
        if (!c.negated) {
          return SyntaxError(line_no, "NEGMD clause must use '!='");
        }
        UC_ASSIGN_OR_RETURN(data::AttributeId da,
                            data_schema->FindAttribute(c.data_attr));
        UC_ASSIGN_OR_RETURN(data::AttributeId ma,
                            master_schema->FindAttribute(c.master_attr));
        ineqs.emplace_back(da, ma);
      }
      out.negative_mds.push_back(
          NegativeMd::Make(name, std::move(ineqs), std::move(actions)));
    }
  }
  return out;
}

Result<RuleSet> ParseRuleSet(const std::string& text,
                             const data::SchemaPtr& data_schema,
                             const data::SchemaPtr& master_schema) {
  UC_ASSIGN_OR_RETURN(ParsedRules parsed,
                      ParseRules(text, data_schema, master_schema));
  return RuleSet::Make(data_schema, master_schema, std::move(parsed.cfds),
                       std::move(parsed.mds), std::move(parsed.negative_mds));
}

}  // namespace rules
}  // namespace uniclean
