#include "rules/ruleset.h"

#include <algorithm>
#include <set>

#include "data/group_key.h"

namespace uniclean {
namespace rules {

const char* RuleKindToString(RuleKind kind) {
  switch (kind) {
    case RuleKind::kConstantCfd:
      return "constant-cfd";
    case RuleKind::kVariableCfd:
      return "variable-cfd";
    case RuleKind::kMd:
      return "md";
  }
  return "unknown";
}

namespace {

Status ValidateAttr(const data::Schema& schema, data::AttributeId id,
                    const std::string& rule_name) {
  if (id < 0 || id >= schema.arity()) {
    return Status::InvalidArgument(
        "rule " + rule_name + ": attribute id " + std::to_string(id) +
        " out of range for schema " + schema.relation_name());
  }
  return Status::OK();
}

}  // namespace

Result<RuleSet> RuleSet::Make(data::SchemaPtr data_schema,
                              data::SchemaPtr master_schema,
                              std::vector<Cfd> cfds, std::vector<Md> mds,
                              std::vector<NegativeMd> negative_mds) {
  RuleSet rs;
  rs.data_schema_ = std::move(data_schema);
  rs.master_schema_ = std::move(master_schema);
  UC_CHECK(rs.data_schema_ != nullptr);
  UC_CHECK(rs.master_schema_ != nullptr);

  for (const Cfd& cfd : cfds) {
    for (Cfd& n : cfd.Normalize()) {
      // The engines key their grouping tables on fixed-size GroupKey
      // projections of the LHS; reject wider rules here with a clean error
      // instead of aborting mid-pipeline.
      if (n.lhs().size() > data::GroupKey::kMaxParts) {
        return Status::InvalidArgument(
            "rule " + n.name() + ": LHS has " + std::to_string(n.lhs().size()) +
            " attributes; at most " + std::to_string(data::GroupKey::kMaxParts) +
            " are supported");
      }
      for (data::AttributeId a : n.lhs()) {
        UC_RETURN_IF_ERROR(ValidateAttr(*rs.data_schema_, a, n.name()));
      }
      UC_RETURN_IF_ERROR(ValidateAttr(*rs.data_schema_, n.rhs()[0], n.name()));
      rs.cfds_.push_back(std::move(n));
    }
  }
  std::vector<Md> embedded = EmbedNegativeMds(mds, negative_mds);
  for (Md& md : embedded) {
    if (md.premise().size() > data::GroupKey::kMaxParts) {
      return Status::InvalidArgument(
          "rule " + md.name() + ": premise has " +
          std::to_string(md.premise().size()) + " clauses; at most " +
          std::to_string(data::GroupKey::kMaxParts) + " are supported");
    }
    for (const MdClause& c : md.premise()) {
      UC_RETURN_IF_ERROR(ValidateAttr(*rs.data_schema_, c.data_attr,
                                      md.name()));
      UC_RETURN_IF_ERROR(ValidateAttr(*rs.master_schema_, c.master_attr,
                                      md.name()));
    }
    const MdAction& a = md.actions()[0];
    UC_RETURN_IF_ERROR(ValidateAttr(*rs.data_schema_, a.data_attr, md.name()));
    UC_RETURN_IF_ERROR(ValidateAttr(*rs.master_schema_, a.master_attr,
                                    md.name()));
    rs.mds_.push_back(std::move(md));
  }

  // Cache per-rule LHS vectors and the global attribute universe.
  std::set<data::AttributeId> universe;
  for (const Cfd& c : rs.cfds_) {
    rs.lhs_cache_.push_back(c.lhs());
    for (data::AttributeId a : c.lhs()) universe.insert(a);
    universe.insert(c.rhs()[0]);
  }
  for (const Md& m : rs.mds_) {
    std::vector<data::AttributeId> lhs;
    for (const MdClause& c : m.premise()) lhs.push_back(c.data_attr);
    rs.lhs_cache_.push_back(std::move(lhs));
    for (const MdClause& c : m.premise()) universe.insert(c.data_attr);
    universe.insert(m.actions()[0].data_attr);
  }
  rs.rule_attributes_.assign(universe.begin(), universe.end());
  return rs;
}

RuleKind RuleSet::kind(RuleId id) const {
  if (IsCfd(id)) {
    return cfd(id).IsConstantRule() ? RuleKind::kConstantCfd
                                    : RuleKind::kVariableCfd;
  }
  return RuleKind::kMd;
}

const Cfd& RuleSet::cfd(RuleId id) const {
  UC_CHECK(IsCfd(id));
  return cfds_[static_cast<size_t>(id)];
}

const Md& RuleSet::md(RuleId id) const {
  UC_CHECK(!IsCfd(id));
  UC_CHECK_LT(id, num_rules());
  return mds_[static_cast<size_t>(id) - cfds_.size()];
}

const std::string& RuleSet::rule_name(RuleId id) const {
  return IsCfd(id) ? cfd(id).name() : md(id).name();
}

const std::vector<data::AttributeId>& RuleSet::DataLhs(RuleId id) const {
  UC_CHECK_GE(id, 0);
  UC_CHECK_LT(static_cast<size_t>(id), lhs_cache_.size());
  return lhs_cache_[static_cast<size_t>(id)];
}

data::AttributeId RuleSet::DataRhs(RuleId id) const {
  return IsCfd(id) ? cfd(id).rhs()[0] : md(id).actions()[0].data_attr;
}

}  // namespace rules
}  // namespace uniclean
