#include "rules/cfd.h"

#include <unordered_map>

#include "common/check.h"
#include "data/group_key.h"

namespace uniclean {
namespace rules {

Cfd::Cfd(std::string name, std::vector<data::AttributeId> lhs,
         std::vector<PatternValue> lhs_pattern,
         std::vector<data::AttributeId> rhs,
         std::vector<PatternValue> rhs_pattern)
    : name_(std::move(name)),
      lhs_(std::move(lhs)),
      lhs_pattern_(std::move(lhs_pattern)),
      rhs_(std::move(rhs)),
      rhs_pattern_(std::move(rhs_pattern)) {}

Cfd Cfd::Make(std::string name, std::vector<data::AttributeId> lhs,
              std::vector<PatternValue> lhs_pattern,
              std::vector<data::AttributeId> rhs,
              std::vector<PatternValue> rhs_pattern) {
  UC_CHECK_EQ(lhs.size(), lhs_pattern.size())
      << "CFD " << name << ": LHS pattern arity mismatch";
  UC_CHECK_EQ(rhs.size(), rhs_pattern.size())
      << "CFD " << name << ": RHS pattern arity mismatch";
  UC_CHECK(!rhs.empty()) << "CFD " << name << ": empty RHS";
  return Cfd(std::move(name), std::move(lhs), std::move(lhs_pattern),
             std::move(rhs), std::move(rhs_pattern));
}

std::vector<Cfd> Cfd::Normalize() const {
  std::vector<Cfd> out;
  if (normalized()) {
    out.push_back(*this);
    return out;
  }
  for (size_t i = 0; i < rhs_.size(); ++i) {
    out.push_back(Cfd(name_ + "." + std::to_string(i), lhs_, lhs_pattern_,
                      {rhs_[i]}, {rhs_pattern_[i]}));
  }
  return out;
}

bool Cfd::IsConstantRule() const {
  UC_CHECK(normalized());
  return !rhs_pattern_[0].is_wildcard();
}

bool Cfd::IsFd() const {
  for (const auto& p : lhs_pattern_) {
    if (!p.is_wildcard()) return false;
  }
  for (const auto& p : rhs_pattern_) {
    if (!p.is_wildcard()) return false;
  }
  return true;
}

bool Cfd::MatchesLhs(const data::Tuple& t) const {
  for (size_t i = 0; i < lhs_.size(); ++i) {
    if (!lhs_pattern_[i].Matches(t.value(lhs_[i]))) return false;
  }
  return true;
}

bool Cfd::RhsSatisfied(const data::Tuple& t) const {
  UC_CHECK(normalized());
  UC_CHECK(IsConstantRule());
  const data::Value& v = t.value(rhs_[0]);
  if (v.is_null()) return true;  // SQL simple semantics (§7)
  return v == rhs_pattern_[0].value();
}

std::string Cfd::ToString(const data::Schema& schema) const {
  std::string out = name_ + ": " + schema.relation_name() + "([";
  for (size_t i = 0; i < lhs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.attribute_name(lhs_[i]);
    if (!lhs_pattern_[i].is_wildcard()) {
      out += "=" + lhs_pattern_[i].ToString();
    }
  }
  out += "] -> [";
  for (size_t i = 0; i < rhs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.attribute_name(rhs_[i]);
    if (!rhs_pattern_[i].is_wildcard()) {
      out += "=" + rhs_pattern_[i].ToString();
    }
  }
  out += "])";
  return out;
}

bool Satisfies(const data::Relation& d, const Cfd& cfd) {
  UC_CHECK(cfd.normalized());
  if (cfd.IsConstantRule()) {
    for (const data::Tuple& t : d.tuples()) {
      if (cfd.MatchesLhs(t) && !cfd.RhsSatisfied(t)) return false;
    }
    return true;
  }
  // Variable CFD: within each LHS group, all non-null RHS values must agree.
  const data::AttributeId b = cfd.rhs()[0];
  std::unordered_map<data::GroupKey, data::Value, data::GroupKeyHash>
      group_value;
  for (const data::Tuple& t : d.tuples()) {
    if (!cfd.MatchesLhs(t)) continue;
    const data::Value& v = t.value(b);
    if (v.is_null()) continue;  // null RHS satisfies equality (§7)
    auto [it, inserted] =
        group_value.emplace(data::GroupKey::Project(t, cfd.lhs()), v);
    if (!inserted && it->second != v) return false;
  }
  return true;
}

bool SatisfiesAll(const data::Relation& d, const std::vector<Cfd>& sigma) {
  for (const Cfd& cfd : sigma) {
    for (const Cfd& n : cfd.Normalize()) {
      if (!Satisfies(d, n)) return false;
    }
  }
  return true;
}

}  // namespace rules
}  // namespace uniclean
