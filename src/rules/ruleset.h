// RuleSet: the set Θ = Σ ∪ Γ of data quality rules (§3), held in normalized
// form (single-attribute RHS, negative MDs embedded into positive ones), with
// a unified per-rule view used by the cleaning engines: every rule exposes
// the data-side premise attributes LHS(ξ) and the single written attribute
// RHS(ξ).

#ifndef UNICLEAN_RULES_RULESET_H_
#define UNICLEAN_RULES_RULESET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/schema.h"
#include "rules/cfd.h"
#include "rules/md.h"

namespace uniclean {
namespace rules {

/// How a normalized rule fixes errors (§3.1's three cleaning-rule shapes).
enum class RuleKind {
  kConstantCfd,  ///< writes the RHS pattern constant
  kVariableCfd,  ///< copies the RHS value from another tuple in the group
  kMd,           ///< copies the RHS value from a matching master tuple
};

const char* RuleKindToString(RuleKind kind);

/// Identifier of a rule within a RuleSet: 0..num_rules()-1. CFDs come first,
/// then MDs.
using RuleId = int;

class RuleSet {
 public:
  /// Normalizes and validates the rules against the schemas. Negative MDs
  /// are embedded via Prop. 2.6. Fails on out-of-range attribute ids.
  static Result<RuleSet> Make(data::SchemaPtr data_schema,
                              data::SchemaPtr master_schema,
                              std::vector<Cfd> cfds, std::vector<Md> mds,
                              std::vector<NegativeMd> negative_mds = {});

  const data::Schema& data_schema() const { return *data_schema_; }
  const data::Schema& master_schema() const { return *master_schema_; }
  const data::SchemaPtr& data_schema_ptr() const { return data_schema_; }
  const data::SchemaPtr& master_schema_ptr() const { return master_schema_; }

  /// Normalized CFDs (Σ).
  const std::vector<Cfd>& cfds() const { return cfds_; }
  /// Normalized positive MDs (Γ), negative MDs already embedded.
  const std::vector<Md>& mds() const { return mds_; }

  int num_rules() const {
    return static_cast<int>(cfds_.size() + mds_.size());
  }
  bool IsCfd(RuleId id) const {
    return id < static_cast<RuleId>(cfds_.size());
  }
  RuleKind kind(RuleId id) const;
  const Cfd& cfd(RuleId id) const;
  const Md& md(RuleId id) const;
  const std::string& rule_name(RuleId id) const;

  /// Data-side premise attributes LHS(ξ).
  const std::vector<data::AttributeId>& DataLhs(RuleId id) const;
  /// Data-side written attribute RHS(ξ) (rules are normalized).
  data::AttributeId DataRhs(RuleId id) const;

  /// attr(Σ ∪ Γ): all data-side attributes mentioned by any rule, sorted.
  const std::vector<data::AttributeId>& RuleAttributes() const {
    return rule_attributes_;
  }

 private:
  RuleSet() = default;

  data::SchemaPtr data_schema_;
  data::SchemaPtr master_schema_;
  std::vector<Cfd> cfds_;
  std::vector<Md> mds_;
  std::vector<std::vector<data::AttributeId>> lhs_cache_;  // per rule id
  std::vector<data::AttributeId> rule_attributes_;
};

}  // namespace rules
}  // namespace uniclean

#endif  // UNICLEAN_RULES_RULESET_H_
