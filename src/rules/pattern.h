// PatternValue: one component of a CFD pattern tuple tp (§2.1) — either a
// constant from the attribute's domain or the unnamed wildcard '_'. The
// constant is interned, so matching a data value is an integer comparison.

#ifndef UNICLEAN_RULES_PATTERN_H_
#define UNICLEAN_RULES_PATTERN_H_

#include <string>
#include <string_view>
#include <utility>

#include "data/value.h"

namespace uniclean {
namespace rules {

/// A pattern-tuple component: wildcard or constant.
class PatternValue {
 public:
  /// The unnamed variable '_' that draws values from the domain.
  static PatternValue Wildcard() { return PatternValue(true, data::Value()); }

  /// A constant pattern.
  static PatternValue Constant(std::string_view value) {
    return PatternValue(false, data::Value(value));
  }

  bool is_wildcard() const { return wildcard_; }
  const std::string& constant() const { return value_.str(); }

  /// The constant as an interned value (empty for wildcards).
  const data::Value& value() const { return value_; }

  /// The ≍ operator of §2.1 restricted to a data value vs. this pattern
  /// component. Per §7, a null data value matches no pattern (not even '_').
  bool Matches(const data::Value& v) const {
    if (v.is_null()) return false;
    return wildcard_ || v == value_;
  }

  /// "_" or the quoted constant.
  std::string ToString() const {
    return wildcard_ ? "_" : "'" + value_.str() + "'";
  }

  bool operator==(const PatternValue& o) const {
    return wildcard_ == o.wildcard_ && (wildcard_ || value_ == o.value_);
  }

 private:
  PatternValue(bool wildcard, data::Value value)
      : wildcard_(wildcard), value_(value) {}

  bool wildcard_;
  data::Value value_;
};

}  // namespace rules
}  // namespace uniclean

#endif  // UNICLEAN_RULES_PATTERN_H_
