// PatternValue: one component of a CFD pattern tuple tp (§2.1) — either a
// constant from the attribute's domain or the unnamed wildcard '_'.

#ifndef UNICLEAN_RULES_PATTERN_H_
#define UNICLEAN_RULES_PATTERN_H_

#include <string>
#include <utility>

#include "data/value.h"

namespace uniclean {
namespace rules {

/// A pattern-tuple component: wildcard or constant.
class PatternValue {
 public:
  /// The unnamed variable '_' that draws values from the domain.
  static PatternValue Wildcard() { return PatternValue(true, std::string()); }

  /// A constant pattern.
  static PatternValue Constant(std::string value) {
    return PatternValue(false, std::move(value));
  }

  bool is_wildcard() const { return wildcard_; }
  const std::string& constant() const { return constant_; }

  /// The ≍ operator of §2.1 restricted to a data value vs. this pattern
  /// component. Per §7, a null data value matches no pattern (not even '_').
  bool Matches(const data::Value& v) const {
    if (v.is_null()) return false;
    return wildcard_ || v.str() == constant_;
  }

  /// "_" or the quoted constant.
  std::string ToString() const {
    return wildcard_ ? "_" : "'" + constant_ + "'";
  }

  bool operator==(const PatternValue& o) const {
    return wildcard_ == o.wildcard_ && (wildcard_ || constant_ == o.constant_);
  }

 private:
  PatternValue(bool wildcard, std::string constant)
      : wildcard_(wildcard), constant_(std::move(constant)) {}

  bool wildcard_;
  std::string constant_;
};

}  // namespace rules
}  // namespace uniclean

#endif  // UNICLEAN_RULES_PATTERN_H_
