// Text syntax for data quality rules. One rule per line; '#' starts a
// comment. Attribute names are resolved against the data / master schemas.
//
//   CFD phi1: AC='131' -> city='Edi'          # constant CFD
//   CFD phi3: city, phn -> St, AC, post       # FD (all wildcards)
//   CFD phi4: FN='Bob' -> FN='Robert'         # standardization rule
//   MD  psi:  LN=LN & city=city & St=St & post=zip & FN ~jw:0.8 FN
//             -> FN:=FN, phn:=tel
//   NEGMD n1: gd!=gd -> FN:=FN, phn:=tel      # blocks those identifications
//
// CFD items: `Attr` (wildcard) or `Attr='const'` / `Attr=const`.
// MD clauses: `A=B` (equality) or `A ~edit:K B`, `A ~jw:T B`, `A ~qgram:T B`
// where A is a data attribute and B a master attribute.
// MD actions: `E:=F` (write master F into data E).

#ifndef UNICLEAN_RULES_PARSER_H_
#define UNICLEAN_RULES_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/schema.h"
#include "rules/cfd.h"
#include "rules/md.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace rules {

/// The raw (pre-normalization) rules of a parsed program.
struct ParsedRules {
  std::vector<Cfd> cfds;
  std::vector<Md> mds;
  std::vector<NegativeMd> negative_mds;
};

/// Parses a rule program. Returns InvalidArgument with a line number on
/// syntax errors and NotFound on unknown attribute names.
Result<ParsedRules> ParseRules(const std::string& text,
                               const data::SchemaPtr& data_schema,
                               const data::SchemaPtr& master_schema);

/// Convenience: parse + RuleSet::Make in one step.
Result<RuleSet> ParseRuleSet(const std::string& text,
                             const data::SchemaPtr& data_schema,
                             const data::SchemaPtr& master_schema);

}  // namespace rules
}  // namespace uniclean

#endif  // UNICLEAN_RULES_PARSER_H_
