// src/snapshot/: persistent, versioned engine snapshots for warm starts.
//
// A CleanEngine's startup cost is dominated by the §5.2 index build (one
// suffix tree / equality index per MD over the master relation) plus the
// memo warm-up a serving process accumulates. A snapshot serializes exactly
// that warm half — the string pool prefix the engine's ids live in, every
// matcher's built index, optionally the hot memo contents — into one
// checksummed file, so a restarted daemon loads indexes in milliseconds
// instead of rebuilding them (unicleand --snapshot-dir) and journals stay
// byte-identical to a cold-built engine's.
//
// File layout and integrity checking live in format.h; payload
// (de)serialization in codec.h; this header is the policy layer: what gets
// written, in what order a load must happen (pool before sources), and what
// mismatch refuses a load with which status code:
//
//   kDataLoss            — the file cannot be trusted: bad magic, CRC
//                          mismatch, truncation, forged lengths, indices
//                          out of range. Discard the file and cold-build.
//   kFailedPrecondition  — the file may be fine but does not belong to this
//                          configuration: unsupported format version, engine
//                          fingerprint mismatch (rules/master/thresholds
//                          changed), matcher-option mismatch, string-pool
//                          divergence. Cold-build; overwrite the snapshot.
//
// Loads never abort and never return a half-restored engine: every failure
// path surfaces before EngineBuilder::FromSnapshot hands out the engine.

#ifndef UNICLEAN_SNAPSHOT_SNAPSHOT_H_
#define UNICLEAN_SNAPSHOT_SNAPSHOT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "snapshot/format.h"

namespace uniclean {

class CleanEngine;

namespace snapshot {

struct SnapshotWriteOptions {
  /// Also persist the memo contents (match lists, blocking candidates,
  /// per-clause similarity outcomes) so a restarted server begins with the
  /// hit rates the previous process earned. Entries referencing strings
  /// interned after the snapshot's pool generation are skipped.
  bool include_memos = true;
};

/// One section table entry, as reported by Inspect().
struct SectionInfo {
  uint32_t id = 0;
  uint32_t rule_id = kNoRule;
  uint64_t length = 0;
  uint32_t crc = 0;
};

/// What Inspect() reports about a snapshot file without restoring it.
struct SnapshotInfo {
  Header header;
  std::vector<SectionInfo> sections;
  uint64_t file_bytes = 0;
};

/// Serializes `engine`'s warm state to `path`. Calls Warmup() first (the
/// environment must exist to be persisted); the caller should otherwise
/// quiesce the engine — concurrent sessions are safe but memo entries
/// admitted during the write may or may not be captured. The file is
/// written to a temporary sibling and atomically renamed into place, so a
/// concurrent reader never observes a torn snapshot. Non-memo sections are
/// byte-deterministic: two writes of the same warm engine at the same pool
/// generation produce identical files with include_memos = false.
Status WriteSnapshot(const CleanEngine& engine, const std::string& path,
                     const SnapshotWriteOptions& options = {});

/// Decodes the header and walks the section table (bounds-checked, payload
/// CRCs not verified). The cheap "what is this file" query behind the
/// uniclean_snapshot CLI's `inspect`.
Result<SnapshotInfo> Inspect(const std::string& path);

/// Full container validation: header CRC, section table structure, every
/// payload CRC, string-pool payload structure and content hash. Does not
/// need (and cannot check against) an engine; codec-level consistency is
/// only checkable at FromSnapshot time. OK means the bytes are intact.
Status Verify(const std::string& path);

}  // namespace snapshot
}  // namespace uniclean

#endif  // UNICLEAN_SNAPSHOT_SNAPSHOT_H_
