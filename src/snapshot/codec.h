// snapshot::Codec: the (de)serialization of engine internals — the one
// class the data/similarity/core layers befriend so their private built
// state (equality indexes, the Ukkonen suffix tree with its precomputed
// leaf slices, memo contents) can round-trip through a snapshot file
// without widening their public APIs.
//
// Split of labor with snapshot.h: the codec knows *payload layouts* and the
// engine's internals; snapshot.h owns the container (header, section table,
// CRCs) and policy (what mismatch refuses a load). On the read side every
// codec function revalidates what it installs — node/child indices, tuple
// ids, value ids, slice bounds — against the live engine's extents, so a
// forged payload that passed its CRC still cannot plant an out-of-range
// index that a later probe would walk off (the UC_CHECKs in the hot paths
// would abort; the codec returns kDataLoss instead).
//
// What is NOT serialized is deliberate: everything cheaply derivable from
// the engine's sources re-derives on load (clause roles, value_owners_, the
// tree's text/boundaries from the master relation), which both shrinks the
// file and shrinks the forgeable surface. What IS serialized verbatim is
// exactly the state whose recomputation is either expensive (tree nodes) or
// order-sensitive in a way recomputation cannot reproduce: the preorder
// leaf arrays fix the candidate order TopL's truncation sees, and that
// order came from unordered_map iteration during the original build — a
// re-run DFS over deserialized maps could legally pick different leaves and
// silently change journals.

#ifndef UNICLEAN_SNAPSHOT_CODEC_H_
#define UNICLEAN_SNAPSHOT_CODEC_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/match_environment.h"
#include "core/md_matcher.h"
#include "snapshot/format.h"

namespace uniclean {
namespace snapshot {

/// A matcher or memo section paired with the MD rule id it belongs to.
struct RuleSection {
  uint32_t rule_id = 0;
  std::string_view payload;
};

class Codec {
 public:
  // --- write side (engine must be warm and quiesced) ------------------------

  /// Environment-level counts: rule count, matcher count, master size.
  static void AppendEnvironment(const core::MatchEnvironment& env,
                                std::string* out);

  /// One matcher's built index: the equality index, or the suffix tree with
  /// its leaf slices, or nothing (brute-force / empty premise). Entries are
  /// emitted in sorted order so identical engines write identical bytes.
  static void AppendMatcher(const core::MdMatcher& matcher, std::string* out);

  /// One matcher's memo contents (match lists, blocking candidates,
  /// per-clause similarity outcomes). Entries referencing value ids >=
  /// `pool_limit` (interned after the header's generation was captured) are
  /// skipped — they could not be resolved by a loader. Entry order is
  /// unspecified (sharded maps), so memo sections are the one part of a
  /// snapshot whose bytes are not deterministic.
  static void AppendMemos(const core::MdMatcher& matcher, uint64_t pool_limit,
                          std::string* out);

  // --- read side ------------------------------------------------------------

  /// Rebuilds a MatchEnvironment from parsed snapshot sections against an
  /// engine's live rules/master (the string pool must already hold the
  /// snapshot's generation — see snapshot.h load order). Returns kDataLoss
  /// when a payload is structurally inconsistent with the engine (missing
  /// or surplus matcher sections, out-of-range indices, count mismatches).
  static Result<std::unique_ptr<core::MatchEnvironment>> RestoreEnvironment(
      const rules::RuleSet& rules, const data::Relation& master,
      const core::MdMatcherOptions& options, std::string_view env_payload,
      const std::vector<RuleSection>& matcher_sections,
      const std::vector<RuleSection>& memo_sections);

 private:
  static void AppendTree(const similarity::GeneralizedSuffixTree& tree,
                         std::string* out);
  static Status RestoreMatcher(core::MdMatcher* matcher,
                               std::string_view payload);
  static Status RestoreTree(core::MdMatcher* matcher, Reader* reader);
  static Status RestoreMemos(core::MdMatcher* matcher,
                             std::string_view payload);
};

}  // namespace snapshot
}  // namespace uniclean

#endif  // UNICLEAN_SNAPSHOT_CODEC_H_
