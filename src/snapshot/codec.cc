#include "snapshot/codec.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>

#include "data/string_pool.h"

namespace uniclean {
namespace snapshot {

namespace {

/// Matcher payload `kind` byte: which index the matcher carries.
constexpr uint8_t kKindNone = 0;      // brute force / empty premise
constexpr uint8_t kKindEquality = 1;  // equality_index_
constexpr uint8_t kKindTree = 2;      // suffix tree + leaf slices

Status Inconsistent(const std::string& what) {
  return Status::DataLoss("snapshot section inconsistent: " + what);
}

#if defined(__BYTE_ORDER__) && defined(__ORDER_BIG_ENDIAN__) && \
    __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
constexpr bool kHostLittleEndian = false;
#else
constexpr bool kHostLittleEndian = true;
#endif

/// Bulk little-endian array transfer for trivially copyable element types
/// made of 4-byte words (int32 scalars, the suffix tree's 3-word Node, the
/// 2-word leaf-range pair). On little-endian hosts the serialized bytes ARE
/// the in-memory layout, so a restore is one bounds check plus a memcpy —
/// the difference between a millisecond warm start and paying a Result
/// round-trip per 4-byte field. Big-endian hosts take a word-swap pass.
template <typename T>
void AppendWords(std::string* out, const std::vector<T>& v) {
  static_assert(sizeof(T) % 4 == 0, "element must be whole 4-byte words");
  if (v.empty()) return;
  if (kHostLittleEndian) {
    out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
    return;
  }
  const auto* words = reinterpret_cast<const uint32_t*>(v.data());
  for (size_t i = 0; i < v.size() * (sizeof(T) / 4); ++i) {
    PutU32(out, words[i]);
  }
}

template <typename T>
Status ReadWords(Reader* r, size_t count, std::vector<T>* out) {
  static_assert(sizeof(T) % 4 == 0, "element must be whole 4-byte words");
  if (count == 0) {
    out->clear();
    return Status::OK();
  }
  const size_t bytes = count * sizeof(T);
  UC_ASSIGN_OR_RETURN(const char* p, r->Raw(bytes));
  out->resize(count);
  std::memcpy(out->data(), p, bytes);
  if (!kHostLittleEndian) {
    auto* words = reinterpret_cast<uint32_t*>(out->data());
    for (size_t i = 0; i < bytes / 4; ++i) {
      const uint32_t w = words[i];
      words[i] = (w >> 24) | ((w >> 8) & 0xFF00u) | ((w << 8) & 0xFF0000u) |
                 (w << 24);
    }
  }
  return Status::OK();
}

/// Reads a u32-counted ascending tuple-id list bounded by `master_size`.
/// Ascending-strict matches what every cold build produces (equality index
/// buckets, match lists, blocking candidates are all sorted unique), so
/// enforcing it here both validates and pins cold/warm parity.
Status ReadTupleIdList(Reader* r, uint32_t master_size,
                       std::vector<data::TupleId>* out) {
  UC_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  if (n > master_size) return Inconsistent("tuple list longer than master");
  out->clear();
  out->reserve(n);
  int64_t prev = -1;
  for (uint32_t i = 0; i < n; ++i) {
    UC_ASSIGN_OR_RETURN(uint32_t id, r->U32());
    if (id >= master_size || static_cast<int64_t>(id) <= prev) {
      return Inconsistent("tuple id out of range or out of order");
    }
    prev = id;
    out->push_back(static_cast<data::TupleId>(id));
  }
  return Status::OK();
}

void PutTupleIdList(std::string* out, const std::vector<data::TupleId>& ids) {
  PutU32(out, static_cast<uint32_t>(ids.size()));
  for (data::TupleId id : ids) PutU32(out, static_cast<uint32_t>(id));
}

bool GroupKeyLess(const data::GroupKey& a, const data::GroupKey& b) {
  if (a.size != b.size) return a.size < b.size;
  for (uint32_t i = 0; i < a.size; ++i) {
    if (a.parts[i] != b.parts[i]) return a.parts[i] < b.parts[i];
  }
  return false;
}

void PutGroupKey(std::string* out, const data::GroupKey& key) {
  PutU8(out, static_cast<uint8_t>(key.size));
  for (uint32_t i = 0; i < key.size; ++i) PutU32(out, key.parts[i]);
}

/// Reads a GroupKey of exactly `want_parts` parts; each part must be an id
/// below `pool_size` or the null sentinel (data-side projections may hold
/// nulls).
Result<data::GroupKey> ReadGroupKey(Reader* r, size_t want_parts,
                                    uint64_t pool_size) {
  UC_ASSIGN_OR_RETURN(uint8_t n, r->U8());
  if (n != want_parts || n > data::GroupKey::kMaxParts) {
    return Inconsistent("group key width mismatch");
  }
  data::GroupKey key;
  for (uint8_t i = 0; i < n; ++i) {
    UC_ASSIGN_OR_RETURN(uint32_t part, r->U32());
    if (part >= pool_size && part != data::StringPool::kNullId) {
      return Inconsistent("group key holds an unknown value id");
    }
    key.Append(part);
  }
  return key;
}

}  // namespace

// ---------------------------------------------------------------------------
// Write side
// ---------------------------------------------------------------------------

void Codec::AppendEnvironment(const core::MatchEnvironment& env,
                              std::string* out) {
  PutU32(out, static_cast<uint32_t>(env.rules().num_rules()));
  PutU32(out, static_cast<uint32_t>(env.num_matchers()));
  PutU32(out, static_cast<uint32_t>(env.master().size()));
}

void Codec::AppendTree(const similarity::GeneralizedSuffixTree& tree,
                       std::string* out) {
  // The planar layouts below mirror the tree's in-memory arrays exactly
  // (see AppendWords); these asserts pin the assumption.
  static_assert(sizeof(int) == 4, "codec assumes 32-bit int");
  static_assert(sizeof(similarity::GeneralizedSuffixTree::Node) == 12,
                "Node must be exactly {start, end, link}");
  static_assert(
      sizeof(similarity::GeneralizedSuffixTree::LeafRange) == 8,
      "LeafRange must pack to two words");
  PutU32(out, static_cast<uint32_t>(tree.num_strings()));
  PutU32(out, static_cast<uint32_t>(tree.nodes_.size()));
  AppendWords(out, tree.nodes_);
  // Frozen CSR children: FreezeChildren() sorted each node's slice by
  // symbol, so identical engines write identical bytes and a loaded tree
  // binary-searches the same arrays a cold-built one does.
  AppendWords(out, tree.child_begin_);
  AppendWords(out, tree.child_symbols_);
  AppendWords(out, tree.child_nodes_);
  AppendWords(out, tree.suffix_start_);
  PutU32(out, static_cast<uint32_t>(tree.leaf_starts_.size()));
  AppendWords(out, tree.leaf_starts_);
  AppendWords(out, tree.leaf_range_);
}

void Codec::AppendMatcher(const core::MdMatcher& matcher, std::string* out) {
  PutU32(out, static_cast<uint32_t>(matcher.indexed_masters()));
  if (!matcher.options_.use_blocking) {
    PutU8(out, kKindNone);
    return;
  }
  if (!matcher.equality_clauses_.empty()) {
    PutU8(out, kKindEquality);
    std::vector<const std::pair<const data::GroupKey,
                                std::vector<data::TupleId>>*>
        entries;
    entries.reserve(matcher.equality_index_.size());
    for (const auto& entry : matcher.equality_index_) entries.push_back(&entry);
    std::sort(entries.begin(), entries.end(),
              [](const auto* a, const auto* b) {
                return GroupKeyLess(a->first, b->first);
              });
    PutU64(out, entries.size());
    for (const auto* entry : entries) {
      PutGroupKey(out, entry->first);
      PutTupleIdList(out, entry->second);
    }
    return;
  }
  if (matcher.blocking_clause_ >= 0) {
    PutU8(out, kKindTree);
    AppendTree(matcher.tree_, out);
    return;
  }
  PutU8(out, kKindNone);
}

void Codec::AppendMemos(const core::MdMatcher& matcher, uint64_t pool_limit,
                        std::string* out) {
  PutU32(out, static_cast<uint32_t>(matcher.sim_cache_.size()));
  // Each family is buffered so the count prefix reflects post-filter
  // entries (ids interned after the header's pool generation was captured
  // cannot be resolved by a loader and are skipped).
  std::string entries;
  for (const auto& clause_cache : matcher.sim_cache_) {
    entries.clear();
    uint64_t count = 0;
    clause_cache.ForEach([&](uint64_t key, bool holds) {
      if ((key >> 32) >= pool_limit || (key & 0xFFFFFFFFull) >= pool_limit) {
        return;
      }
      PutU64(&entries, key);
      PutU8(&entries, holds ? 1 : 0);
      ++count;
    });
    PutU64(out, count);
    out->append(entries);
  }
  entries.clear();
  uint64_t count = 0;
  matcher.blocking_cache_.ForEach(
      [&](data::ValueId value, const std::vector<data::TupleId>& ids) {
        if (value >= pool_limit) return;
        PutU32(&entries, value);
        PutTupleIdList(&entries, ids);
        ++count;
      });
  PutU64(out, count);
  out->append(entries);
  entries.clear();
  count = 0;
  matcher.match_cache_.ForEach(
      [&](const data::GroupKey& key, const std::vector<data::TupleId>& ids) {
        for (uint32_t i = 0; i < key.size; ++i) {
          if (key.parts[i] >= pool_limit &&
              key.parts[i] != data::StringPool::kNullId) {
            return;
          }
        }
        PutGroupKey(&entries, key);
        PutTupleIdList(&entries, ids);
        ++count;
      });
  PutU64(out, count);
  out->append(entries);
}

// ---------------------------------------------------------------------------
// Read side
// ---------------------------------------------------------------------------

Status Codec::RestoreTree(core::MdMatcher* matcher, Reader* r) {
  core::MdMatcher& m = *matcher;
  similarity::GeneralizedSuffixTree& tree = m.tree_;
  // Re-derive the cheap half exactly as RebuildSuffixTree does — the
  // indexed strings, their owners and the concatenated text come from the
  // master relation in tuple order — then install the serialized expensive
  // half (nodes + leaf slices) instead of running Ukkonen's build.
  const data::AttributeId attr =
      m.md_.premise()[static_cast<size_t>(m.blocking_clause_)].master_attr;
  std::unordered_map<data::ValueId, int> value_to_string_id;
  value_to_string_id.reserve(m.dm_.size());
  m.value_owners_.reserve(m.dm_.size());
  for (data::TupleId s = 0; s < m.dm_.size(); ++s) {
    const data::Value& v = m.dm_.tuple(s).value(attr);
    if (v.is_null()) continue;
    auto [it, inserted] = value_to_string_id.emplace(
        v.id(), static_cast<int>(m.value_owners_.size()));
    if (inserted) {
      tree.AddString(v.view());
      m.value_owners_.emplace_back();
    }
    m.value_owners_[static_cast<size_t>(it->second)].push_back(s);
  }
  const int text_size = static_cast<int>(tree.text_.size());

  UC_ASSIGN_OR_RETURN(uint32_t num_strings, r->U32());
  if (num_strings != static_cast<uint32_t>(tree.num_strings())) {
    return Inconsistent("suffix tree string count does not match the master");
  }
  UC_ASSIGN_OR_RETURN(uint32_t node_count, r->U32());
  // A suffix tree over n symbols has at most 2n internal+leaf nodes plus
  // the root; a forged count past that cannot be a real tree.
  if (node_count < 1 ||
      node_count > 2 * static_cast<uint32_t>(text_size) + 2) {
    return Inconsistent("suffix tree node count out of range");
  }
  // Every array lands as a bulk copy first, then a tight validation pass —
  // after the copies, every index the query paths will ever follow is
  // checked against the live extents, so a forged payload that passed its
  // CRC still cannot plant an out-of-range access.
  UC_RETURN_IF_ERROR(ReadWords(r, node_count, &tree.nodes_));
  // Root carries no edge label.
  if (tree.nodes_[0].start != -1 || tree.nodes_[0].end != -1) {
    return Inconsistent("root node carries an edge label");
  }
  {
    int link_bad = 0;
    int edge_bad = 0;
    for (uint32_t i = 0; i < node_count; ++i) {
      const auto& node = tree.nodes_[i];
      link_bad |= static_cast<int>(static_cast<uint32_t>(node.link) >=
                                   node_count);
      if (i == 0) continue;
      // Edge bounds must keep every text_[start..EdgeEnd) access in range.
      const int edge_end = node.end == -1 ? text_size : node.end;
      edge_bad |= static_cast<int>(node.start < 0) |
                  static_cast<int>(node.end < -1) |
                  static_cast<int>(edge_end > text_size) |
                  static_cast<int>(edge_end < node.start);
    }
    if (link_bad != 0) return Inconsistent("suffix link out of range");
    if (edge_bad != 0) return Inconsistent("node edge label out of range");
  }
  UC_RETURN_IF_ERROR(
      ReadWords(r, static_cast<size_t>(node_count) + 1, &tree.child_begin_));
  // In any rooted tree every node except the root enters through exactly
  // one parent edge, so the CSR must carry node_count - 1 edges.
  if (tree.child_begin_[0] != 0 ||
      tree.child_begin_[node_count] != static_cast<int>(node_count) - 1) {
    return Inconsistent("child slice table does not cover node_count - 1 "
                        "edges");
  }
  {
    int bad = 0;
    for (uint32_t i = 0; i < node_count; ++i) {
      bad |= static_cast<int>(tree.child_begin_[i] > tree.child_begin_[i + 1]);
    }
    if (bad != 0) return Inconsistent("child slice table not monotone");
  }
  const size_t edge_count = static_cast<size_t>(node_count) - 1;
  UC_RETURN_IF_ERROR(ReadWords(r, edge_count, &tree.child_symbols_));
  for (uint32_t i = 0; i < node_count; ++i) {
    // Strictly ascending symbols within each node's slice: what
    // FreezeChildren wrote, what FindChild's binary search requires, and a
    // free duplicate-symbol rejection.
    for (int c = tree.child_begin_[i] + 1; c < tree.child_begin_[i + 1];
         ++c) {
      if (tree.child_symbols_[static_cast<size_t>(c) - 1] >=
          tree.child_symbols_[static_cast<size_t>(c)]) {
        return Inconsistent("child symbols not ascending");
      }
    }
  }
  UC_RETURN_IF_ERROR(ReadWords(r, edge_count, &tree.child_nodes_));
  {
    std::vector<uint8_t> seen(node_count, 0);
    for (const int child : tree.child_nodes_) {
      if (child <= 0 || static_cast<uint32_t>(child) >= node_count) {
        return Inconsistent("child node index out of range");
      }
      if (seen[static_cast<size_t>(child)] != 0) {
        return Inconsistent("node is a child of two parents");
      }
      seen[static_cast<size_t>(child)] = 1;
    }
  }
  // The range checks below fold the whole array into min/max (or an OR of
  // violation bits) and test once — branchless loops the compiler
  // vectorizes, which matters at half a million elements per tree.
  UC_RETURN_IF_ERROR(ReadWords(r, node_count, &tree.suffix_start_));
  {
    int lo = 0;
    int hi = -1;
    for (const int s : tree.suffix_start_) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    if (lo < -1 || hi >= text_size) {
      return Inconsistent("suffix start out of range");
    }
  }
  UC_ASSIGN_OR_RETURN(uint32_t leaf_count, r->U32());
  if (leaf_count > static_cast<uint32_t>(text_size)) {
    return Inconsistent("more leaves than text positions");
  }
  UC_RETURN_IF_ERROR(ReadWords(r, leaf_count, &tree.leaf_starts_));
  {
    // Leaf starts index text_ directly in CollectLeaves/StringIdAt; an
    // out-of-range one would abort there, so refuse it here.
    int lo = 0;
    int hi = -1;
    for (const int s : tree.leaf_starts_) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    if (lo < 0 || hi >= text_size) {
      return Inconsistent("leaf start out of range");
    }
  }
  UC_RETURN_IF_ERROR(ReadWords(r, node_count, &tree.leaf_range_));
  {
    int bad = 0;
    for (const auto& [begin, end] : tree.leaf_range_) {
      bad |= static_cast<int>(begin < 0) | static_cast<int>(end < begin) |
             static_cast<int>(end > static_cast<int>(leaf_count));
    }
    if (bad != 0) return Inconsistent("leaf slice out of range");
  }
  // The O(1) position -> string-id map is derivable; rebuild it like
  // Build()'s tail does.
  tree.pos_string_id_.assign(static_cast<size_t>(text_size), -1);
  for (size_t id = 0; id < tree.boundaries_.size(); ++id) {
    const int begin = tree.boundaries_[id];
    for (int k = 0; k < tree.string_length_[id]; ++k) {
      tree.pos_string_id_[static_cast<size_t>(begin + k)] =
          static_cast<int>(id);
    }
  }
  tree.built_ = true;
  return Status::OK();
}

Status Codec::RestoreMatcher(core::MdMatcher* matcher,
                             std::string_view payload) {
  core::MdMatcher& m = *matcher;
  Reader r(payload);
  UC_ASSIGN_OR_RETURN(uint32_t indexed, r.U32());
  if (indexed != static_cast<uint32_t>(m.dm_.size())) {
    return Inconsistent("matcher indexed a different master size");
  }
  UC_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
  // The restore constructor derived the clause roles from the MD + options;
  // the section's kind byte must agree, or the file was written by a
  // different configuration than the fingerprint admitted.
  uint8_t expected = kKindNone;
  if (m.options_.use_blocking) {
    if (!m.equality_clauses_.empty()) {
      expected = kKindEquality;
    } else if (m.blocking_clause_ >= 0) {
      expected = kKindTree;
    }
  }
  if (kind != expected) return Inconsistent("matcher index kind mismatch");
  if (kind == kKindEquality) {
    const uint64_t pool_size = data::StringPool::Global().size();
    UC_ASSIGN_OR_RETURN(uint64_t count, r.U64());
    // A real index has at most one group per master tuple; reserve for that
    // case only, so a forged count cannot pre-allocate beyond the master's
    // own size (an oversized count fails below, at worst at end-of-payload).
    if (count <= static_cast<uint64_t>(m.dm_.size())) {
      m.equality_index_.reserve(static_cast<size_t>(count));
    }
    for (uint64_t i = 0; i < count; ++i) {
      UC_ASSIGN_OR_RETURN(
          data::GroupKey key,
          ReadGroupKey(&r, m.equality_clauses_.size(), pool_size));
      std::vector<data::TupleId> ids;
      UC_RETURN_IF_ERROR(
          ReadTupleIdList(&r, static_cast<uint32_t>(m.dm_.size()), &ids));
      if (!m.equality_index_.emplace(key, std::move(ids)).second) {
        return Inconsistent("duplicate equality index key");
      }
    }
  } else if (kind == kKindTree) {
    UC_RETURN_IF_ERROR(RestoreTree(matcher, &r));
  }
  if (!r.done()) return Inconsistent("trailing bytes in matcher section");
  return Status::OK();
}

Status Codec::RestoreMemos(core::MdMatcher* matcher,
                           std::string_view payload) {
  core::MdMatcher& m = *matcher;
  const uint64_t pool_size = data::StringPool::Global().size();
  const uint32_t master_size = static_cast<uint32_t>(m.dm_.size());
  Reader r(payload);
  UC_ASSIGN_OR_RETURN(uint32_t n_clauses, r.U32());
  if (n_clauses != m.sim_cache_.size()) {
    return Inconsistent("similarity memo clause count mismatch");
  }
  for (uint32_t c = 0; c < n_clauses; ++c) {
    UC_ASSIGN_OR_RETURN(uint64_t count, r.U64());
    for (uint64_t i = 0; i < count; ++i) {
      UC_ASSIGN_OR_RETURN(uint64_t key, r.U64());
      UC_ASSIGN_OR_RETURN(uint8_t value, r.U8());
      if ((key >> 32) >= pool_size || (key & 0xFFFFFFFFull) >= pool_size ||
          value > 1) {
        return Inconsistent("similarity memo entry out of range");
      }
      bool holds = value != 0;
      m.sim_cache_[c].Insert(key, std::move(holds));
    }
  }
  UC_ASSIGN_OR_RETURN(uint64_t blocking_count, r.U64());
  for (uint64_t i = 0; i < blocking_count; ++i) {
    UC_ASSIGN_OR_RETURN(uint32_t value, r.U32());
    if (value >= pool_size) {
      return Inconsistent("blocking memo value id out of range");
    }
    std::vector<data::TupleId> ids;
    UC_RETURN_IF_ERROR(ReadTupleIdList(&r, master_size, &ids));
    m.blocking_cache_.Insert(value, std::move(ids));
  }
  UC_ASSIGN_OR_RETURN(uint64_t match_count, r.U64());
  for (uint64_t i = 0; i < match_count; ++i) {
    UC_ASSIGN_OR_RETURN(data::GroupKey key,
                        ReadGroupKey(&r, m.md_.premise().size(), pool_size));
    std::vector<data::TupleId> ids;
    UC_RETURN_IF_ERROR(ReadTupleIdList(&r, master_size, &ids));
    m.match_cache_.Insert(key, std::move(ids));
  }
  if (!r.done()) return Inconsistent("trailing bytes in memo section");
  return Status::OK();
}

Result<std::unique_ptr<core::MatchEnvironment>> Codec::RestoreEnvironment(
    const rules::RuleSet& rules, const data::Relation& master,
    const core::MdMatcherOptions& options, std::string_view env_payload,
    const std::vector<RuleSection>& matcher_sections,
    const std::vector<RuleSection>& memo_sections) {
  Reader er(env_payload);
  UC_ASSIGN_OR_RETURN(uint32_t num_rules, er.U32());
  UC_ASSIGN_OR_RETURN(uint32_t num_matchers, er.U32());
  UC_ASSIGN_OR_RETURN(uint32_t master_size, er.U32());
  if (!er.done()) return Inconsistent("trailing bytes in environment section");
  if (num_rules != static_cast<uint32_t>(rules.num_rules())) {
    return Inconsistent("rule count does not match the engine");
  }
  if (master_size != static_cast<uint32_t>(master.size())) {
    return Inconsistent("master size does not match the engine");
  }
  std::unique_ptr<core::MatchEnvironment> env(new core::MatchEnvironment(
      rules, master, options, core::MatchEnvironment::RestoreTag{}));
  // One matcher section per MD rule id, no dups, no strays.
  std::unordered_map<uint32_t, std::string_view> by_rule;
  for (const RuleSection& section : matcher_sections) {
    if (section.rule_id >= num_rules ||
        rules.IsCfd(static_cast<rules::RuleId>(section.rule_id))) {
      return Inconsistent("matcher section for a non-MD rule id");
    }
    if (!by_rule.emplace(section.rule_id, section.payload).second) {
      return Inconsistent("duplicate matcher section");
    }
  }
  // Memo sections are validated against the table up front so the parallel
  // phase below only sees well-attributed payloads.
  std::unordered_map<uint32_t, std::string_view> memo_by_rule;
  for (const RuleSection& section : memo_sections) {
    if (by_rule.count(section.rule_id) == 0) {
      return Inconsistent("memo section without a matcher");
    }
    if (!memo_by_rule.emplace(section.rule_id, section.payload).second) {
      return Inconsistent("duplicate memo section");
    }
  }

  // One work item per MD rule: construct the shell, install the serialized
  // index, then the rule's memos. Items are independent — each touches only
  // its own matcher and reads shared immutable state (rules, master, string
  // pool) — so they restore in parallel; the two suffix-tree payloads
  // dominate the wall clock and overlap instead of queueing.
  struct Item {
    rules::RuleId rule;
    std::string_view matcher_payload;
    std::string_view memo_payload;  // empty when the rule carried no memos
    bool has_memos = false;
  };
  std::vector<Item> items;
  for (rules::RuleId rule = 0; rule < rules.num_rules(); ++rule) {
    if (rules.IsCfd(rule)) continue;
    auto it = by_rule.find(static_cast<uint32_t>(rule));
    if (it == by_rule.end()) {
      return Inconsistent("missing matcher section for rule " +
                          rules.rule_name(rule));
    }
    Item item;
    item.rule = rule;
    item.matcher_payload = it->second;
    auto memo_it = memo_by_rule.find(static_cast<uint32_t>(rule));
    if (memo_it != memo_by_rule.end()) {
      item.memo_payload = memo_it->second;
      item.has_memos = true;
    }
    items.push_back(item);
  }

  std::vector<Status> results(items.size(), Status::OK());
  const auto restore_item = [&](size_t idx) {
    const Item& item = items[idx];
    std::unique_ptr<core::MdMatcher> matcher(new core::MdMatcher(
        rules.md(item.rule), master, options, core::MdMatcher::RestoreTag{}));
    Status status = RestoreMatcher(matcher.get(), item.matcher_payload);
    if (status.ok() && item.has_memos) {
      status = RestoreMemos(matcher.get(), item.memo_payload);
    }
    if (status.ok()) {
      env->matchers_[static_cast<size_t>(item.rule)] = std::move(matcher);
    }
    results[idx] = std::move(status);
  };
  const size_t n_threads = std::min<size_t>(
      items.size(),
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  if (n_threads <= 1) {
    for (size_t i = 0; i < items.size(); ++i) restore_item(i);
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(n_threads);
    for (size_t t = 0; t < n_threads; ++t) {
      workers.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < items.size();
             i = next.fetch_add(1)) {
          restore_item(i);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  // First failure in rule order, so a hostile file yields the same
  // diagnostic regardless of thread scheduling.
  for (Status& status : results) {
    if (!status.ok()) return std::move(status);
  }
  env->num_matchers_ = static_cast<int>(items.size());
  if (num_matchers != static_cast<uint32_t>(env->num_matchers_)) {
    return Inconsistent("matcher count does not match the section table");
  }
  return env;
}

}  // namespace snapshot
}  // namespace uniclean
