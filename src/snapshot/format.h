// The uniclean snapshot container format (".ucsnap"): the byte-level half
// of src/snapshot/. A snapshot is one file:
//
//   header (64 bytes, CRC-protected)
//     0   8   magic "UCSNAPSH"
//     8   u32 format version (kFormatVersion)
//     12  u32 flags (kFlagHasMemos)
//     16  u64 CleanEngine::Fingerprint() of the writing engine
//     24  u32 MdMatcherOptions::top_l
//     28  u32 matcher flags (kMatcherUseBlocking | kMatcherUseMemos)
//     32  u64 MdMatcherOptions::memo_capacity
//     40  u64 string-pool generation count (ids serialized)
//     48  u64 string-pool generation hash (StringPool::PrefixHash)
//     56  u32 section count
//     60  u32 CRC-32C of bytes [0, 60)
//   sections, back to back, each:
//     u32 section id (SectionId)
//     u32 rule id the section belongs to, or kNoRule
//     u64 payload length
//     u32 CRC-32C of the payload
//     payload bytes
//
// All integers are little-endian. Every multi-byte value inside a payload
// goes through the Put*/Reader helpers here, and every read is
// bounds-checked: a truncated, bit-flipped or length-forged file yields a
// structured Status::DataLoss, never an out-of-bounds access or an abort —
// the loader hardening contract tested by snapshot_test's corruption
// matrix. Payload layouts live in codec.h; policy (what gets refused when)
// in snapshot.h.

#ifndef UNICLEAN_SNAPSHOT_FORMAT_H_
#define UNICLEAN_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"

namespace uniclean {
namespace snapshot {

inline constexpr char kMagic[8] = {'U', 'C', 'S', 'N', 'A', 'P', 'S', 'H'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kHeaderBytes = 64;
inline constexpr size_t kSectionHeaderBytes = 20;

/// Header flags.
inline constexpr uint32_t kFlagHasMemos = 1u << 0;
/// Matcher-option flags (header offset 28).
inline constexpr uint32_t kMatcherUseBlocking = 1u << 0;
inline constexpr uint32_t kMatcherUseMemos = 1u << 1;

/// Section ids. A reader skips unknown ids (forward compatibility: a newer
/// writer may append new section kinds), but unknown *required* state can
/// only be added with a version bump.
enum class SectionId : uint32_t {
  kStringPool = 1,   // one per file; must precede use of any interned id
  kEnvironment = 2,  // one per file: environment-level counts
  kMatcher = 3,      // one per MD rule id
  kMemos = 4,        // optional, one per MD rule id (kFlagHasMemos)
};

/// `rule_id` value for sections not owned by a rule.
inline constexpr uint32_t kNoRule = 0xFFFFFFFFu;

/// CRC-32C (Castagnoli polynomial, reflected) of `n` bytes. Chosen over the
/// IEEE polynomial because SSE4.2 computes it in hardware, and a warm start
/// checksums the whole file.
uint32_t Crc32(const void* data, size_t n);
inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

// --- little-endian appenders ------------------------------------------------

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
inline void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}
/// u32 length + raw bytes.
inline void PutBytes(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// --- header -----------------------------------------------------------------

struct Header {
  uint32_t version = kFormatVersion;
  uint32_t flags = 0;
  uint64_t engine_fingerprint = 0;
  uint32_t matcher_top_l = 0;
  uint32_t matcher_flags = 0;
  uint64_t memo_capacity = 0;
  uint64_t pool_count = 0;
  uint64_t pool_hash = 0;
  uint32_t section_count = 0;
};

/// Appends the encoded 64-byte header (with its CRC) to `out`.
void EncodeHeader(const Header& header, std::string* out);

/// Decodes and validates the header at the start of `file`: size, magic
/// (kDataLoss), header CRC (kDataLoss), then version (kFailedPrecondition —
/// the file may be fine, this build just cannot read it).
Result<Header> DecodeHeader(std::string_view file);

// --- sections ---------------------------------------------------------------

struct SectionHeader {
  uint32_t id = 0;
  uint32_t rule_id = kNoRule;
  uint64_t length = 0;
  uint32_t crc = 0;
};

/// Appends the 20-byte section header to `out`.
void EncodeSectionHeader(const SectionHeader& section, std::string* out);

/// Decodes the section header at `file[offset...]`; kDataLoss when fewer
/// than kSectionHeaderBytes remain.
Result<SectionHeader> DecodeSectionHeader(std::string_view file,
                                          size_t offset);

// --- bounds-checked payload reader ------------------------------------------

/// Little-endian cursor over a section payload. Every accessor fails with
/// Status::DataLoss instead of reading past the end, so hostile declared
/// lengths inside a payload cannot walk out of the buffer.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  Result<uint8_t> U8() {
    if (remaining() < 1) return Truncated("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> U32() {
    if (remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    if (remaining() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  Result<int32_t> I32() {
    UC_ASSIGN_OR_RETURN(uint32_t v, U32());
    return static_cast<int32_t>(v);
  }
  /// u32 length + raw bytes; the view aliases the payload buffer.
  Result<std::string_view> Bytes() {
    UC_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (remaining() < n) return Truncated("byte run");
    std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  /// `n` raw payload bytes, advanced past in one bounds check — the bulk
  /// entry point for the flat-array codec paths, where a Result per 4-byte
  /// read would dominate the restore cost.
  Result<const char*> Raw(size_t n) {
    if (remaining() < n) return Truncated("raw block");
    const char* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

 private:
  Status Truncated(const char* what) const {
    return Status::DataLoss(std::string("snapshot payload truncated reading ") +
                            what + " at offset " + std::to_string(pos_));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace snapshot
}  // namespace uniclean

#endif  // UNICLEAN_SNAPSHOT_FORMAT_H_
