#include "snapshot/format.h"

#include <array>

namespace uniclean {
namespace snapshot {

namespace {

// Slicing-by-8 tables for the Castagnoli polynomial: table[0] is the
// classic byte-at-a-time table, and table[k][b] is the CRC of byte b
// followed by k zero bytes, letting the software loop fold 8 input bytes
// per iteration. Every load-time section check CRCs the whole file, so
// this runs over tens of MB on a warm start; the one-byte-per-iteration
// form was a measured double-digit-ms cost there.
std::array<std::array<uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (int t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFF] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

uint32_t Crc32Software(const void* data, size_t n, uint32_t crc) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      MakeCrcTables();
  const auto* p = static_cast<const uint8_t*>(data);
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
#if defined(__BYTE_ORDER__) && defined(__ORDER_BIG_ENDIAN__) && \
    __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    lo = __builtin_bswap32(lo);
    hi = __builtin_bswap32(hi);
#endif
    lo ^= crc;
    crc = kTables[7][lo & 0xFF] ^ kTables[6][(lo >> 8) & 0xFF] ^
          kTables[5][(lo >> 16) & 0xFF] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xFF] ^ kTables[2][(hi >> 8) & 0xFF] ^
          kTables[1][(hi >> 16) & 0xFF] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (size_t i = 0; i < n; ++i) {
    crc = kTables[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define UNICLEAN_CRC32C_HW 1
// The SSE4.2 crc32 instruction implements exactly this polynomial — the
// reason the format uses Castagnoli. Compiled with a target attribute and
// dispatched at runtime so the binary still runs on pre-Nehalem CPUs.
__attribute__((target("sse4.2"))) uint32_t Crc32Hardware(const void* data,
                                                         size_t n,
                                                         uint32_t crc) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  for (size_t i = 0; i < n; ++i) {
    c32 = __builtin_ia32_crc32qi(c32, p[i]);
  }
  return c32;
}
#endif

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
#ifdef UNICLEAN_CRC32C_HW
  static const bool kHaveHardware = __builtin_cpu_supports("sse4.2");
  if (kHaveHardware) {
    return Crc32Hardware(data, n, 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
  }
#endif
  return Crc32Software(data, n, 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
}

void EncodeHeader(const Header& header, std::string* out) {
  const size_t base = out->size();
  out->append(kMagic, sizeof(kMagic));
  PutU32(out, header.version);
  PutU32(out, header.flags);
  PutU64(out, header.engine_fingerprint);
  PutU32(out, header.matcher_top_l);
  PutU32(out, header.matcher_flags);
  PutU64(out, header.memo_capacity);
  PutU64(out, header.pool_count);
  PutU64(out, header.pool_hash);
  PutU32(out, header.section_count);
  PutU32(out, Crc32(out->data() + base, kHeaderBytes - 4));
}

Result<Header> DecodeHeader(std::string_view file) {
  if (file.size() < kHeaderBytes) {
    return Status::DataLoss("snapshot too small for a header (" +
                            std::to_string(file.size()) + " bytes)");
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("not a uniclean snapshot (bad magic)");
  }
  Reader r(file.substr(sizeof(kMagic), kHeaderBytes - sizeof(kMagic)));
  Header h;
  UC_ASSIGN_OR_RETURN(h.version, r.U32());
  UC_ASSIGN_OR_RETURN(h.flags, r.U32());
  UC_ASSIGN_OR_RETURN(h.engine_fingerprint, r.U64());
  UC_ASSIGN_OR_RETURN(h.matcher_top_l, r.U32());
  UC_ASSIGN_OR_RETURN(h.matcher_flags, r.U32());
  UC_ASSIGN_OR_RETURN(h.memo_capacity, r.U64());
  UC_ASSIGN_OR_RETURN(h.pool_count, r.U64());
  UC_ASSIGN_OR_RETURN(h.pool_hash, r.U64());
  UC_ASSIGN_OR_RETURN(h.section_count, r.U32());
  UC_ASSIGN_OR_RETURN(uint32_t crc, r.U32());
  if (crc != Crc32(file.data(), kHeaderBytes - 4)) {
    return Status::DataLoss("snapshot header CRC mismatch");
  }
  // Version after CRC: a corrupt version field should read as corruption,
  // not as an unsupported future format.
  if (h.version != kFormatVersion) {
    return Status::FailedPrecondition(
        "snapshot format version " + std::to_string(h.version) +
        " is not supported (this build reads version " +
        std::to_string(kFormatVersion) + ")");
  }
  return h;
}

void EncodeSectionHeader(const SectionHeader& section, std::string* out) {
  PutU32(out, section.id);
  PutU32(out, section.rule_id);
  PutU64(out, section.length);
  PutU32(out, section.crc);
}

Result<SectionHeader> DecodeSectionHeader(std::string_view file,
                                          size_t offset) {
  if (offset > file.size() || file.size() - offset < kSectionHeaderBytes) {
    return Status::DataLoss("snapshot truncated inside a section header at "
                            "offset " +
                            std::to_string(offset));
  }
  Reader r(file.substr(offset, kSectionHeaderBytes));
  SectionHeader s;
  UC_ASSIGN_OR_RETURN(s.id, r.U32());
  UC_ASSIGN_OR_RETURN(s.rule_id, r.U32());
  UC_ASSIGN_OR_RETURN(s.length, r.U64());
  UC_ASSIGN_OR_RETURN(s.crc, r.U32());
  return s;
}

}  // namespace snapshot
}  // namespace uniclean
