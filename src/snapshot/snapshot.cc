#include "snapshot/snapshot.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define UNICLEAN_SNAPSHOT_HAS_MMAP 1
#endif

#include "data/string_pool.h"
#include "snapshot/codec.h"
#include "uniclean/engine.h"

namespace uniclean {
namespace snapshot {

namespace {

/// The bytes of a snapshot file, either memory-mapped (preferred: the
/// restore path reads every byte exactly once for the CRC sweep and then
/// bulk-copies slices, so a map avoids materialising a second 20+ MB copy)
/// or owned when mapping is unavailable. Move-only RAII.
class FileContents {
 public:
  FileContents() = default;
  FileContents(FileContents&& o) noexcept { *this = std::move(o); }
  FileContents& operator=(FileContents&& o) noexcept {
    std::swap(owned_, o.owned_);
    std::swap(map_, o.map_);
    std::swap(map_len_, o.map_len_);
    return *this;
  }
  FileContents(const FileContents&) = delete;
  FileContents& operator=(const FileContents&) = delete;
  ~FileContents() {
#ifdef UNICLEAN_SNAPSHOT_HAS_MMAP
    if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
  }

  std::string_view view() const {
    if (map_ != nullptr) {
      return std::string_view(static_cast<const char*>(map_), map_len_);
    }
    return owned_;
  }

  void adopt_map(void* map, size_t len) {
    map_ = map;
    map_len_ = len;
  }
  std::string* mutable_owned() { return &owned_; }

 private:
  std::string owned_;
  void* map_ = nullptr;
  size_t map_len_ = 0;
};

Result<FileContents> ReadFile(const std::string& path) {
  FileContents contents;
#ifdef UNICLEAN_SNAPSHOT_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("cannot open snapshot: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::DataLoss("cannot size snapshot: " + path);
  }
  if (st.st_size > 0) {
    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    // Prefault in one kernel pass: the CRC sweep touches every page anyway,
    // and a bulk populate is cheaper than taking the faults one by one.
    flags |= MAP_POPULATE;
#endif
    void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                       flags, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
      return Status::DataLoss("cannot map snapshot: " + path);
    }
    contents.adopt_map(map, static_cast<size_t>(st.st_size));
  } else {
    ::close(fd);
  }
  return contents;
#else
  // stdio with one sized read: a snapshot is tens of MB and the
  // istreambuf_iterator path was a measured multiple of the whole parse
  // cost at that size.
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open snapshot: " + path);
  std::string* bytes = contents.mutable_owned();
  Status status = Status::OK();
  if (std::fseek(f, 0, SEEK_END) != 0) {
    status = Status::DataLoss("cannot seek snapshot: " + path);
  } else {
    const long size = std::ftell(f);
    if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
      status = Status::DataLoss("cannot size snapshot: " + path);
    } else {
      bytes->resize(static_cast<size_t>(size));
      if (size > 0 &&
          std::fread(&(*bytes)[0], 1, bytes->size(), f) != bytes->size()) {
        status = Status::DataLoss("read error on snapshot: " + path);
      }
    }
  }
  std::fclose(f);
  if (!status.ok()) return status;
  return contents;
#endif
}

/// A structurally validated snapshot: header decoded, section table walked
/// and bounds-checked, every payload CRC verified, required sections
/// present exactly once. Views alias the file buffer.
struct ParsedSnapshot {
  Header header;
  std::string_view pool;
  std::string_view environment;
  std::vector<RuleSection> matchers;
  std::vector<RuleSection> memos;
};

Result<ParsedSnapshot> ParseSnapshot(std::string_view file) {
  ParsedSnapshot snap;
  UC_ASSIGN_OR_RETURN(snap.header, DecodeHeader(file));
  bool have_pool = false;
  bool have_env = false;
  size_t offset = kHeaderBytes;
  for (uint32_t i = 0; i < snap.header.section_count; ++i) {
    UC_ASSIGN_OR_RETURN(SectionHeader sh, DecodeSectionHeader(file, offset));
    offset += kSectionHeaderBytes;
    // The declared length is attacker-controlled until proven in bounds.
    if (sh.length > file.size() - offset) {
      return Status::DataLoss("snapshot section " + std::to_string(i) +
                              " declares " + std::to_string(sh.length) +
                              " bytes but only " +
                              std::to_string(file.size() - offset) +
                              " remain");
    }
    const std::string_view payload = file.substr(offset, sh.length);
    offset += sh.length;
    if (Crc32(payload) != sh.crc) {
      return Status::DataLoss("snapshot section " + std::to_string(i) +
                              " (id " + std::to_string(sh.id) +
                              ") failed its CRC check");
    }
    switch (static_cast<SectionId>(sh.id)) {
      case SectionId::kStringPool:
        if (have_pool || sh.rule_id != kNoRule) {
          return Status::DataLoss("duplicate or rule-tagged pool section");
        }
        have_pool = true;
        snap.pool = payload;
        break;
      case SectionId::kEnvironment:
        if (have_env || sh.rule_id != kNoRule) {
          return Status::DataLoss(
              "duplicate or rule-tagged environment section");
        }
        have_env = true;
        snap.environment = payload;
        break;
      case SectionId::kMatcher:
        if (sh.rule_id == kNoRule) {
          return Status::DataLoss("matcher section without a rule id");
        }
        snap.matchers.push_back({sh.rule_id, payload});
        break;
      case SectionId::kMemos:
        if (sh.rule_id == kNoRule) {
          return Status::DataLoss("memo section without a rule id");
        }
        snap.memos.push_back({sh.rule_id, payload});
        break;
      default:
        // Unknown section id: written by a newer writer of the same format
        // version; skippable by construction (required state needs a
        // version bump).
        break;
    }
  }
  if (offset != file.size()) {
    return Status::DataLoss("snapshot carries " +
                            std::to_string(file.size() - offset) +
                            " trailing bytes past the section table");
  }
  if (!have_pool || !have_env) {
    return Status::DataLoss("snapshot is missing a required section");
  }
  return snap;
}

/// Walks a pool payload without touching the live pool: collects the
/// serialized strings and folds the same order-sensitive hash
/// StringPool::PrefixHash computes. kDataLoss on structural problems or
/// when the recomputed hash disagrees with the header (bit flip the
/// section CRC missed, or a forged header).
Result<std::vector<std::string_view>> DecodePoolStrings(
    const Header& header, std::string_view payload) {
  Reader r(payload);
  UC_ASSIGN_OR_RETURN(uint64_t count, r.U64());
  if (count != header.pool_count) {
    return Status::DataLoss("pool section holds " + std::to_string(count) +
                            " strings, header declares " +
                            std::to_string(header.pool_count));
  }
  // Each serialized string costs at least its 4-byte length prefix, so a
  // forged count past this bound cannot be satisfied — refuse before
  // reserving memory for it.
  if (count > payload.size() / 4 + 1) {
    return Status::DataLoss("pool section count exceeds its payload");
  }
  std::vector<std::string_view> strings;
  strings.reserve(static_cast<size_t>(count));
  uint64_t hash = 0x243f6a8885a308d3ULL;  // StringPool::PrefixHash seed
  for (uint64_t i = 0; i < count; ++i) {
    UC_ASSIGN_OR_RETURN(std::string_view s, r.Bytes());
    hash = data::MixU64(hash ^ s.size());
    for (char c : s) {
      hash = data::MixU64(hash ^ static_cast<uint64_t>(
                                     static_cast<uint8_t>(c)));
    }
    strings.push_back(s);
  }
  if (!r.done()) {
    return Status::DataLoss("trailing bytes in pool section");
  }
  if (hash != header.pool_hash) {
    return Status::DataLoss("pool section content hash mismatch");
  }
  return strings;
}

/// Replays the snapshot's pool prefix into the live global pool, BEFORE the
/// engine's sources are parsed, so every id the serialized indexes and
/// memos refer to resolves to the writer's characters — and so the CSV /
/// rules parse that follows interns into hash hits, keeping ids (and
/// therefore journals) byte-identical to the writer's process.
/// kFailedPrecondition when the live pool already diverged (ids are taken
/// by different strings — some other engine interned first).
Status LoadPoolSection(const Header& header, std::string_view payload) {
  UC_ASSIGN_OR_RETURN(std::vector<std::string_view> strings,
                      DecodePoolStrings(header, payload));
  data::StringPool& pool = data::StringPool::Global();
  const size_t live = std::min(pool.size(), strings.size());
  for (size_t id = 0; id < live; ++id) {
    if (pool.view(static_cast<data::ValueId>(id)) != strings[id]) {
      return Status::FailedPrecondition(
          "live string pool diverged from the snapshot at id " +
          std::to_string(id) +
          " — the snapshot belongs to a different interning history");
    }
  }
  if (live < strings.size()) {
    const size_t n = strings.size() - live;
    std::vector<data::ValueId> ids(n);
    UC_RETURN_IF_ERROR(pool.TryInternBatch(&strings[live], n, ids.data()));
    for (size_t i = 0; i < n; ++i) {
      if (ids[i] != static_cast<data::ValueId>(live + i)) {
        // Another thread interned between the prefix check and the batch;
        // the prefix is no longer ours.
        return Status::FailedPrecondition(
            "string pool grew concurrently while loading a snapshot");
      }
    }
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open " + tmp + " for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("write failed on " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " into place");
  }
  return Status::OK();
}

uint32_t MatcherFlags(const core::MdMatcherOptions& options) {
  return (options.use_blocking ? kMatcherUseBlocking : 0) |
         (options.use_memos ? kMatcherUseMemos : 0);
}

}  // namespace

Status WriteSnapshot(const CleanEngine& engine, const std::string& path,
                     const SnapshotWriteOptions& options) {
  engine.Warmup();
  const core::MatchEnvironment& env = engine.environment();
  const core::MdMatcherOptions& mopts = engine.config().matcher;
  const data::StringPool& pool = data::StringPool::Global();
  // Capture the pool generation FIRST: concurrent sessions may intern while
  // we serialize, and everything written below must stay within this
  // prefix (memo entries referencing later ids are filtered out).
  const data::StringPoolGeneration gen = pool.Generation();

  const bool write_memos = options.include_memos && mopts.use_memos;
  Header header;
  header.flags = write_memos ? kFlagHasMemos : 0;
  header.engine_fingerprint = engine.Fingerprint();
  header.matcher_top_l = static_cast<uint32_t>(mopts.top_l);
  header.matcher_flags = MatcherFlags(mopts);
  header.memo_capacity = mopts.memo_capacity;
  header.pool_count = gen.count;
  header.pool_hash = gen.hash;

  struct PendingSection {
    SectionId id;
    uint32_t rule_id;
    std::string payload;
  };
  std::vector<PendingSection> sections;

  PendingSection pool_section{SectionId::kStringPool, kNoRule, {}};
  PutU64(&pool_section.payload, gen.count);
  for (uint64_t id = 0; id < gen.count; ++id) {
    PutBytes(&pool_section.payload,
             pool.view(static_cast<data::ValueId>(id)));
  }
  sections.push_back(std::move(pool_section));

  PendingSection env_section{SectionId::kEnvironment, kNoRule, {}};
  Codec::AppendEnvironment(env, &env_section.payload);
  sections.push_back(std::move(env_section));

  const rules::RuleSet& rules = engine.rules();
  for (rules::RuleId rule = 0; rule < rules.num_rules(); ++rule) {
    if (rules.IsCfd(rule)) continue;
    const core::MdMatcher* matcher = env.matcher(rule);
    PendingSection section{SectionId::kMatcher,
                           static_cast<uint32_t>(rule), {}};
    Codec::AppendMatcher(*matcher, &section.payload);
    sections.push_back(std::move(section));
    if (write_memos) {
      PendingSection memos{SectionId::kMemos, static_cast<uint32_t>(rule),
                           {}};
      Codec::AppendMemos(*matcher, gen.count, &memos.payload);
      sections.push_back(std::move(memos));
    }
  }
  header.section_count = static_cast<uint32_t>(sections.size());

  std::string bytes;
  EncodeHeader(header, &bytes);
  for (const PendingSection& section : sections) {
    SectionHeader sh;
    sh.id = static_cast<uint32_t>(section.id);
    sh.rule_id = section.rule_id;
    sh.length = section.payload.size();
    sh.crc = Crc32(section.payload);
    EncodeSectionHeader(sh, &bytes);
    bytes.append(section.payload);
  }
  return WriteFileAtomic(path, bytes);
}

Result<SnapshotInfo> Inspect(const std::string& path) {
  UC_ASSIGN_OR_RETURN(FileContents contents, ReadFile(path));
  const std::string_view file = contents.view();
  SnapshotInfo info;
  info.file_bytes = file.size();
  UC_ASSIGN_OR_RETURN(info.header, DecodeHeader(file));
  size_t offset = kHeaderBytes;
  for (uint32_t i = 0; i < info.header.section_count; ++i) {
    UC_ASSIGN_OR_RETURN(SectionHeader sh, DecodeSectionHeader(file, offset));
    offset += kSectionHeaderBytes;
    if (sh.length > file.size() - offset) {
      return Status::DataLoss("snapshot section " + std::to_string(i) +
                              " overruns the file");
    }
    offset += sh.length;
    info.sections.push_back({sh.id, sh.rule_id, sh.length, sh.crc});
  }
  return info;
}

Status Verify(const std::string& path) {
  UC_ASSIGN_OR_RETURN(FileContents contents, ReadFile(path));
  UC_ASSIGN_OR_RETURN(ParsedSnapshot snap, ParseSnapshot(contents.view()));
  // The pool payload is self-describing, so its structure and content hash
  // are checkable without an engine (unlike the codec sections, whose
  // consistency is defined relative to live rules/master).
  UC_RETURN_IF_ERROR(DecodePoolStrings(snap.header, snap.pool).status());
  return Status::OK();
}

}  // namespace snapshot

// Defined here rather than engine.cc so the core library does not depend on
// the snapshot library; only FromSnapshot callers link uniclean::snapshot.
Result<std::shared_ptr<CleanEngine>> EngineBuilder::FromSnapshot(
    const std::string& path) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  UC_ASSIGN_OR_RETURN(snapshot::FileContents file, snapshot::ReadFile(path));
  UC_ASSIGN_OR_RETURN(snapshot::ParsedSnapshot snap,
                      snapshot::ParseSnapshot(file.view()));
  // Pool before sources: the CSV / rules parse below must re-find the
  // writer's ids. (On any later failure the interned prefix stays behind —
  // harmless: ids are process-local and journals carry strings.)
  UC_RETURN_IF_ERROR(snapshot::LoadPoolSection(snap.header, snap.pool));
  UC_ASSIGN_OR_RETURN(std::shared_ptr<CleanEngine> engine, BuildEngine());
  const uint64_t fingerprint = engine->Fingerprint();
  if (fingerprint != snap.header.engine_fingerprint) {
    return Status::FailedPrecondition(
        "snapshot was written by a different engine (fingerprint " +
        std::to_string(snap.header.engine_fingerprint) + ", this engine " +
        std::to_string(fingerprint) +
        ") — rules, master data or thresholds changed");
  }
  const core::MdMatcherOptions& mopts = engine->config().matcher;
  if (snap.header.matcher_top_l != static_cast<uint32_t>(mopts.top_l) ||
      snap.header.matcher_flags != snapshot::MatcherFlags(mopts) ||
      snap.header.memo_capacity != mopts.memo_capacity) {
    return Status::FailedPrecondition(
        "snapshot was written under different matcher options");
  }
  const bool has_memos = (snap.header.flags & snapshot::kFlagHasMemos) != 0;
  UC_ASSIGN_OR_RETURN(
      std::unique_ptr<core::MatchEnvironment> env,
      snapshot::Codec::RestoreEnvironment(
          engine->rules(), engine->master(), mopts, snap.environment,
          snap.matchers,
          has_memos ? snap.memos : std::vector<snapshot::RuleSection>{}));
  engine->env_ = std::move(env);
  engine->snapshot_source_ = path;
  engine->snapshot_load_s_ =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return engine;
}

}  // namespace uniclean
