// Session: the cheap, per-run handle of the engine/session split. A
// CleanEngine (engine.h) owns everything immutable and expensive — rules,
// master data, the warm core::MatchEnvironment and its memos — while a
// Session carries only the per-run mutable state: the phase instances, the
// progress callback, and (per Run call) the data relation being cleaned and
// the journal being written. Sessions are move-only, cost a few phase
// allocations to create, and hold their engine alive through a shared_ptr,
// so the serving loop is:
//
//   uniclean::Session session = engine->NewSession();
//   auto result = session.Run(&batch);   // warm indexes, shared memos
//
// Any number of sessions may Run() concurrently over *independent* data
// relations; results are byte-identical to running the same relations
// serially (the engine's shared memos cache pure functions of the static
// master data). One Session must not be used from two threads at once, and
// two concurrent Runs must not clean the same relation.

#ifndef UNICLEAN_UNICLEAN_SESSION_H_
#define UNICLEAN_UNICLEAN_SESSION_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "uniclean/fix_journal.h"
#include "uniclean/phase.h"

namespace uniclean {

class CleanEngine;

/// The outcome of one Session::Run(): per-phase statistics plus the full
/// fix provenance journal.
struct CleanResult {
  FixJournal journal;
  /// One entry per executed phase, in pipeline order.
  std::vector<PhaseStats> phases;

  /// Sum of all phases' fix counts.
  int total_fixes() const;

  /// Stats of the named phase, or null if it did not run.
  const PhaseStats* phase(std::string_view name) const;

  /// All record matches identified across the phases, deduplicated and
  /// sorted — the paper's "matches found by Uni" (Exp-2).
  std::vector<std::pair<data::TupleId, data::TupleId>> AllMatches() const;
};

/// A per-run cleaning handle obtained from CleanEngine::NewSession().
/// Move-only. Holds its engine alive; owns its phase instances (created
/// fresh per session, so stateful phases never race across sessions).
class Session {
 public:
  /// An empty session; Run() fails with FailedPrecondition until a real
  /// session is move-assigned in. Exists so sessions can be class members.
  Session() = default;

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// Cleans `data` in place against the engine's master, rules and warm
  /// match environment. The relation's schema must match the rule set's
  /// data schema; its cell values must be interned in the same StringPool
  /// as the engine's master (always true outside ScopedStringPool test
  /// scopes), or the shared memos would confuse ids across pools. May be
  /// called repeatedly, over the same or different relations; every call
  /// reuses the engine's warm indexes and memos.
  Result<CleanResult> Run(data::Relation* data);

  /// Observer invoked before and after every phase of Run().
  void set_progress_callback(ProgressCallback callback) {
    progress_ = std::move(callback);
  }

  /// Phase names in pipeline order.
  std::vector<std::string> PhaseNames() const;

  /// The engine this session runs against; null for an empty session.
  const CleanEngine* engine() const { return engine_.get(); }

 private:
  friend class CleanEngine;
  friend class EngineBuilder;

  Session(std::shared_ptr<const CleanEngine> engine,
          std::vector<std::unique_ptr<Phase>> phases)
      : engine_(std::move(engine)), phases_(std::move(phases)) {}

  std::shared_ptr<const CleanEngine> engine_;
  std::vector<std::unique_ptr<Phase>> phases_;
  ProgressCallback progress_;
};

}  // namespace uniclean

#endif  // UNICLEAN_UNICLEAN_SESSION_H_
