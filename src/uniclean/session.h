// Session: the cheap, per-run handle of the engine/session split. A
// CleanEngine (engine.h) owns everything immutable and expensive — rules,
// master data, the warm core::MatchEnvironment and its memos — while a
// Session carries only the per-run mutable state: the phase instances, the
// progress callback, and (per Run call) the data relation being cleaned and
// the journal being written. Sessions are move-only, cost a few phase
// allocations to create, and hold their engine alive through a shared_ptr,
// so the serving loop is:
//
//   uniclean::Session session = engine->NewSession();
//   auto result = session.Run(&batch);   // warm indexes, shared memos
//
// Any number of sessions may Run() concurrently over *independent* data
// relations; results are byte-identical to running the same relations
// serially (the engine's shared memos cache pure functions of the static
// master data). One Session must not be used from two threads at once, and
// two concurrent Runs must not clean the same relation.
//
// Incremental cleaning: a *tracked* session (CleanEngine::NewTrackedSession)
// additionally maintains, across its one Run(), the violation-group indexes
// the repair engines grouped tuples by. ApplyDelta(Delta) then folds a batch
// of inserts/updates/deletes in without re-cleaning the world: it seeds the
// set of tuples whose repairs could change (the edited tuples, every tuple
// sharing a variable-CFD LHS group with one, and tuples newly matching
// appended master data), re-runs the phase pipeline over just that set —
// from pristine (pre-cleaning) values, with the set's out-of-closure group
// peers present as read-only context at their committed values, against the
// engine's warm match environment — and iterates to a fixpoint: whenever a
// re-cleaned tuple's outcome differs from its committed state, its
// violation groups are pulled in and the round repeats, so cross-group
// effects propagate exactly as far as they reach and no further. The resulting fixes are journaled under a
// fresh delta generation:
//
//   uniclean::Session session = engine->NewTrackedSession();
//   auto initial = session.Run(&d);              // generation 0
//   uniclean::Delta delta;
//   delta.inserts.push_back(std::move(row));
//   auto dr = session.ApplyDelta(delta);         // generation 1: dirty set
//   session.CanonicalJournal();                  // == batch run over final d

#ifndef UNICLEAN_UNICLEAN_SESSION_H_
#define UNICLEAN_UNICLEAN_SESSION_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "data/group_key.h"
#include "data/relation.h"
#include "rules/ruleset.h"
#include "uniclean/fix_journal.h"
#include "uniclean/phase.h"

namespace uniclean {

class CleanEngine;

/// The outcome of one Session::Run(): per-phase statistics plus the full
/// fix provenance journal.
struct CleanResult {
  FixJournal journal;
  /// One entry per executed phase, in pipeline order.
  std::vector<PhaseStats> phases;

  /// Sum of all phases' fix counts.
  int total_fixes() const;

  /// Stats of the named phase, or null if it did not run.
  const PhaseStats* phase(std::string_view name) const;

  /// All record matches identified across the phases, deduplicated and
  /// sorted — the paper's "matches found by Uni" (Exp-2).
  std::vector<std::pair<data::TupleId, data::TupleId>> AllMatches() const;
};

/// One batch of edits to a tracked relation, applied by
/// Session::ApplyDelta in the order updates, deletes, inserts. Tuple
/// content (values + confidences) is taken as the new *pristine* state:
/// marks reset and the incremental re-clean starts the affected tuples from
/// these values, exactly as a batch run over the edited relation would.
struct Delta {
  /// New tuples, appended with fresh ids (reported in
  /// DeltaResult::inserted_ids). Arity must match the data schema.
  std::vector<data::Tuple> inserts;
  /// (existing tuple id, replacement content) pairs. The id must be live.
  std::vector<std::pair<data::TupleId, data::Tuple>> updates;
  /// Tuple ids to tombstone (data::Relation::EraseTuple — ids never shift).
  std::vector<data::TupleId> deletes;

  bool empty() const {
    return inserts.empty() && updates.empty() && deletes.empty();
  }
};

/// The outcome of one Session::ApplyDelta.
struct DeltaResult {
  /// Generation this delta was journaled under (1 for the first delta after
  /// Run, then monotonically increasing; unchanged by a no-op delta).
  int generation = 0;
  /// Ids minted for Delta::inserts, index-matched to the input.
  std::vector<data::TupleId> inserted_ids;
  /// Tuples re-cleaned (the edit's violation-group neighborhood, widened to
  /// the repair fixpoint) — the incremental cost driver, typically << the
  /// relation size.
  int affected = 0;
  /// Scoped re-repair rounds run: 1 plus one per closure expansion (a
  /// re-cleaned tuple's outcome changed, so its groups were pulled in).
  int refinement_rounds = 0;
  /// Fixes of this generation only, with tuple ids of the tracked relation.
  FixJournal delta_journal;
  /// Per-phase statistics of the final refinement round.
  std::vector<PhaseStats> phases;

  /// Sum of the final round's phase fix counts.
  int total_fixes() const;
};

/// A per-run cleaning handle obtained from CleanEngine::NewSession().
/// Move-only. Holds its engine alive; owns its phase instances (created
/// fresh per session, so stateful phases never race across sessions).
class Session {
 public:
  /// An empty session; Run() fails with FailedPrecondition until a real
  /// session is move-assigned in. Exists so sessions can be class members.
  Session() = default;

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// Cleans `data` in place against the engine's master, rules and warm
  /// match environment. The relation's schema must match the rule set's
  /// data schema; its cell values must be interned in the same StringPool
  /// as the engine's master (always true outside ScopedStringPool test
  /// scopes), or the shared memos would confuse ids across pools. May be
  /// called repeatedly, over the same or different relations; every call
  /// reuses the engine's warm indexes and memos.
  ///
  /// On a tracked session (EnableDeltaTracking /
  /// CleanEngine::NewTrackedSession) a Run additionally snapshots the
  /// relation's pristine state, accumulates the journal and builds the
  /// violation-group indexes ApplyDelta maintains; the relation must then
  /// outlive the session's delta use, and a repeated Run restarts tracking
  /// from scratch (generation 0) on its relation.
  Result<CleanResult> Run(data::Relation* data);

  /// Arms delta tracking for the next Run (see ApplyDelta). Must be called
  /// before Run; prefer CleanEngine::NewTrackedSession, which returns a
  /// session with tracking already armed. Tracking costs one pristine clone
  /// of the relation plus the group indexes (O(|D|) ids).
  void EnableDeltaTracking() { track_deltas_ = true; }

  /// Incrementally folds `delta` into the tracked relation: applies the
  /// edits, seeds the affected tuples through the maintained variable-CFD
  /// group indexes (plus tuples newly matching master data appended since
  /// the last call — see CleanEngine::RefreshMasterIndexes), and re-runs the
  /// phase pipeline over only that set, restarted from pristine values
  /// against the warm match environment, widening to a fixpoint when
  /// outcomes change. Fixes are journaled under a fresh generation; a
  /// re-cleaned tuple's earlier-generation entries stay as history and
  /// CanonicalJournal() exposes the covering view. Fails with
  /// FailedPrecondition before a tracked Run() and with InvalidArgument on
  /// bad edits (unknown or dead tuple ids, arity mismatches), in which case
  /// nothing was applied. An empty delta with no master growth is a no-op.
  ///
  /// Convergence: the closure re-runs the same phases from the same pristine
  /// inputs a batch run over the final relation would see — with its
  /// violation-group peers completed by a frozen "ring" of out-of-closure
  /// tuples at their committed values (pinned so the pipeline treats them as
  /// settled context, not repair targets), in tracked-id order so group
  /// tie-breaks match the batch run. The invariant this buys is the
  /// canonical fix set — WHAT was repaired: the (tuple, attribute, old, new)
  /// rows of FixJournal::CanonicalFixSetCsv() match a batch run over the
  /// final relation (asserted in tests/delta_test.cc). Which phase/rule gets
  /// credited for a fix is derivation provenance and may differ between the
  /// incremental and batch trajectories. Tuples outside the closure keep
  /// their existing repairs untouched.
  Result<DeltaResult> ApplyDelta(const Delta& delta);

  /// The covering fix set of a tracked session: for every live tuple, the
  /// journal entries of the generation that last cleaned it, canonicalized
  /// (sorted by (tuple, attr), generations zeroed — see
  /// FixJournal::Canonicalized). Its CanonicalFixSetCsv() rendering is
  /// byte-comparable to a batch run's over the final relation; the
  /// full-provenance rows additionally carry phase/rule attribution, which
  /// is trajectory-dependent. Empty before a tracked Run().
  FixJournal CanonicalJournal() const;

  /// Full accumulated journal of a tracked session: the initial Run's
  /// generation-0 entries plus every delta generation's, in append order.
  const FixJournal& journal() const { return journal_; }

  /// Delta generations applied since the tracked Run() (0 right after it).
  int generation() const { return generation_; }

  /// Observer invoked before and after every phase of Run() (and of each
  /// ApplyDelta refinement round, where the event's data pointer is the
  /// scoped scratch relation, not the tracked one).
  void set_progress_callback(ProgressCallback callback) {
    progress_ = std::move(callback);
  }

  /// Arms cooperative cancellation for subsequent Run/ApplyDelta calls
  /// (null disarms). The token is polled at phase boundaries and, inside
  /// the built-in phases, between committed fixes. Semantics when it trips:
  ///
  ///  * Run() becomes all-or-nothing: the pipeline executes over a scratch
  ///    copy that is swapped into the caller's relation only on success, so
  ///    a cancelled/expired run returns kCancelled/kDeadlineExceeded with
  ///    ZERO fixes applied and no journal — never a partially repaired
  ///    relation. (Without a token the historical clean-in-place path is
  ///    unchanged and costs no copy.) A tracked session whose Run was
  ///    cancelled resets to the not-yet-run state and stays usable for a
  ///    fresh Run().
  ///  * ApplyDelta keeps its existing failure contract: the raw edits are
  ///    applied, the scratch re-repair is discarded, the journal still
  ///    covers the pre-delta repairs, and the session remains usable.
  void set_cancel_token(std::shared_ptr<const common::CancelToken> token) {
    cancel_ = std::move(token);
  }

  /// Phase names in pipeline order.
  std::vector<std::string> PhaseNames() const;

  /// The engine this session runs against; null for an empty session.
  const CleanEngine* engine() const { return engine_.get(); }

 private:
  friend class CleanEngine;
  friend class EngineBuilder;

  Session(std::shared_ptr<const CleanEngine> engine,
          std::vector<std::unique_ptr<Phase>> phases)
      : engine_(std::move(engine)), phases_(std::move(phases)) {}

  /// The shared pipeline executor behind Run and ApplyDelta's rounds.
  Result<std::vector<PhaseStats>> ExecutePipeline(data::Relation* data,
                                                  FixJournal* journal);

  /// Files tuple `t` in every variable-CFD group index, under both its
  /// current and its pristine LHS key (repair coupling can flow through
  /// either: the batch pipeline groups on pristine values early and on
  /// repaired values late).
  void FileTuple(data::TupleId t);
  /// Removes `t` from every bucket filed_[t] points at.
  void UnfileTuple(data::TupleId t);
  /// Rebuilds vcfd_rules_/group_index_/filed_ from the tracked relation.
  void BuildGroupIndex();

  std::shared_ptr<const CleanEngine> engine_;
  std::vector<std::unique_ptr<Phase>> phases_;
  ProgressCallback progress_;
  std::shared_ptr<const common::CancelToken> cancel_;

  // --- delta-tracking state (unused unless track_deltas_) ------------------
  using GroupIndex =
      std::unordered_map<data::GroupKey, std::vector<data::TupleId>,
                         data::GroupKeyHash>;
  bool track_deltas_ = false;
  data::Relation* tracked_ = nullptr;         // borrowed; bound by Run
  std::unique_ptr<data::Relation> pristine_;  // pre-cleaning snapshot
  FixJournal journal_;                        // all generations, append order
  std::vector<int> covered_gen_;              // per tuple: covering generation
  int generation_ = 0;
  int known_master_size_ = 0;  // master extent already accounted for
  std::vector<rules::RuleId> vcfd_rules_;
  std::vector<GroupIndex> group_index_;  // parallel to vcfd_rules_
  // Per tuple: the (vcfd index, key) buckets it is filed under.
  std::vector<std::vector<std::pair<size_t, data::GroupKey>>> filed_;
};

}  // namespace uniclean

#endif  // UNICLEAN_UNICLEAN_SESSION_H_
