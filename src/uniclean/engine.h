// CleanEngine: the shared, immutable, thread-safe half of the library's
// top-level API. An engine owns everything expensive and read-only — the
// rule set, the master relation, the warm core::MatchEnvironment (MD
// indexes + sharded memos) and the validated pipeline configuration — and
// stamps out cheap per-run Session handles (session.h) that carry only
// mutable run state. This is the engine/session split HoloClean makes
// between its compiled signal model and per-cell scoring, applied to the
// paper's unified cleaning framework: pay the §5.2 index build once, then
// answer many cheap repair runs, concurrently.
//
//   auto engine = EngineBuilder()
//                     .WithMasterCsv("master.csv")
//                     .WithRulesFile("rules.txt")
//                     .WithDataSchema(schema)       // rules parse against it
//                     .BuildEngine();               // shared_ptr<CleanEngine>
//   if (!engine.ok()) { /* bad config */ }
//   (*engine)->Warmup();                            // optional: front-load
//   // serve: one cheap session per request, any number in flight
//   uniclean::Session session = (*engine)->NewSession();
//   auto result = session.Run(&batch);
//
// Thread-safety contract: after BuildEngine() returns, every const method
// of CleanEngine is safe from any number of threads. Concurrent
// Session::Run() calls over *independent* data relations are data-race-free
// and byte-identical to serial execution — the shared memos cache pure
// functions of the static master data, so interleaving cannot change
// results. RunBatch() packages that: a worker pool of sessions over a batch
// of relations.
//
// The historic single-session façade, uniclean::Cleaner (cleaner.h), is now
// a thin shim over CleanEngine + Session and remains the convenient choice
// for one-shot cleaning; CleanerBuilder is an alias of EngineBuilder.

#ifndef UNICLEAN_UNICLEAN_ENGINE_H_
#define UNICLEAN_UNICLEAN_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/match_environment.h"
#include "data/relation.h"
#include "data/schema.h"
#include "rules/ruleset.h"
#include "uniclean/phase.h"
#include "uniclean/session.h"

namespace uniclean {

class Cleaner;

/// The shared, immutable cleaning engine. Created only via
/// EngineBuilder::BuildEngine() (always behind a shared_ptr — sessions keep
/// their engine alive through it). All const methods are thread-safe.
class CleanEngine : public std::enable_shared_from_this<CleanEngine> {
 public:
  CleanEngine(const CleanEngine&) = delete;
  CleanEngine& operator=(const CleanEngine&) = delete;

  /// A fresh per-run handle: new phase instances, no data bound yet. Cheap
  /// (a few small allocations); call per request in a serving loop.
  Session NewSession() const;

  /// Like NewSession(), but with delta tracking armed: the session's one
  /// Run() snapshots pristine state and builds violation-group indexes, and
  /// Session::ApplyDelta then folds incremental inserts/updates/deletes in
  /// without re-cleaning the whole relation (see session.h). Tracking costs
  /// a clone of the cleaned relation plus O(|D|) index ids.
  Session NewTrackedSession() const;

  /// Cleans every relation of the batch, each in its own Session, using a
  /// worker pool of `n_threads` threads (values < 2 run the batch serially
  /// on the calling thread — the reference arm). Returns one Result per
  /// relation, index-matched to the input; per-relation failures (e.g. a
  /// schema mismatch) do not abort the rest of the batch. The relations
  /// must be pairwise distinct and not otherwise touched during the call.
  std::vector<Result<CleanResult>> RunBatch(data::Relation* const* relations,
                                            size_t count,
                                            int n_threads) const;
  std::vector<Result<CleanResult>> RunBatch(
      const std::vector<data::Relation*>& relations, int n_threads) const {
    return RunBatch(relations.data(), relations.size(), n_threads);
  }

  /// The engine's match environment (MD suffix-tree / equality indexes +
  /// sharded memos), built on first use — by the first Run, or by Warmup().
  /// Valid for the engine's lifetime.
  const core::MatchEnvironment& environment() const;

  /// Builds the match environment now instead of lazily. Idempotent and
  /// thread-safe; lets servers front-load the index cost and benches report
  /// it separately.
  void Warmup() const { environment(); }

  /// Aggregated memo statistics across the environment's matchers (builds
  /// the environment if it does not exist yet). Live counters; safe while
  /// sessions are running.
  core::MemoStats MemoStats() const { return environment().MemoStats(); }

  /// Folds master tuples the caller appended (only possible with a
  /// caller-owned master: WithMaster(const data::Relation*)) into the warm
  /// match environment — equality indexes and suffix trees catch up, stale
  /// match/blocking memos are dropped, similarity memos survive (see
  /// core::MatchEnvironment::RefreshMasterAppend). Returns the number of
  /// newly indexed master tuples. NOT safe while any Session is running:
  /// callers must quiesce sessions first (the refresh invalidates memo
  /// references and rewrites the indexes in place). Tracked sessions pick
  /// the growth up on their next ApplyDelta.
  int RefreshMasterIndexes() const;

  const data::Relation& master() const { return *master_; }
  const rules::RuleSet& rules() const { return *rules_; }
  const PipelineConfig& config() const { return config_; }

  /// A cheap content fingerprint of the engine's static inputs: rule names,
  /// master cell ids (live tuples only) and the pipeline thresholds, folded
  /// through the splitmix64 mixer. Two engines built from the same rules,
  /// master contents and thresholds report the same fingerprint; serving
  /// deployments (unicleand RELOAD) compare fingerprints across an engine
  /// swap to tell a no-op reload from a real one. O(master cells) per call;
  /// safe while sessions run (master data is immutable post-build — a
  /// caller-owned master grown for RefreshMasterIndexes changes the
  /// fingerprint, which is the point).
  uint64_t Fingerprint() const;

  /// Phase names a NewSession() pipeline will run, in order.
  std::vector<std::string> PhaseNames() const;

  /// Path of the snapshot this engine's match environment was loaded from
  /// (EngineBuilder::FromSnapshot), or empty for a cold-built environment.
  const std::string& snapshot_source() const { return snapshot_source_; }
  /// Wall seconds FromSnapshot spent loading (0 for a cold build).
  double snapshot_load_seconds() const { return snapshot_load_s_; }

 private:
  friend class EngineBuilder;
  CleanEngine() = default;

  // Owned storage is held behind unique_ptr so the aliasing raw pointers
  // stay valid regardless of how the shared_ptr<CleanEngine> travels.
  std::unique_ptr<data::Relation> owned_master_;
  std::unique_ptr<rules::RuleSet> owned_rules_;
  const data::Relation* master_ = nullptr;
  const rules::RuleSet* rules_ = nullptr;
  PipelineConfig config_;
  std::vector<PhaseFactory> phase_factories_;
  // Lazily built, then immutable; call_once makes the build thread-safe
  // (two racing first Runs construct it exactly once). FromSnapshot installs
  // env_ before the engine escapes the builder; environment()'s lambda
  // checks for it, so a snapshot-warmed engine never cold-builds.
  mutable std::once_flag env_once_;
  mutable std::unique_ptr<core::MatchEnvironment> env_;
  std::string snapshot_source_;
  double snapshot_load_s_ = 0.0;
};

/// Fluent single-use builder for CleanEngine (and the Cleaner shim — the
/// historic name CleanerBuilder aliases this class). Every setter
/// overwrites earlier configuration of the same slot; BuildEngine()/Build()
/// move the configuration out.
class EngineBuilder {
 public:
  EngineBuilder() = default;

  // --- data relation D -----------------------------------------------------
  // Engine builds need the data relation only to resolve the rule text's
  // data schema (or not at all — see WithDataSchema); Build() additionally
  // loads it as the Cleaner's session data.
  /// Takes ownership of an in-memory relation.
  EngineBuilder& WithData(data::Relation data);
  /// Cleans a caller-owned relation in place (must outlive the Cleaner).
  EngineBuilder& WithData(data::Relation* data);
  /// Loads D from a CSV file at Build(); the schema is inferred from the
  /// header row.
  EngineBuilder& WithDataCsv(std::string path);
  /// Declares the data schema without binding any data — the engine-only
  /// path for parsing WithRuleText/WithRulesFile programs when the dirty
  /// relations only arrive later, per Session::Run.
  EngineBuilder& WithDataSchema(data::SchemaPtr schema);

  // --- master relation Dm --------------------------------------------------
  EngineBuilder& WithMaster(data::Relation master);
  /// Non-owning; the relation must outlive the engine.
  EngineBuilder& WithMaster(const data::Relation* master);
  EngineBuilder& WithMasterCsv(std::string path);

  // --- rules Θ = Σ ∪ Γ -----------------------------------------------------
  EngineBuilder& WithRules(rules::RuleSet rules);
  /// Non-owning; the rule set must outlive the engine.
  EngineBuilder& WithRules(const rules::RuleSet* rules);
  /// Rule program text (rules/parser.h syntax), parsed at build against
  /// the data/master schemas.
  EngineBuilder& WithRuleText(std::string text);
  /// Like WithRuleText, reading the program from a file at build.
  EngineBuilder& WithRulesFile(std::string path);

  // --- per-cell confidences ------------------------------------------------
  /// CSV with the same shape as D holding confidences in [0, 1]; applied to
  /// the data relation at Build(). Build()-only — an engine binds no data,
  /// so BuildEngine() rejects it; apply confidences per relation with
  /// data::ReadConfidenceCsvFile before Session::Run.
  EngineBuilder& WithConfidenceCsv(std::string path);

  // --- thresholds ----------------------------------------------------------
  EngineBuilder& WithEta(double eta);
  EngineBuilder& WithDelta1(int delta1);
  EngineBuilder& WithDelta2(double delta2);
  EngineBuilder& WithMatcherOptions(core::MdMatcherOptions matcher);

  // --- pipeline ------------------------------------------------------------
  /// Selects which built-in phases sessions run (all three by default, in
  /// paper order).
  EngineBuilder& WithDefaultPhases(bool crepair, bool erepair, bool hrepair);
  /// Replaces the whole pipeline with per-session phase factories — each
  /// NewSession() invokes every factory once, so phase state never crosses
  /// sessions.
  EngineBuilder& WithPhaseFactories(std::vector<PhaseFactory> factories);
  /// Appends a per-session phase factory after the current pipeline.
  EngineBuilder& AddPhaseFactory(PhaseFactory factory);
  /// Replaces the pipeline with concrete single-session phase instances.
  /// Build()-only: BuildEngine() rejects instance phases (an engine must be
  /// able to stamp out any number of sessions) — use WithPhaseFactories.
  EngineBuilder& WithPhases(std::vector<std::unique_ptr<Phase>> phases);
  /// Appends a concrete phase (Build()-only, like WithPhases).
  EngineBuilder& AddPhase(std::unique_ptr<Phase> phase);

  // --- diagnostics ---------------------------------------------------------
  /// Verifies at build that the rules are consistent (§4.1); an
  /// inconsistent Θ fails the build.
  EngineBuilder& CheckConsistency(bool check = true);
  /// Observer installed on the Cleaner's session by Build(). Per-session
  /// state: BuildEngine() rejects it — engine sessions set their own via
  /// Session::set_progress_callback.
  EngineBuilder& WithProgressCallback(ProgressCallback callback);

  /// Validates the configuration and assembles the shared engine. Returns
  /// Status::InvalidArgument on bad configuration; I/O and parse failures
  /// propagate their own codes (NotFound, Corruption, …).
  Result<std::shared_ptr<CleanEngine>> BuildEngine();

  /// Like BuildEngine(), but warm-starts the match environment from a
  /// snapshot file written by snapshot::WriteSnapshot instead of paying the
  /// cold index build. The snapshot's string-pool section is loaded (and
  /// verified against the live pool) *before* the configured sources are
  /// read, so interned ids — and therefore journals — are byte-identical to
  /// a cold-built engine. Refuses with kDataLoss on a corrupt file (bad
  /// magic/CRC/truncation), kFailedPrecondition when the snapshot's engine
  /// fingerprint, matcher options or pool generation do not match this
  /// configuration; in both cases no engine is returned and the caller
  /// should fall back to BuildEngine() against the same sources (the
  /// builder is left consumed — reconfigure a fresh one). Defined in the
  /// uniclean::snapshot library (snapshot/snapshot.cc): link
  /// uniclean::snapshot to use it.
  Result<std::shared_ptr<CleanEngine>> FromSnapshot(const std::string& path);

  /// Validates the configuration and assembles the single-session Cleaner
  /// shim (engine + one session + the bound data relation). Defined with
  /// Cleaner in cleaner.h/.cc.
  Result<Cleaner> Build();

 private:
  Status ValidateThresholds() const;

  /// Shared validation: thresholds, master, rules, consistency, factories.
  /// `data_schema` is the resolved data schema when the caller already
  /// loaded data, or null to resolve from WithDataSchema / the rules.
  Result<std::shared_ptr<CleanEngine>> BuildEngineInternal(
      data::SchemaPtr data_schema);

  std::unique_ptr<data::Relation> data_owned_;
  data::Relation* data_ptr_ = nullptr;
  std::string data_csv_;
  data::SchemaPtr data_schema_;

  std::unique_ptr<data::Relation> master_owned_;
  const data::Relation* master_ptr_ = nullptr;
  std::string master_csv_;

  std::unique_ptr<rules::RuleSet> rules_owned_;
  const rules::RuleSet* rules_ptr_ = nullptr;
  std::string rule_text_;
  std::string rules_file_;

  std::string confidence_csv_;

  PipelineConfig config_;
  bool run_crepair_ = true;
  bool run_erepair_ = true;
  bool run_hrepair_ = true;
  bool custom_pipeline_ = false;
  bool factory_pipeline_ = false;
  std::vector<std::unique_ptr<Phase>> pipeline_;
  std::vector<std::unique_ptr<Phase>> extra_phases_;
  std::vector<PhaseFactory> factories_;
  std::vector<PhaseFactory> extra_factories_;
  bool check_consistency_ = false;
  ProgressCallback progress_;
};

}  // namespace uniclean

#endif  // UNICLEAN_UNICLEAN_ENGINE_H_
