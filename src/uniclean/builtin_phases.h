// The three built-in phases of the paper's Fig. 2 pipeline, wrapped as
// Phase implementations. Each forwards the PipelineContext thresholds to
// its core engine, journals every fix with the justifying rule, and keeps
// the engine's typed statistics readable after the run (the legacy
// core::UniClean shim assembles its UniCleanReport from them).

#ifndef UNICLEAN_UNICLEAN_BUILTIN_PHASES_H_
#define UNICLEAN_UNICLEAN_BUILTIN_PHASES_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/crepair.h"
#include "core/erepair.h"
#include "core/hrepair.h"
#include "uniclean/phase.h"

namespace uniclean {

/// Deterministic fixes with data confidence (§5).
class CRepairPhase : public Phase {
 public:
  static constexpr std::string_view kName = "cRepair";
  std::string_view name() const override { return kName; }
  Result<PhaseStats> Run(PipelineContext* ctx) override;
  /// Engine statistics of the most recent Run().
  const core::CRepairStats& stats() const { return stats_; }

 private:
  core::CRepairStats stats_;
};

/// Reliable fixes with information entropy (§6).
class ERepairPhase : public Phase {
 public:
  static constexpr std::string_view kName = "eRepair";
  std::string_view name() const override { return kName; }
  Result<PhaseStats> Run(PipelineContext* ctx) override;
  const core::ERepairStats& stats() const { return stats_; }

 private:
  core::ERepairStats stats_;
};

/// Heuristic possible fixes yielding a consistent repair (§7).
class HRepairPhase : public Phase {
 public:
  static constexpr std::string_view kName = "hRepair";
  std::string_view name() const override { return kName; }
  Result<PhaseStats> Run(PipelineContext* ctx) override;
  const core::HRepairStats& stats() const { return stats_; }

 private:
  core::HRepairStats stats_;
};

/// The default pipeline: the selected subset of cRepair → eRepair → hRepair
/// in paper order.
std::vector<std::unique_ptr<Phase>> MakeDefaultPhases(bool crepair = true,
                                                      bool erepair = true,
                                                      bool hrepair = true);

/// The same default pipeline as per-session factories — what a CleanEngine
/// stores so every NewSession() gets fresh phase instances.
std::vector<PhaseFactory> MakeDefaultPhaseFactories(bool crepair = true,
                                                    bool erepair = true,
                                                    bool hrepair = true);

}  // namespace uniclean

#endif  // UNICLEAN_UNICLEAN_BUILTIN_PHASES_H_
