// core::UniClean as a thin compatibility shim over CleanEngine + Session.
// The definition lives here (not in src/core/) because the shim depends on
// the façade, which layers above core. Same phase order, same options
// plumbing, same statistics as the historic free function — with one
// deliberate difference: configuration the builder rejects (e.g. η outside
// [0, 1], which historically just meant "no cell is asserted") now aborts
// via UC_CHECK, since this API has no error channel. Callers needing
// validated configuration should use EngineBuilder directly.

#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/uniclean.h"
#include "uniclean/builtin_phases.h"
#include "uniclean/engine.h"

namespace uniclean {
namespace core {

UniCleanReport UniClean(data::Relation* d, const data::Relation& dm,
                        const rules::RuleSet& ruleset,
                        const UniCleanOptions& options) {
  UC_CHECK(d != nullptr);

  // The engine stamps phases out of factories; keep handles on the single
  // session's concrete instances through shared holders, because the legacy
  // report exposes their typed engine statistics.
  auto crepair = std::make_shared<CRepairPhase*>(nullptr);
  auto erepair = std::make_shared<ERepairPhase*>(nullptr);
  auto hrepair = std::make_shared<HRepairPhase*>(nullptr);
  std::vector<PhaseFactory> factories;
  if (options.run_crepair) {
    factories.push_back([crepair] {
      auto phase = std::make_unique<CRepairPhase>();
      *crepair = phase.get();
      return phase;
    });
  }
  if (options.run_erepair) {
    factories.push_back([erepair] {
      auto phase = std::make_unique<ERepairPhase>();
      *erepair = phase.get();
      return phase;
    });
  }
  if (options.run_hrepair) {
    factories.push_back([hrepair] {
      auto phase = std::make_unique<HRepairPhase>();
      *hrepair = phase.get();
      return phase;
    });
  }

  Result<std::shared_ptr<CleanEngine>> engine =
      EngineBuilder()
          .WithDataSchema(d->schema_ptr())
          .WithMaster(&dm)
          .WithRules(&ruleset)
          .WithEta(options.eta)
          .WithDelta1(options.delta1)
          .WithDelta2(options.delta2)
          .WithMatcherOptions(options.matcher)
          .WithPhaseFactories(std::move(factories))
          .BuildEngine();
  // The legacy API has no error channel; configuration errors remain
  // programming errors here, as they were before the façade existed.
  UC_CHECK(engine.ok()) << engine.status().ToString();
  Session session = (*engine)->NewSession();
  Result<CleanResult> result = session.Run(d);
  UC_CHECK(result.ok()) << result.status().ToString();

  UniCleanReport report;
  if (*crepair != nullptr) report.crepair = (*crepair)->stats();
  if (*erepair != nullptr) report.erepair = (*erepair)->stats();
  if (*hrepair != nullptr) report.hrepair = (*hrepair)->stats();
  return report;
}

}  // namespace core
}  // namespace uniclean
