// core::UniClean as a thin compatibility shim over the Cleaner façade. The
// definition lives here (not in src/core/) because the shim depends on the
// façade, which layers above core. Same phase order, same options plumbing,
// same statistics as the historic free function — with one deliberate
// difference: configuration the builder rejects (e.g. η outside [0, 1],
// which historically just meant "no cell is asserted") now aborts via
// UC_CHECK, since this API has no error channel. Callers needing validated
// configuration should use CleanerBuilder directly.

#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/uniclean.h"
#include "uniclean/builtin_phases.h"
#include "uniclean/cleaner.h"

namespace uniclean {
namespace core {

UniCleanReport UniClean(data::Relation* d, const data::Relation& dm,
                        const rules::RuleSet& ruleset,
                        const UniCleanOptions& options) {
  UC_CHECK(d != nullptr);

  // Assemble the phase list by hand (rather than WithDefaultPhases) to keep
  // handles on the concrete phases: the legacy report exposes their typed
  // engine statistics.
  std::vector<std::unique_ptr<Phase>> phases;
  CRepairPhase* crepair = nullptr;
  ERepairPhase* erepair = nullptr;
  HRepairPhase* hrepair = nullptr;
  if (options.run_crepair) {
    auto phase = std::make_unique<CRepairPhase>();
    crepair = phase.get();
    phases.push_back(std::move(phase));
  }
  if (options.run_erepair) {
    auto phase = std::make_unique<ERepairPhase>();
    erepair = phase.get();
    phases.push_back(std::move(phase));
  }
  if (options.run_hrepair) {
    auto phase = std::make_unique<HRepairPhase>();
    hrepair = phase.get();
    phases.push_back(std::move(phase));
  }

  Result<Cleaner> cleaner = CleanerBuilder()
                                .WithData(d)
                                .WithMaster(&dm)
                                .WithRules(&ruleset)
                                .WithEta(options.eta)
                                .WithDelta1(options.delta1)
                                .WithDelta2(options.delta2)
                                .WithMatcherOptions(options.matcher)
                                .WithPhases(std::move(phases))
                                .Build();
  // The legacy API has no error channel; configuration errors remain
  // programming errors here, as they were before the façade existed.
  UC_CHECK(cleaner.ok()) << cleaner.status().ToString();
  Result<CleanResult> result = cleaner->Run();
  UC_CHECK(result.ok()) << result.status().ToString();

  UniCleanReport report;
  if (crepair != nullptr) report.crepair = crepair->stats();
  if (erepair != nullptr) report.erepair = erepair->stats();
  if (hrepair != nullptr) report.hrepair = hrepair->stats();
  return report;
}

}  // namespace core
}  // namespace uniclean
