#include "uniclean/session.h"

#include <algorithm>

#include "common/check.h"
#include "uniclean/detail.h"
#include "uniclean/engine.h"

namespace uniclean {

// ---------------------------------------------------------------------------
// CleanResult
// ---------------------------------------------------------------------------

int CleanResult::total_fixes() const {
  int total = 0;
  for (const PhaseStats& stats : phases) total += stats.fixes;
  return total;
}

const PhaseStats* CleanResult::phase(std::string_view name) const {
  for (const PhaseStats& stats : phases) {
    if (stats.phase == name) return &stats;
  }
  return nullptr;
}

std::vector<std::pair<data::TupleId, data::TupleId>> CleanResult::AllMatches()
    const {
  std::vector<std::pair<data::TupleId, data::TupleId>> all;
  for (const PhaseStats& stats : phases) {
    all.insert(all.end(), stats.matches.begin(), stats.matches.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

// ---------------------------------------------------------------------------
// DeltaResult
// ---------------------------------------------------------------------------

int DeltaResult::total_fixes() const {
  int total = 0;
  for (const PhaseStats& stats : phases) total += stats.fixes;
  return total;
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Result<std::vector<PhaseStats>> Session::ExecutePipeline(data::Relation* data,
                                                         FixJournal* journal) {
  std::vector<PhaseStats> executed;
  PipelineContext ctx;
  ctx.data = data;
  ctx.master = &engine_->master();
  ctx.rules = &engine_->rules();
  ctx.config = engine_->config();
  ctx.journal = journal;
  ctx.match_env = &engine_->environment();
  ctx.cancel = cancel_.get();

  const int total = static_cast<int>(phases_.size());
  executed.reserve(static_cast<size_t>(total));
  for (int i = 0; i < total; ++i) {
    UC_RETURN_IF_ERROR(common::PollCancel(ctx.cancel));
    Phase& phase = *phases_[static_cast<size_t>(i)];
    if (progress_) {
      PhaseEvent event;
      event.kind = PhaseEvent::Kind::kPhaseStarted;
      event.index = i;
      event.total = total;
      event.phase = phase.name();
      event.data = data;
      progress_(event);
    }
    Result<PhaseStats> stats = phase.Run(&ctx);
    if (!stats.ok()) {
      return internal::Annotate(stats.status(),
                                "phase '" + std::string(phase.name()) + "': ");
    }
    PhaseStats phase_stats = std::move(stats).value();
    phase_stats.phase = std::string(phase.name());
    executed.push_back(std::move(phase_stats));
    if (progress_) {
      PhaseEvent event;
      event.kind = PhaseEvent::Kind::kPhaseFinished;
      event.index = i;
      event.total = total;
      event.phase = phase.name();
      event.stats = &executed.back();
      event.data = data;
      progress_(event);
    }
  }
  return executed;
}

Result<CleanResult> Session::Run(data::Relation* data) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition(
        "Session::Run: empty session (obtain one from "
        "CleanEngine::NewSession)");
  }
  if (data == nullptr) {
    return Status::InvalidArgument("Run(data): relation must not be null");
  }
  if (!internal::SchemaMatches(engine_->rules().data_schema(),
                               data->schema())) {
    return Status::InvalidArgument(
        "Run(data): relation schema " +
        internal::DescribeSchema(data->schema()) +
        " does not match the rule set's data schema " +
        internal::DescribeSchema(engine_->rules().data_schema()));
  }

  if (track_deltas_) {
    // Snapshot the pre-cleaning state first: ApplyDelta restarts affected
    // tuples from these values, exactly as a batch run over the edited
    // relation would. A repeated Run restarts tracking from scratch.
    tracked_ = data;
    pristine_ = std::make_unique<data::Relation>(data->Clone());
    journal_ = FixJournal();
    generation_ = 0;
  }

  CleanResult result;
  if (cancel_ != nullptr) {
    // All-or-nothing under cancellation: clean a scratch copy and swap it
    // into the caller's relation only on success, so a cancelled or expired
    // run applies ZERO fixes — never a partially repaired relation. The
    // tokenless path below stays the historical clean-in-place one (no copy).
    data::Relation scratch = data->Clone();
    Result<std::vector<PhaseStats>> executed =
        ExecutePipeline(&scratch, &result.journal);
    if (!executed.ok()) {
      if (track_deltas_) {
        // Reset to the not-yet-run state so the session stays usable for a
        // fresh tracked Run().
        tracked_ = nullptr;
        pristine_.reset();
        journal_ = FixJournal();
        generation_ = 0;
      }
      return executed.status();
    }
    *data = std::move(scratch);
    result.phases = std::move(executed).value();
  } else {
    Result<std::vector<PhaseStats>> executed =
        ExecutePipeline(data, &result.journal);
    if (!executed.ok()) return executed.status();
    result.phases = std::move(executed).value();
  }

  if (track_deltas_) {
    journal_ = result.journal;
    covered_gen_.assign(static_cast<size_t>(data->size()), 0);
    BuildGroupIndex();
    known_master_size_ = engine_->environment().indexed_master_size();
  }
  return result;
}

void Session::FileTuple(data::TupleId t) {
  const rules::RuleSet& rules = engine_->rules();
  for (size_t i = 0; i < vcfd_rules_.size(); ++i) {
    const std::vector<data::AttributeId>& lhs =
        rules.cfd(vcfd_rules_[i]).lhs();
    const data::GroupKey current =
        data::GroupKey::Project(tracked_->tuple(t), lhs);
    group_index_[i][current].push_back(t);
    filed_[static_cast<size_t>(t)].emplace_back(i, current);
    const data::GroupKey pristine =
        data::GroupKey::Project(pristine_->tuple(t), lhs);
    if (pristine != current) {
      group_index_[i][pristine].push_back(t);
      filed_[static_cast<size_t>(t)].emplace_back(i, pristine);
    }
  }
}

void Session::UnfileTuple(data::TupleId t) {
  for (const auto& [i, key] : filed_[static_cast<size_t>(t)]) {
    auto it = group_index_[i].find(key);
    if (it == group_index_[i].end()) continue;
    std::vector<data::TupleId>& members = it->second;
    members.erase(std::remove(members.begin(), members.end(), t),
                  members.end());
    if (members.empty()) group_index_[i].erase(it);
  }
  filed_[static_cast<size_t>(t)].clear();
}

void Session::BuildGroupIndex() {
  const rules::RuleSet& rules = engine_->rules();
  vcfd_rules_.clear();
  for (rules::RuleId rule = 0; rule < rules.num_rules(); ++rule) {
    if (rules.kind(rule) == rules::RuleKind::kVariableCfd) {
      vcfd_rules_.push_back(rule);
    }
  }
  group_index_.assign(vcfd_rules_.size(), GroupIndex());
  filed_.assign(static_cast<size_t>(tracked_->size()), {});
  for (data::TupleId t = 0; t < tracked_->size(); ++t) {
    if (tracked_->live(t)) FileTuple(t);
  }
}

Result<DeltaResult> Session::ApplyDelta(const Delta& delta) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition(
        "Session::ApplyDelta: empty session (obtain one from "
        "CleanEngine::NewTrackedSession)");
  }
  if (!track_deltas_ || tracked_ == nullptr) {
    return Status::FailedPrecondition(
        "Session::ApplyDelta requires a delta-tracking session with a "
        "completed Run (CleanEngine::NewTrackedSession, then Run, then "
        "ApplyDelta)");
  }
  // Polled again by the pipeline; this entry check makes an already-expired
  // deadline fail before any edit is applied.
  UC_RETURN_IF_ERROR(common::PollCancel(cancel_.get()));
  const core::MatchEnvironment& env = engine_->environment();
  const bool master_grew = env.indexed_master_size() > known_master_size_;

  DeltaResult result;
  if (delta.empty() && !master_grew) {
    // True no-op: no edits, no master growth — the covering repairs stand.
    result.generation = generation_;
    return result;
  }

  // Validate every edit before applying any, so a failed ApplyDelta leaves
  // the tracked state untouched.
  const int arity = tracked_->schema().arity();
  for (const data::Tuple& tup : delta.inserts) {
    if (tup.arity() != arity) {
      return Status::InvalidArgument(
          "ApplyDelta: insert arity " + std::to_string(tup.arity()) +
          " does not match the data schema arity " + std::to_string(arity));
    }
  }
  for (const auto& [t, tup] : delta.updates) {
    if (t < 0 || t >= tracked_->size()) {
      return Status::InvalidArgument("ApplyDelta: update of unknown tuple " +
                                     std::to_string(t));
    }
    if (!tracked_->live(t)) {
      return Status::InvalidArgument("ApplyDelta: update of deleted tuple " +
                                     std::to_string(t));
    }
    if (tup.arity() != arity) {
      return Status::InvalidArgument(
          "ApplyDelta: update arity " + std::to_string(tup.arity()) +
          " does not match the data schema arity " + std::to_string(arity));
    }
  }
  for (data::TupleId t : delta.deletes) {
    if (t < 0 || t >= tracked_->size()) {
      return Status::InvalidArgument("ApplyDelta: delete of unknown tuple " +
                                     std::to_string(t));
    }
    if (!tracked_->live(t)) {
      return Status::InvalidArgument(
          "ApplyDelta: delete of already-deleted tuple " + std::to_string(t));
    }
  }

  ++generation_;
  result.generation = generation_;

  // Seed the dirty set. The closure holds tuples that will be re-cleaned
  // from their pristine values; everything is deliberately NOT the
  // transitive component of "shares a group key" — on realistic data that
  // component is the whole relation. Cross-group propagation is handled by
  // the refinement rounds below, which widen the set only where a re-clean
  // actually perturbs an outcome.
  //
  // Edit kinds seed asymmetrically. A tuple that LEAVES a group (delete, or
  // the old-key side of an update) seeds its ex-peers eagerly: their
  // committed repairs may lean on the departed tuple (e.g. it was the
  // asserted donor), and because their repaired cells sit at confidence η a
  // re-run over them is a no-op — no drift signal would ever fire. A tuple
  // that JOINS a group (insert, or the new-key side of an update) seeds a
  // bucket's members only when one of them disagrees with the newcomer on
  // the rule's RHS: an agreeing vote cannot flip the group's committed
  // resolution, so those peers ride along in the boundary ring at their
  // committed values, while a disagreeing group must be re-voted from
  // pristine values (group resolutions weigh the members' pre-repair
  // states, which the committed ring no longer shows).
  // `in_closure` / `edited` grow with inserts below.
  const rules::RuleSet& rules = engine_->rules();
  std::vector<uint8_t> in_closure(static_cast<size_t>(tracked_->size()), 0);
  std::vector<uint8_t> edited(static_cast<size_t>(tracked_->size()), 0);
  auto seed = [&](data::TupleId t) {
    if (!tracked_->live(t) || in_closure[static_cast<size_t>(t)]) {
      return false;
    }
    in_closure[static_cast<size_t>(t)] = 1;
    return true;
  };
  // Every tuple sharing a bucket with `t` repaired against it; seed them.
  auto seed_neighbors = [&](data::TupleId t) {
    for (const auto& [i, key] : filed_[static_cast<size_t>(t)]) {
      auto it = group_index_[i].find(key);
      if (it == group_index_[i].end()) continue;
      for (data::TupleId u : it->second) {
        if (u != t) seed(u);
      }
    }
  };
  // Members of t's buckets whose committed RHS disagrees with t's raw value
  // — the groups t's arrival can actually re-vote.
  auto seed_disagreeing_neighbors = [&](data::TupleId t) {
    const data::Tuple& raw = tracked_->tuple(t);
    for (const auto& [i, key] : filed_[static_cast<size_t>(t)]) {
      const rules::Cfd& cfd = rules.cfd(vcfd_rules_[i]);
      if (!cfd.MatchesLhs(raw)) continue;
      const data::AttributeId b = cfd.rhs()[0];
      auto it = group_index_[i].find(key);
      if (it == group_index_[i].end()) continue;
      bool disagrees = false;
      for (data::TupleId u : it->second) {
        if (u != t && tracked_->live(u) &&
            tracked_->tuple(u).value(b) != raw.value(b)) {
          disagrees = true;
          break;
        }
      }
      if (!disagrees) continue;
      for (data::TupleId u : it->second) {
        if (u != t) seed(u);
      }
    }
  };

  // Updates: re-point the tuple's pristine state at the new content. Old
  // group members lose a peer — seed them; new group members gain one.
  for (const auto& [t, tup] : delta.updates) {
    seed_neighbors(t);  // old-key peers
    UnfileTuple(t);
    tracked_->mutable_tuple(t) = tup;
    pristine_->mutable_tuple(t) = tup;
    FileTuple(t);
    seed(t);
    seed_disagreeing_neighbors(t);  // new-key peers
    edited[static_cast<size_t>(t)] = 1;
  }
  // Deletes: tombstone in both relations; former peers repaired against the
  // deleted tuple and must be re-derived without it.
  for (data::TupleId t : delta.deletes) {
    seed_neighbors(t);
    UnfileTuple(t);
    tracked_->EraseTuple(t);
    pristine_->EraseTuple(t);
  }
  // Inserts: append to both relations (fresh ids), join the group indexes.
  for (const data::Tuple& tup : delta.inserts) {
    const data::TupleId t = tracked_->AddTuple(tup);
    const data::TupleId shadow = pristine_->AddTuple(tup);
    UC_CHECK_EQ(t, shadow);
    covered_gen_.push_back(0);
    filed_.emplace_back();
    in_closure.push_back(0);
    edited.push_back(1);
    FileTuple(t);
    seed(t);
    seed_disagreeing_neighbors(t);
    result.inserted_ids.push_back(t);
  }

  // Master growth (CleanEngine::RefreshMasterIndexes since the last call):
  // MDs are per-tuple against the master, so a new master tuple affects
  // exactly the data tuples it matches. Probe every live tuple — current and
  // pristine projections, since different phases probe different states —
  // and seed those with a match beyond the old extent.
  if (master_grew) {
    const rules::RuleSet& rules = engine_->rules();
    for (data::TupleId t = 0; t < tracked_->size(); ++t) {
      if (!tracked_->live(t) || in_closure[static_cast<size_t>(t)]) continue;
      bool hit = false;
      for (rules::RuleId rule = 0; rule < rules.num_rules() && !hit; ++rule) {
        const core::MdMatcher* matcher = env.matcher(rule);
        if (matcher == nullptr) continue;
        for (data::TupleId s : matcher->Matches(tracked_->tuple(t))) {
          if (s >= known_master_size_) {
            hit = true;
            break;
          }
        }
        if (hit) break;
        for (data::TupleId s : matcher->Matches(pristine_->tuple(t))) {
          if (s >= known_master_size_) {
            hit = true;
            break;
          }
        }
      }
      if (hit) seed(t);
    }
    known_master_size_ = env.indexed_master_size();
  }

  std::vector<data::TupleId> closure;
  for (data::TupleId t = 0; t < tracked_->size(); ++t) {
    if (in_closure[static_cast<size_t>(t)]) closure.push_back(t);
  }
  if (closure.empty()) {
    // Pure deletions with no surviving peers: nothing to re-clean.
    return result;
  }

  // Scoped re-repair, to a fixpoint: clean the closure from its pristine
  // values inside a ring of committed peers and widen it only on evidence
  // that the edit reaches further. Two probes supply that evidence after
  // each round — a ring tuple whose re-run moved a value off its committed
  // state, and a closure outcome that leaves a violation straddling the
  // closure boundary. Clean tuples reproduce themselves, so expansion
  // chains stop at them instead of flooding the whole key-sharing
  // component. Terminates: the closure only grows, bounded by |D|.
  while (true) {
    ++result.refinement_rounds;
    // The scratch relation: closure tuples restarted from their pristine
    // values, then every out-of-closure group peer of a closure tuple — the
    // "boundary ring" — at its committed (already-repaired) state. The ring
    // completes every violation group a closure tuple belongs to, so group
    // resolutions see the same peer set a batch run would, with peers at the
    // values the committed journal stands behind. Ring outcomes are
    // discarded, not committed: a ring tuple whose scratch outcome drifts
    // from its committed values is the signal that the fixpoint assumption
    // ("peers outside the closure keep their repairs") failed for it, and
    // the expansion check below pulls it into the closure. Ring members
    // enter at final committed values rather than the mid-pipeline values a
    // batch run would show — a theoretical gap shared with intermediate-key
    // coincidences, validated empirically by delta_test's convergence pins.
    // Closure and ring are interleaved in tracked-id order: group
    // resolutions tie-break on tuple order, so the scratch relation must
    // present members in the same relative order the batch run saw.
    std::vector<uint8_t> in_ring(in_closure.size(), 0);
    for (data::TupleId t : closure) {
      for (const auto& [i, key] : filed_[static_cast<size_t>(t)]) {
        auto it = group_index_[i].find(key);
        if (it == group_index_[i].end()) continue;
        for (data::TupleId u : it->second) {
          if (tracked_->live(u) && !in_closure[static_cast<size_t>(u)]) {
            in_ring[static_cast<size_t>(u)] = 1;
          }
        }
      }
    }
    data::Relation scratch(tracked_->schema_ptr());
    std::vector<data::TupleId> scratch_src;  // scratch id -> tracked id
    std::vector<uint8_t> scratch_in_closure;
    for (data::TupleId t = 0; t < tracked_->size(); ++t) {
      if (in_closure[static_cast<size_t>(t)]) {
        scratch.AddTuple(pristine_->tuple(t));
        scratch_src.push_back(t);
        scratch_in_closure.push_back(1);
      } else if (in_ring[static_cast<size_t>(t)]) {
        // Freeze the ring copy: cf 1.0 plus a deterministic mark on every
        // cell. cRepair and eRepair skip asserted cells entirely (cRepair
        // gains each as an assertion-grade donor), and the mark makes
        // hRepair treat the cell's equivalence class as settled — frozen
        // classes resolve via the no-union constant path, so a closure
        // cell's class is never contaminated by a union with a cf-1.0 ring
        // cell (which would distort its retarget costs and flip group
        // resolutions away from what a batch run derives). Without the
        // freeze, the pipeline's non-idempotence on its own output — e.g.
        // eRepair re-filling a cell hRepair nulled as unresolvable — reads
        // as spurious "drift" and floods the closure with tuples the edit
        // never reached.
        const data::TupleId sid = scratch.AddTuple(tracked_->tuple(t));
        data::Tuple& pinned = scratch.mutable_tuple(sid);
        for (data::AttributeId a = 0; a < arity; ++a) {
          pinned.set_confidence(a, 1.0);
          pinned.set_mark(a, data::FixMark::kDeterministic);
        }
        scratch_src.push_back(t);
        scratch_in_closure.push_back(0);
      }
    }
    FixJournal scratch_journal;
    Result<std::vector<PhaseStats>> executed =
        ExecutePipeline(&scratch, &scratch_journal);
    if (!executed.ok()) {
      // The raw edits are applied but the re-repair did not land; the
      // journal still covers the pre-delta repairs of the closure tuples.
      return internal::Annotate(
          executed.status(),
          "ApplyDelta generation " + std::to_string(generation_) + ": ");
    }
    result.phases = std::move(executed).value();

    bool expanded = false;
    for (size_t j = 0; j < scratch_src.size(); ++j) {
      const data::TupleId t = scratch_src[j];
      const data::Tuple& after = scratch.tuple(static_cast<data::TupleId>(j));
      const data::Tuple& committed = tracked_->tuple(t);
      if (scratch_in_closure[j]) {
        // Expansion probe: a closure tuple whose re-clean changed a VALUE
        // against what its peers repaired against can re-vote every group
        // that reads the changed attribute — group resolutions weigh the
        // members' states, so the peers of the touched rules' buckets must
        // themselves be re-derived from pristine values. A vCFD group reads
        // only its own attributes — the LHS for grouping, the RHS for
        // resolution — so expand precisely the rules whose attributes the
        // change touches (under both the committed-filed keys and the key
        // of the new values), not every group the tuple belongs to.
        // Confidence/mark drift alone neither expands nor commits (see
        // below): re-derivation in a partial context is not perfectly
        // provenance-faithful, and chasing that drift floods the closure.
        //
        // EDITED tuples are exempt from the committed-value comparison: for
        // a fresh insert the "committed" state is just the raw edit, no
        // peer ever repaired against it, and its re-clean is SUPPOSED to
        // move values — reading those fixes as divergence recruits the
        // whole key-sharing component for nothing. The one genuine hazard
        // is its repaired LHS landing the tuple in a group that was never
        // in the scratch; the outcome-key probe below covers exactly that.
        auto value_changed = [&](data::AttributeId a) {
          return after.value(a) != committed.value(a);
        };
        // Seed only the bucket members whose committed RHS disagrees with
        // the re-cleaned outcome: agreeing peers are already at the value
        // the group would resolve to, so pulling them in can change
        // nothing. This is the same gate the insert seeding applies, and it
        // is what stops expansion chains at clean tuples instead of
        // flooding the key-sharing component.
        auto seed_bucket = [&](size_t i, const data::GroupKey& key,
                               data::AttributeId b) {
          auto it = group_index_[i].find(key);
          if (it == group_index_[i].end()) return;
          bool disagrees = false;
          for (data::TupleId u : it->second) {
            if (u != t && tracked_->live(u) &&
                tracked_->tuple(u).value(b) != after.value(b)) {
              disagrees = true;
              break;
            }
          }
          if (!disagrees) return;
          for (data::TupleId u : it->second) {
            if (u != t && seed(u)) expanded = true;
          }
        };
        const bool was_edited = edited[static_cast<size_t>(t)] != 0;
        for (size_t i = 0; i < vcfd_rules_.size(); ++i) {
          const rules::Cfd& cfd = rules.cfd(vcfd_rules_[i]);
          if (!was_edited) {
            bool touched = value_changed(cfd.rhs()[0]);
            for (data::AttributeId a : cfd.lhs()) {
              if (touched) break;
              touched = value_changed(a);
            }
            if (!touched) continue;
            for (const auto& [ri, key] : filed_[static_cast<size_t>(t)]) {
              if (ri == i) seed_bucket(i, key, cfd.rhs()[0]);
            }
          }
          if (!cfd.MatchesLhs(after)) continue;
          // For an edited tuple this probes every rule with the OUTCOME
          // values: a peer that agreed with the raw edit (and so rode
          // pinned in the ring) can disagree with the repaired outcome —
          // the disagreement gate in seed_bucket catches exactly the
          // buckets where that happened and no others.
          seed_bucket(i, data::GroupKey::Project(after, cfd.lhs()),
                      cfd.rhs()[0]);
        }
      } else {
        // Drift probe: a ring tuple whose re-run moved a VALUE off its
        // committed state is a fixpoint violation — the edit genuinely
        // reaches it, so re-clean it from pristine (next round completes
        // its own groups with a fresh ring). Confidence/mark drift alone is
        // expected — re-running phases over already-repaired values is not
        // perfectly idempotent (e.g. a repaired value can now MD-match
        // master data and be asserted) — and is discarded with the ring
        // outcome.
        for (data::AttributeId at = 0; at < arity; ++at) {
          if (after.value(at) != committed.value(at)) {
            if (seed(t)) expanded = true;
            break;
          }
        }
      }
    }
    if (expanded) {
      closure.clear();
      for (data::TupleId t = 0; t < tracked_->size(); ++t) {
        if (in_closure[static_cast<size_t>(t)]) closure.push_back(t);
      }
      continue;
    }

    // Converged: commit back into the tracked relation, refile under the
    // new current keys, and journal the fixes under this generation
    // (remapping scratch ids to tracked ids). Only edited tuples and
    // closure tuples whose re-clean changed a VALUE commit; a closure tuple
    // that re-cleans to its committed values (possibly with confidence or
    // mark drift — re-derivation in a partial context is not perfectly
    // provenance-faithful) keeps its committed state AND its existing
    // journal entries, which a full batch run already stands behind. Ring
    // entries are dropped wholesale — the ring is context.
    std::vector<uint8_t> commits(scratch_src.size(), 0);
    for (size_t j = 0; j < scratch_src.size(); ++j) {
      if (!scratch_in_closure[j]) continue;
      const data::TupleId t = scratch_src[j];
      const data::Tuple& after = scratch.tuple(static_cast<data::TupleId>(j));
      bool changed = edited[static_cast<size_t>(t)] != 0;
      for (data::AttributeId at = 0; at < arity && !changed; ++at) {
        changed = after.value(at) != tracked_->tuple(t).value(at);
      }
      if (!changed) continue;
      commits[j] = 1;
      tracked_->mutable_tuple(t) = after;
      UnfileTuple(t);
      FileTuple(t);
      covered_gen_[static_cast<size_t>(t)] = generation_;
    }
    for (FixEntry entry : scratch_journal.entries()) {
      if (entry.tuple < 0 ||
          entry.tuple >= static_cast<data::TupleId>(scratch_src.size()) ||
          !commits[static_cast<size_t>(entry.tuple)]) {
        continue;
      }
      entry.tuple = scratch_src[static_cast<size_t>(entry.tuple)];
      entry.generation = generation_;
      journal_.Append(entry);
      result.delta_journal.Append(std::move(entry));
    }
    break;
  }
  result.affected = static_cast<int>(closure.size());
  return result;
}

FixJournal Session::CanonicalJournal() const {
  FixJournal covering;
  if (tracked_ == nullptr) return covering;
  for (const FixEntry& entry : journal_.entries()) {
    if (entry.tuple < 0 || entry.tuple >= tracked_->size()) continue;
    if (!tracked_->live(entry.tuple)) continue;
    if (entry.generation != covered_gen_[static_cast<size_t>(entry.tuple)]) {
      continue;  // superseded by a later re-clean of this tuple
    }
    covering.Append(entry);
  }
  return covering.Canonicalized();
}

std::vector<std::string> Session::PhaseNames() const {
  std::vector<std::string> names;
  names.reserve(phases_.size());
  for (const auto& phase : phases_) names.emplace_back(phase->name());
  return names;
}

}  // namespace uniclean
