#include "uniclean/session.h"

#include <algorithm>

#include "uniclean/detail.h"
#include "uniclean/engine.h"

namespace uniclean {

// ---------------------------------------------------------------------------
// CleanResult
// ---------------------------------------------------------------------------

int CleanResult::total_fixes() const {
  int total = 0;
  for (const PhaseStats& stats : phases) total += stats.fixes;
  return total;
}

const PhaseStats* CleanResult::phase(std::string_view name) const {
  for (const PhaseStats& stats : phases) {
    if (stats.phase == name) return &stats;
  }
  return nullptr;
}

std::vector<std::pair<data::TupleId, data::TupleId>> CleanResult::AllMatches()
    const {
  std::vector<std::pair<data::TupleId, data::TupleId>> all;
  for (const PhaseStats& stats : phases) {
    all.insert(all.end(), stats.matches.begin(), stats.matches.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Result<CleanResult> Session::Run(data::Relation* data) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition(
        "Session::Run: empty session (obtain one from "
        "CleanEngine::NewSession)");
  }
  if (data == nullptr) {
    return Status::InvalidArgument("Run(data): relation must not be null");
  }
  if (!internal::SchemaMatches(engine_->rules().data_schema(),
                               data->schema())) {
    return Status::InvalidArgument(
        "Run(data): relation schema " +
        internal::DescribeSchema(data->schema()) +
        " does not match the rule set's data schema " +
        internal::DescribeSchema(engine_->rules().data_schema()));
  }

  CleanResult result;
  PipelineContext ctx;
  ctx.data = data;
  ctx.master = &engine_->master();
  ctx.rules = &engine_->rules();
  ctx.config = engine_->config();
  ctx.journal = &result.journal;
  ctx.match_env = &engine_->environment();

  const int total = static_cast<int>(phases_.size());
  for (int i = 0; i < total; ++i) {
    Phase& phase = *phases_[static_cast<size_t>(i)];
    if (progress_) {
      PhaseEvent event;
      event.kind = PhaseEvent::Kind::kPhaseStarted;
      event.index = i;
      event.total = total;
      event.phase = phase.name();
      event.data = data;
      progress_(event);
    }
    Result<PhaseStats> stats = phase.Run(&ctx);
    if (!stats.ok()) {
      return internal::Annotate(stats.status(),
                                "phase '" + std::string(phase.name()) + "': ");
    }
    PhaseStats phase_stats = std::move(stats).value();
    phase_stats.phase = std::string(phase.name());
    result.phases.push_back(std::move(phase_stats));
    if (progress_) {
      PhaseEvent event;
      event.kind = PhaseEvent::Kind::kPhaseFinished;
      event.index = i;
      event.total = total;
      event.phase = phase.name();
      event.stats = &result.phases.back();
      event.data = data;
      progress_(event);
    }
  }
  return result;
}

std::vector<std::string> Session::PhaseNames() const {
  std::vector<std::string> names;
  names.reserve(phases_.size());
  for (const auto& phase : phases_) names.emplace_back(phase->name());
  return names;
}

}  // namespace uniclean
