#include "uniclean/fix_journal.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <utility>

#include "data/csv.h"

namespace uniclean {

namespace {

/// Renders a value the way data/csv.cc's writer does (default options).
std::string CsvValue(const data::Value& v) {
  return v.is_null() ? data::CsvOptions{}.null_token
                     : data::CsvQuote(v.str());
}

template <typename WriteFn>
Status WriteToFile(const std::string& path, WriteFn write) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open file for write: " + path);
  }
  return write(out);
}

}  // namespace

int FixJournal::CountForPhase(std::string_view phase) const {
  int count = 0;
  for (const FixEntry& e : entries_) {
    if (e.phase == phase) ++count;
  }
  return count;
}

int FixJournal::CountForGeneration(int generation) const {
  int count = 0;
  for (const FixEntry& e : entries_) {
    if (e.generation == generation) ++count;
  }
  return count;
}

FixJournal FixJournal::Canonicalized() const {
  // Chain the entries per cell in append order, keeping one net entry from
  // the first old value to the last new value, attributed to the final
  // writer. Cells whose chain nets to no change drop out: the canonical
  // journal is the set of repairs the journal stands behind, not the
  // derivation trace (two runs that reach the same repairs through
  // different intermediate rewrites must canonicalize identically).
  FixJournal canonical;
  std::map<std::pair<data::TupleId, std::string>, size_t> cell_entry;
  for (const FixEntry& e : entries_) {
    auto [it, inserted] =
        cell_entry.try_emplace({e.tuple, e.attribute}, canonical.size());
    if (inserted) {
      canonical.entries_.push_back(e);
    } else {
      FixEntry& net = canonical.entries_[it->second];
      net.new_value = e.new_value;
      net.phase = e.phase;
      net.rule = e.rule;
    }
  }
  canonical.entries_.erase(
      std::remove_if(canonical.entries_.begin(), canonical.entries_.end(),
                     [](const FixEntry& e) {
                       return e.old_value == e.new_value ||
                              (e.old_value.is_null() && e.new_value.is_null());
                     }),
      canonical.entries_.end());
  std::stable_sort(canonical.entries_.begin(), canonical.entries_.end(),
                   [](const FixEntry& a, const FixEntry& b) {
                     if (a.tuple != b.tuple) return a.tuple < b.tuple;
                     return a.attribute < b.attribute;
                   });
  for (FixEntry& e : canonical.entries_) e.generation = 0;
  return canonical;
}

std::string FixJournal::CanonicalFixSetCsv() const {
  std::string out = "tuple,attribute,old,new\n";
  for (const FixEntry& e : Canonicalized().entries_) {
    out += std::to_string(e.tuple);
    out += ',';
    out += data::CsvQuote(e.attribute);
    out += ',';
    out += CsvValue(e.old_value);
    out += ',';
    out += CsvValue(e.new_value);
    out += '\n';
  }
  return out;
}

std::vector<std::pair<std::string, int>> FixJournal::CountsByPhase() const {
  std::vector<std::pair<std::string, int>> counts;
  for (const FixEntry& e : entries_) {
    bool found = false;
    for (auto& [phase, count] : counts) {
      if (phase == e.phase) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) counts.emplace_back(e.phase, 1);
  }
  return counts;
}

Status FixJournal::WriteText(std::ostream& out) const {
  for (const FixEntry& e : entries_) {
    out << "row " << e.tuple << ' ' << e.attribute << ": '"
        << e.old_value.ToString() << "' -> '" << e.new_value.ToString()
        << "' [" << e.phase;
    if (!e.rule.empty()) out << ' ' << e.rule;
    // Batch entries keep the historic line format; only delta entries grow
    // the generation marker.
    if (e.generation != 0) out << " gen " << e.generation;
    out << "]\n";
  }
  if (!out.good()) return Status::Internal("fix journal write failed");
  return Status::OK();
}

Status FixJournal::WriteCsv(std::ostream& out) const {
  bool with_generation = false;
  for (const FixEntry& e : entries_) {
    if (e.generation != 0) {
      with_generation = true;
      break;
    }
  }
  out << (with_generation ? "tuple,attribute,old,new,phase,rule,generation\n"
                          : "tuple,attribute,old,new,phase,rule\n");
  for (const FixEntry& e : entries_) {
    out << e.tuple << ',' << data::CsvQuote(e.attribute) << ','
        << CsvValue(e.old_value) << ',' << CsvValue(e.new_value) << ','
        << data::CsvQuote(e.phase) << ',' << data::CsvQuote(e.rule);
    if (with_generation) out << ',' << e.generation;
    out << '\n';
  }
  if (!out.good()) return Status::Internal("fix journal write failed");
  return Status::OK();
}

Result<FixJournal> FixJournal::ReadCsv(std::istream& in) {
  constexpr char kExpectedHeader[] = "tuple,attribute,old,new,phase,rule";
  constexpr char kGenerationHeader[] =
      "tuple,attribute,old,new,phase,rule,generation";
  const std::string null_token = data::CsvOptions{}.null_token;
  FixJournal journal;
  std::string record;
  bool saw_header = false;
  size_t arity = 6;
  while (data::ReadCsvRecord(in, &record)) {
    if (record.empty()) continue;
    if (!saw_header) {
      saw_header = true;
      if (record == kGenerationHeader) {
        arity = 7;
      } else if (record != kExpectedHeader) {
        return Status::Corruption("fix journal CSV header mismatch: got '" +
                                  record + "'");
      }
      continue;
    }
    UC_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                        data::ParseCsvRecord(record));
    if (fields.size() != arity) {
      return Status::Corruption(
          "fix journal CSV record must have " + std::to_string(arity) +
          " fields, got " + std::to_string(fields.size()) + ": " + record);
    }
    FixEntry entry;
    errno = 0;
    char* end = nullptr;
    long tuple = std::strtol(fields[0].c_str(), &end, 10);
    if (end == fields[0].c_str() || *end != '\0' || errno == ERANGE ||
        tuple < 0 || tuple > INT_MAX) {
      return Status::Corruption("fix journal CSV: bad tuple id '" +
                                fields[0] + "'");
    }
    entry.tuple = static_cast<data::TupleId>(tuple);
    entry.attribute = std::move(fields[1]);
    entry.old_value = fields[2] == null_token ? data::Value::Null()
                                              : data::Value(fields[2]);
    entry.new_value = fields[3] == null_token ? data::Value::Null()
                                              : data::Value(fields[3]);
    entry.phase = std::move(fields[4]);
    entry.rule = std::move(fields[5]);
    if (arity == 7) {
      errno = 0;
      end = nullptr;
      long generation = std::strtol(fields[6].c_str(), &end, 10);
      if (end == fields[6].c_str() || *end != '\0' || errno == ERANGE ||
          generation < 0 || generation > INT_MAX) {
        return Status::Corruption("fix journal CSV: bad generation '" +
                                  fields[6] + "'");
      }
      entry.generation = static_cast<int>(generation);
    }
    journal.Append(std::move(entry));
  }
  if (!saw_header) {
    return Status::Corruption("fix journal CSV is empty (missing header)");
  }
  return journal;
}

Result<FixJournal> FixJournal::ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open fix journal CSV: " + path);
  }
  return ReadCsv(in);
}

Status FixJournal::WriteTextFile(const std::string& path) const {
  return WriteToFile(path, [this](std::ostream& out) { return WriteText(out); });
}

Status FixJournal::WriteCsvFile(const std::string& path) const {
  return WriteToFile(path, [this](std::ostream& out) { return WriteCsv(out); });
}

}  // namespace uniclean
