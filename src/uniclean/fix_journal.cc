#include "uniclean/fix_journal.h"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>

#include "data/csv.h"

namespace uniclean {

namespace {

/// Renders a value the way data/csv.cc's writer does (default options).
std::string CsvValue(const data::Value& v) {
  return v.is_null() ? data::CsvOptions{}.null_token
                     : data::CsvQuote(v.str());
}

template <typename WriteFn>
Status WriteToFile(const std::string& path, WriteFn write) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open file for write: " + path);
  }
  return write(out);
}

}  // namespace

int FixJournal::CountForPhase(std::string_view phase) const {
  int count = 0;
  for (const FixEntry& e : entries_) {
    if (e.phase == phase) ++count;
  }
  return count;
}

std::vector<std::pair<std::string, int>> FixJournal::CountsByPhase() const {
  std::vector<std::pair<std::string, int>> counts;
  for (const FixEntry& e : entries_) {
    bool found = false;
    for (auto& [phase, count] : counts) {
      if (phase == e.phase) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) counts.emplace_back(e.phase, 1);
  }
  return counts;
}

Status FixJournal::WriteText(std::ostream& out) const {
  for (const FixEntry& e : entries_) {
    out << "row " << e.tuple << ' ' << e.attribute << ": '"
        << e.old_value.ToString() << "' -> '" << e.new_value.ToString()
        << "' [" << e.phase;
    if (!e.rule.empty()) out << ' ' << e.rule;
    out << "]\n";
  }
  if (!out.good()) return Status::Internal("fix journal write failed");
  return Status::OK();
}

Status FixJournal::WriteCsv(std::ostream& out) const {
  out << "tuple,attribute,old,new,phase,rule\n";
  for (const FixEntry& e : entries_) {
    out << e.tuple << ',' << data::CsvQuote(e.attribute) << ','
        << CsvValue(e.old_value) << ',' << CsvValue(e.new_value) << ','
        << data::CsvQuote(e.phase) << ',' << data::CsvQuote(e.rule) << '\n';
  }
  if (!out.good()) return Status::Internal("fix journal write failed");
  return Status::OK();
}

Result<FixJournal> FixJournal::ReadCsv(std::istream& in) {
  constexpr char kExpectedHeader[] = "tuple,attribute,old,new,phase,rule";
  const std::string null_token = data::CsvOptions{}.null_token;
  FixJournal journal;
  std::string record;
  bool saw_header = false;
  while (data::ReadCsvRecord(in, &record)) {
    if (record.empty()) continue;
    if (!saw_header) {
      saw_header = true;
      if (record != kExpectedHeader) {
        return Status::Corruption("fix journal CSV header mismatch: got '" +
                                  record + "'");
      }
      continue;
    }
    UC_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                        data::ParseCsvRecord(record));
    if (fields.size() != 6) {
      return Status::Corruption(
          "fix journal CSV record must have 6 fields, got " +
          std::to_string(fields.size()) + ": " + record);
    }
    FixEntry entry;
    errno = 0;
    char* end = nullptr;
    long tuple = std::strtol(fields[0].c_str(), &end, 10);
    if (end == fields[0].c_str() || *end != '\0' || errno == ERANGE ||
        tuple < 0 || tuple > INT_MAX) {
      return Status::Corruption("fix journal CSV: bad tuple id '" +
                                fields[0] + "'");
    }
    entry.tuple = static_cast<data::TupleId>(tuple);
    entry.attribute = std::move(fields[1]);
    entry.old_value = fields[2] == null_token ? data::Value::Null()
                                              : data::Value(fields[2]);
    entry.new_value = fields[3] == null_token ? data::Value::Null()
                                              : data::Value(fields[3]);
    entry.phase = std::move(fields[4]);
    entry.rule = std::move(fields[5]);
    journal.Append(std::move(entry));
  }
  if (!saw_header) {
    return Status::Corruption("fix journal CSV is empty (missing header)");
  }
  return journal;
}

Result<FixJournal> FixJournal::ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open fix journal CSV: " + path);
  }
  return ReadCsv(in);
}

Status FixJournal::WriteTextFile(const std::string& path) const {
  return WriteToFile(path, [this](std::ostream& out) { return WriteText(out); });
}

Status FixJournal::WriteCsvFile(const std::string& path) const {
  return WriteToFile(path, [this](std::ostream& out) { return WriteCsv(out); });
}

}  // namespace uniclean
