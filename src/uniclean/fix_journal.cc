#include "uniclean/fix_journal.h"

#include <fstream>
#include <ostream>

#include "data/csv.h"

namespace uniclean {

namespace {

/// Renders a value the way data/csv.cc's writer does (default options).
std::string CsvValue(const data::Value& v) {
  return v.is_null() ? data::CsvOptions{}.null_token
                     : data::CsvQuote(v.str());
}

template <typename WriteFn>
Status WriteToFile(const std::string& path, WriteFn write) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open file for write: " + path);
  }
  return write(out);
}

}  // namespace

int FixJournal::CountForPhase(std::string_view phase) const {
  int count = 0;
  for (const FixEntry& e : entries_) {
    if (e.phase == phase) ++count;
  }
  return count;
}

std::vector<std::pair<std::string, int>> FixJournal::CountsByPhase() const {
  std::vector<std::pair<std::string, int>> counts;
  for (const FixEntry& e : entries_) {
    bool found = false;
    for (auto& [phase, count] : counts) {
      if (phase == e.phase) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) counts.emplace_back(e.phase, 1);
  }
  return counts;
}

Status FixJournal::WriteText(std::ostream& out) const {
  for (const FixEntry& e : entries_) {
    out << "row " << e.tuple << ' ' << e.attribute << ": '"
        << e.old_value.ToString() << "' -> '" << e.new_value.ToString()
        << "' [" << e.phase;
    if (!e.rule.empty()) out << ' ' << e.rule;
    out << "]\n";
  }
  if (!out.good()) return Status::Internal("fix journal write failed");
  return Status::OK();
}

Status FixJournal::WriteCsv(std::ostream& out) const {
  out << "tuple,attribute,old,new,phase,rule\n";
  for (const FixEntry& e : entries_) {
    out << e.tuple << ',' << data::CsvQuote(e.attribute) << ','
        << CsvValue(e.old_value) << ',' << CsvValue(e.new_value) << ','
        << data::CsvQuote(e.phase) << ',' << data::CsvQuote(e.rule) << '\n';
  }
  if (!out.good()) return Status::Internal("fix journal write failed");
  return Status::OK();
}

Status FixJournal::WriteTextFile(const std::string& path) const {
  return WriteToFile(path, [this](std::ostream& out) { return WriteText(out); });
}

Status FixJournal::WriteCsvFile(const std::string& path) const {
  return WriteToFile(path, [this](std::ostream& out) { return WriteCsv(out); });
}

}  // namespace uniclean
