// The uniclean::Cleaner façade: the library's top-level API. A
// CleanerBuilder accepts data/master relations (in memory or as CSV paths),
// rules (parsed or as text), per-cell confidences and thresholds, validates
// everything, and produces a Cleaner — a session object that runs an
// ordered, pluggable list of Phase objects over the data and reports a
// structured CleanResult.
//
// Quickstart:
//
//   auto cleaner = CleanerBuilder()
//                      .WithDataCsv("dirty.csv")
//                      .WithMasterCsv("master.csv")
//                      .WithRulesFile("rules.txt")
//                      .WithEta(0.8)
//                      .Build();
//   if (!cleaner.ok()) { /* bad config: cleaner.status() says why */ }
//   auto result = cleaner->Run();
//   if (!result.ok()) { /* a phase failed */ }
//   data::WriteCsvFile("repaired.csv", cleaner->data());
//   result->journal.WriteCsvFile("fixes.csv");
//
// A Cleaner is a *session*: it owns a core::MatchEnvironment scoped to its
// (rules, master) pair, built at most once per Cleaner lifetime. The first
// Run() pays the MD index build (or call Warmup() up front to separate that
// cost); every later run — including Run(data::Relation*) over successive
// dirty relations sharing the master — reuses the warm indexes and memos,
// the serving scenario:
//
//   cleaner->Warmup();                 // build indexes once
//   for (data::Relation* batch : incoming) {
//     auto r = cleaner->Run(batch);    // warm: no index rebuild
//   }
//
// The environment's memos (and the process-wide StringPool) are append-only:
// a session probing an unbounded stream of distinct values grows memory
// without limit, so very long-lived servers should recycle the Cleaner
// periodically until memo eviction lands (see ROADMAP).
//
// Configuration errors (η ∉ [0,1], schema mismatch between the rules and
// the relations, inconsistent rules when CheckConsistency() is requested,
// malformed confidence CSVs, …) surface as Status::InvalidArgument from
// Build() instead of UC_CHECK aborts.

#ifndef UNICLEAN_UNICLEAN_CLEANER_H_
#define UNICLEAN_UNICLEAN_CLEANER_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "rules/ruleset.h"
#include "uniclean/fix_journal.h"
#include "uniclean/phase.h"

namespace uniclean {

/// The outcome of one Cleaner::Run(): per-phase statistics plus the full
/// fix provenance journal.
struct CleanResult {
  FixJournal journal;
  /// One entry per executed phase, in pipeline order.
  std::vector<PhaseStats> phases;

  /// Sum of all phases' fix counts.
  int total_fixes() const;

  /// Stats of the named phase, or null if it did not run.
  const PhaseStats* phase(std::string_view name) const;

  /// All record matches identified across the phases, deduplicated and
  /// sorted — the paper's "matches found by Uni" (Exp-2).
  std::vector<std::pair<data::TupleId, data::TupleId>> AllMatches() const;
};

/// A configured cleaning session. Obtained from CleanerBuilder::Build();
/// move-only. Run() executes the phase pipeline over the session's data
/// relation in place.
class Cleaner {
 public:
  Cleaner(Cleaner&&) = default;
  Cleaner& operator=(Cleaner&&) = default;

  /// Executes the configured phases in order. Stops at the first phase that
  /// fails and propagates its Status (annotated with the phase name). May be
  /// called again to re-clean the (already repaired) data; repeat runs reuse
  /// the session's warm match environment.
  Result<CleanResult> Run();

  /// Cleans a caller-owned relation in place against this session's master,
  /// rules and warm match environment, leaving the session's own data
  /// relation untouched — the serving entry point for successive datasets.
  /// The relation's schema must match the rule set's data schema; its cell
  /// values must be interned in the same StringPool as the session's master
  /// (always true outside ScopedStringPool test scopes), or the shared memos
  /// would confuse ids across pools.
  Result<CleanResult> Run(data::Relation* data);

  /// Builds the session's match environment (MD suffix-tree / equality
  /// indexes) now instead of lazily on the first Run(). Idempotent; lets
  /// servers front-load the index cost and benches report it separately.
  void Warmup();

  /// The session's shared match environment, built on first use. Valid until
  /// the Cleaner is destroyed.
  const core::MatchEnvironment& environment();

  /// The data relation in its current state (repaired after Run()). When the
  /// builder was given a caller-owned `data::Relation*`, this aliases it.
  const data::Relation& data() const { return *data_; }
  data::Relation& mutable_data() { return *data_; }

  const data::Relation& master() const { return *master_; }
  const rules::RuleSet& rules() const { return *rules_; }
  const PipelineConfig& config() const { return config_; }

  /// Phase names in pipeline order.
  std::vector<std::string> PhaseNames() const;

 private:
  friend class CleanerBuilder;
  Cleaner() = default;

  Result<CleanResult> RunPipeline(data::Relation* data);

  // Owned storage is held behind unique_ptr so the aliasing raw pointers
  // stay valid when the Cleaner is moved (e.g. out of a Result<Cleaner>).
  std::unique_ptr<data::Relation> owned_data_;
  std::unique_ptr<data::Relation> owned_master_;
  std::unique_ptr<rules::RuleSet> owned_rules_;
  data::Relation* data_ = nullptr;
  const data::Relation* master_ = nullptr;
  const rules::RuleSet* rules_ = nullptr;
  PipelineConfig config_;
  std::vector<std::unique_ptr<Phase>> phases_;
  ProgressCallback progress_;
  // Session-scoped match environment: built lazily (environment()/Warmup()/
  // first Run) from (rules_, master_, config_.matcher), then shared by all
  // phases of all runs. unique_ptr keeps matcher references stable across
  // Cleaner moves.
  std::unique_ptr<core::MatchEnvironment> env_;
};

/// Fluent single-use builder for Cleaner. Every setter overwrites earlier
/// configuration of the same slot (e.g. WithData then WithDataCsv keeps the
/// CSV path); Build() moves the configuration out.
class CleanerBuilder {
 public:
  CleanerBuilder() = default;

  // --- data relation D -----------------------------------------------------
  /// Takes ownership of an in-memory relation.
  CleanerBuilder& WithData(data::Relation data);
  /// Cleans a caller-owned relation in place (must outlive the Cleaner).
  CleanerBuilder& WithData(data::Relation* data);
  /// Loads D from a CSV file at Build(); the schema is inferred from the
  /// header row.
  CleanerBuilder& WithDataCsv(std::string path);

  // --- master relation Dm --------------------------------------------------
  CleanerBuilder& WithMaster(data::Relation master);
  /// Non-owning; the relation must outlive the Cleaner.
  CleanerBuilder& WithMaster(const data::Relation* master);
  CleanerBuilder& WithMasterCsv(std::string path);

  // --- rules Θ = Σ ∪ Γ -----------------------------------------------------
  CleanerBuilder& WithRules(rules::RuleSet rules);
  /// Non-owning; the rule set must outlive the Cleaner.
  CleanerBuilder& WithRules(const rules::RuleSet* rules);
  /// Rule program text (rules/parser.h syntax), parsed at Build() against
  /// the data/master schemas.
  CleanerBuilder& WithRuleText(std::string text);
  /// Like WithRuleText, reading the program from a file at Build().
  CleanerBuilder& WithRulesFile(std::string path);

  // --- per-cell confidences ------------------------------------------------
  /// CSV with the same shape as D holding confidences in [0, 1]; applied to
  /// the data relation at Build().
  CleanerBuilder& WithConfidenceCsv(std::string path);

  // --- thresholds ----------------------------------------------------------
  CleanerBuilder& WithEta(double eta);
  CleanerBuilder& WithDelta1(int delta1);
  CleanerBuilder& WithDelta2(double delta2);
  CleanerBuilder& WithMatcherOptions(core::MdMatcherOptions matcher);

  // --- pipeline ------------------------------------------------------------
  /// Selects which built-in phases the default pipeline runs (all three by
  /// default, in paper order).
  CleanerBuilder& WithDefaultPhases(bool crepair, bool erepair, bool hrepair);
  /// Replaces the whole pipeline with a custom ordered phase list.
  CleanerBuilder& WithPhases(std::vector<std::unique_ptr<Phase>> phases);
  /// Appends a phase after the current pipeline (default or custom).
  CleanerBuilder& AddPhase(std::unique_ptr<Phase> phase);

  // --- diagnostics ---------------------------------------------------------
  /// Verifies at Build() that the rules are consistent (§4.1); an
  /// inconsistent Θ fails the build.
  CleanerBuilder& CheckConsistency(bool check = true);
  /// Observer invoked before and after every phase of Run().
  CleanerBuilder& WithProgressCallback(ProgressCallback callback);

  /// Validates the configuration and assembles the Cleaner. Returns
  /// Status::InvalidArgument on bad configuration; I/O and parse failures
  /// propagate their own codes (NotFound, Corruption, …).
  Result<Cleaner> Build();

 private:
  std::unique_ptr<data::Relation> data_owned_;
  data::Relation* data_ptr_ = nullptr;
  std::string data_csv_;

  std::unique_ptr<data::Relation> master_owned_;
  const data::Relation* master_ptr_ = nullptr;
  std::string master_csv_;

  std::unique_ptr<rules::RuleSet> rules_owned_;
  const rules::RuleSet* rules_ptr_ = nullptr;
  std::string rule_text_;
  std::string rules_file_;

  std::string confidence_csv_;

  PipelineConfig config_;
  bool run_crepair_ = true;
  bool run_erepair_ = true;
  bool run_hrepair_ = true;
  bool custom_pipeline_ = false;
  std::vector<std::unique_ptr<Phase>> pipeline_;
  std::vector<std::unique_ptr<Phase>> extra_phases_;
  bool check_consistency_ = false;
  ProgressCallback progress_;
};

}  // namespace uniclean

#endif  // UNICLEAN_UNICLEAN_CLEANER_H_
