// The uniclean::Cleaner façade — now a thin shim over the engine/session
// split (engine.h / session.h): a Cleaner is one CleanEngine plus one
// Session plus the bound data relation, packaged as the convenient
// single-session API. It remains fully supported for one-shot cleaning and
// scripts; services that clean many relations — especially concurrently —
// should hold the shared engine directly:
//
//   auto engine = EngineBuilder()...BuildEngine();   // shared, thread-safe
//   auto session = (*engine)->NewSession();           // cheap, per request
//   session.Run(&batch);
//
// Session::Run / Session::ApplyDelta are the canonical run surface; the
// shim has no incremental story — for edits after a clean (inserts,
// updates, deletes re-cleaned in sub-linear time) use
// CleanEngine::NewTrackedSession and Session::ApplyDelta (session.h).
//
// CleanerBuilder is an alias of EngineBuilder; Build() produces the shim.
//
// Quickstart (unchanged):
//
//   auto cleaner = CleanerBuilder()
//                      .WithDataCsv("dirty.csv")
//                      .WithMasterCsv("master.csv")
//                      .WithRulesFile("rules.txt")
//                      .WithEta(0.8)
//                      .Build();
//   if (!cleaner.ok()) { /* bad config: cleaner.status() says why */ }
//   auto result = cleaner->Run();
//   if (!result.ok()) { /* a phase failed */ }
//   data::WriteCsvFile("repaired.csv", cleaner->data());
//   result->journal.WriteCsvFile("fixes.csv");
//
// A Cleaner is a *session*: its engine owns a core::MatchEnvironment scoped
// to the (rules, master) pair, built at most once per lifetime. The first
// Run() pays the MD index build (or call Warmup() up front to separate that
// cost); every later run — including Run(data::Relation*) over successive
// dirty relations sharing the master — reuses the warm indexes and memos,
// the serving scenario:
//
//   cleaner->Warmup();                 // build indexes once
//   for (data::Relation* batch : incoming) {
//     auto r = cleaner->Run(batch);    // warm: no index rebuild
//   }
//
// The environment's memos (and the process-wide StringPool) grow with the
// stream of distinct probed values; cap them for days-long serving with
// MdMatcherOptions::memo_capacity (see WithMatcherOptions), which bounds
// residency by refusing admission past the cap.
//
// Configuration errors (η ∉ [0,1], schema mismatch between the rules and
// the relations, inconsistent rules when CheckConsistency() is requested,
// malformed confidence CSVs, …) surface as Status::InvalidArgument from
// Build() instead of UC_CHECK aborts.

#ifndef UNICLEAN_UNICLEAN_CLEANER_H_
#define UNICLEAN_UNICLEAN_CLEANER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "rules/ruleset.h"
#include "uniclean/engine.h"
#include "uniclean/fix_journal.h"
#include "uniclean/phase.h"
#include "uniclean/session.h"

namespace uniclean {

/// A configured single-session cleaner: shared engine + one session + the
/// bound data relation. Obtained from CleanerBuilder::Build(); move-only.
/// Run() executes the phase pipeline over the session's data relation in
/// place. Deprecated only in the soft sense: new services should use
/// CleanEngine/Session directly for shared warm state and concurrency; the
/// shim stays byte-identical in behavior (parity-pinned by cleaner_test and
/// engine_concurrency_test).
class Cleaner {
 public:
  Cleaner(Cleaner&&) = default;
  Cleaner& operator=(Cleaner&&) = default;

  /// Executes the configured phases in order. Stops at the first phase that
  /// fails and propagates its Status (annotated with the phase name). May be
  /// called again to re-clean the (already repaired) data; repeat runs reuse
  /// the engine's warm match environment.
  Result<CleanResult> Run() { return session_.Run(data_); }

  /// Cleans a caller-owned relation in place against this session's master,
  /// rules and warm match environment, leaving the session's own data
  /// relation untouched — the serving entry point for successive datasets.
  /// The relation's schema must match the rule set's data schema; its cell
  /// values must be interned in the same StringPool as the session's master
  /// (always true outside ScopedStringPool test scopes), or the shared memos
  /// would confuse ids across pools.
  Result<CleanResult> Run(data::Relation* data) { return session_.Run(data); }

  /// Builds the engine's match environment (MD suffix-tree / equality
  /// indexes) now instead of lazily on the first Run(). Idempotent; lets
  /// servers front-load the index cost and benches report it separately.
  void Warmup() { engine_->Warmup(); }

  /// The engine's shared match environment, built on first use. Valid until
  /// the engine dies (at least as long as this Cleaner).
  const core::MatchEnvironment& environment() { return engine_->environment(); }

  /// The underlying shared engine — the migration path: callers can lift it
  /// out (it is shared_ptr-shared) and open further concurrent sessions
  /// against the same warm state. Returns null when this Cleaner was built
  /// with instance phases (WithPhases/AddPhase): those bind only to the
  /// shim's session, so an engine handed out here would stamp *default*
  /// pipelines — silently different repairs. Rebuild with
  /// WithPhaseFactories to share such a pipeline.
  std::shared_ptr<const CleanEngine> engine() const {
    return engine_matches_session_ ? engine_ : nullptr;
  }

  /// The data relation in its current state (repaired after Run()). When the
  /// builder was given a caller-owned `data::Relation*`, this aliases it.
  const data::Relation& data() const { return *data_; }
  data::Relation& mutable_data() { return *data_; }

  const data::Relation& master() const { return engine_->master(); }
  const rules::RuleSet& rules() const { return engine_->rules(); }
  const PipelineConfig& config() const { return engine_->config(); }

  /// Phase names in pipeline order.
  std::vector<std::string> PhaseNames() const { return session_.PhaseNames(); }

 private:
  friend class EngineBuilder;
  Cleaner() = default;

  std::shared_ptr<const CleanEngine> engine_;
  Session session_;
  // False when the session runs instance phases the engine's factories do
  // not represent; engine() then refuses to hand the engine out.
  bool engine_matches_session_ = true;
  // Owned storage is held behind unique_ptr so the aliasing raw pointer
  // stays valid when the Cleaner is moved (e.g. out of a Result<Cleaner>).
  std::unique_ptr<data::Relation> owned_data_;
  data::Relation* data_ = nullptr;
};

/// The builder's historic name; Build() → Result<Cleaner> is its
/// single-session product, BuildEngine() → shared CleanEngine the shared
/// one. See engine.h for the full surface.
using CleanerBuilder = EngineBuilder;

}  // namespace uniclean

#endif  // UNICLEAN_UNICLEAN_CLEANER_H_
