// Private helpers shared by the façade translation units (engine.cc,
// session.cc, cleaner.cc). Not part of the public API.

#ifndef UNICLEAN_UNICLEAN_DETAIL_H_
#define UNICLEAN_UNICLEAN_DETAIL_H_

#include <fstream>
#include <sstream>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "data/schema.h"

namespace uniclean {
namespace internal {

inline Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

inline bool SchemaMatches(const data::Schema& a, const data::Schema& b) {
  if (a.arity() != b.arity()) return false;
  for (data::AttributeId i = 0; i < a.arity(); ++i) {
    if (a.attribute_name(i) != b.attribute_name(i)) return false;
  }
  return true;
}

inline std::string DescribeSchema(const data::Schema& schema) {
  std::string out = schema.relation_name() + "(";
  for (data::AttributeId i = 0; i < schema.arity(); ++i) {
    if (i > 0) out += ", ";
    out += schema.attribute_name(i);
  }
  out += ")";
  return out;
}

/// Rebuilds `status` with its message prefixed — Status is immutable.
inline Status Annotate(const Status& status, const std::string& prefix) {
  const std::string message = prefix + status.message();
  switch (status.code()) {
    case StatusCode::kOk:
      return status;
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case StatusCode::kCancelled:
      return Status::Cancelled(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
    case StatusCode::kDataLoss:
      return Status::DataLoss(message);
  }
  return Status::Internal(message);
}

}  // namespace internal
}  // namespace uniclean

#endif  // UNICLEAN_UNICLEAN_DETAIL_H_
