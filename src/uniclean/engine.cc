#include "uniclean/engine.h"

#include <atomic>
#include <thread>
#include <utility>

#include "data/csv.h"
#include "data/schema.h"
#include "reasoning/consistency.h"
#include "rules/parser.h"
#include "uniclean/builtin_phases.h"
#include "uniclean/detail.h"

namespace uniclean {

// ---------------------------------------------------------------------------
// CleanEngine
// ---------------------------------------------------------------------------

const core::MatchEnvironment& CleanEngine::environment() const {
  std::call_once(env_once_, [this] {
    // Already installed by EngineBuilder::FromSnapshot (before the engine
    // escaped the builder, so the write happens-before any reader).
    if (env_ != nullptr) return;
    env_ = std::make_unique<core::MatchEnvironment>(*rules_, *master_,
                                                    config_.matcher);
  });
  return *env_;
}

Session CleanEngine::NewSession() const {
  std::vector<std::unique_ptr<Phase>> phases;
  phases.reserve(phase_factories_.size());
  for (const PhaseFactory& factory : phase_factories_) {
    phases.push_back(factory());
  }
  return Session(shared_from_this(), std::move(phases));
}

Session CleanEngine::NewTrackedSession() const {
  Session session = NewSession();
  session.EnableDeltaTracking();
  return session;
}

uint64_t CleanEngine::Fingerprint() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto fold = [&h](uint64_t v) { h = data::MixU64(h ^ v); };
  auto fold_str = [&](const std::string& s) {
    fold(s.size());
    for (char c : s) fold(static_cast<uint64_t>(static_cast<uint8_t>(c)));
  };
  for (const rules::Cfd& cfd : rules_->cfds()) fold_str(cfd.name());
  for (const rules::Md& md : rules_->mds()) fold_str(md.name());
  fold(static_cast<uint64_t>(master_->live_size()));
  for (data::TupleId t = 0; t < master_->size(); ++t) {
    if (!master_->live(t)) continue;
    for (const data::Value& v : master_->tuple(t).values()) {
      // Hash the characters, not the pool id: ids depend on interning order,
      // and the fingerprint must survive a daemon restart.
      fold_str(v.is_null() ? std::string("\\N") : v.str());
    }
  }
  fold(static_cast<uint64_t>(config_.eta * 1e9));
  fold(static_cast<uint64_t>(config_.delta1));
  fold(static_cast<uint64_t>(config_.delta2 * 1e9));
  return h;
}

int CleanEngine::RefreshMasterIndexes() const {
  environment();  // ensure built; past the call_once, env_ is stable
  return env_->RefreshMasterAppend();
}

std::vector<std::string> CleanEngine::PhaseNames() const {
  // Factories are the source of truth; instantiate transiently for names.
  std::vector<std::string> names;
  names.reserve(phase_factories_.size());
  for (const PhaseFactory& factory : phase_factories_) {
    names.emplace_back(factory()->name());
  }
  return names;
}

std::vector<Result<CleanResult>> CleanEngine::RunBatch(
    data::Relation* const* relations, size_t count, int n_threads) const {
  std::vector<Result<CleanResult>> results;
  results.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    results.emplace_back(Status::Internal("RunBatch: relation not processed"));
  }
  if (count == 0) return results;
  // Build the indexes once up front rather than racing the first probes
  // through call_once on N workers.
  Warmup();
  if (n_threads < 2 || count == 1) {
    for (size_t i = 0; i < count; ++i) {
      Session session = NewSession();
      results[i] = session.Run(relations[i]);
    }
    return results;
  }
  const size_t workers =
      std::min<size_t>(static_cast<size_t>(n_threads), count);
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([this, relations, count, &next, &results] {
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        Session session = NewSession();
        // Distinct indexes: each worker writes only its own slots.
        results[i] = session.Run(relations[i]);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  return results;
}

// ---------------------------------------------------------------------------
// EngineBuilder
// ---------------------------------------------------------------------------

EngineBuilder& EngineBuilder::WithData(data::Relation data) {
  data_owned_ = std::make_unique<data::Relation>(std::move(data));
  data_ptr_ = nullptr;
  data_csv_.clear();
  return *this;
}

EngineBuilder& EngineBuilder::WithData(data::Relation* data) {
  data_ptr_ = data;
  data_owned_.reset();
  data_csv_.clear();
  return *this;
}

EngineBuilder& EngineBuilder::WithDataCsv(std::string path) {
  data_csv_ = std::move(path);
  data_owned_.reset();
  data_ptr_ = nullptr;
  return *this;
}

EngineBuilder& EngineBuilder::WithDataSchema(data::SchemaPtr schema) {
  data_schema_ = std::move(schema);
  return *this;
}

EngineBuilder& EngineBuilder::WithMaster(data::Relation master) {
  master_owned_ = std::make_unique<data::Relation>(std::move(master));
  master_ptr_ = nullptr;
  master_csv_.clear();
  return *this;
}

EngineBuilder& EngineBuilder::WithMaster(const data::Relation* master) {
  master_ptr_ = master;
  master_owned_.reset();
  master_csv_.clear();
  return *this;
}

EngineBuilder& EngineBuilder::WithMasterCsv(std::string path) {
  master_csv_ = std::move(path);
  master_owned_.reset();
  master_ptr_ = nullptr;
  return *this;
}

EngineBuilder& EngineBuilder::WithRules(rules::RuleSet rules) {
  rules_owned_ = std::make_unique<rules::RuleSet>(std::move(rules));
  rules_ptr_ = nullptr;
  rule_text_.clear();
  rules_file_.clear();
  return *this;
}

EngineBuilder& EngineBuilder::WithRules(const rules::RuleSet* rules) {
  rules_ptr_ = rules;
  rules_owned_.reset();
  rule_text_.clear();
  rules_file_.clear();
  return *this;
}

EngineBuilder& EngineBuilder::WithRuleText(std::string text) {
  rule_text_ = std::move(text);
  rules_owned_.reset();
  rules_ptr_ = nullptr;
  rules_file_.clear();
  return *this;
}

EngineBuilder& EngineBuilder::WithRulesFile(std::string path) {
  rules_file_ = std::move(path);
  rules_owned_.reset();
  rules_ptr_ = nullptr;
  rule_text_.clear();
  return *this;
}

EngineBuilder& EngineBuilder::WithConfidenceCsv(std::string path) {
  confidence_csv_ = std::move(path);
  return *this;
}

EngineBuilder& EngineBuilder::WithEta(double eta) {
  config_.eta = eta;
  return *this;
}

EngineBuilder& EngineBuilder::WithDelta1(int delta1) {
  config_.delta1 = delta1;
  return *this;
}

EngineBuilder& EngineBuilder::WithDelta2(double delta2) {
  config_.delta2 = delta2;
  return *this;
}

EngineBuilder& EngineBuilder::WithMatcherOptions(
    core::MdMatcherOptions matcher) {
  config_.matcher = matcher;
  return *this;
}

EngineBuilder& EngineBuilder::WithDefaultPhases(bool crepair, bool erepair,
                                                bool hrepair) {
  run_crepair_ = crepair;
  run_erepair_ = erepair;
  run_hrepair_ = hrepair;
  custom_pipeline_ = false;
  factory_pipeline_ = false;
  pipeline_.clear();
  factories_.clear();
  return *this;
}

EngineBuilder& EngineBuilder::WithPhaseFactories(
    std::vector<PhaseFactory> factories) {
  factories_ = std::move(factories);
  factory_pipeline_ = true;
  custom_pipeline_ = false;
  pipeline_.clear();
  return *this;
}

EngineBuilder& EngineBuilder::AddPhaseFactory(PhaseFactory factory) {
  extra_factories_.push_back(std::move(factory));
  return *this;
}

EngineBuilder& EngineBuilder::WithPhases(
    std::vector<std::unique_ptr<Phase>> phases) {
  pipeline_ = std::move(phases);
  custom_pipeline_ = true;
  factory_pipeline_ = false;
  factories_.clear();
  return *this;
}

EngineBuilder& EngineBuilder::AddPhase(std::unique_ptr<Phase> phase) {
  extra_phases_.push_back(std::move(phase));
  return *this;
}

EngineBuilder& EngineBuilder::CheckConsistency(bool check) {
  check_consistency_ = check;
  return *this;
}

EngineBuilder& EngineBuilder::WithProgressCallback(ProgressCallback callback) {
  progress_ = std::move(callback);
  return *this;
}

Status EngineBuilder::ValidateThresholds() const {
  // The negated comparisons also reject NaN.
  if (!(config_.eta >= 0.0 && config_.eta <= 1.0)) {
    return Status::InvalidArgument(
        "confidence threshold eta must be in [0, 1], got " +
        std::to_string(config_.eta));
  }
  if (config_.delta1 < 0) {
    return Status::InvalidArgument(
        "update threshold delta1 must be >= 0, got " +
        std::to_string(config_.delta1));
  }
  if (!(config_.delta2 >= 0.0 && config_.delta2 <= 1.0)) {
    return Status::InvalidArgument(
        "entropy threshold delta2 must be in [0, 1], got " +
        std::to_string(config_.delta2));
  }
  return Status::OK();
}

Result<std::shared_ptr<CleanEngine>> EngineBuilder::BuildEngineInternal(
    data::SchemaPtr data_schema) {
  UC_RETURN_IF_ERROR(ValidateThresholds());

  // shared_ptr with a private ctor: wrap the raw allocation.
  std::shared_ptr<CleanEngine> engine(new CleanEngine());
  engine->config_ = config_;

  // Master relation Dm.
  if (!master_csv_.empty()) {
    UC_ASSIGN_OR_RETURN(data::SchemaPtr schema,
                        data::InferCsvSchema(master_csv_, "master"));
    UC_ASSIGN_OR_RETURN(data::Relation dm,
                        data::ReadCsvFile(master_csv_, schema));
    engine->owned_master_ = std::make_unique<data::Relation>(std::move(dm));
    engine->master_ = engine->owned_master_.get();
  } else if (master_ptr_ != nullptr) {
    engine->master_ = master_ptr_;
  } else if (master_owned_ != nullptr) {
    engine->owned_master_ = std::move(master_owned_);
    engine->master_ = engine->owned_master_.get();
  } else {
    return Status::InvalidArgument(
        "no master relation configured (use WithMaster or WithMasterCsv)");
  }

  // Rules Θ.
  std::string rule_text = rule_text_;
  if (!rules_file_.empty()) {
    UC_ASSIGN_OR_RETURN(rule_text, internal::ReadFileToString(rules_file_));
  }
  if (!rule_text.empty()) {
    if (data_schema == nullptr) {
      return Status::InvalidArgument(
          "rule text needs a data schema to parse against: configure the "
          "data relation (WithData/WithDataCsv) or declare it with "
          "WithDataSchema");
    }
    UC_ASSIGN_OR_RETURN(
        rules::RuleSet parsed,
        rules::ParseRuleSet(rule_text, data_schema,
                            engine->master_->schema_ptr()));
    engine->owned_rules_ = std::make_unique<rules::RuleSet>(std::move(parsed));
    engine->rules_ = engine->owned_rules_.get();
  } else if (rules_ptr_ != nullptr) {
    engine->rules_ = rules_ptr_;
  } else if (rules_owned_ != nullptr) {
    engine->owned_rules_ = std::move(rules_owned_);
    engine->rules_ = engine->owned_rules_.get();
  } else {
    return Status::InvalidArgument(
        "no rules configured (use WithRules, WithRuleText or WithRulesFile)");
  }

  // Schema conformance: the rules were normalized against specific schemas;
  // the relations (and the declared data schema, when present) must match
  // them attribute-for-attribute. The data check precedes the master check,
  // matching the historic Build() diagnostic order.
  if (data_schema != nullptr &&
      !internal::SchemaMatches(engine->rules_->data_schema(), *data_schema)) {
    return Status::InvalidArgument(
        "data relation schema " + internal::DescribeSchema(*data_schema) +
        " does not match the rule set's data schema " +
        internal::DescribeSchema(engine->rules_->data_schema()));
  }
  if (!internal::SchemaMatches(engine->rules_->master_schema(),
                               engine->master_->schema())) {
    return Status::InvalidArgument(
        "master relation schema " +
        internal::DescribeSchema(engine->master_->schema()) +
        " does not match the rule set's master schema " +
        internal::DescribeSchema(engine->rules_->master_schema()));
  }

  // Rule consistency (§4.1), on request.
  if (check_consistency_) {
    UC_ASSIGN_OR_RETURN(bool consistent, reasoning::IsConsistent(
                                             *engine->rules_,
                                             *engine->master_));
    if (!consistent) {
      return Status::InvalidArgument(
          "the rule set is inconsistent: no nonempty database can satisfy "
          "it");
    }
  }

  // Pipeline factories. Instance phases (WithPhases/AddPhase) are handled by
  // Build() — they bind to its single session; the engine keeps factories so
  // NewSession() can stamp out fresh instances forever.
  engine->phase_factories_ =
      factory_pipeline_ ? std::move(factories_)
                        : MakeDefaultPhaseFactories(run_crepair_, run_erepair_,
                                                    run_hrepair_);
  for (PhaseFactory& factory : extra_factories_) {
    engine->phase_factories_.push_back(std::move(factory));
  }
  extra_factories_.clear();
  return engine;
}

Result<std::shared_ptr<CleanEngine>> EngineBuilder::BuildEngine() {
  if (custom_pipeline_ || !extra_phases_.empty()) {
    return Status::InvalidArgument(
        "WithPhases/AddPhase instances are single-session and cannot seed a "
        "shared engine; register per-session factories with "
        "WithPhaseFactories/AddPhaseFactory instead");
  }
  if (progress_) {
    return Status::InvalidArgument(
        "WithProgressCallback is per-session state and cannot live on a "
        "shared engine; call Session::set_progress_callback on each "
        "NewSession() instead");
  }
  if (!confidence_csv_.empty()) {
    return Status::InvalidArgument(
        "WithConfidenceCsv rides on the data relation and an engine binds "
        "none; apply confidences to each relation before Session::Run "
        "(data::ReadConfidenceCsvFile), or use Build()");
  }
  // Resolve the data schema the rule text parses against (not needed when
  // the rules arrive pre-parsed).
  data::SchemaPtr schema = data_schema_;
  if (schema == nullptr) {
    if (!data_csv_.empty()) {
      UC_ASSIGN_OR_RETURN(schema, data::InferCsvSchema(data_csv_, "data"));
    } else if (data_ptr_ != nullptr) {
      schema = data_ptr_->schema_ptr();
    } else if (data_owned_ != nullptr) {
      schema = data_owned_->schema_ptr();
    }
  }
  return BuildEngineInternal(std::move(schema));
}

}  // namespace uniclean
