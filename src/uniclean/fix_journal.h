// FixJournal: structured per-cell fix provenance. Every repaired cell is
// recorded with its tuple id, attribute, old/new value, the phase that
// produced the fix and the justifying rule — replacing the ad-hoc report
// text the CLI used to assemble by scanning FixMarks. Phases append entries
// in application order, so a cell rewritten twice (eRepair under δ1 > 1)
// appears twice and the entries chain: the second entry's old value is the
// first entry's new value.

#ifndef UNICLEAN_UNICLEAN_FIX_JOURNAL_H_
#define UNICLEAN_UNICLEAN_FIX_JOURNAL_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/relation.h"
#include "data/value.h"

namespace uniclean {

/// One recorded fix event.
struct FixEntry {
  data::TupleId tuple = -1;
  data::AttributeId attr = -1;
  /// Attribute name (denormalized so the journal is self-describing).
  std::string attribute;
  data::Value old_value;
  data::Value new_value;
  /// Name of the phase that produced the fix, e.g. "cRepair".
  std::string phase;
  /// Name of the justifying rule; empty when no single rule is attributable.
  std::string rule;
};

class FixJournal {
 public:
  void Append(FixEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<FixEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Number of entries recorded by the named phase.
  int CountForPhase(std::string_view phase) const;

  /// (phase, count) pairs in order of each phase's first appearance.
  std::vector<std::pair<std::string, int>> CountsByPhase() const;

  /// Human-readable report, one line per fix:
  ///   row 3 city: 'Edii' -> 'Edi' [cRepair phi1]
  Status WriteText(std::ostream& out) const;
  Status WriteTextFile(const std::string& path) const;

  /// RFC-4180 CSV with header `tuple,attribute,old,new,phase,rule`; nulls
  /// are rendered as \N like data/csv.h. Values containing commas, quotes or
  /// newlines are quoted and round-trip exactly through ReadCsv.
  Status WriteCsv(std::ostream& out) const;
  Status WriteCsvFile(const std::string& path) const;

  /// Parses a journal previously serialized by WriteCsv. The CSV stores the
  /// attribute by *name* only, so `attr` is -1 on every parsed entry (resolve
  /// it against a schema if needed). Fails with Corruption on a malformed
  /// header, arity mismatch, or non-integer tuple id. Caveat shared with
  /// data/csv.h's relation format: a value whose *text* equals the null
  /// token (the two characters `\N`) is indistinguishable from null in the
  /// serialization and reads back as null.
  static Result<FixJournal> ReadCsv(std::istream& in);
  static Result<FixJournal> ReadCsvFile(const std::string& path);

 private:
  std::vector<FixEntry> entries_;
};

}  // namespace uniclean

#endif  // UNICLEAN_UNICLEAN_FIX_JOURNAL_H_
