// FixJournal: structured per-cell fix provenance. Every repaired cell is
// recorded with its tuple id, attribute, old/new value, the phase that
// produced the fix and the justifying rule — replacing the ad-hoc report
// text the CLI used to assemble by scanning FixMarks. Phases append entries
// in application order, so a cell rewritten twice (eRepair under δ1 > 1)
// appears twice and the entries chain: the second entry's old value is the
// first entry's new value.

#ifndef UNICLEAN_UNICLEAN_FIX_JOURNAL_H_
#define UNICLEAN_UNICLEAN_FIX_JOURNAL_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/relation.h"
#include "data/value.h"

namespace uniclean {

/// One recorded fix event.
struct FixEntry {
  data::TupleId tuple = -1;
  data::AttributeId attr = -1;
  /// Attribute name (denormalized so the journal is self-describing).
  std::string attribute;
  data::Value old_value;
  data::Value new_value;
  /// Name of the phase that produced the fix, e.g. "cRepair".
  std::string phase;
  /// Name of the justifying rule; empty when no single rule is attributable.
  std::string rule;
  /// Delta generation that produced this entry: 0 for the initial
  /// Session::Run, g for the g-th Session::ApplyDelta. A tuple re-repaired
  /// by a delta gets a fresh full set of generation-g entries; the entries
  /// of earlier generations stay in the journal as history (see
  /// Session::CanonicalJournal for the covering view).
  int generation = 0;
};

class FixJournal {
 public:
  void Append(FixEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<FixEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Number of entries recorded by the named phase.
  int CountForPhase(std::string_view phase) const;

  /// Number of entries carrying the given delta generation.
  int CountForGeneration(int generation) const;

  /// The canonical fix set: the NET repair per cell, sorted by (tuple,
  /// attr) with the generation normalized to 0. A cell rewritten several
  /// times collapses to one entry from its first old value to its last new
  /// value, attributed to the phase/rule that wrote the final value; a cell
  /// whose chain nets to no change (churn a later entry undid) drops out
  /// entirely. The (tuple, attribute, old, new) columns are evaluation-order
  /// independent; phase/rule are *derivation* provenance and may legitimately
  /// differ between two runs that net the same fixes (see
  /// CanonicalFixSetCsv).
  FixJournal Canonicalized() const;

  /// The canonical fix set rendered as CSV WITHOUT the provenance columns:
  /// header `tuple,attribute,old,new`, one row per Canonicalized() entry.
  /// Which pipeline phase lands the final write for a cell depends on the
  /// evaluation trajectory — e.g. a fix eRepair derives in a batch run may
  /// fall through to hRepair in an incremental re-run whose sibling cells
  /// took a different intermediate path — so provenance is not comparable
  /// across runs. This rendering is the trajectory-independent invariant:
  /// two journals that repaired the same cells to the same values produce
  /// byte-identical strings, and it is what Session::ApplyDelta's
  /// convergence guarantee pins.
  std::string CanonicalFixSetCsv() const;

  /// (phase, count) pairs in order of each phase's first appearance.
  std::vector<std::pair<std::string, int>> CountsByPhase() const;

  /// Human-readable report, one line per fix:
  ///   row 3 city: 'Edii' -> 'Edi' [cRepair phi1]
  Status WriteText(std::ostream& out) const;
  Status WriteTextFile(const std::string& path) const;

  /// RFC-4180 CSV with header `tuple,attribute,old,new,phase,rule`; nulls
  /// are rendered as \N like data/csv.h. Values containing commas, quotes or
  /// newlines are quoted and round-trip exactly through ReadCsv. When any
  /// entry carries a nonzero delta generation, a seventh `generation` column
  /// is emitted (header `tuple,attribute,old,new,phase,rule,generation`);
  /// journals from plain batch runs keep the historic 6-column format, so
  /// existing golden files and downstream parsers are unaffected.
  Status WriteCsv(std::ostream& out) const;
  Status WriteCsvFile(const std::string& path) const;

  /// Parses a journal previously serialized by WriteCsv (either header
  /// variant; generation reads back as 0 for 6-column journals). The CSV
  /// stores the attribute by *name* only, so `attr` is -1 on every parsed
  /// entry (resolve it against a schema if needed). Fails with Corruption on
  /// a malformed header, arity mismatch, or non-integer tuple id. Caveat
  /// shared with data/csv.h's relation format: a value whose *text* equals
  /// the null token (the two characters `\N`) is indistinguishable from null
  /// in the serialization and reads back as null.
  static Result<FixJournal> ReadCsv(std::istream& in);
  static Result<FixJournal> ReadCsvFile(const std::string& path);

 private:
  std::vector<FixEntry> entries_;
};

}  // namespace uniclean

#endif  // UNICLEAN_UNICLEAN_FIX_JOURNAL_H_
