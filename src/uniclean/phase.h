// Phase: the pluggable unit of the Cleaner pipeline. The paper's Fig. 2
// phases (cRepair / eRepair / hRepair, see builtin_phases.h) are the
// default implementations; additional phases — a probabilistic repair pass,
// a rule-discovery preprocessor, a custom validator — implement the same
// two-method interface and are registered through CleanerBuilder.

#ifndef UNICLEAN_UNICLEAN_PHASE_H_
#define UNICLEAN_UNICLEAN_PHASE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "core/match_environment.h"
#include "core/md_matcher.h"
#include "data/relation.h"
#include "rules/ruleset.h"
#include "uniclean/fix_journal.h"

namespace uniclean {

/// Validated pipeline thresholds, shared by all phases.
struct PipelineConfig {
  /// Confidence threshold η (§5), in [0, 1].
  double eta = 0.8;
  /// Update threshold δ1 (§6), >= 0.
  int delta1 = 5;
  /// Entropy threshold δ2 (§6), in [0, 1].
  double delta2 = 0.8;
  /// Suffix-tree blocking configuration for MD matching (§5.2).
  core::MdMatcherOptions matcher;
};

/// Everything a phase may read or mutate during one Cleaner::Run(). The
/// relations and rules outlive the run; `data` is cleaned in place.
struct PipelineContext {
  data::Relation* data = nullptr;
  const data::Relation* master = nullptr;
  const rules::RuleSet* rules = nullptr;
  PipelineConfig config;
  /// Fix provenance sink; phases append one entry per fix. Never null
  /// during a Cleaner::Run().
  FixJournal* journal = nullptr;
  /// The session's shared match environment: one warm MdMatcher (index +
  /// memos) per MD rule, scoped to (rules, master). Never null during a
  /// Cleaner::Run() — built once per Cleaner lifetime and reused by every
  /// phase of every run, so user phases should probe MDs through
  /// `match_env->matcher(rule)` rather than constructing their own matcher.
  const core::MatchEnvironment* match_env = nullptr;
  /// Optional cooperative-cancellation token (null = uncancellable). The
  /// executor polls it between phases; the built-in phases forward it into
  /// the repair engines, which poll between committed fixes. User phases
  /// should honour it too: `UC_RETURN_IF_ERROR(common::PollCancel(cancel))`
  /// at convenient safe points.
  const common::CancelToken* cancel = nullptr;
};

/// What one phase did. Cleaner::Run() collects one per executed phase.
struct PhaseStats {
  /// Phase name; filled in by the Cleaner from Phase::name().
  std::string phase;
  /// Cells this phase changed (fix events; matches the phase's journal
  /// entry count for the built-in phases).
  int fixes = 0;
  /// Record matches identified while cleaning: (data tuple, master tuple).
  std::vector<std::pair<data::TupleId, data::TupleId>> matches;
  /// Phase-specific diagnostic counters, e.g. ("conflicts", 2).
  std::vector<std::pair<std::string, int64_t>> counters;

  /// Value of a named counter, 0 when absent.
  int64_t counter(std::string_view name) const {
    for (const auto& [key, value] : counters) {
      if (key == name) return value;
    }
    return 0;
  }
};

/// One pipeline stage. Implementations must tolerate any data state their
/// predecessors may leave (phases are user-orderable) and report expected
/// failures through the returned Result rather than aborting.
class Phase {
 public:
  virtual ~Phase() = default;

  /// Stable display name, e.g. "cRepair". Also recorded in journal entries.
  virtual std::string_view name() const = 0;

  /// Executes the phase against `ctx->data`. A non-OK status aborts the
  /// pipeline and propagates out of Cleaner::Run().
  virtual Result<PhaseStats> Run(PipelineContext* ctx) = 0;
};

/// Progress notification delivered to the CleanerBuilder's callback before
/// and after every phase.
struct PhaseEvent {
  enum class Kind { kPhaseStarted, kPhaseFinished };
  Kind kind = Kind::kPhaseStarted;
  /// 0-based phase index and pipeline length.
  int index = 0;
  int total = 0;
  std::string_view phase;
  /// Stats of the finished phase; null for kPhaseStarted.
  const PhaseStats* stats = nullptr;
  /// The pipeline's data relation in its current state.
  const data::Relation* data = nullptr;
};

using ProgressCallback = std::function<void(const PhaseEvent&)>;

/// Creates one fresh Phase instance. A CleanEngine stores factories rather
/// than phase objects so every NewSession() gets its own instances and
/// stateful phases never race across concurrent sessions. Factories must be
/// callable from any thread (NewSession is thread-safe) and must not share
/// mutable state between the phases they create.
using PhaseFactory = std::function<std::unique_ptr<Phase>()>;

}  // namespace uniclean

#endif  // UNICLEAN_UNICLEAN_PHASE_H_
