#include "uniclean/cleaner.h"

#include <utility>

#include "data/csv.h"
#include "uniclean/detail.h"

namespace uniclean {

// EngineBuilder::Build() is defined here (not engine.cc) because it needs
// the complete Cleaner type: it assembles the single-session shim — the
// shared engine, one session carrying the configured phases and progress
// callback, and the bound data relation.
Result<Cleaner> EngineBuilder::Build() {
  UC_RETURN_IF_ERROR(ValidateThresholds());
  // Instance phases bind to the shim's session, factories to the engine;
  // mixing them would silently drop one side (the session stamps only the
  // instance list), so reject the combination outright.
  if ((custom_pipeline_ || !extra_phases_.empty()) &&
      (factory_pipeline_ || !extra_factories_.empty())) {
    return Status::InvalidArgument(
        "cannot mix instance phases (WithPhases/AddPhase) with phase "
        "factories (WithPhaseFactories/AddPhaseFactory) in one build");
  }

  Cleaner cleaner;

  // Data relation D.
  if (!data_csv_.empty()) {
    UC_ASSIGN_OR_RETURN(data::SchemaPtr schema,
                        data::InferCsvSchema(data_csv_, "data"));
    UC_ASSIGN_OR_RETURN(data::Relation d,
                        data::ReadCsvFile(data_csv_, schema));
    cleaner.owned_data_ = std::make_unique<data::Relation>(std::move(d));
    cleaner.data_ = cleaner.owned_data_.get();
  } else if (data_ptr_ != nullptr) {
    cleaner.data_ = data_ptr_;
  } else if (data_owned_ != nullptr) {
    cleaner.owned_data_ = std::move(data_owned_);
    cleaner.data_ = cleaner.owned_data_.get();
  } else {
    return Status::InvalidArgument(
        "no data relation configured (use WithData or WithDataCsv)");
  }

  // Shared immutable state — master, rules, schema conformance (including
  // the data relation's schema), consistency, phase factories.
  UC_ASSIGN_OR_RETURN(std::shared_ptr<CleanEngine> engine,
                      BuildEngineInternal(cleaner.data_->schema_ptr()));

  // Per-cell confidences.
  if (!confidence_csv_.empty()) {
    UC_RETURN_IF_ERROR(
        data::ReadConfidenceCsvFile(confidence_csv_, cleaner.data_));
  }

  // The shim's single session: custom phase instances bind here; otherwise
  // the engine's factories stamp the (default or factory) pipeline. A
  // session carrying instance phases is not reproducible from the engine's
  // factories, so the Cleaner then refuses to hand the engine out.
  cleaner.engine_matches_session_ = !custom_pipeline_ && extra_phases_.empty();
  std::vector<std::unique_ptr<Phase>> phases;
  if (custom_pipeline_) {
    phases = std::move(pipeline_);
  } else {
    for (const PhaseFactory& factory : engine->phase_factories_) {
      phases.push_back(factory());
    }
  }
  for (auto& phase : extra_phases_) {
    phases.push_back(std::move(phase));
  }
  extra_phases_.clear();

  cleaner.engine_ = engine;
  cleaner.session_ = Session(std::move(engine), std::move(phases));
  cleaner.session_.set_progress_callback(std::move(progress_));
  return cleaner;
}

}  // namespace uniclean
