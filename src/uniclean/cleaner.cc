#include "uniclean/cleaner.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "data/csv.h"
#include "data/schema.h"
#include "reasoning/consistency.h"
#include "rules/parser.h"
#include "uniclean/builtin_phases.h"

namespace uniclean {

namespace {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool SchemaMatches(const data::Schema& a, const data::Schema& b) {
  if (a.arity() != b.arity()) return false;
  for (data::AttributeId i = 0; i < a.arity(); ++i) {
    if (a.attribute_name(i) != b.attribute_name(i)) return false;
  }
  return true;
}

std::string DescribeSchema(const data::Schema& schema) {
  std::string out = schema.relation_name() + "(";
  for (data::AttributeId i = 0; i < schema.arity(); ++i) {
    if (i > 0) out += ", ";
    out += schema.attribute_name(i);
  }
  out += ")";
  return out;
}

/// Rebuilds `status` with its message prefixed — Status is immutable.
Status Annotate(const Status& status, const std::string& prefix) {
  const std::string message = prefix + status.message();
  switch (status.code()) {
    case StatusCode::kOk:
      return status;
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
  }
  return Status::Internal(message);
}

}  // namespace

// ---------------------------------------------------------------------------
// CleanResult
// ---------------------------------------------------------------------------

int CleanResult::total_fixes() const {
  int total = 0;
  for (const PhaseStats& stats : phases) total += stats.fixes;
  return total;
}

const PhaseStats* CleanResult::phase(std::string_view name) const {
  for (const PhaseStats& stats : phases) {
    if (stats.phase == name) return &stats;
  }
  return nullptr;
}

std::vector<std::pair<data::TupleId, data::TupleId>> CleanResult::AllMatches()
    const {
  std::vector<std::pair<data::TupleId, data::TupleId>> all;
  for (const PhaseStats& stats : phases) {
    all.insert(all.end(), stats.matches.begin(), stats.matches.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

// ---------------------------------------------------------------------------
// Cleaner
// ---------------------------------------------------------------------------

const core::MatchEnvironment& Cleaner::environment() {
  if (env_ == nullptr) {
    env_ = std::make_unique<core::MatchEnvironment>(*rules_, *master_,
                                                    config_.matcher);
  }
  return *env_;
}

void Cleaner::Warmup() { environment(); }

Result<CleanResult> Cleaner::Run() { return RunPipeline(data_); }

Result<CleanResult> Cleaner::Run(data::Relation* data) {
  if (data == nullptr) {
    return Status::InvalidArgument("Run(data): relation must not be null");
  }
  if (!SchemaMatches(rules_->data_schema(), data->schema())) {
    return Status::InvalidArgument(
        "Run(data): relation schema " + DescribeSchema(data->schema()) +
        " does not match the rule set's data schema " +
        DescribeSchema(rules_->data_schema()));
  }
  return RunPipeline(data);
}

Result<CleanResult> Cleaner::RunPipeline(data::Relation* data) {
  CleanResult result;
  PipelineContext ctx;
  ctx.data = data;
  ctx.master = master_;
  ctx.rules = rules_;
  ctx.config = config_;
  ctx.journal = &result.journal;
  ctx.match_env = &environment();

  const int total = static_cast<int>(phases_.size());
  for (int i = 0; i < total; ++i) {
    Phase& phase = *phases_[static_cast<size_t>(i)];
    if (progress_) {
      PhaseEvent event;
      event.kind = PhaseEvent::Kind::kPhaseStarted;
      event.index = i;
      event.total = total;
      event.phase = phase.name();
      event.data = data;
      progress_(event);
    }
    Result<PhaseStats> stats = phase.Run(&ctx);
    if (!stats.ok()) {
      return Annotate(stats.status(),
                      "phase '" + std::string(phase.name()) + "': ");
    }
    PhaseStats phase_stats = std::move(stats).value();
    phase_stats.phase = std::string(phase.name());
    result.phases.push_back(std::move(phase_stats));
    if (progress_) {
      PhaseEvent event;
      event.kind = PhaseEvent::Kind::kPhaseFinished;
      event.index = i;
      event.total = total;
      event.phase = phase.name();
      event.stats = &result.phases.back();
      event.data = data;
      progress_(event);
    }
  }
  return result;
}

std::vector<std::string> Cleaner::PhaseNames() const {
  std::vector<std::string> names;
  names.reserve(phases_.size());
  for (const auto& phase : phases_) names.emplace_back(phase->name());
  return names;
}

// ---------------------------------------------------------------------------
// CleanerBuilder
// ---------------------------------------------------------------------------

CleanerBuilder& CleanerBuilder::WithData(data::Relation data) {
  data_owned_ = std::make_unique<data::Relation>(std::move(data));
  data_ptr_ = nullptr;
  data_csv_.clear();
  return *this;
}

CleanerBuilder& CleanerBuilder::WithData(data::Relation* data) {
  data_ptr_ = data;
  data_owned_.reset();
  data_csv_.clear();
  return *this;
}

CleanerBuilder& CleanerBuilder::WithDataCsv(std::string path) {
  data_csv_ = std::move(path);
  data_owned_.reset();
  data_ptr_ = nullptr;
  return *this;
}

CleanerBuilder& CleanerBuilder::WithMaster(data::Relation master) {
  master_owned_ = std::make_unique<data::Relation>(std::move(master));
  master_ptr_ = nullptr;
  master_csv_.clear();
  return *this;
}

CleanerBuilder& CleanerBuilder::WithMaster(const data::Relation* master) {
  master_ptr_ = master;
  master_owned_.reset();
  master_csv_.clear();
  return *this;
}

CleanerBuilder& CleanerBuilder::WithMasterCsv(std::string path) {
  master_csv_ = std::move(path);
  master_owned_.reset();
  master_ptr_ = nullptr;
  return *this;
}

CleanerBuilder& CleanerBuilder::WithRules(rules::RuleSet rules) {
  rules_owned_ = std::make_unique<rules::RuleSet>(std::move(rules));
  rules_ptr_ = nullptr;
  rule_text_.clear();
  rules_file_.clear();
  return *this;
}

CleanerBuilder& CleanerBuilder::WithRules(const rules::RuleSet* rules) {
  rules_ptr_ = rules;
  rules_owned_.reset();
  rule_text_.clear();
  rules_file_.clear();
  return *this;
}

CleanerBuilder& CleanerBuilder::WithRuleText(std::string text) {
  rule_text_ = std::move(text);
  rules_owned_.reset();
  rules_ptr_ = nullptr;
  rules_file_.clear();
  return *this;
}

CleanerBuilder& CleanerBuilder::WithRulesFile(std::string path) {
  rules_file_ = std::move(path);
  rules_owned_.reset();
  rules_ptr_ = nullptr;
  rule_text_.clear();
  return *this;
}

CleanerBuilder& CleanerBuilder::WithConfidenceCsv(std::string path) {
  confidence_csv_ = std::move(path);
  return *this;
}

CleanerBuilder& CleanerBuilder::WithEta(double eta) {
  config_.eta = eta;
  return *this;
}

CleanerBuilder& CleanerBuilder::WithDelta1(int delta1) {
  config_.delta1 = delta1;
  return *this;
}

CleanerBuilder& CleanerBuilder::WithDelta2(double delta2) {
  config_.delta2 = delta2;
  return *this;
}

CleanerBuilder& CleanerBuilder::WithMatcherOptions(
    core::MdMatcherOptions matcher) {
  config_.matcher = matcher;
  return *this;
}

CleanerBuilder& CleanerBuilder::WithDefaultPhases(bool crepair, bool erepair,
                                                  bool hrepair) {
  run_crepair_ = crepair;
  run_erepair_ = erepair;
  run_hrepair_ = hrepair;
  custom_pipeline_ = false;
  pipeline_.clear();
  return *this;
}

CleanerBuilder& CleanerBuilder::WithPhases(
    std::vector<std::unique_ptr<Phase>> phases) {
  pipeline_ = std::move(phases);
  custom_pipeline_ = true;
  return *this;
}

CleanerBuilder& CleanerBuilder::AddPhase(std::unique_ptr<Phase> phase) {
  extra_phases_.push_back(std::move(phase));
  return *this;
}

CleanerBuilder& CleanerBuilder::CheckConsistency(bool check) {
  check_consistency_ = check;
  return *this;
}

CleanerBuilder& CleanerBuilder::WithProgressCallback(
    ProgressCallback callback) {
  progress_ = std::move(callback);
  return *this;
}

Result<Cleaner> CleanerBuilder::Build() {
  // Thresholds. The negated comparisons also reject NaN.
  if (!(config_.eta >= 0.0 && config_.eta <= 1.0)) {
    return Status::InvalidArgument(
        "confidence threshold eta must be in [0, 1], got " +
        std::to_string(config_.eta));
  }
  if (config_.delta1 < 0) {
    return Status::InvalidArgument(
        "update threshold delta1 must be >= 0, got " +
        std::to_string(config_.delta1));
  }
  if (!(config_.delta2 >= 0.0 && config_.delta2 <= 1.0)) {
    return Status::InvalidArgument(
        "entropy threshold delta2 must be in [0, 1], got " +
        std::to_string(config_.delta2));
  }

  Cleaner cleaner;
  cleaner.config_ = config_;

  // Data relation D.
  if (!data_csv_.empty()) {
    UC_ASSIGN_OR_RETURN(data::SchemaPtr schema,
                        data::InferCsvSchema(data_csv_, "data"));
    UC_ASSIGN_OR_RETURN(data::Relation d,
                        data::ReadCsvFile(data_csv_, schema));
    cleaner.owned_data_ = std::make_unique<data::Relation>(std::move(d));
    cleaner.data_ = cleaner.owned_data_.get();
  } else if (data_ptr_ != nullptr) {
    cleaner.data_ = data_ptr_;
  } else if (data_owned_ != nullptr) {
    cleaner.owned_data_ = std::move(data_owned_);
    cleaner.data_ = cleaner.owned_data_.get();
  } else {
    return Status::InvalidArgument(
        "no data relation configured (use WithData or WithDataCsv)");
  }

  // Master relation Dm.
  if (!master_csv_.empty()) {
    UC_ASSIGN_OR_RETURN(data::SchemaPtr schema,
                        data::InferCsvSchema(master_csv_, "master"));
    UC_ASSIGN_OR_RETURN(data::Relation dm,
                        data::ReadCsvFile(master_csv_, schema));
    cleaner.owned_master_ = std::make_unique<data::Relation>(std::move(dm));
    cleaner.master_ = cleaner.owned_master_.get();
  } else if (master_ptr_ != nullptr) {
    cleaner.master_ = master_ptr_;
  } else if (master_owned_ != nullptr) {
    cleaner.owned_master_ = std::move(master_owned_);
    cleaner.master_ = cleaner.owned_master_.get();
  } else {
    return Status::InvalidArgument(
        "no master relation configured (use WithMaster or WithMasterCsv)");
  }

  // Rules Θ.
  std::string rule_text = rule_text_;
  if (!rules_file_.empty()) {
    UC_ASSIGN_OR_RETURN(rule_text, ReadFileToString(rules_file_));
  }
  if (!rule_text.empty()) {
    UC_ASSIGN_OR_RETURN(
        rules::RuleSet parsed,
        rules::ParseRuleSet(rule_text, cleaner.data_->schema_ptr(),
                            cleaner.master_->schema_ptr()));
    cleaner.owned_rules_ = std::make_unique<rules::RuleSet>(std::move(parsed));
    cleaner.rules_ = cleaner.owned_rules_.get();
  } else if (rules_ptr_ != nullptr) {
    cleaner.rules_ = rules_ptr_;
  } else if (rules_owned_ != nullptr) {
    cleaner.owned_rules_ = std::move(rules_owned_);
    cleaner.rules_ = cleaner.owned_rules_.get();
  } else {
    return Status::InvalidArgument(
        "no rules configured (use WithRules, WithRuleText or WithRulesFile)");
  }

  // Schema conformance: the rules were normalized against specific schemas;
  // the relations must match them attribute-for-attribute.
  if (!SchemaMatches(cleaner.rules_->data_schema(),
                     cleaner.data_->schema())) {
    return Status::InvalidArgument(
        "data relation schema " + DescribeSchema(cleaner.data_->schema()) +
        " does not match the rule set's data schema " +
        DescribeSchema(cleaner.rules_->data_schema()));
  }
  if (!SchemaMatches(cleaner.rules_->master_schema(),
                     cleaner.master_->schema())) {
    return Status::InvalidArgument(
        "master relation schema " +
        DescribeSchema(cleaner.master_->schema()) +
        " does not match the rule set's master schema " +
        DescribeSchema(cleaner.rules_->master_schema()));
  }

  // Per-cell confidences.
  if (!confidence_csv_.empty()) {
    UC_RETURN_IF_ERROR(
        data::ReadConfidenceCsvFile(confidence_csv_, cleaner.data_));
  }

  // Rule consistency (§4.1), on request.
  if (check_consistency_) {
    UC_ASSIGN_OR_RETURN(bool consistent, reasoning::IsConsistent(
                                             *cleaner.rules_,
                                             *cleaner.master_));
    if (!consistent) {
      return Status::InvalidArgument(
          "the rule set is inconsistent: no nonempty database can satisfy "
          "it");
    }
  }

  // Pipeline.
  cleaner.phases_ = custom_pipeline_
                        ? std::move(pipeline_)
                        : MakeDefaultPhases(run_crepair_, run_erepair_,
                                            run_hrepair_);
  for (auto& phase : extra_phases_) {
    cleaner.phases_.push_back(std::move(phase));
  }
  extra_phases_.clear();
  cleaner.progress_ = std::move(progress_);
  return cleaner;
}

}  // namespace uniclean
