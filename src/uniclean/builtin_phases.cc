#include "uniclean/builtin_phases.h"

#include <string>
#include <utility>

#include "common/check.h"

namespace uniclean {

namespace {

/// A FixObserver that appends journal entries under the given phase name,
/// resolving rule ids to names against the run's rule set.
core::FixObserver JournalObserver(PipelineContext* ctx,
                                  std::string_view phase) {
  if (ctx->journal == nullptr) return nullptr;
  FixJournal* journal = ctx->journal;
  const rules::RuleSet* rules = ctx->rules;
  const data::Relation* data = ctx->data;
  return [journal, rules, data, phase](data::TupleId t, data::AttributeId a,
                                       const data::Value& old_value,
                                       const data::Value& new_value,
                                       rules::RuleId rule) {
    FixEntry entry;
    entry.tuple = t;
    entry.attr = a;
    entry.attribute = data->schema().attribute_name(a);
    entry.old_value = old_value;
    entry.new_value = new_value;
    entry.phase = std::string(phase);
    if (rule >= 0 && rule < rules->num_rules()) {
      entry.rule = rules->rule_name(rule);
    }
    journal->Append(std::move(entry));
  };
}

void CheckContext(const PipelineContext* ctx) {
  UC_CHECK(ctx != nullptr);
  UC_CHECK(ctx->data != nullptr);
  UC_CHECK(ctx->master != nullptr);
  UC_CHECK(ctx->rules != nullptr);
  // Session::Run always provides the engine's warm environment; the
  // per-phase index-build fallback rode on the deprecated env-less repair
  // entry points and is gone with them.
  UC_CHECK(ctx->match_env != nullptr)
      << "builtin phases require PipelineContext::match_env (run them "
         "through a Session, or build a core::MatchEnvironment)";
}

}  // namespace

Result<PhaseStats> CRepairPhase::Run(PipelineContext* ctx) {
  CheckContext(ctx);
  core::CRepairOptions opts;
  opts.eta = ctx->config.eta;
  opts.on_fix = JournalObserver(ctx, kName);
  opts.cancel = ctx->cancel;
  stats_ = core::CRepair(ctx->data, *ctx->match_env, opts);
  UC_RETURN_IF_ERROR(stats_.interrupt);

  PhaseStats out;
  out.fixes = stats_.deterministic_fixes;
  out.matches = stats_.md_matches;
  out.counters = {{"confidence_upgrades", stats_.confidence_upgrades},
                  {"rule_applications", stats_.rule_applications},
                  {"conflicts", stats_.conflicts}};
  return out;
}

Result<PhaseStats> ERepairPhase::Run(PipelineContext* ctx) {
  CheckContext(ctx);
  core::ERepairOptions opts;
  opts.delta1 = ctx->config.delta1;
  opts.delta2 = ctx->config.delta2;
  opts.eta = ctx->config.eta;
  opts.on_fix = JournalObserver(ctx, kName);
  opts.cancel = ctx->cancel;
  stats_ = core::ERepair(ctx->data, *ctx->match_env, opts);
  UC_RETURN_IF_ERROR(stats_.interrupt);

  PhaseStats out;
  out.fixes = stats_.reliable_fixes;
  out.matches = stats_.md_matches;
  out.counters = {
      {"groups_resolved", stats_.groups_resolved},
      {"groups_skipped_high_entropy", stats_.groups_skipped_high_entropy},
      {"passes", stats_.passes}};
  return out;
}

Result<PhaseStats> HRepairPhase::Run(PipelineContext* ctx) {
  CheckContext(ctx);
  core::HRepairOptions opts;
  opts.on_fix = JournalObserver(ctx, kName);
  opts.cancel = ctx->cancel;
  stats_ = core::HRepair(ctx->data, *ctx->match_env, opts);
  UC_RETURN_IF_ERROR(stats_.interrupt);

  PhaseStats out;
  out.fixes = stats_.possible_fixes;
  out.matches = stats_.md_matches;
  out.counters = {{"merges", stats_.merges},
                  {"nulls_introduced", stats_.nulls_introduced},
                  {"passes", stats_.passes},
                  {"anomalies", stats_.anomalies}};
  return out;
}

std::vector<std::unique_ptr<Phase>> MakeDefaultPhases(bool crepair,
                                                      bool erepair,
                                                      bool hrepair) {
  std::vector<std::unique_ptr<Phase>> phases;
  if (crepair) phases.push_back(std::make_unique<CRepairPhase>());
  if (erepair) phases.push_back(std::make_unique<ERepairPhase>());
  if (hrepair) phases.push_back(std::make_unique<HRepairPhase>());
  return phases;
}

std::vector<PhaseFactory> MakeDefaultPhaseFactories(bool crepair, bool erepair,
                                                    bool hrepair) {
  std::vector<PhaseFactory> factories;
  if (crepair) {
    factories.push_back([] { return std::make_unique<CRepairPhase>(); });
  }
  if (erepair) {
    factories.push_back([] { return std::make_unique<ERepairPhase>(); });
  }
  if (hrepair) {
    factories.push_back([] { return std::make_unique<HRepairPhase>(); });
  }
  return factories;
}

}  // namespace uniclean
