// Umbrella header: the public API of the UniClean library. Includes every
// layer's headers — applications (tools/, examples/, bench/) include this
// one; library code includes the specific layer headers instead. The
// similarly named "core/uniclean.h" is NOT a duplicate: it declares only
// the tri-level pipeline entry point and is pulled in below.
//
// Quickstart (see uniclean/cleaner.h for the full builder surface):
//
//   #include "uniclean/uniclean.h"
//   using namespace uniclean;
//
//   auto cleaner = CleanerBuilder()
//                      .WithDataCsv("dirty.csv")
//                      .WithMasterCsv("master.csv")
//                      .WithRulesFile("rules.txt")
//                      .WithConfidenceCsv("confidence.csv")
//                      .WithEta(0.8)
//                      .Build();               // Result<Cleaner>
//   auto result = cleaner->Run();              // Result<CleanResult>
//   // cleaner->data() is now consistent; result->journal records every
//   // repaired cell with its phase and justifying rule.
//
// For long-lived or concurrent use the canonical surface is CleanEngine +
// Session (uniclean/engine.h, uniclean/session.h): build the engine once,
// stamp out a Session per run. Incremental cleaning rides on the same pair —
// a tracked session re-cleans only the tuples an edit can affect:
//
//   auto engine = EngineBuilder()... .BuildEngine();  // shared, immutable
//   Session session = (*engine)->NewTrackedSession();
//   session.Run(&d);                           // batch clean + group indexes
//   Delta delta;
//   delta.updates.emplace_back(tuple_id, edited_tuple);
//   auto dr = session.ApplyDelta(delta);       // Result<DeltaResult>
//   FixJournal canon = session.CanonicalJournal();
//
// The historic entry point core::UniClean(...) (core/uniclean.h) remains
// available as a compatibility shim over the façade; Cleaner::Run is
// likewise a shim over a single engine + session.

#ifndef UNICLEAN_UNICLEAN_UNICLEAN_H_
#define UNICLEAN_UNICLEAN_UNICLEAN_H_

#include "baselines/quaid.h"
#include "baselines/sortn.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/cost_model.h"
#include "core/crepair.h"
#include "core/erepair.h"
#include "core/hrepair.h"
#include "core/match_environment.h"
#include "core/md_matcher.h"
#include "core/uniclean.h"
#include "data/csv.h"
#include "data/relation.h"
#include "data/schema.h"
#include "data/value.h"
#include "discovery/cfd_discovery.h"
#include "discovery/fd_discovery.h"
#include "discovery/md_calibration.h"
#include "eval/metrics.h"
#include "gen/corrupt.h"
#include "gen/dataset.h"
#include "reasoning/chase.h"
#include "reasoning/consistency.h"
#include "reasoning/dependency_graph.h"
#include "reasoning/minimal_cover.h"
#include "rules/cfd.h"
#include "rules/md.h"
#include "rules/parser.h"
#include "rules/ruleset.h"
#include "rules/violation.h"
#include "similarity/metrics.h"
#include "similarity/predicate.h"
#include "similarity/suffix_tree.h"
#include "uniclean/builtin_phases.h"
#include "uniclean/cleaner.h"
#include "uniclean/engine.h"
#include "uniclean/fix_journal.h"
#include "uniclean/phase.h"
#include "uniclean/session.h"

#endif  // UNICLEAN_UNICLEAN_UNICLEAN_H_
