// StringPool: the dictionary encoding behind data::Value. Every distinct
// cell string is interned exactly once and identified by a dense 32-bit id,
// so value equality and hashing across the cleaning engines are integer
// operations and tuples are flat arrays of ids instead of vectors of
// heap-allocated strings (the move HoloClean makes when compiling values
// into integer domains before inference). Strings are resolved back only
// where an actual similarity computation needs the characters.
//
// Ids are never recycled: the pool only grows over a process lifetime, and
// interned ids stay valid (and keep resolving to the same characters) for as
// long as the pool that produced them is installed.
//
// Thread safety: the pool is safe for concurrent use. Resolving an id back
// to its characters (str/view/size) is lock-free — storage is a two-level
// chunk table whose chunks are published with release/acquire ordering and
// never move — while Intern() serializes writers behind a mutex. This is
// what lets concurrent uniclean::Session runs share one pool: cleaning is
// read-mostly (repairs copy already-interned master ids), and the rare
// intern (e.g. a user phase constructing a fresh Value) is correct, just
// not contention-free. Installing a different global pool (ScopedStringPool)
// is NOT thread-safe and must happen while no other thread touches values.

#ifndef UNICLEAN_DATA_STRING_POOL_H_
#define UNICLEAN_DATA_STRING_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/check.h"
#include "common/result.h"

namespace uniclean {
namespace data {

/// Id of an interned string; kNullValueId marks SQL null.
using ValueId = uint32_t;

/// splitmix64 finalizer: the shared integer mixer behind ValueHash and
/// GroupKeyHash.
inline uint64_t MixU64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Occupancy snapshot of a StringPool (see StringPool::Stats) — the
/// observable baseline for the ROADMAP id-recycling work: long-lived delta
/// sessions keep interning fresh values, and ids are never recycled, so
/// `remaining` is the budget a serving deployment burns down.
struct StringPoolStats {
  /// Distinct strings interned so far (== the next id to be minted).
  size_t interned = 0;
  /// Total id capacity of the pool (2^28; kNullId is outside it).
  size_t capacity = 0;
  /// Ids left before Intern aborts / TryIntern fails: capacity - interned.
  size_t remaining = 0;
  /// Characters resident across all interned strings (payload only; chunk
  /// table and hash-index overhead not included).
  uint64_t string_bytes = 0;
  /// Storage chunks in use (each holds kChunkSize string slots).
  size_t chunks = 0;
};

/// Content tag of a pool prefix: `count` interned strings whose *order-
/// sensitive* content hash is `hash`. Two pools with equal generations
/// resolve every id below `count` to identical characters — the contract
/// snapshot files (src/snapshot/) rely on to keep interned ids stable
/// across a process restart. Unlike CleanEngine::Fingerprint(), which is
/// deliberately interning-order independent, the generation hash *must*
/// depend on order: id stability is exactly what it certifies.
struct StringPoolGeneration {
  uint64_t count = 0;
  uint64_t hash = 0;

  bool operator==(const StringPoolGeneration& o) const {
    return count == o.count && hash == o.hash;
  }
};

class StringPool {
 public:
  /// Sentinel id for SQL null (never a valid interned id).
  static constexpr ValueId kNullId = 0xFFFFFFFFu;
  /// The empty string is pre-interned at id 0 so default-constructed Values
  /// need no lookup.
  static constexpr ValueId kEmptyId = 0;

  StringPool()
      : chunks_(new std::atomic<std::string*>[kMaxChunks]) {
    for (size_t c = 0; c < kMaxChunks; ++c) {
      chunks_[c].store(nullptr, std::memory_order_relaxed);
    }
    Intern(std::string_view());
  }

  ~StringPool() {
    for (size_t c = 0; c < kMaxChunks; ++c) {
      delete[] chunks_[c].load(std::memory_order_relaxed);
    }
  }

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Returns the id of `s`, interning it on first sight. Thread-safe;
  /// concurrent callers serialize on an internal mutex. Fails with
  /// Status::OutOfRange — instead of minting an aliased id — when the 2^28
  /// id space is exhausted; a caller that cannot recover should use Intern,
  /// which aborts. Watch Stats().remaining to see exhaustion coming.
  Result<ValueId> TryIntern(std::string_view s) {
    std::lock_guard<std::mutex> lock(mutex_);
    return InternLocked(s);
  }

  /// Interns `strings[0..n)` in order, writing each id to `ids[0..n)` —
  /// semantically identical to n back-to-back TryIntern calls, but under
  /// one lock acquisition with the index grown up front, so no other
  /// thread's interning can interleave with the batch. The bulk path for
  /// snapshot loading, where tens of thousands of strings arrive at once.
  Status TryInternBatch(const std::string_view* strings, size_t n,
                        ValueId* ids) {
    std::lock_guard<std::mutex> lock(mutex_);
    index_.reserve(index_.size() + n);
    for (size_t i = 0; i < n; ++i) {
      UC_ASSIGN_OR_RETURN(ids[i], InternLocked(strings[i]));
    }
    return Status::OK();
  }

  /// Like TryIntern but aborts on id-space exhaustion — the convenient form
  /// for the hot paths, where exhaustion is unrecoverable anyway.
  ValueId Intern(std::string_view s) {
    Result<ValueId> id = TryIntern(s);
    UC_CHECK(id.ok()) << id.status().ToString();
    return id.value();
  }

  /// The interned string for a valid id; kNullId resolves to "". Lock-free.
  /// Aborts on out-of-range ids (e.g. an id issued by a larger pool); an
  /// in-range id issued by a *different* pool is indistinguishable from a
  /// valid one and resolves to this pool's string — never mix ids across
  /// pools (see ScopedStringPool).
  const std::string& str(ValueId id) const {
    if (id == kNullId) return empty_;
    UC_CHECK_LT(id, size_.load(std::memory_order_acquire))
        << "StringPool: unknown value id";
    return chunks_[id >> kChunkBits].load(std::memory_order_acquire)
        [id & (kChunkSize - 1)];
  }

  std::string_view view(ValueId id) const { return str(id); }

  /// Number of distinct interned strings.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Occupancy counters (MemoStats-style): interned count, id capacity,
  /// remaining ids, resident character bytes. Live atomics — safe to call
  /// while other threads intern; the snapshot is approximate under
  /// concurrent writers.
  StringPoolStats Stats() const {
    StringPoolStats stats;
    stats.interned = size();
    stats.capacity = static_cast<size_t>(kCapacity);
    stats.remaining = stats.capacity - stats.interned;
    stats.string_bytes = string_bytes_.load(std::memory_order_relaxed);
    stats.chunks = (stats.interned + kChunkSize - 1) >> kChunkBits;
    return stats;
  }

  /// Order-sensitive content hash of ids [0, n): each string's length and
  /// characters folded through MixU64 in id order. Lock-free (reads through
  /// str()); requires n <= size(). O(total characters of the prefix).
  uint64_t PrefixHash(size_t n) const {
    UC_CHECK_LE(n, size()) << "StringPool::PrefixHash: prefix beyond pool";
    uint64_t h = 0x243f6a8885a308d3ULL;  // distinct seed from Fingerprint()
    for (size_t id = 0; id < n; ++id) {
      const std::string& s = str(static_cast<ValueId>(id));
      h = MixU64(h ^ s.size());
      for (char c : s) {
        h = MixU64(h ^ static_cast<uint64_t>(static_cast<uint8_t>(c)));
      }
    }
    return h;
  }

  /// The pool's current generation tag: its size and the PrefixHash over
  /// all of it. Snapshot headers carry the writer's generation; a loader
  /// accepts a snapshot into a pool whose ids extend (or are a prefix of)
  /// the writer's — see snapshot::LoadPoolSection.
  StringPoolGeneration Generation() const {
    StringPoolGeneration gen;
    gen.count = size();
    gen.hash = PrefixHash(static_cast<size_t>(gen.count));
    return gen;
  }

  /// The process-wide pool used by data::Value. All relations, rules and
  /// engines in a process share it, so ids from different relations are
  /// directly comparable.
  static StringPool& Global() {
    StringPool* p = global_;
    return p != nullptr ? *p : DefaultInstance();
  }

 private:
  friend class ScopedStringPool;

  // Two-level storage: chunks of kChunkSize strings, allocated on demand and
  // never moved, so readers resolve ids without taking the writer mutex.
  // Cost of the lock-free read path: a fixed 256KB pointer table per pool
  // plus ~256KB for the first chunk's default-constructed strings (~0.5MB
  // per instance — negligible for the process-wide pool, deliberate for
  // test-scoped ScopedStringPools), and an id capacity of 2^28 instead of
  // the old deque's ~2^32 (observed pools hold well under 2^24; exhaustion
  // aborts loudly via UC_CHECK).
  static constexpr size_t kChunkBits = 13;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;  // 8192
  static constexpr size_t kMaxChunks = size_t{1} << 15;
  static constexpr ValueId kCapacity =
      static_cast<ValueId>(kChunkSize * kMaxChunks);  // 2^28 ids

  /// Lazily creates the process default pool (safe under any static
  /// initialization order) and installs it as the global.
  static StringPool& DefaultInstance();

  /// The interning body; requires mutex_ held.
  Result<ValueId> InternLocked(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    const ValueId id = size_.load(std::memory_order_relaxed);
    // Never mint kNullId (or wrap): fail loudly instead of silently aliasing.
    if (id >= kCapacity) {
      return Status::OutOfRange(
          "StringPool: id space exhausted (" + std::to_string(kCapacity) +
          " ids interned; ids are never recycled — see ROADMAP 'StringPool "
          "growth')");
    }
    const size_t chunk = id >> kChunkBits;
    std::string* slots = chunks_[chunk].load(std::memory_order_relaxed);
    if (slots == nullptr) {
      slots = new std::string[kChunkSize];
      chunks_[chunk].store(slots, std::memory_order_release);
    }
    std::string& slot = slots[id & (kChunkSize - 1)];
    slot.assign(s.data(), s.size());
    string_bytes_.fetch_add(s.size(), std::memory_order_relaxed);
    // Publish: a reader that acquire-loads size() > id is guaranteed to see
    // the chunk pointer and the slot's characters.
    size_.store(id + 1, std::memory_order_release);
    // The key views the chunk-owned string; chunks never move or shrink.
    index_.emplace(std::string_view(slot), id);
    return id;
  }

  std::unique_ptr<std::atomic<std::string*>[]> chunks_;
  std::atomic<ValueId> size_{0};
  std::atomic<uint64_t> string_bytes_{0};
  mutable std::mutex mutex_;  // guards index_ and all writes
  std::unordered_map<std::string_view, ValueId> index_;
  std::string empty_;

  static StringPool* global_;
};

/// Test-only RAII override: installs a fresh global pool for its lifetime.
/// Every Value, Relation and RuleSet created inside the scope holds ids of
/// the scoped pool and must not outlive it. Used by the interning parity
/// tests to re-run a pipeline under a permuted id assignment. Swapping the
/// global pool is not synchronized: install/uninstall only while no other
/// thread is running pipeline code.
class ScopedStringPool {
 public:
  ScopedStringPool() : previous_(StringPool::global_) {
    StringPool::global_ = &pool_;
  }
  ~ScopedStringPool() { StringPool::global_ = previous_; }

  ScopedStringPool(const ScopedStringPool&) = delete;
  ScopedStringPool& operator=(const ScopedStringPool&) = delete;

  StringPool& pool() { return pool_; }

 private:
  StringPool pool_;
  StringPool* previous_;
};

}  // namespace data
}  // namespace uniclean

#endif  // UNICLEAN_DATA_STRING_POOL_H_
