// StringPool: the dictionary encoding behind data::Value. Every distinct
// cell string is interned exactly once and identified by a dense 32-bit id,
// so value equality and hashing across the cleaning engines are integer
// operations and tuples are flat arrays of ids instead of vectors of
// heap-allocated strings (the move HoloClean makes when compiling values
// into integer domains before inference). Strings are resolved back only
// where an actual similarity computation needs the characters.
//
// Ids are never recycled: the pool only grows over a process lifetime, and
// interned ids stay valid (and keep resolving to the same characters) for as
// long as the pool that produced them is installed. Like the rest of the
// library, the pool is not thread-safe.

#ifndef UNICLEAN_DATA_STRING_POOL_H_
#define UNICLEAN_DATA_STRING_POOL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/check.h"

namespace uniclean {
namespace data {

/// Id of an interned string; kNullValueId marks SQL null.
using ValueId = uint32_t;

/// splitmix64 finalizer: the shared integer mixer behind ValueHash and
/// GroupKeyHash.
inline uint64_t MixU64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class StringPool {
 public:
  /// Sentinel id for SQL null (never a valid interned id).
  static constexpr ValueId kNullId = 0xFFFFFFFFu;
  /// The empty string is pre-interned at id 0 so default-constructed Values
  /// need no lookup.
  static constexpr ValueId kEmptyId = 0;

  StringPool() { Intern(std::string_view()); }

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Returns the id of `s`, interning it on first sight.
  ValueId Intern(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    // Never mint kNullId (or wrap): abort instead of silently aliasing.
    UC_CHECK_LT(strings_.size(), static_cast<size_t>(kNullId))
        << "StringPool: id space exhausted";
    strings_.emplace_back(s);
    const ValueId id = static_cast<ValueId>(strings_.size() - 1);
    // The key views the deque-owned string; deque growth never moves it.
    index_.emplace(std::string_view(strings_.back()), id);
    return id;
  }

  /// The interned string for a valid id; kNullId resolves to "". Aborts on
  /// out-of-range ids (e.g. an id issued by a larger pool); an in-range id
  /// issued by a *different* pool is indistinguishable from a valid one and
  /// resolves to this pool's string — never mix ids across pools (see
  /// ScopedStringPool).
  const std::string& str(ValueId id) const {
    if (id == kNullId) return empty_;
    UC_CHECK_LT(id, strings_.size()) << "StringPool: unknown value id";
    return strings_[id];
  }

  std::string_view view(ValueId id) const { return str(id); }

  /// Number of distinct interned strings.
  size_t size() const { return strings_.size(); }

  /// The process-wide pool used by data::Value. All relations, rules and
  /// engines in a process share it, so ids from different relations are
  /// directly comparable.
  static StringPool& Global() {
    StringPool* p = global_;
    return p != nullptr ? *p : DefaultInstance();
  }

 private:
  friend class ScopedStringPool;

  /// Lazily creates the process default pool (safe under any static
  /// initialization order) and installs it as the global.
  static StringPool& DefaultInstance();

  std::deque<std::string> strings_;  // stable addresses; id = index
  std::unordered_map<std::string_view, ValueId> index_;
  std::string empty_;

  static StringPool* global_;
};

/// Test-only RAII override: installs a fresh global pool for its lifetime.
/// Every Value, Relation and RuleSet created inside the scope holds ids of
/// the scoped pool and must not outlive it. Used by the interning parity
/// tests to re-run a pipeline under a permuted id assignment.
class ScopedStringPool {
 public:
  ScopedStringPool() : previous_(StringPool::global_) {
    StringPool::global_ = &pool_;
  }
  ~ScopedStringPool() { StringPool::global_ = previous_; }

  ScopedStringPool(const ScopedStringPool&) = delete;
  ScopedStringPool& operator=(const ScopedStringPool&) = delete;

  StringPool& pool() { return pool_; }

 private:
  StringPool pool_;
  StringPool* previous_;
};

}  // namespace data
}  // namespace uniclean

#endif  // UNICLEAN_DATA_STRING_POOL_H_
