// Value: one cell of a relation. The paper's data model is string-valued
// attributes plus SQL null (§7); nulls are introduced only by the heuristic
// repair phase to resolve otherwise-unresolvable conflicts.

#ifndef UNICLEAN_DATA_VALUE_H_
#define UNICLEAN_DATA_VALUE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

namespace uniclean {
namespace data {

/// A cell value: either a string constant or SQL null.
class Value {
 public:
  /// Constructs a (non-null) empty string value.
  Value() : null_(false) {}

  /// Constructs a string constant.
  explicit Value(std::string s) : null_(false), str_(std::move(s)) {}
  explicit Value(const char* s) : null_(false), str_(s) {}

  /// The SQL null value.
  static Value Null() {
    Value v;
    v.null_ = true;
    return v;
  }

  bool is_null() const { return null_; }

  /// The string content; requires !is_null() for meaningful use (returns ""
  /// for null so printing code stays simple).
  const std::string& str() const { return str_; }

  size_t size() const { return null_ ? 0 : str_.size(); }

  /// Strict equality: null equals only null.
  bool operator==(const Value& o) const {
    return null_ == o.null_ && (null_ || str_ == o.str_);
  }
  bool operator!=(const Value& o) const { return !(*this == o); }
  bool operator<(const Value& o) const {
    if (null_ != o.null_) return null_;  // null sorts first
    return !null_ && str_ < o.str_;
  }

  /// SQL simple semantics of §7: `v1 = v2` evaluates to true if either side
  /// is null. Used when checking variable-CFD / MD satisfaction on repaired
  /// data.
  static bool SqlEquals(const Value& a, const Value& b) {
    if (a.null_ || b.null_) return true;
    return a.str_ == b.str_;
  }

  /// Rendering for CSV / debugging: nulls print as the given token.
  std::string ToString(std::string_view null_token = "\\N") const {
    return null_ ? std::string(null_token) : str_;
  }

 private:
  bool null_;
  std::string str_;
};

struct ValueHash {
  size_t operator()(const Value& v) const {
    return v.is_null() ? 0x9e3779b97f4a7c15ULL
                       : std::hash<std::string>()(v.str());
  }
};

}  // namespace data
}  // namespace uniclean

#endif  // UNICLEAN_DATA_VALUE_H_
