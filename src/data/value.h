// Value: one cell of a relation. The paper's data model is string-valued
// attributes plus SQL null (§7); nulls are introduced only by the heuristic
// repair phase to resolve otherwise-unresolvable conflicts.
//
// Representation: a Value is a 32-bit id into the process StringPool (null
// is a sentinel id), so copies are trivial, equality and hashing are integer
// operations, and a Tuple's values are a flat array of ids. The characters
// are resolved from the pool only where a computation genuinely needs them
// (similarity metrics, lexicographic ordering, rendering).

#ifndef UNICLEAN_DATA_VALUE_H_
#define UNICLEAN_DATA_VALUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "data/string_pool.h"

namespace uniclean {
namespace data {

/// A cell value: either a string constant (interned) or SQL null.
class Value {
 public:
  /// Constructs a (non-null) empty string value.
  Value() : id_(StringPool::kEmptyId) {}

  /// Constructs a string constant, interning it in the global pool.
  /// Accepts std::string, std::string_view and const char*.
  explicit Value(std::string_view s) : id_(StringPool::Global().Intern(s)) {}

  /// The SQL null value.
  static Value Null() { return Value(StringPool::kNullId); }

  /// Wraps an id previously obtained from id() / StringPool::Intern.
  static Value FromId(ValueId id) { return Value(id); }

  /// The interned id; StringPool::kNullId for null.
  ValueId id() const { return id_; }

  bool is_null() const { return id_ == StringPool::kNullId; }

  /// The string content; requires !is_null() for meaningful use (returns ""
  /// for null so printing code stays simple).
  const std::string& str() const { return StringPool::Global().str(id_); }

  /// The string content as a view (same contract as str()).
  std::string_view view() const { return StringPool::Global().view(id_); }

  size_t size() const { return view().size(); }

  /// Strict equality: null equals only null. Interning makes this a single
  /// integer comparison.
  bool operator==(const Value& o) const { return id_ == o.id_; }
  bool operator!=(const Value& o) const { return id_ != o.id_; }

  /// Lexicographic order on the resolved strings; null sorts first.
  bool operator<(const Value& o) const {
    if (is_null() != o.is_null()) return is_null();  // null sorts first
    return !is_null() && id_ != o.id_ && view() < o.view();
  }

  /// SQL simple semantics of §7: `v1 = v2` evaluates to true if either side
  /// is null. Used when checking variable-CFD / MD satisfaction on repaired
  /// data.
  static bool SqlEquals(const Value& a, const Value& b) {
    return a.is_null() || b.is_null() || a.id_ == b.id_;
  }

  /// Rendering for CSV / debugging: nulls print as the given token.
  std::string ToString(std::string_view null_token = "\\N") const {
    return is_null() ? std::string(null_token) : str();
  }

 private:
  explicit Value(ValueId id) : id_(id) {}

  ValueId id_;
};

struct ValueHash {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(
        MixU64(static_cast<uint64_t>(v.id()) + 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace data
}  // namespace uniclean

#endif  // UNICLEAN_DATA_VALUE_H_
