// Relation: an in-memory instance of a schema. Each cell carries, alongside
// its value, the user-placed confidence (the `cf` rows of Fig. 1(b)) and a
// FixMark recording which cleaning phase last wrote it (§3.2: UniClean marks
// fixes deterministic / reliable / possible).

#ifndef UNICLEAN_DATA_RELATION_H_
#define UNICLEAN_DATA_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "data/schema.h"
#include "data/value.h"

namespace uniclean {
namespace data {

/// Index of a tuple within a relation.
using TupleId = int;

/// Provenance of a cell's current value (§3.2).
enum class FixMark : unsigned char {
  kNone = 0,          ///< untouched original value
  kDeterministic = 1, ///< written by cRepair (confidence-based, §5)
  kReliable = 2,      ///< written by eRepair (entropy-based, §6)
  kPossible = 3,      ///< written by hRepair (heuristic, §7)
};

const char* FixMarkToString(FixMark mark);

/// One tuple: values plus parallel per-cell confidence and fix marks.
class Tuple {
 public:
  explicit Tuple(int arity)
      : values_(static_cast<size_t>(arity)),
        confidence_(static_cast<size_t>(arity), 0.0),
        marks_(static_cast<size_t>(arity), FixMark::kNone) {}

  Tuple(std::vector<Value> values, std::vector<double> confidence)
      : values_(std::move(values)),
        confidence_(std::move(confidence)),
        marks_(values_.size(), FixMark::kNone) {
    UC_CHECK_EQ(values_.size(), confidence_.size());
  }

  int arity() const { return static_cast<int>(values_.size()); }

  const Value& value(AttributeId a) const { return values_[Check(a)]; }
  double confidence(AttributeId a) const { return confidence_[Check(a)]; }
  FixMark mark(AttributeId a) const { return marks_[Check(a)]; }

  void set_value(AttributeId a, Value v) { values_[Check(a)] = std::move(v); }
  void set_confidence(AttributeId a, double cf) { confidence_[Check(a)] = cf; }
  void set_mark(AttributeId a, FixMark m) { marks_[Check(a)] = m; }

  const std::vector<Value>& values() const { return values_; }

  /// True if the projections on `attrs` are pairwise equal (strict equality).
  bool ProjectionEquals(const Tuple& other,
                        const std::vector<AttributeId>& attrs) const;

 private:
  size_t Check(AttributeId a) const {
    UC_CHECK_GE(a, 0);
    UC_CHECK_LT(static_cast<size_t>(a), values_.size());
    return static_cast<size_t>(a);
  }

  std::vector<Value> values_;
  std::vector<double> confidence_;
  std::vector<FixMark> marks_;
};

/// An instance of a schema: an ordered bag of tuples.
class Relation {
 public:
  explicit Relation(SchemaPtr schema) : schema_(std::move(schema)) {
    UC_CHECK(schema_ != nullptr);
  }

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }

  int size() const { return static_cast<int>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  const Tuple& tuple(TupleId t) const { return tuples_[CheckId(t)]; }
  Tuple& mutable_tuple(TupleId t) { return tuples_[CheckId(t)]; }

  /// Appends a tuple; returns its id. The tuple arity must match the schema.
  TupleId AddTuple(Tuple tuple);

  /// Appends a tuple built from string values with a uniform confidence.
  TupleId AddRow(const std::vector<std::string>& values,
                 double confidence = 0.0);

  /// Tombstones a tuple: the slot stays (ids never shift — journal entries
  /// and incremental-delta bookkeeping key on them) but live(t) turns false
  /// and every cleaning engine skips the tuple. Re-inserting content after a
  /// deletion is an AddTuple, which mints a fresh id; tombstoned ids are
  /// never reused. Idempotent.
  void EraseTuple(TupleId t) {
    CheckId(t);
    if (dead_.empty()) dead_.assign(tuples_.size(), 0);
    dead_[static_cast<size_t>(t)] = 1;
  }

  /// False once EraseTuple(t) was called. The common all-live case costs one
  /// emptiness check (the tombstone vector is allocated lazily).
  bool live(TupleId t) const {
    return dead_.empty() || dead_[CheckId(t)] == 0;
  }

  /// Number of live (non-tombstoned) tuples; == size() when nothing was
  /// erased.
  int live_size() const;

  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Deep copy (used to produce candidate repairs without touching D).
  Relation Clone() const { return *this; }

  /// Number of cells whose value differs from `other` (same schema & size).
  /// Nulls compare strictly. Useful in tests and metrics.
  int CellDiffCount(const Relation& other) const;

 private:
  size_t CheckId(TupleId t) const {
    UC_CHECK_GE(t, 0);
    UC_CHECK_LT(static_cast<size_t>(t), tuples_.size());
    return static_cast<size_t>(t);
  }

  SchemaPtr schema_;
  std::vector<Tuple> tuples_;
  // Tombstone marks, parallel to tuples_ once any EraseTuple happened;
  // empty (no allocation) for the common all-live relation. Clone() copies
  // it, so a cloned relation preserves liveness.
  std::vector<uint8_t> dead_;
};

}  // namespace data
}  // namespace uniclean

#endif  // UNICLEAN_DATA_RELATION_H_
