// CSV import/export for relations. Quoting follows RFC 4180; nulls are
// round-tripped as the token `\N` (configurable).

#ifndef UNICLEAN_DATA_CSV_H_
#define UNICLEAN_DATA_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"

namespace uniclean {
namespace data {

struct CsvOptions {
  char delimiter = ',';
  std::string null_token = "\\N";
  /// When true, the first row is the header; reading validates it against
  /// the schema, writing emits it.
  bool header = true;
};

/// RFC-4180 field quoting: wraps `field` in double quotes (doubling embedded
/// quotes) when it contains the delimiter, a quote, a newline, or a carriage
/// return; returns it unchanged otherwise. Exposed so other CSV emitters
/// (e.g. the FixJournal) quote identically to WriteCsv.
std::string CsvQuote(const std::string& field, char delimiter = ',');

/// Reads one *logical* CSV record from the stream into `*record`: physical
/// lines are joined with '\n' while an RFC-4180 quoted field is still open,
/// so values containing newlines round-trip. Quote state is tracked with the
/// same lenient rules as ParseCsvRecord (mid-field quotes are literal). A
/// trailing '\r' is stripped per physical line outside quoted fields only.
/// Returns false at end of stream with nothing read; `*lines_read`
/// (optional) receives the number of physical lines consumed. Exposed so
/// other CSV consumers (e.g. the FixJournal reader) parse identically to
/// ReadCsv.
bool ReadCsvRecord(std::istream& in, std::string* record,
                   int* lines_read = nullptr, char delimiter = ',');

/// Splits one logical CSV record into its fields, honoring RFC-4180
/// double-quote escaping. Fails with Corruption on an unterminated quote.
Result<std::vector<std::string>> ParseCsvRecord(const std::string& record,
                                                char delimiter = ',');

/// Parses a relation with the given schema from a stream.
Result<Relation> ReadCsv(std::istream& in, SchemaPtr schema,
                         const CsvOptions& options = {});

/// Parses a relation from a file path.
Result<Relation> ReadCsvFile(const std::string& path, SchemaPtr schema,
                             const CsvOptions& options = {});

/// Writes a relation to a stream.
Status WriteCsv(std::ostream& out, const Relation& relation,
                const CsvOptions& options = {});

/// Writes a relation to a file path.
Status WriteCsvFile(const std::string& path, const Relation& relation,
                    const CsvOptions& options = {});

/// Reads only the header row of a CSV file and builds a schema from it
/// (attribute names are trimmed). Requires options.header.
Result<SchemaPtr> InferCsvSchema(const std::string& path,
                                 const std::string& relation_name,
                                 const CsvOptions& options = {});

/// Loads per-cell confidences into `*relation` from a CSV with the same
/// shape as the relation (same arity and row count; the header row is
/// skipped when options.header). Cells must parse as numbers in [0, 1];
/// empty cells and nulls count as 0.
Status ReadConfidenceCsvFile(const std::string& path, Relation* relation,
                             const CsvOptions& options = {});

/// Writes the per-cell confidences of `relation` in the shape
/// ReadConfidenceCsvFile consumes.
Status WriteConfidenceCsv(std::ostream& out, const Relation& relation,
                          const CsvOptions& options = {});
Status WriteConfidenceCsvFile(const std::string& path,
                              const Relation& relation,
                              const CsvOptions& options = {});

}  // namespace data
}  // namespace uniclean

#endif  // UNICLEAN_DATA_CSV_H_
