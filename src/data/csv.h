// CSV import/export for relations. Quoting follows RFC 4180; nulls are
// round-tripped as the token `\N` (configurable).

#ifndef UNICLEAN_DATA_CSV_H_
#define UNICLEAN_DATA_CSV_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "data/relation.h"

namespace uniclean {
namespace data {

struct CsvOptions {
  char delimiter = ',';
  std::string null_token = "\\N";
  /// When true, the first row is the header; reading validates it against
  /// the schema, writing emits it.
  bool header = true;
};

/// Parses a relation with the given schema from a stream.
Result<Relation> ReadCsv(std::istream& in, SchemaPtr schema,
                         const CsvOptions& options = {});

/// Parses a relation from a file path.
Result<Relation> ReadCsvFile(const std::string& path, SchemaPtr schema,
                             const CsvOptions& options = {});

/// Writes a relation to a stream.
Status WriteCsv(std::ostream& out, const Relation& relation,
                const CsvOptions& options = {});

/// Writes a relation to a file path.
Status WriteCsvFile(const std::string& path, const Relation& relation,
                    const CsvOptions& options = {});

}  // namespace data
}  // namespace uniclean

#endif  // UNICLEAN_DATA_CSV_H_
