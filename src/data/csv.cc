#include "data/csv.h"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace uniclean {
namespace data {

namespace {

/// Splits one physical CSV record into fields, honoring double-quote
/// escaping. Returns an error on unterminated quotes.
Result<std::vector<std::string>> ParseRecord(const std::string& line,
                                             char delim) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
      } else {
        field.push_back(c);
        ++i;
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      ++i;
    } else if (c == delim) {
      fields.push_back(std::move(field));
      field.clear();
      ++i;
    } else {
      field.push_back(c);
      ++i;
    }
  }
  if (in_quotes) {
    return Status::Corruption("unterminated quote in CSV record: " + line);
  }
  fields.push_back(std::move(field));
  return fields;
}

bool NeedsQuoting(const std::string& s, char delim) {
  return s.find(delim) != std::string::npos ||
         s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

}  // namespace

std::string CsvQuote(const std::string& field, char delimiter) {
  if (!NeedsQuoting(field, delimiter)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

Result<Relation> ReadCsv(std::istream& in, SchemaPtr schema,
                         const CsvOptions& options) {
  Relation relation(schema);
  std::string line;
  bool saw_header = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    UC_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                        ParseRecord(line, options.delimiter));
    if (options.header && !saw_header) {
      saw_header = true;
      if (static_cast<int>(fields.size()) != schema->arity()) {
        return Status::Corruption("CSV header arity mismatch");
      }
      for (int a = 0; a < schema->arity(); ++a) {
        if (fields[static_cast<size_t>(a)] != schema->attribute_name(a)) {
          return Status::Corruption("CSV header mismatch at column " +
                                    std::to_string(a) + ": expected '" +
                                    schema->attribute_name(a) + "', got '" +
                                    fields[static_cast<size_t>(a)] + "'");
        }
      }
      continue;
    }
    if (static_cast<int>(fields.size()) != schema->arity()) {
      return Status::Corruption("CSV record arity mismatch at line " +
                                std::to_string(line_no));
    }
    Tuple t(schema->arity());
    for (int a = 0; a < schema->arity(); ++a) {
      const std::string& f = fields[static_cast<size_t>(a)];
      t.set_value(a, f == options.null_token ? Value::Null() : Value(f));
    }
    relation.AddTuple(std::move(t));
  }
  return relation;
}

Result<Relation> ReadCsvFile(const std::string& path, SchemaPtr schema,
                             const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  return ReadCsv(in, std::move(schema), options);
}

Status WriteCsv(std::ostream& out, const Relation& relation,
                const CsvOptions& options) {
  const Schema& schema = relation.schema();
  if (options.header) {
    for (int a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << options.delimiter;
      out << CsvQuote(schema.attribute_name(a), options.delimiter);
    }
    out << '\n';
  }
  for (const Tuple& t : relation.tuples()) {
    for (int a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << options.delimiter;
      const Value& v = t.value(a);
      out << (v.is_null() ? options.null_token
                          : CsvQuote(v.str(), options.delimiter));
    }
    out << '\n';
  }
  if (!out.good()) return Status::Internal("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const std::string& path, const Relation& relation,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open CSV file for write: " + path);
  }
  return WriteCsv(out, relation, options);
}

Result<SchemaPtr> InferCsvSchema(const std::string& path,
                                 const std::string& relation_name,
                                 const CsvOptions& options) {
  if (!options.header) {
    return Status::InvalidArgument(
        "InferCsvSchema requires a CSV with a header row");
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::string header;
  if (!std::getline(in, header)) {
    return Status::Corruption("empty CSV: " + path);
  }
  if (!header.empty() && header.back() == '\r') header.pop_back();
  UC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                      ParseRecord(header, options.delimiter));
  for (std::string& name : names) name = std::string(Trim(name));
  return MakeSchema(relation_name, std::move(names));
}

Status ReadConfidenceCsvFile(const std::string& path, Relation* relation,
                             const CsvOptions& options) {
  UC_CHECK(relation != nullptr);
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open confidence CSV: " + path);
  }
  const int arity = relation->schema().arity();
  std::string line;
  bool saw_header = !options.header;
  TupleId row = 0;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    UC_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                        ParseRecord(line, options.delimiter));
    if (static_cast<int>(fields.size()) != arity) {
      return Status::InvalidArgument(
          "confidence CSV arity mismatch at line " + std::to_string(line_no) +
          ": expected " + std::to_string(arity) + " fields, got " +
          std::to_string(fields.size()));
    }
    if (!saw_header) {
      saw_header = true;
      continue;
    }
    if (row >= relation->size()) {
      return Status::InvalidArgument(
          "confidence CSV has more rows than the data relation (" +
          std::to_string(relation->size()) + ")");
    }
    for (AttributeId a = 0; a < arity; ++a) {
      const std::string& field = fields[static_cast<size_t>(a)];
      double cf = 0.0;
      if (!field.empty() && field != options.null_token) {
        errno = 0;
        char* end = nullptr;
        cf = std::strtod(field.c_str(), &end);
        if (end == field.c_str() || *end != '\0' || errno == ERANGE) {
          return Status::InvalidArgument(
              "confidence CSV cell is not a number at line " +
              std::to_string(line_no) + ": '" + field + "'");
        }
      }
      if (cf < 0.0 || cf > 1.0) {
        return Status::InvalidArgument(
            "confidence out of [0, 1] at line " + std::to_string(line_no) +
            ": " + field);
      }
      relation->mutable_tuple(row).set_confidence(a, cf);
    }
    ++row;
  }
  if (row != relation->size()) {
    return Status::InvalidArgument(
        "confidence CSV row count mismatch: expected " +
        std::to_string(relation->size()) + ", got " + std::to_string(row));
  }
  return Status::OK();
}

Status WriteConfidenceCsv(std::ostream& out, const Relation& relation,
                          const CsvOptions& options) {
  const Schema& schema = relation.schema();
  if (options.header) {
    for (AttributeId a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << options.delimiter;
      out << CsvQuote(schema.attribute_name(a), options.delimiter);
    }
    out << '\n';
  }
  // Shortest round-trip formatting: re-reading the file restores the exact
  // confidences, so cf >= η decisions survive a save/load cycle.
  char buf[32];
  for (TupleId t = 0; t < relation.size(); ++t) {
    for (AttributeId a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << options.delimiter;
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf),
                                     relation.tuple(t).confidence(a));
      UC_CHECK(ec == std::errc());
      out.write(buf, static_cast<std::streamsize>(ptr - buf));
    }
    out << '\n';
  }
  if (!out.good()) return Status::Internal("confidence CSV write failed");
  return Status::OK();
}

Status WriteConfidenceCsvFile(const std::string& path,
                              const Relation& relation,
                              const CsvOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open confidence CSV for write: " + path);
  }
  return WriteConfidenceCsv(out, relation, options);
}

}  // namespace data
}  // namespace uniclean
