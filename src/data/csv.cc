#include "data/csv.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace uniclean {
namespace data {

namespace {

/// Splits one physical CSV record into fields, honoring double-quote
/// escaping. Returns an error on unterminated quotes.
Result<std::vector<std::string>> ParseRecord(const std::string& line,
                                             char delim) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
      } else {
        field.push_back(c);
        ++i;
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      ++i;
    } else if (c == delim) {
      fields.push_back(std::move(field));
      field.clear();
      ++i;
    } else {
      field.push_back(c);
      ++i;
    }
  }
  if (in_quotes) {
    return Status::Corruption("unterminated quote in CSV record: " + line);
  }
  fields.push_back(std::move(field));
  return fields;
}

bool NeedsQuoting(const std::string& s, char delim) {
  return s.find(delim) != std::string::npos ||
         s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

std::string QuoteField(const std::string& s, char delim) {
  if (!NeedsQuoting(s, delim)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Result<Relation> ReadCsv(std::istream& in, SchemaPtr schema,
                         const CsvOptions& options) {
  Relation relation(schema);
  std::string line;
  bool saw_header = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    UC_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                        ParseRecord(line, options.delimiter));
    if (options.header && !saw_header) {
      saw_header = true;
      if (static_cast<int>(fields.size()) != schema->arity()) {
        return Status::Corruption("CSV header arity mismatch");
      }
      for (int a = 0; a < schema->arity(); ++a) {
        if (fields[static_cast<size_t>(a)] != schema->attribute_name(a)) {
          return Status::Corruption("CSV header mismatch at column " +
                                    std::to_string(a) + ": expected '" +
                                    schema->attribute_name(a) + "', got '" +
                                    fields[static_cast<size_t>(a)] + "'");
        }
      }
      continue;
    }
    if (static_cast<int>(fields.size()) != schema->arity()) {
      return Status::Corruption("CSV record arity mismatch at line " +
                                std::to_string(line_no));
    }
    Tuple t(schema->arity());
    for (int a = 0; a < schema->arity(); ++a) {
      const std::string& f = fields[static_cast<size_t>(a)];
      t.set_value(a, f == options.null_token ? Value::Null() : Value(f));
    }
    relation.AddTuple(std::move(t));
  }
  return relation;
}

Result<Relation> ReadCsvFile(const std::string& path, SchemaPtr schema,
                             const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  return ReadCsv(in, std::move(schema), options);
}

Status WriteCsv(std::ostream& out, const Relation& relation,
                const CsvOptions& options) {
  const Schema& schema = relation.schema();
  if (options.header) {
    for (int a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << options.delimiter;
      out << QuoteField(schema.attribute_name(a), options.delimiter);
    }
    out << '\n';
  }
  for (const Tuple& t : relation.tuples()) {
    for (int a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << options.delimiter;
      const Value& v = t.value(a);
      out << (v.is_null() ? options.null_token
                          : QuoteField(v.str(), options.delimiter));
    }
    out << '\n';
  }
  if (!out.good()) return Status::Internal("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const std::string& path, const Relation& relation,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open CSV file for write: " + path);
  }
  return WriteCsv(out, relation, options);
}

}  // namespace data
}  // namespace uniclean
