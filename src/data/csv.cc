#include "data/csv.h"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace uniclean {
namespace data {

namespace {

bool NeedsQuoting(const std::string& s, char delim) {
  return s.find(delim) != std::string::npos ||
         s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos ||
         s.find('\r') != std::string::npos;
}

/// How the shared scanner classified one step of input.
enum class CsvStep {
  kContent,       ///< a literal character of the current field
  kEscapedQuote,  ///< "" inside a quoted field: one literal '"'
  kQuoteOpen,     ///< opening quote (no field content)
  kQuoteClose,    ///< closing quote (no field content)
  kDelimiter,     ///< field separator
};

/// The single RFC-4180 quote state machine behind both ParseCsvRecord and
/// ReadCsvRecord, so the two can never disagree on where a quoted field (and
/// hence a logical record) ends. Lenient rule: a quote opens a quoted field
/// only at field *start*; mid-field quotes are literal content.
class CsvScanner {
 public:
  explicit CsvScanner(char delimiter) : delim_(delimiter) {}

  bool in_quotes() const { return in_quotes_; }

  /// Classifies s[i] (peeking s[i+1] for escaped quotes) and advances the
  /// state. Returns the number of characters consumed: 1, or 2 for "".
  size_t Step(const std::string& s, size_t i, CsvStep* step) {
    const char c = s[i];
    if (in_quotes_) {
      if (c == '"') {
        if (i + 1 < s.size() && s[i + 1] == '"') {
          field_empty_ = false;
          *step = CsvStep::kEscapedQuote;
          return 2;
        }
        in_quotes_ = false;
        *step = CsvStep::kQuoteClose;
        return 1;
      }
      field_empty_ = false;
      *step = CsvStep::kContent;
      return 1;
    }
    if (c == '"' && field_empty_) {
      in_quotes_ = true;
      *step = CsvStep::kQuoteOpen;
      return 1;
    }
    if (c == delim_) {
      field_empty_ = true;
      *step = CsvStep::kDelimiter;
      return 1;
    }
    field_empty_ = false;
    *step = CsvStep::kContent;
    return 1;
  }

  /// Advances the state over a whole string, ignoring the content.
  void Scan(const std::string& s) {
    CsvStep step;
    for (size_t i = 0; i < s.size(); i += Step(s, i, &step)) {
    }
  }

 private:
  char delim_;
  bool in_quotes_ = false;
  bool field_empty_ = true;
};

}  // namespace

bool ReadCsvRecord(std::istream& in, std::string* record, int* lines_read,
                   char delimiter) {
  record->clear();
  int lines = 0;
  std::string line;
  CsvScanner scanner(delimiter);
  while (std::getline(in, line)) {
    ++lines;
    if (lines > 1) {
      scanner.Scan("\n");  // the joined newline is content of the open field
      record->push_back('\n');
    }
    // A line with no quote character cannot change the quote state, so the
    // per-character scan is skippable — the common case for machine-written
    // CSV, and a measured win on the engine-warmup path that re-reads the
    // master file.
    const bool has_quote = line.find('"') != std::string::npos;
    if (has_quote || scanner.in_quotes()) {
      scanner.Scan(line);
    }
    // Strip a CRLF's '\r' only outside an open quoted field — inside one it
    // is field *content* (a value holding "\r\n" must round-trip exactly).
    if (!scanner.in_quotes() && !line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    record->append(line);
    if (!scanner.in_quotes()) break;
  }
  if (lines_read != nullptr) *lines_read = lines;
  return lines > 0;
}

Result<std::vector<std::string>> ParseCsvRecord(const std::string& line,
                                                char delim) {
  std::vector<std::string> fields;
  std::string field;
  CsvScanner scanner(delim);
  size_t i = 0;
  while (i < line.size()) {
    CsvStep step;
    const size_t at = i;
    i += scanner.Step(line, i, &step);
    switch (step) {
      case CsvStep::kContent:
        field.push_back(line[at]);
        break;
      case CsvStep::kEscapedQuote:
        field.push_back('"');
        break;
      case CsvStep::kDelimiter:
        fields.push_back(std::move(field));
        field.clear();
        break;
      case CsvStep::kQuoteOpen:
      case CsvStep::kQuoteClose:
        break;
    }
  }
  if (scanner.in_quotes()) {
    // An unterminated quote makes ReadCsvRecord slurp physical lines to EOF,
    // so the offending "record" can be the whole rest of the file — echo
    // only its head in the diagnostic.
    constexpr size_t kMaxEcho = 160;
    return Status::Corruption(
        "unterminated quote in CSV record: " +
        (line.size() <= kMaxEcho ? line
                                 : line.substr(0, kMaxEcho) + "... (" +
                                       std::to_string(line.size()) +
                                       " bytes)"));
  }
  fields.push_back(std::move(field));
  return fields;
}

std::string CsvQuote(const std::string& field, char delimiter) {
  if (!NeedsQuoting(field, delimiter)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

Result<Relation> ReadCsv(std::istream& in, SchemaPtr schema,
                         const CsvOptions& options) {
  Relation relation(schema);
  std::string line;
  bool saw_header = false;
  int line_no = 0;
  int lines_read = 0;
  // Reused across records: `owned` backs the quoted (unescaping) path,
  // `fields` views either the record itself (fast path) or `owned`.
  std::vector<std::string> owned;
  std::vector<std::string_view> fields;
  // Logical records: ReadCsvRecord joins physical lines while a quoted field
  // is open, so values containing newlines round-trip through Write/Read.
  while (ReadCsvRecord(in, &line, &lines_read, options.delimiter)) {
    line_no += lines_read;
    if (line.empty()) continue;
    fields.clear();
    if (line.find('"') == std::string::npos) {
      // No quotes: fields are plain delimiter splits, viewed in place — no
      // per-field allocation, no per-character state machine.
      size_t start = 0;
      for (;;) {
        const size_t d = line.find(options.delimiter, start);
        if (d == std::string::npos) {
          fields.emplace_back(line.data() + start, line.size() - start);
          break;
        }
        fields.emplace_back(line.data() + start, d - start);
        start = d + 1;
      }
    } else {
      UC_ASSIGN_OR_RETURN(owned, ParseCsvRecord(line, options.delimiter));
      fields.assign(owned.begin(), owned.end());
    }
    if (options.header && !saw_header) {
      saw_header = true;
      if (static_cast<int>(fields.size()) != schema->arity()) {
        return Status::Corruption("CSV header arity mismatch");
      }
      for (int a = 0; a < schema->arity(); ++a) {
        if (fields[static_cast<size_t>(a)] != schema->attribute_name(a)) {
          return Status::Corruption(
              "CSV header mismatch at column " + std::to_string(a) +
              ": expected '" + schema->attribute_name(a) + "', got '" +
              std::string(fields[static_cast<size_t>(a)]) + "'");
        }
      }
      continue;
    }
    if (static_cast<int>(fields.size()) != schema->arity()) {
      return Status::Corruption("CSV record arity mismatch at line " +
                                std::to_string(line_no));
    }
    Tuple t(schema->arity());
    for (int a = 0; a < schema->arity(); ++a) {
      const std::string_view f = fields[static_cast<size_t>(a)];
      t.set_value(a, f == options.null_token ? Value::Null() : Value(f));
    }
    relation.AddTuple(std::move(t));
  }
  return relation;
}

Result<Relation> ReadCsvFile(const std::string& path, SchemaPtr schema,
                             const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  return ReadCsv(in, std::move(schema), options);
}

Status WriteCsv(std::ostream& out, const Relation& relation,
                const CsvOptions& options) {
  const Schema& schema = relation.schema();
  if (options.header) {
    for (int a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << options.delimiter;
      out << CsvQuote(schema.attribute_name(a), options.delimiter);
    }
    out << '\n';
  }
  for (const Tuple& t : relation.tuples()) {
    for (int a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << options.delimiter;
      const Value& v = t.value(a);
      out << (v.is_null() ? options.null_token
                          : CsvQuote(v.str(), options.delimiter));
    }
    out << '\n';
  }
  if (!out.good()) return Status::Internal("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const std::string& path, const Relation& relation,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open CSV file for write: " + path);
  }
  return WriteCsv(out, relation, options);
}

Result<SchemaPtr> InferCsvSchema(const std::string& path,
                                 const std::string& relation_name,
                                 const CsvOptions& options) {
  if (!options.header) {
    return Status::InvalidArgument(
        "InferCsvSchema requires a CSV with a header row");
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::string header;
  if (!ReadCsvRecord(in, &header, nullptr, options.delimiter)) {
    return Status::Corruption("empty CSV: " + path);
  }
  UC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                      ParseCsvRecord(header, options.delimiter));
  for (std::string& name : names) name = std::string(Trim(name));
  return MakeSchema(relation_name, std::move(names));
}

Status ReadConfidenceCsvFile(const std::string& path, Relation* relation,
                             const CsvOptions& options) {
  UC_CHECK(relation != nullptr);
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open confidence CSV: " + path);
  }
  const int arity = relation->schema().arity();
  std::string line;
  bool saw_header = !options.header;
  TupleId row = 0;
  int line_no = 0;
  int lines_read = 0;
  while (ReadCsvRecord(in, &line, &lines_read, options.delimiter)) {
    line_no += lines_read;
    if (line.empty()) continue;
    UC_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                        ParseCsvRecord(line, options.delimiter));
    if (static_cast<int>(fields.size()) != arity) {
      return Status::InvalidArgument(
          "confidence CSV arity mismatch at line " + std::to_string(line_no) +
          ": expected " + std::to_string(arity) + " fields, got " +
          std::to_string(fields.size()));
    }
    if (!saw_header) {
      saw_header = true;
      continue;
    }
    if (row >= relation->size()) {
      return Status::InvalidArgument(
          "confidence CSV has more rows than the data relation (" +
          std::to_string(relation->size()) + ")");
    }
    for (AttributeId a = 0; a < arity; ++a) {
      const std::string& field = fields[static_cast<size_t>(a)];
      double cf = 0.0;
      if (!field.empty() && field != options.null_token) {
        errno = 0;
        char* end = nullptr;
        cf = std::strtod(field.c_str(), &end);
        if (end == field.c_str() || *end != '\0' || errno == ERANGE) {
          return Status::InvalidArgument(
              "confidence CSV cell is not a number at line " +
              std::to_string(line_no) + ": '" + field + "'");
        }
      }
      if (cf < 0.0 || cf > 1.0) {
        return Status::InvalidArgument(
            "confidence out of [0, 1] at line " + std::to_string(line_no) +
            ": " + field);
      }
      relation->mutable_tuple(row).set_confidence(a, cf);
    }
    ++row;
  }
  if (row != relation->size()) {
    return Status::InvalidArgument(
        "confidence CSV row count mismatch: expected " +
        std::to_string(relation->size()) + ", got " + std::to_string(row));
  }
  return Status::OK();
}

Status WriteConfidenceCsv(std::ostream& out, const Relation& relation,
                          const CsvOptions& options) {
  const Schema& schema = relation.schema();
  if (options.header) {
    for (AttributeId a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << options.delimiter;
      out << CsvQuote(schema.attribute_name(a), options.delimiter);
    }
    out << '\n';
  }
  // Shortest round-trip formatting: re-reading the file restores the exact
  // confidences, so cf >= η decisions survive a save/load cycle.
  char buf[32];
  for (TupleId t = 0; t < relation.size(); ++t) {
    for (AttributeId a = 0; a < schema.arity(); ++a) {
      if (a > 0) out << options.delimiter;
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf),
                                     relation.tuple(t).confidence(a));
      UC_CHECK(ec == std::errc());
      out.write(buf, static_cast<std::streamsize>(ptr - buf));
    }
    out << '\n';
  }
  if (!out.good()) return Status::Internal("confidence CSV write failed");
  return Status::OK();
}

Status WriteConfidenceCsvFile(const std::string& path,
                              const Relation& relation,
                              const CsvOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open confidence CSV for write: " + path);
  }
  return WriteConfidenceCsv(out, relation, options);
}

}  // namespace data
}  // namespace uniclean
