#include "data/string_pool.h"

namespace uniclean {
namespace data {

StringPool* StringPool::global_ = nullptr;

StringPool& StringPool::DefaultInstance() {
  static StringPool pool;
  global_ = &pool;
  return pool;
}

}  // namespace data
}  // namespace uniclean
