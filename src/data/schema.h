// Schema: relation name + ordered attributes (Fig. 1: `card`, `tran`).

#ifndef UNICLEAN_DATA_SCHEMA_H_
#define UNICLEAN_DATA_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/result.h"

namespace uniclean {
namespace data {

/// Index of an attribute within a schema.
using AttributeId = int;

/// One attribute of a relation schema.
struct Attribute {
  std::string name;
};

/// An immutable relation schema. Shared by all instances of the relation.
class Schema {
 public:
  Schema(std::string relation_name, std::vector<std::string> attribute_names);

  const std::string& relation_name() const { return relation_name_; }
  int arity() const { return static_cast<int>(attributes_.size()); }

  const Attribute& attribute(AttributeId id) const {
    UC_CHECK_GE(id, 0);
    UC_CHECK_LT(id, arity());
    return attributes_[static_cast<size_t>(id)];
  }

  const std::string& attribute_name(AttributeId id) const {
    return attribute(id).name;
  }

  /// Looks up an attribute by name.
  Result<AttributeId> FindAttribute(const std::string& name) const;

  /// Looks up an attribute by name, aborting if absent. For code paths where
  /// the name is a compile-time constant of a generator-owned schema.
  AttributeId MustFindAttribute(const std::string& name) const;

  /// All attribute names in order.
  std::vector<std::string> AttributeNames() const;

 private:
  std::string relation_name_;
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, AttributeId> by_name_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

/// Convenience factory.
SchemaPtr MakeSchema(std::string relation_name,
                     std::vector<std::string> attribute_names);

}  // namespace data
}  // namespace uniclean

#endif  // UNICLEAN_DATA_SCHEMA_H_
