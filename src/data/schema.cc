#include "data/schema.h"

namespace uniclean {
namespace data {

Schema::Schema(std::string relation_name,
               std::vector<std::string> attribute_names)
    : relation_name_(std::move(relation_name)) {
  attributes_.reserve(attribute_names.size());
  for (auto& name : attribute_names) {
    AttributeId id = static_cast<AttributeId>(attributes_.size());
    auto [it, inserted] = by_name_.emplace(name, id);
    (void)it;
    UC_CHECK(inserted) << "duplicate attribute name: " << name;
    attributes_.push_back(Attribute{std::move(name)});
  }
}

Result<AttributeId> Schema::FindAttribute(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("attribute '" + name + "' not in schema " +
                            relation_name_);
  }
  return it->second;
}

AttributeId Schema::MustFindAttribute(const std::string& name) const {
  auto result = FindAttribute(name);
  UC_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

std::vector<std::string> Schema::AttributeNames() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const auto& a : attributes_) names.push_back(a.name);
  return names;
}

SchemaPtr MakeSchema(std::string relation_name,
                     std::vector<std::string> attribute_names) {
  return std::make_shared<const Schema>(std::move(relation_name),
                                        std::move(attribute_names));
}

}  // namespace data
}  // namespace uniclean
