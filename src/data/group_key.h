// GroupKey: a small fixed-size integer key over a tuple projection. The
// repair engines group tuples by their LHS / equality-clause values
// (cRepair's Hϕ tables, eRepair's HTab, hRepair's violation groups, the
// MdMatcher equality index); with interned values the key is the sequence of
// value ids — no string concatenation, no allocation, and hashing is a few
// integer mixes instead of re-hashing the characters on every probe.

#ifndef UNICLEAN_DATA_GROUP_KEY_H_
#define UNICLEAN_DATA_GROUP_KEY_H_

#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "data/relation.h"
#include "data/string_pool.h"

namespace uniclean {
namespace data {

struct GroupKey {
  /// Normalized rules have a single RHS and small LHS sets; 12 parts covers
  /// every generator/parser rule with a wide margin (checked at Append).
  static constexpr size_t kMaxParts = 12;

  ValueId parts[kMaxParts];
  uint32_t size = 0;

  void Append(ValueId id) {
    UC_CHECK_LT(size, kMaxParts) << "GroupKey: projection too wide";
    parts[size++] = id;
  }

  /// The key of `t`'s projection on `attrs`.
  template <typename AttrList>
  static GroupKey Project(const Tuple& t, const AttrList& attrs) {
    GroupKey key;
    for (AttributeId a : attrs) key.Append(t.value(a).id());
    return key;
  }

  bool operator==(const GroupKey& o) const {
    if (size != o.size) return false;
    for (uint32_t i = 0; i < size; ++i) {
      if (parts[i] != o.parts[i]) return false;
    }
    return true;
  }
  bool operator!=(const GroupKey& o) const { return !(*this == o); }
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ k.size;
    for (uint32_t i = 0; i < k.size; ++i) {
      // One MixU64 round per part, chained through h.
      h = MixU64(h ^ (static_cast<uint64_t>(k.parts[i]) +
                      0x9e3779b97f4a7c15ULL));
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace data
}  // namespace uniclean

#endif  // UNICLEAN_DATA_GROUP_KEY_H_
