#include "data/relation.h"

namespace uniclean {
namespace data {

const char* FixMarkToString(FixMark mark) {
  switch (mark) {
    case FixMark::kNone:
      return "none";
    case FixMark::kDeterministic:
      return "deterministic";
    case FixMark::kReliable:
      return "reliable";
    case FixMark::kPossible:
      return "possible";
  }
  return "unknown";
}

bool Tuple::ProjectionEquals(const Tuple& other,
                             const std::vector<AttributeId>& attrs) const {
  for (AttributeId a : attrs) {
    if (value(a) != other.value(a)) return false;
  }
  return true;
}

TupleId Relation::AddTuple(Tuple tuple) {
  UC_CHECK_EQ(tuple.arity(), schema_->arity());
  tuples_.push_back(std::move(tuple));
  if (!dead_.empty()) dead_.push_back(0);
  return static_cast<TupleId>(tuples_.size() - 1);
}

TupleId Relation::AddRow(const std::vector<std::string>& values,
                         double confidence) {
  UC_CHECK_EQ(static_cast<int>(values.size()), schema_->arity());
  Tuple t(schema_->arity());
  for (int a = 0; a < schema_->arity(); ++a) {
    t.set_value(a, Value(values[static_cast<size_t>(a)]));
    t.set_confidence(a, confidence);
  }
  return AddTuple(std::move(t));
}

int Relation::live_size() const {
  if (dead_.empty()) return size();
  int live = 0;
  for (uint8_t d : dead_) live += d == 0 ? 1 : 0;
  return live;
}

int Relation::CellDiffCount(const Relation& other) const {
  UC_CHECK_EQ(size(), other.size());
  UC_CHECK_EQ(schema().arity(), other.schema().arity());
  int diff = 0;
  for (int t = 0; t < size(); ++t) {
    for (AttributeId a = 0; a < schema().arity(); ++a) {
      if (tuple(t).value(a) != other.tuple(t).value(a)) ++diff;
    }
  }
  return diff;
}

}  // namespace data
}  // namespace uniclean
