// Constant-CFD mining: finds pattern rules [A='a'] -> [B='b'] with enough
// support — the "data standardization" and zip->city style rules of
// Example 1.1 and the §8 rule sets.

#ifndef UNICLEAN_DISCOVERY_CFD_DISCOVERY_H_
#define UNICLEAN_DISCOVERY_CFD_DISCOVERY_H_

#include <string>
#include <vector>

#include "data/relation.h"

namespace uniclean {
namespace discovery {

struct CfdDiscoveryOptions {
  /// Minimum number of tuples with A = a for the pattern to be considered.
  int min_support = 10;
  /// Minimum fraction of those tuples agreeing on the consequent value b.
  double min_confidence = 0.95;
  /// Skip antecedent attributes with more distinct values than this (keys
  /// produce one rule per tuple — useless as constant CFDs).
  int max_lhs_distinct = 100;
};

struct DiscoveredConstantCfd {
  data::AttributeId lhs;
  std::string lhs_value;
  data::AttributeId rhs;
  std::string rhs_value;
  int support = 0;        ///< tuples matching the antecedent
  double confidence = 0;  ///< fraction of those with the consequent value

  /// Renders as a parseable CFD line.
  std::string ToRuleLine(const data::Schema& schema,
                         const std::string& name) const;
};

/// Mines constant CFDs over all attribute pairs. Results are sorted by
/// (lhs, lhs_value, rhs). Patterns whose consequent is already implied by
/// an exact FD lhs -> rhs are still reported (callers can prune with
/// reasoning::MinimalCover).
std::vector<DiscoveredConstantCfd> DiscoverConstantCfds(
    const data::Relation& d, const CfdDiscoveryOptions& options = {});

}  // namespace discovery
}  // namespace uniclean

#endif  // UNICLEAN_DISCOVERY_CFD_DISCOVERY_H_
