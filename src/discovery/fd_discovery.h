// FD discovery by partition refinement (TANE-style), the profiling step §2
// points to for obtaining data quality rules ("Both CFDs and MDs can be
// automatically discovered from data via profiling algorithms"). Finds
// minimal functional dependencies X -> A with |X| bounded, exactly or
// approximately (tolerating a fraction of violating tuples, the g3 error).

#ifndef UNICLEAN_DISCOVERY_FD_DISCOVERY_H_
#define UNICLEAN_DISCOVERY_FD_DISCOVERY_H_

#include <vector>

#include "data/relation.h"
#include "rules/cfd.h"

namespace uniclean {
namespace discovery {

struct FdDiscoveryOptions {
  /// Maximum number of LHS attributes considered (1 or 2 keeps discovery
  /// polynomial and covers the lion's share of real rule sets, including
  /// every FD the §8 datasets use).
  int max_lhs_size = 2;
  /// g3-style error tolerance: the FD is reported when removing at most
  /// this fraction of tuples makes it hold exactly. 0 = exact discovery.
  double max_error = 0.0;
  /// LHS candidates with fewer distinct values than this are skipped as
  /// trivially-keylike noise amplifiers (set to 0 to keep all).
  int min_lhs_distinct = 2;
};

/// A discovered dependency with its support statistics.
struct DiscoveredFd {
  std::vector<data::AttributeId> lhs;
  data::AttributeId rhs;
  /// Fraction of tuples violating the FD (g3 error), in [0, max_error].
  double error;

  /// Renders as a parseable CFD line (all-wildcard pattern).
  std::string ToRuleLine(const data::Schema& schema,
                         const std::string& name) const;
};

/// Discovers minimal FDs on `d`. Results are sorted by (|lhs|, lhs, rhs).
/// An FD is reported only if no discovered subset-LHS FD implies it.
std::vector<DiscoveredFd> DiscoverFds(const data::Relation& d,
                                      const FdDiscoveryOptions& options = {});

}  // namespace discovery
}  // namespace uniclean

#endif  // UNICLEAN_DISCOVERY_FD_DISCOVERY_H_
