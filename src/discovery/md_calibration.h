// MD similarity-threshold calibration: given labeled (value, master value)
// pairs — matched and unmatched — picks the similarity threshold for an MD
// premise clause that reaches a target recall on the matches while
// maximizing the margin to the non-matches. This is the practical half of
// MD discovery [Song & Chen 2009] that the paper's §2 relies on: the
// structure of an MD usually comes from the schema, the thresholds from
// the data.

#ifndef UNICLEAN_DISCOVERY_MD_CALIBRATION_H_
#define UNICLEAN_DISCOVERY_MD_CALIBRATION_H_

#include <string>
#include <utility>
#include <vector>

#include "similarity/predicate.h"

namespace uniclean {
namespace discovery {

struct CalibrationResult {
  similarity::SimilarityPredicate predicate;
  /// Recall on the labeled matches at the chosen threshold.
  double recall = 0.0;
  /// False-accept rate on the labeled non-matches.
  double false_accept_rate = 0.0;
};

/// Calibrates a Jaro-Winkler threshold: the largest threshold whose recall
/// on `matched` is at least `target_recall`. `unmatched` is used to report
/// the false-accept rate (and may be empty).
CalibrationResult CalibrateJaroWinkler(
    const std::vector<std::pair<std::string, std::string>>& matched,
    const std::vector<std::pair<std::string, std::string>>& unmatched,
    double target_recall = 0.95);

/// Calibrates an edit-distance bound: the smallest k whose recall on
/// `matched` is at least `target_recall`.
CalibrationResult CalibrateEditDistance(
    const std::vector<std::pair<std::string, std::string>>& matched,
    const std::vector<std::pair<std::string, std::string>>& unmatched,
    double target_recall = 0.95);

}  // namespace discovery
}  // namespace uniclean

#endif  // UNICLEAN_DISCOVERY_MD_CALIBRATION_H_
