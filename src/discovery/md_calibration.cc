#include "discovery/md_calibration.h"

#include <algorithm>

#include "common/check.h"
#include "similarity/metrics.h"

namespace uniclean {
namespace discovery {

namespace {

double RateBelow(const std::vector<double>& sorted_scores, double threshold) {
  // Fraction of scores >= threshold.
  auto it = std::lower_bound(sorted_scores.begin(), sorted_scores.end(),
                             threshold);
  return static_cast<double>(sorted_scores.end() - it) /
         static_cast<double>(sorted_scores.size());
}

}  // namespace

CalibrationResult CalibrateJaroWinkler(
    const std::vector<std::pair<std::string, std::string>>& matched,
    const std::vector<std::pair<std::string, std::string>>& unmatched,
    double target_recall) {
  UC_CHECK(!matched.empty());
  std::vector<double> match_scores;
  match_scores.reserve(matched.size());
  for (const auto& [a, b] : matched) {
    match_scores.push_back(similarity::JaroWinklerSimilarity(a, b));
  }
  std::sort(match_scores.begin(), match_scores.end());
  // The largest threshold keeping >= target_recall of matches: the score at
  // the (1 - target_recall) quantile.
  size_t cut = static_cast<size_t>(
      (1.0 - target_recall) * static_cast<double>(match_scores.size()));
  cut = std::min(cut, match_scores.size() - 1);
  double threshold = match_scores[cut];

  CalibrationResult result{
      similarity::SimilarityPredicate::JaroWinkler(threshold), 0.0, 0.0};
  result.recall = RateBelow(match_scores, threshold);
  if (!unmatched.empty()) {
    std::vector<double> other;
    other.reserve(unmatched.size());
    for (const auto& [a, b] : unmatched) {
      other.push_back(similarity::JaroWinklerSimilarity(a, b));
    }
    std::sort(other.begin(), other.end());
    result.false_accept_rate = RateBelow(other, threshold);
  }
  return result;
}

CalibrationResult CalibrateEditDistance(
    const std::vector<std::pair<std::string, std::string>>& matched,
    const std::vector<std::pair<std::string, std::string>>& unmatched,
    double target_recall) {
  UC_CHECK(!matched.empty());
  std::vector<int> distances;
  distances.reserve(matched.size());
  for (const auto& [a, b] : matched) {
    distances.push_back(similarity::EditDistance(a, b));
  }
  std::sort(distances.begin(), distances.end());
  size_t cut = static_cast<size_t>(
      target_recall * static_cast<double>(distances.size()));
  if (cut > 0) --cut;
  int k = distances[std::min(cut, distances.size() - 1)];

  CalibrationResult result{similarity::SimilarityPredicate::Edit(k), 0.0,
                           0.0};
  double hits = 0;
  for (int dist : distances) {
    if (dist <= k) ++hits;
  }
  result.recall = hits / static_cast<double>(distances.size());
  if (!unmatched.empty()) {
    double accepts = 0;
    for (const auto& [a, b] : unmatched) {
      if (similarity::BoundedEditDistance(a, b, k) <= k) ++accepts;
    }
    result.false_accept_rate =
        accepts / static_cast<double>(unmatched.size());
  }
  return result;
}

}  // namespace discovery
}  // namespace uniclean
