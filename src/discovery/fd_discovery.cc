#include "discovery/fd_discovery.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/check.h"

namespace uniclean {
namespace discovery {

namespace {

using data::AttributeId;
using data::Relation;

std::string Key(const data::Tuple& t, const std::vector<AttributeId>& attrs) {
  std::string key;
  for (AttributeId a : attrs) {
    key += t.value(a).ToString();
    key.push_back('\x1f');
  }
  return key;
}

/// g3 error of X -> A: the minimum fraction of tuples to delete so the FD
/// holds = 1 - (Σ over X-groups of the majority-A count) / |D|.
double FdError(const Relation& d, const std::vector<AttributeId>& lhs,
               AttributeId rhs) {
  std::unordered_map<std::string, std::unordered_map<std::string, int>>
      groups;
  for (const data::Tuple& t : d.tuples()) {
    ++groups[Key(t, lhs)][t.value(rhs).ToString()];
  }
  long kept = 0;
  for (const auto& [key, counts] : groups) {
    int majority = 0;
    for (const auto& [value, c] : counts) majority = std::max(majority, c);
    kept += majority;
  }
  return 1.0 - static_cast<double>(kept) / static_cast<double>(d.size());
}

int DistinctCount(const Relation& d, const std::vector<AttributeId>& attrs) {
  std::unordered_map<std::string, int> seen;
  for (const data::Tuple& t : d.tuples()) {
    seen.emplace(Key(t, attrs), 0);
  }
  return static_cast<int>(seen.size());
}

}  // namespace

std::string DiscoveredFd::ToRuleLine(const data::Schema& schema,
                                     const std::string& name) const {
  std::string line = "CFD " + name + ": ";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) line += ", ";
    line += schema.attribute_name(lhs[i]);
  }
  line += " -> " + schema.attribute_name(rhs);
  return line;
}

std::vector<DiscoveredFd> DiscoverFds(const Relation& d,
                                      const FdDiscoveryOptions& options) {
  std::vector<DiscoveredFd> out;
  if (d.empty()) return out;
  const int arity = d.schema().arity();

  // Level 1: single-attribute LHS.
  std::vector<std::vector<bool>> holds1(
      static_cast<size_t>(arity), std::vector<bool>(static_cast<size_t>(arity), false));
  std::vector<int> distinct1(static_cast<size_t>(arity));
  for (AttributeId a = 0; a < arity; ++a) {
    distinct1[static_cast<size_t>(a)] = DistinctCount(d, {a});
  }
  for (AttributeId x = 0; x < arity; ++x) {
    if (distinct1[static_cast<size_t>(x)] < options.min_lhs_distinct) {
      continue;
    }
    for (AttributeId a = 0; a < arity; ++a) {
      if (a == x) continue;
      double error = FdError(d, {x}, a);
      if (error <= options.max_error) {
        holds1[static_cast<size_t>(x)][static_cast<size_t>(a)] = true;
        out.push_back(DiscoveredFd{{x}, a, error});
      }
    }
  }

  if (options.max_lhs_size >= 2) {
    for (AttributeId x = 0; x < arity; ++x) {
      if (distinct1[static_cast<size_t>(x)] < options.min_lhs_distinct) {
        continue;
      }
      for (AttributeId y = x + 1; y < arity; ++y) {
        if (distinct1[static_cast<size_t>(y)] < options.min_lhs_distinct) {
          continue;
        }
        for (AttributeId a = 0; a < arity; ++a) {
          if (a == x || a == y) continue;
          // Minimality: skip if either single attribute already determines A.
          if (holds1[static_cast<size_t>(x)][static_cast<size_t>(a)] ||
              holds1[static_cast<size_t>(y)][static_cast<size_t>(a)]) {
            continue;
          }
          double error = FdError(d, {x, y}, a);
          if (error <= options.max_error) {
            out.push_back(DiscoveredFd{{x, y}, a, error});
          }
        }
      }
    }
  }
  UC_CHECK_LE(options.max_lhs_size, 2)
      << "DiscoverFds supports LHS sizes 1 and 2";

  std::sort(out.begin(), out.end(),
            [](const DiscoveredFd& a, const DiscoveredFd& b) {
              if (a.lhs.size() != b.lhs.size()) {
                return a.lhs.size() < b.lhs.size();
              }
              if (a.lhs != b.lhs) return a.lhs < b.lhs;
              return a.rhs < b.rhs;
            });
  return out;
}

}  // namespace discovery
}  // namespace uniclean
