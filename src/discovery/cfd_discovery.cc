#include "discovery/cfd_discovery.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace uniclean {
namespace discovery {

std::string DiscoveredConstantCfd::ToRuleLine(const data::Schema& schema,
                                              const std::string& name) const {
  return "CFD " + name + ": " + schema.attribute_name(lhs) + "='" +
         lhs_value + "' -> " + schema.attribute_name(rhs) + "='" + rhs_value +
         "'";
}

std::vector<DiscoveredConstantCfd> DiscoverConstantCfds(
    const data::Relation& d, const CfdDiscoveryOptions& options) {
  std::vector<DiscoveredConstantCfd> out;
  const int arity = d.schema().arity();

  // Distinct-value counts to skip key-like antecedents.
  std::vector<int> distinct(static_cast<size_t>(arity), 0);
  for (data::AttributeId a = 0; a < arity; ++a) {
    std::unordered_map<std::string, int> seen;
    for (const data::Tuple& t : d.tuples()) {
      seen.emplace(t.value(a).ToString(), 0);
    }
    distinct[static_cast<size_t>(a)] = static_cast<int>(seen.size());
  }

  for (data::AttributeId lhs = 0; lhs < arity; ++lhs) {
    if (distinct[static_cast<size_t>(lhs)] > options.max_lhs_distinct) {
      continue;
    }
    for (data::AttributeId rhs = 0; rhs < arity; ++rhs) {
      if (rhs == lhs) continue;
      // value of lhs -> histogram of rhs values.
      std::unordered_map<std::string, std::map<std::string, int>> hist;
      for (const data::Tuple& t : d.tuples()) {
        if (t.value(lhs).is_null() || t.value(rhs).is_null()) continue;
        ++hist[t.value(lhs).str()][t.value(rhs).str()];
      }
      for (const auto& [a_value, counts] : hist) {
        int support = 0;
        int best = 0;
        const std::string* best_value = nullptr;
        for (const auto& [b_value, c] : counts) {
          support += c;
          if (c > best) {
            best = c;
            best_value = &b_value;
          }
        }
        if (support < options.min_support || best_value == nullptr) continue;
        double confidence =
            static_cast<double>(best) / static_cast<double>(support);
        if (confidence < options.min_confidence) continue;
        out.push_back(DiscoveredConstantCfd{lhs, a_value, rhs, *best_value,
                                            support, confidence});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DiscoveredConstantCfd& a, const DiscoveredConstantCfd& b) {
              if (a.lhs != b.lhs) return a.lhs < b.lhs;
              if (a.lhs_value != b.lhs_value) return a.lhs_value < b.lhs_value;
              return a.rhs < b.rhs;
            });
  return out;
}

}  // namespace discovery
}  // namespace uniclean
