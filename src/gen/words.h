// Shared vocabulary builder for the dataset generators. Values built from a
// large random word pool keep accidental fuzzy-predicate collisions between
// distinct entities negligible, so the generated *clean* data satisfies the
// generated rules — mirroring §8's property that the source datasets are
// consistent with the designed CFDs and MDs.

#ifndef UNICLEAN_GEN_WORDS_H_
#define UNICLEAN_GEN_WORDS_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace uniclean {
namespace gen {

/// A pool of `n` distinct pronounceable words.
inline std::vector<std::string> BuildWordPool(int n, Rng* rng) {
  static const char* kOnsets[] = {"b",  "br", "c",  "cl", "d",  "dr",
                                  "f",  "g",  "gr", "h",  "k",  "l",
                                  "m",  "n",  "p",  "pr", "r",  "s",
                                  "st", "t",  "tr", "v",  "w",  "z"};
  static const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ou"};
  static const char* kCodas[] = {"n", "r", "l", "s", "t", "m", "x", ""};
  std::vector<std::string> pool;
  pool.reserve(static_cast<size_t>(n));
  std::unordered_set<std::string> seen;
  while (static_cast<int>(pool.size()) < n) {
    std::string w;
    int syllables = 2 + static_cast<int>(rng->Index(2));
    for (int s = 0; s < syllables; ++s) {
      w += kOnsets[rng->Index(std::size(kOnsets))];
      w += kVowels[rng->Index(std::size(kVowels))];
      w += kCodas[rng->Index(std::size(kCodas))];
    }
    if (seen.insert(w).second) pool.push_back(std::move(w));
  }
  return pool;
}

}  // namespace gen
}  // namespace uniclean

#endif  // UNICLEAN_GEN_WORDS_H_
