// DBLP generator: mirrors the bibliography dataset of §8 — 12 attributes,
// 7 CFDs (4 key FDs, 1 venue FD, 2 standardization rules) and 3 MDs against
// a publication master relation.

#include <string>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "data/relation.h"
#include "data/schema.h"
#include "gen/corrupt.h"
#include "gen/dataset.h"
#include "gen/words.h"
#include "rules/parser.h"

namespace uniclean {
namespace gen {

namespace {

struct Venue {
  std::string name;
  std::string publisher;
};

struct Paper {
  std::string key;
  std::string title;
  std::string authors;
  int venue;
  std::string year;
  std::string pages;
  std::string volume;
  std::string number;
  std::string type;
  std::string month;
};

struct Universe {
  std::vector<Venue> venues;
  std::vector<Paper> papers;  // master ones first
  std::vector<std::string> words;
  int num_master_papers = 0;
};

std::string AuthorName(Rng* rng) {
  static const char* kFirst[] = {"Wei", "Anna",  "Jun",  "Maria", "Tom",
                                 "Lena", "Pavel", "Nina", "Omar",  "Ivy"};
  static const char* kLast[] = {"Fang", "Miller", "Tanaka", "Novak",
                                "Silva", "Keller", "Osman",  "Rossi",
                                "Patel", "Larsen"};
  return std::string(kFirst[rng->Index(std::size(kFirst))]) + " " +
         kLast[rng->Index(std::size(kLast))];
}

Universe BuildUniverse(const GeneratorConfig& config, Rng* rng) {
  Universe u;
  // A large vocabulary keeps distinct titles far apart under the fuzzy MD
  // predicates, so clean data satisfies the rules (like the real DBLP).
  u.words = BuildWordPool(500, rng);
  static const char* kPublishers[] = {"ACM", "IEEE", "Springer",
                                      "VLDB Endowment", "Elsevier"};
  for (int i = 0; i < 30; ++i) {
    Venue v;
    v.name = "Venue" + std::to_string(i);
    v.publisher = kPublishers[rng->Index(std::size(kPublishers))];
    u.venues.push_back(std::move(v));
  }
  const int extra = std::max(64, config.master_size / 2);
  const int total = config.master_size + extra;
  std::unordered_set<std::string> used_titles;
  for (int i = 0; i < total; ++i) {
    Paper p;
    p.venue = static_cast<int>(rng->Index(u.venues.size()));
    p.year = std::to_string(1995 + rng->Uniform(0, 25));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "conf/%d/%06d", p.venue, i);
    p.key = buf;
    do {
      p.title.clear();
      int words = 5 + static_cast<int>(rng->Index(3));
      for (int w = 0; w < words; ++w) {
        if (w > 0) p.title += " ";
        p.title += u.words[rng->Index(u.words.size())];
      }
    } while (!used_titles.insert(p.title).second);
    int authors = 1 + static_cast<int>(rng->Index(3));
    for (int a = 0; a < authors; ++a) {
      if (a > 0) p.authors += ", ";
      p.authors += AuthorName(rng);
    }
    int start = static_cast<int>(rng->Uniform(1, 500));
    p.pages = std::to_string(start) + "-" +
              std::to_string(start + static_cast<int>(rng->Uniform(8, 24)));
    p.volume = std::to_string(rng->Uniform(1, 40));
    p.number = std::to_string(rng->Uniform(1, 12));
    p.type = rng->Bernoulli(0.5) ? "journal" : "conference";
    p.month = std::to_string(rng->Uniform(1, 12));
    u.papers.push_back(std::move(p));
  }
  u.num_master_papers = config.master_size;
  return u;
}

const char kRuleText[] = R"(# DBLP rules: 7 CFDs + 3 MDs
CFD f1: key -> title
CFD f2: key -> authors
CFD f3: key -> venue
CFD f4: key -> year
CFD f5: venue -> publisher
CFD s1: type='j' -> type='journal'
CFD s2: type='c' -> type='conference'
MD md1: title ~jw:0.90 title & year=year -> key:=key, authors:=authors, venue:=venue
MD md2: key=key -> title:=title, year:=year
MD md3: title ~edit:3 title & authors ~jw:0.80 authors -> venue:=venue, year:=year
)";

}  // namespace

Dataset GenerateDblp(const GeneratorConfig& config) {
  Rng rng(config.seed + 1);
  Universe u = BuildUniverse(config, &rng);

  auto data_schema = data::MakeSchema(
      "dblp", {"key", "title", "authors", "venue", "year", "pages", "volume",
               "number", "publisher", "ee", "type", "month"});
  UC_CHECK_EQ(data_schema->arity(), 12);
  auto master_schema = data::MakeSchema(
      "dblp_master", {"key", "title", "authors", "venue", "year",
                      "publisher"});

  auto rules_result =
      rules::ParseRuleSet(kRuleText, data_schema, master_schema);
  UC_CHECK(rules_result.ok()) << rules_result.status().ToString();

  data::Relation master(master_schema);
  for (int i = 0; i < u.num_master_papers; ++i) {
    const Paper& p = u.papers[static_cast<size_t>(i)];
    const Venue& v = u.venues[static_cast<size_t>(p.venue)];
    master.AddRow({p.key, p.title, p.authors, v.name, p.year, v.publisher},
                  1.0);
  }

  data::Relation clean(data_schema);
  std::vector<std::pair<data::TupleId, data::TupleId>> true_matches;
  for (int i = 0; i < config.num_tuples; ++i) {
    bool dup = rng.Bernoulli(config.dup_rate);
    size_t paper_idx =
        dup ? rng.Index(static_cast<size_t>(u.num_master_papers))
            : static_cast<size_t>(u.num_master_papers) +
                  rng.Index(u.papers.size() -
                            static_cast<size_t>(u.num_master_papers));
    const Paper& p = u.papers[paper_idx];
    const Venue& v = u.venues[static_cast<size_t>(p.venue)];
    clean.AddRow({p.key, p.title, p.authors, v.name, p.year, p.pages,
                  p.volume, p.number, v.publisher,
                  "https://doi.org/10.0/" + p.key, p.type, p.month});
    if (dup) {
      true_matches.emplace_back(i, static_cast<data::TupleId>(paper_idx));
    }
  }

  Dataset dataset("DBLP", std::move(master), std::move(clean),
                  std::move(rules_result).value());
  dataset.rule_text = kRuleText;
  dataset.true_matches = std::move(true_matches);
  InjectNoise(&dataset.dirty, dataset.rules.RuleAttributes(),
              config.noise_rate, &rng,
              PremiseNoiseScale(dataset.rules,
                                config.md_premise_noise_boost));
  AssignConfidence(&dataset.dirty, dataset.clean, config.asserted_rate,
                   &rng);
  return dataset;
}

}  // namespace gen
}  // namespace uniclean
