// Synthetic evaluation datasets (§8). Each generator produces a master
// relation Dm, a ground-truth clean relation, its dirtied counterpart D
// (noise rate noi%, duplicate rate dup%, asserted rate asr% — the paper's
// experimental knobs), the data quality rules, and the true (data, master)
// match pairs for matching-accuracy evaluation.
//
// The real HOSP / DBLP datasets are not redistributable; these generators
// reproduce their schema shapes, rule counts (23/7/55 CFDs, 3/3/10 MDs) and
// error models — see DESIGN.md §2 for the substitution argument.

#ifndef UNICLEAN_GEN_DATASET_H_
#define UNICLEAN_GEN_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "data/relation.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace gen {

struct GeneratorConfig {
  /// |D|: number of (dirty) data tuples.
  int num_tuples = 5000;
  /// |Dm|: number of master tuples.
  int master_size = 1000;
  /// noi%: fraction of rule-covered cells that receive an error.
  double noise_rate = 0.06;
  /// dup%: fraction of data tuples that have a master counterpart.
  double dup_rate = 0.4;
  /// asr%: per attribute, fraction of tuples whose (correct) cell is
  /// asserted with confidence 1.0.
  double asserted_rate = 0.4;
  /// Noise multiplier for MD premise attributes. The paper's datasets have
  /// systematically dirty matching attributes (differently formatted names
  /// and addresses) — that is why matching *needs* repairing. 1.0 keeps
  /// noise uniform; the Fig. 11 bench raises it so that a realistic share
  /// of duplicates cannot be matched until repaired.
  double md_premise_noise_boost = 1.0;
  /// Additional synthetic constant CFDs appended to the rule program
  /// (TPC-H only; used by the |Σ| scalability sweep of Fig. 14(g)).
  int extra_cfds = 0;
  /// Additional MD variants appended (TPC-H only; Fig. 14(h)).
  int extra_mds = 0;
  uint64_t seed = 42;
};

struct Dataset {
  std::string name;
  data::Relation master;  ///< Dm
  data::Relation clean;   ///< ground truth, aligned with `dirty`
  data::Relation dirty;   ///< D
  rules::RuleSet rules;   ///< Θ = Σ ∪ Γ (normalized)
  /// The rule program in rules/parser.h syntax (what `rules` was parsed
  /// from); lets tools round-trip a dataset through files and the CLI.
  std::string rule_text;
  /// True matches: (dirty tuple id, master tuple id).
  std::vector<std::pair<data::TupleId, data::TupleId>> true_matches;

  Dataset(std::string dataset_name, data::Relation master_relation,
          data::Relation clean_relation, rules::RuleSet ruleset)
      : name(std::move(dataset_name)),
        master(std::move(master_relation)),
        clean(std::move(clean_relation)),
        dirty(clean.Clone()),
        rules(std::move(ruleset)) {}
};

/// HOSP: US hospital data — 19 attributes, 23 CFDs, 3 MDs.
Dataset GenerateHosp(const GeneratorConfig& config);

/// DBLP: bibliography data — 12 attributes, 7 CFDs, 3 MDs.
Dataset GenerateDblp(const GeneratorConfig& config);

/// TPC-H: denormalized join of the benchmark schema — 58 attributes,
/// 55 CFDs (+extra_cfds), 10 MDs (+extra_mds).
Dataset GenerateTpch(const GeneratorConfig& config);

}  // namespace gen
}  // namespace uniclean

#endif  // UNICLEAN_GEN_DATASET_H_
