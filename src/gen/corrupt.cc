#include "gen/corrupt.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace uniclean {
namespace gen {

namespace {

std::string Typo(const std::string& v, Rng* rng) {
  std::string out = v;
  if (out.empty()) return "x";
  size_t pos = rng->Index(out.size());
  switch (rng->Uniform(0, 2)) {
    case 0:  // substitute
      out[pos] = static_cast<char>('a' + rng->Uniform(0, 25));
      break;
    case 1:  // insert
      out.insert(out.begin() + static_cast<long>(pos),
                 static_cast<char>('a' + rng->Uniform(0, 25)));
      break;
    default:  // delete
      out.erase(out.begin() + static_cast<long>(pos));
      break;
  }
  return out;
}

std::string Truncate(const std::string& v, Rng* rng) {
  if (v.size() <= 1) return v + "x";
  size_t keep = 1 + rng->Index(v.size() - 1);
  return v.substr(0, keep);
}

}  // namespace

int InjectNoise(data::Relation* d,
                const std::vector<data::AttributeId>& noisy_attrs,
                double noise_rate, Rng* rng,
                const std::unordered_map<data::AttributeId, double>&
                    rate_scale) {
  UC_CHECK(d != nullptr);
  int corrupted = 0;
  for (data::TupleId t = 0; t < d->size(); ++t) {
    for (data::AttributeId a : noisy_attrs) {
      double rate = noise_rate;
      auto scale_it = rate_scale.find(a);
      if (scale_it != rate_scale.end()) {
        rate = std::min(0.9, rate * scale_it->second);
      }
      if (!rng->Bernoulli(rate)) continue;
      const data::Value& current = d->tuple(t).value(a);
      if (current.is_null()) continue;
      std::string replacement;
      // Typos dominate (as in real dirty data); swaps and truncations are
      // rarer. A swapped FD-key value relabels the tuple's entire dependent
      // group, so overweighting swaps makes the workload artificially
      // adversarial.
      int kind = static_cast<int>(rng->Uniform(0, 9));
      if (kind < 6) {
        replacement = Typo(current.str(), rng);
      } else if (kind < 8) {
        replacement = Truncate(current.str(), rng);
      } else {
        // Swap in another tuple's value from the same column.
        data::TupleId other = static_cast<data::TupleId>(
            rng->Index(static_cast<size_t>(d->size())));
        replacement = d->tuple(other).value(a).str();
      }
      if (replacement == current.str()) {
        replacement = Typo(current.str(), rng);
      }
      if (replacement == current.str()) continue;  // 1-char edge cases
      d->mutable_tuple(t).set_value(a, data::Value(replacement));
      ++corrupted;
    }
  }
  return corrupted;
}

std::unordered_map<data::AttributeId, double> PremiseNoiseScale(
    const rules::RuleSet& ruleset, double boost) {
  std::unordered_map<data::AttributeId, double> scale;
  if (boost == 1.0) return scale;
  for (const rules::Md& md : ruleset.mds()) {
    for (const rules::MdClause& c : md.premise()) {
      scale[c.data_attr] = boost;
    }
  }
  return scale;
}

void AssignConfidence(data::Relation* d, const data::Relation& truth,
                      double asserted_rate, Rng* rng) {
  UC_CHECK(d != nullptr);
  UC_CHECK_EQ(d->size(), truth.size());
  for (data::TupleId t = 0; t < d->size(); ++t) {
    for (data::AttributeId a = 0; a < d->schema().arity(); ++a) {
      bool correct = d->tuple(t).value(a) == truth.tuple(t).value(a);
      double cf =
          (correct && rng->Bernoulli(asserted_rate)) ? 1.0 : 0.0;
      d->mutable_tuple(t).set_confidence(a, cf);
    }
  }
}

}  // namespace gen
}  // namespace uniclean
