// Noise injection and confidence assignment shared by all generators (§8's
// dirty-data protocol).

#ifndef UNICLEAN_GEN_CORRUPT_H_
#define UNICLEAN_GEN_CORRUPT_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "data/relation.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace gen {

/// Corrupts cells of `d` restricted to `noisy_attrs` (the attributes the
/// rules cover — errors elsewhere are unrepairable by construction and
/// would only shift recall by a constant). Error kinds: character-level
/// typos (60%), truncation to a prefix (20%, abbreviation-style errors
/// such as "Yes" -> "Y") and value swaps within the column (20%, wrong but
/// plausible values). Each attribute in `noisy_attrs` is corrupted at
/// `noise_rate`, scaled by its entry in `rate_scale` if present (capped at
/// 0.9). Returns the number of cells corrupted.
int InjectNoise(data::Relation* d,
                const std::vector<data::AttributeId>& noisy_attrs,
                double noise_rate, Rng* rng,
                const std::unordered_map<data::AttributeId, double>&
                    rate_scale = {});

/// Rate-scale map boosting every MD premise attribute by `boost` (identity
/// map when boost == 1).
std::unordered_map<data::AttributeId, double> PremiseNoiseScale(
    const rules::RuleSet& ruleset, double boost);

/// The asr% protocol: for each attribute, each tuple whose cell is still
/// correct (equal to `truth`) is asserted with confidence 1.0 with
/// probability `asserted_rate`; every other cell gets confidence 0.0. The
/// paper assumes asserted confidence is placed correctly (§5.1), hence the
/// restriction to correct cells.
void AssignConfidence(data::Relation* d, const data::Relation& truth,
                      double asserted_rate, Rng* rng);

}  // namespace gen
}  // namespace uniclean

#endif  // UNICLEAN_GEN_CORRUPT_H_
