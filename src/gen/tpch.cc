// TPC-H generator: the §8 synthetic workload — every benchmark table joined
// into one 58-attribute relation, 55 CFDs derived from the schema's key /
// foreign-key dependencies (plus optional extra pattern CFDs for the |Σ|
// sweep of Fig. 14(g)) and 10 MDs against a customer master relation (plus
// optional extras for the |Γ| sweep of Fig. 14(h)).

#include <string>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "data/relation.h"
#include "data/schema.h"
#include "gen/corrupt.h"
#include "gen/dataset.h"
#include "gen/words.h"
#include "rules/parser.h"

namespace uniclean {
namespace gen {

namespace {

struct Nation {
  std::string name;
  int region;
  std::string phonecc;
};

struct Customer {
  std::string key;
  std::string name;
  std::string address;
  std::string phone;
  std::string acctbal;
  std::string mktsegment;
  int nation;
  std::string comment;
};

struct Supplier {
  std::string key;
  std::string name;
  std::string address;
  std::string phone;
  std::string acctbal;
  int nation;
  std::string comment;
};

struct Part {
  std::string key;
  std::string name;
  std::string mfgr;
  std::string brand;
  std::string type;
  std::string category;
  std::string size;
  std::string container;
  std::string retailprice;
  std::string comment;
};

struct Order {
  std::string key;
  int customer;
  std::string status;
  std::string totalprice;
  std::string date;
  std::string year;
  std::string quarter;
  std::string priority;
  std::string clerk;
  std::string clerkdept;
  std::string shippriority;
  std::string comment;
};

struct Universe {
  std::vector<std::string> regions;
  std::vector<Nation> nations;
  std::vector<Customer> customers;  // master ones first
  std::vector<Supplier> suppliers;
  std::vector<Part> parts;
  std::vector<Order> orders;
  std::vector<std::string> words;
  int num_master_customers = 0;
};

std::string Pick(const std::vector<std::string>& pool, Rng* rng) {
  return pool[rng->Index(pool.size())];
}

Universe BuildUniverse(const GeneratorConfig& config, Rng* rng) {
  Universe u;
  u.words = BuildWordPool(500, rng);
  for (int i = 0; i < 5; ++i) u.regions.push_back("REGION" + std::to_string(i));
  for (int i = 0; i < 25; ++i) {
    Nation n;
    n.name = "NATION" + std::to_string(i);
    n.region = i % 5;
    n.phonecc = std::to_string(10 + i);
    u.nations.push_back(std::move(n));
  }
  const int extra = std::max(64, config.master_size / 2);
  const int total_customers = config.master_size + extra;
  // Names are unique three-word phrases and phone bodies are unique random
  // digit strings: distinct customers stay far apart under the fuzzy MD
  // premises (jw / edit), as distinct entities do in real data.
  std::unordered_set<std::string> used_names;
  std::unordered_set<std::string> used_phones;
  for (int i = 0; i < total_customers; ++i) {
    Customer c;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "C%07d", i);
    c.key = buf;
    do {
      c.name = Pick(u.words, rng) + " " + Pick(u.words, rng) + " " +
               Pick(u.words, rng);
    } while (!used_names.insert(c.name).second);
    c.address = std::to_string(rng->Uniform(1, 9999)) + " " +
                Pick(u.words, rng) + " Ave";
    c.nation = static_cast<int>(rng->Index(u.nations.size()));
    std::string body;
    do {
      body = std::to_string(rng->Uniform(1000000, 9999999));
    } while (!used_phones.insert(body).second);
    c.phone = u.nations[static_cast<size_t>(c.nation)].phonecc + "-" + body;
    c.acctbal = std::to_string(rng->Uniform(-999, 9999)) + ".00";
    static const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                      "HOUSEHOLD", "MACHINERY"};
    c.mktsegment = kSegments[rng->Index(std::size(kSegments))];
    c.comment = Pick(u.words, rng);
    u.customers.push_back(std::move(c));
  }
  u.num_master_customers = config.master_size;
  for (int i = 0; i < 200; ++i) {
    Supplier s;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "S%06d", i);
    s.key = buf;
    s.name = Pick(u.words, rng) + " supply " + Pick(u.words, rng);
    s.address = std::to_string(rng->Uniform(1, 9999)) + " " +
                Pick(u.words, rng) + " Rd";
    s.nation = static_cast<int>(rng->Index(u.nations.size()));
    s.phone = u.nations[static_cast<size_t>(s.nation)].phonecc + "-" +
              std::to_string(2000000 + i);
    s.acctbal = std::to_string(rng->Uniform(-999, 9999)) + ".00";
    s.comment = Pick(u.words, rng);
    u.suppliers.push_back(std::move(s));
  }
  static const char* kContainers[] = {"SM BOX", "LG CASE", "MED DRUM",
                                      "JUMBO JAR"};
  for (int i = 0; i < 400; ++i) {
    Part p;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "PA%05d", i);
    p.key = buf;
    p.name = Pick(u.words, rng) + " " + Pick(u.words, rng);
    int mfgr = static_cast<int>(rng->Index(static_cast<size_t>(5)));
    p.mfgr = "Manufacturer#" + std::to_string(mfgr);
    p.brand = "Brand#" + std::to_string(mfgr) + std::to_string(rng->Uniform(1, 5));
    static const char* kTypes[] = {"ECONOMY BRASS", "STANDARD STEEL",
                                   "PROMO COPPER", "SMALL NICKEL"};
    p.type = kTypes[rng->Index(std::size(kTypes))];
    p.category = p.type.substr(0, p.type.find(' '));
    p.size = std::to_string(rng->Uniform(1, 50));
    p.container = kContainers[rng->Index(std::size(kContainers))];
    p.retailprice = std::to_string(rng->Uniform(900, 2000)) + ".00";
    p.comment = Pick(u.words, rng);
    u.parts.push_back(std::move(p));
  }
  const int num_orders = std::max(200, config.num_tuples / 3);
  for (int i = 0; i < num_orders; ++i) {
    Order o;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "O%08d", i);
    o.key = buf;
    o.customer = static_cast<int>(rng->Index(u.customers.size()));
    o.status = rng->Bernoulli(0.5) ? "O" : "F";
    o.totalprice = std::to_string(rng->Uniform(1000, 400000)) + ".00";
    int year = 1992 + static_cast<int>(rng->Index(7));
    int month = 1 + static_cast<int>(rng->Index(12));
    o.date = std::to_string(year) + "-" +
             (month < 10 ? "0" : "") + std::to_string(month) + "-15";
    o.year = std::to_string(year);
    o.quarter = "Q" + std::to_string((month - 1) / 3 + 1);
    static const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                        "4-NOT SPECIFIED", "5-LOW"};
    o.priority = kPriorities[rng->Index(std::size(kPriorities))];
    int clerk = static_cast<int>(rng->Index(static_cast<size_t>(100)));
    o.clerk = "Clerk#" + std::to_string(clerk);
    o.clerkdept = "Dept" + std::to_string(clerk % 10);
    o.shippriority = "0";
    o.comment = Pick(u.words, rng);
    u.orders.push_back(std::move(o));
  }
  return u;
}

std::string RuleText(const Universe& u, const GeneratorConfig& config) {
  std::string text = R"(# TPC-H rules: 55 CFDs + 10 MDs (see generator)
CFD o1: o_orderkey -> o_orderstatus
CFD o2: o_orderkey -> o_totalprice
CFD o3: o_orderkey -> o_orderdate
CFD o4: o_orderkey -> o_orderpriority
CFD o5: o_orderkey -> o_clerk
CFD o6: o_orderkey -> o_shippriority
CFD o7: o_orderkey -> o_comment
CFD o8: o_orderkey -> c_custkey
CFD o9: o_orderdate -> o_orderyear
CFD o10: o_orderdate -> o_orderquarter
CFD o11: o_clerk -> o_clerkdept
CFD c1: c_custkey -> c_name
CFD c2: c_custkey -> c_address
CFD c3: c_custkey -> c_phone
CFD c4: c_custkey -> c_acctbal
CFD c5: c_custkey -> c_mktsegment
CFD c6: c_custkey -> c_nationkey
CFD c7: c_custkey -> c_comment
CFD c8: c_nationkey -> c_nationname
CFD c9: c_nationkey -> c_regionkey
CFD c10: c_nationkey -> c_phonecc
CFD c11: c_regionkey -> c_regionname
CFD s1: s_suppkey -> s_name
CFD s2: s_suppkey -> s_address
CFD s3: s_suppkey -> s_phone
CFD s4: s_suppkey -> s_acctbal
CFD s5: s_suppkey -> s_nationkey
CFD s6: s_suppkey -> s_comment
CFD s7: s_nationkey -> s_nationname
CFD s8: s_nationkey -> s_regionkey
CFD s9: s_nationkey -> s_phonecc
CFD s10: s_regionkey -> s_regionname
CFD p1: p_partkey -> p_name
CFD p2: p_partkey -> p_mfgr
CFD p3: p_partkey -> p_brand
CFD p4: p_partkey -> p_type
CFD p5: p_partkey -> p_size
CFD p6: p_partkey -> p_container
CFD p7: p_partkey -> p_retailprice
CFD p8: p_partkey -> p_comment
CFD p9: p_brand -> p_mfgr
CFD p10: p_type -> p_category
CFD l1: l_shipdate -> l_shipyear
CFD k1: l_returnflag='R' -> l_linestatus='F'
CFD k2: l_shipmode='A' -> l_shipmode='AIR'
)";
  // Ten nation -> region constant CFDs from the generated universe.
  for (int i = 0; i < 5; ++i) {
    const Nation& n = u.nations[static_cast<size_t>(i * 3)];
    text += "CFD kn" + std::to_string(i) + ": c_nationname='" + n.name +
            "' -> c_regionname='" +
            u.regions[static_cast<size_t>(n.region)] + "'\n";
    text += "CFD ks" + std::to_string(i) + ": s_nationname='" + n.name +
            "' -> s_regionname='" +
            u.regions[static_cast<size_t>(n.region)] + "'\n";
  }
  // Extra pattern CFDs for the |Σ| scalability sweep: nation facts repeated
  // over all 25 nations with distinct rule names (each is checked
  // independently by the engines).
  for (int i = 0; i < config.extra_cfds; ++i) {
    const Nation& n = u.nations[static_cast<size_t>(i) % u.nations.size()];
    text += "CFD x" + std::to_string(i) + ": c_nationname='" + n.name +
            "' -> c_phonecc='" + n.phonecc + "'\n";
  }
  text += R"(MD m1: c_custkey=c_custkey -> c_name:=c_name, c_address:=c_address
MD m2: c_name ~jw:0.85 c_name & c_phone=c_phone -> c_address:=c_address, c_acctbal:=c_acctbal
MD m3: c_phone=c_phone -> c_custkey:=c_custkey
MD m4: c_name ~jw:0.90 c_name & c_address ~edit:3 c_address -> c_phone:=c_phone
MD m5: c_custkey=c_custkey & c_name ~jw:0.80 c_name -> c_mktsegment:=c_mktsegment
MD m6: c_name ~edit:2 c_name & c_nationname=c_nationname -> c_phone:=c_phone
MD m7: c_phone ~edit:1 c_phone & c_name ~jw:0.85 c_name -> c_name:=c_name
MD m8: c_custkey=c_custkey -> c_nationname:=c_nationname
MD m9: c_name ~jw:0.95 c_name -> c_custkey:=c_custkey
MD m10: c_address ~edit:2 c_address & c_phone=c_phone -> c_name:=c_name
)";
  for (int i = 0; i < config.extra_mds; ++i) {
    text += "MD mx" + std::to_string(i) + ": c_name ~jw:0." +
            std::to_string(80 + (i % 15)) +
            " c_name & c_phone=c_phone -> c_address:=c_address\n";
  }
  return text;
}

}  // namespace

Dataset GenerateTpch(const GeneratorConfig& config) {
  Rng rng(config.seed + 2);
  Universe u = BuildUniverse(config, &rng);

  auto data_schema = data::MakeSchema(
      "tpch",
      {// lineitem (14)
       "l_linenumber", "l_quantity", "l_extendedprice", "l_discount",
       "l_tax", "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
       "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment",
       "l_shipyear",
       // orders (12)
       "o_orderkey", "o_orderstatus", "o_totalprice", "o_orderdate",
       "o_orderyear", "o_orderquarter", "o_orderpriority", "o_clerk",
       "o_clerkdept", "o_shippriority", "o_comment", "c_custkey",
       // customer (10)
       "c_name", "c_address", "c_phone", "c_phonecc", "c_acctbal",
       "c_mktsegment", "c_nationkey", "c_nationname", "c_regionkey",
       "c_regionname",
       // supplier (11)
       "s_suppkey", "s_name", "s_address", "s_phone", "s_phonecc",
       "s_acctbal", "s_nationkey", "s_nationname", "s_regionkey",
       "s_regionname", "s_comment",
       // part (11)
       "p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_category",
       "p_size", "p_container", "p_retailprice", "p_comment", "c_comment"});
  UC_CHECK_EQ(data_schema->arity(), 58);
  auto master_schema = data::MakeSchema(
      "tpch_master",
      {"c_custkey", "c_name", "c_address", "c_phone", "c_phonecc",
       "c_acctbal", "c_mktsegment", "c_nationname", "c_comment"});

  std::string rule_text = RuleText(u, config);
  auto rules_result =
      rules::ParseRuleSet(rule_text, data_schema, master_schema);
  UC_CHECK(rules_result.ok()) << rules_result.status().ToString();
  UC_CHECK_GE(static_cast<int>(rules_result->cfds().size()), 55);

  data::Relation master(master_schema);
  for (int i = 0; i < u.num_master_customers; ++i) {
    const Customer& c = u.customers[static_cast<size_t>(i)];
    const Nation& n = u.nations[static_cast<size_t>(c.nation)];
    master.AddRow({c.key, c.name, c.address, c.phone, n.phonecc, c.acctbal,
                   c.mktsegment, n.name, c.comment},
                  1.0);
  }

  // Orders on master customers produce a true match for their line items.
  data::Relation clean(data_schema);
  std::vector<std::pair<data::TupleId, data::TupleId>> true_matches;
  static const char* kModes[] = {"AIR", "MAIL", "SHIP", "TRUCK", "RAIL"};
  static const char* kInstr[] = {"DELIVER IN PERSON", "COLLECT COD",
                                 "TAKE BACK RETURN", "NONE"};
  for (int i = 0; i < config.num_tuples; ++i) {
    // Respect dup%: pick an order whose customer is (or is not) in master.
    bool want_dup = rng.Bernoulli(config.dup_rate);
    const Order* order = nullptr;
    for (int attempt = 0; attempt < 64 && order == nullptr; ++attempt) {
      const Order& candidate = u.orders[rng.Index(u.orders.size())];
      bool is_master = candidate.customer < u.num_master_customers;
      if (is_master == want_dup) order = &candidate;
    }
    if (order == nullptr) order = &u.orders[rng.Index(u.orders.size())];
    const Customer& c = u.customers[static_cast<size_t>(order->customer)];
    const Nation& cn = u.nations[static_cast<size_t>(c.nation)];
    const Supplier& s = u.suppliers[rng.Index(u.suppliers.size())];
    const Nation& sn = u.nations[static_cast<size_t>(s.nation)];
    const Part& p = u.parts[rng.Index(u.parts.size())];
    std::string returnflag = rng.Bernoulli(0.3) ? "R" : "N";
    std::string linestatus = returnflag == "R" ? "F" : "O";
    std::string shipdate = order->year + "-0" +
                           std::to_string(1 + rng.Uniform(0, 8)) + "-20";
    clean.AddRow(
        {std::to_string(1 + rng.Uniform(0, 6)),
         std::to_string(1 + rng.Uniform(0, 49)),
         std::to_string(rng.Uniform(1000, 90000)) + ".00",
         "0.0" + std::to_string(rng.Uniform(0, 9)),
         "0.0" + std::to_string(rng.Uniform(0, 8)), returnflag, linestatus,
         shipdate, shipdate, shipdate, kInstr[rng.Index(std::size(kInstr))],
         kModes[rng.Index(std::size(kModes))],
         Pick(u.words, &rng), order->year,
         order->key, order->status, order->totalprice, order->date,
         order->year, order->quarter, order->priority, order->clerk,
         order->clerkdept, order->shippriority, order->comment, c.key,
         c.name, c.address, c.phone, cn.phonecc, c.acctbal, c.mktsegment,
         "N" + std::to_string(c.nation), cn.name,
         "R" + std::to_string(cn.region),
         u.regions[static_cast<size_t>(cn.region)],
         s.key, s.name, s.address, s.phone, sn.phonecc, s.acctbal,
         "N" + std::to_string(s.nation), sn.name,
         "R" + std::to_string(sn.region),
         u.regions[static_cast<size_t>(sn.region)], s.comment,
         p.key, p.name, p.mfgr, p.brand, p.type, p.category, p.size,
         p.container, p.retailprice, p.comment, c.comment});
    if (order->customer < u.num_master_customers) {
      true_matches.emplace_back(i, order->customer);
    }
  }

  Dataset dataset("TPCH", std::move(master), std::move(clean),
                  std::move(rules_result).value());
  dataset.rule_text = std::move(rule_text);
  dataset.true_matches = std::move(true_matches);
  InjectNoise(&dataset.dirty, dataset.rules.RuleAttributes(),
              config.noise_rate, &rng,
              PremiseNoiseScale(dataset.rules,
                                config.md_premise_noise_boost));
  AssignConfidence(&dataset.dirty, dataset.clean, config.asserted_rate,
                   &rng);
  return dataset;
}

}  // namespace gen
}  // namespace uniclean
