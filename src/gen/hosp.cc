// HOSP generator: mirrors the US Dept. of Health & Human Services hospital
// dataset used by §8 — 19 attributes, 23 CFDs (15 FDs, 2 standardization
// rules, 6 zip-conditioned constant CFDs) and 3 MDs against a provider
// master relation.

#include <string>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "data/relation.h"
#include "data/schema.h"
#include "gen/corrupt.h"
#include "gen/dataset.h"
#include "gen/words.h"
#include "rules/parser.h"

namespace uniclean {
namespace gen {

namespace {

struct City {
  std::string name;
  int state;
  std::string county;
};

struct Provider {
  std::string id;
  std::string name;
  std::string address;
  std::string phone;
  int zip;
  std::string type;
  std::string owner;
  std::string emergency;
};

struct Measure {
  std::string code;
  std::string name;
  std::string condition;
};

struct Universe {
  std::vector<std::string> states;
  std::vector<City> cities;
  std::vector<std::pair<std::string, int>> zips;  // code -> city index
  std::vector<Provider> providers;                // master ones first
  std::vector<Measure> measures;
  std::vector<std::string> words;
  int num_master_providers = 0;
};

Universe BuildUniverse(const GeneratorConfig& config, Rng* rng) {
  Universe u;
  // A large vocabulary keeps distinct hospital names far apart under the
  // fuzzy MD predicates, so clean data satisfies the rules.
  u.words = BuildWordPool(400, rng);
  auto title_word = [&u, rng]() {
    std::string w = u.words[rng->Index(u.words.size())];
    w[0] = static_cast<char>(w[0] - 'a' + 'A');
    return w;
  };
  for (int i = 0; i < 20; ++i) {
    u.states.push_back("ST" + std::to_string(i));
  }
  for (int i = 0; i < 150; ++i) {
    City c;
    c.name = title_word() + " City " + std::to_string(i);
    c.state = static_cast<int>(rng->Index(u.states.size()));
    c.county = title_word() + " County";
    u.cities.push_back(std::move(c));
  }
  for (int i = 0; i < 300; ++i) {
    char code[8];
    std::snprintf(code, sizeof(code), "Z%05d", i * 37 % 100000);
    u.zips.emplace_back(code, static_cast<int>(rng->Index(u.cities.size())));
  }
  static const char* kTypes[] = {"Acute Care", "Critical Access",
                                 "Childrens"};
  static const char* kOwners[] = {"Government", "Proprietary", "Voluntary",
                                  "Church"};
  const int extra_providers =
      std::max(64, config.master_size / 2);  // providers without master rows
  const int total = config.master_size + extra_providers;
  std::unordered_set<std::string> used_names;
  for (int i = 0; i < total; ++i) {
    Provider p;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "P%06d", i);
    p.id = buf;
    p.zip = static_cast<int>(rng->Index(u.zips.size()));
    do {
      p.name = title_word() + " " + title_word() + " Hospital";
    } while (!used_names.insert(p.name).second);
    p.address = std::to_string(1 + rng->Uniform(0, 9998)) + " " +
                title_word() + " St";
    std::snprintf(buf, sizeof(buf), "555%07d", i);
    p.phone = buf;
    p.type = kTypes[rng->Index(std::size(kTypes))];
    p.owner = kOwners[rng->Index(std::size(kOwners))];
    p.emergency = rng->Bernoulli(0.7) ? "Yes" : "No";
    u.providers.push_back(std::move(p));
  }
  u.num_master_providers = config.master_size;
  static const char* kConditions[] = {"Heart Attack", "Heart Failure",
                                      "Pneumonia",    "Surgical Care",
                                      "Asthma",       "Stroke"};
  for (int i = 0; i < 60; ++i) {
    Measure m;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "MC%03d", i);
    m.code = buf;
    m.condition = kConditions[i % std::size(kConditions)];
    m.name = m.condition + " measure " + std::to_string(i);
    u.measures.push_back(std::move(m));
  }
  return u;
}

std::string StateAvg(const Universe& u, int state, const std::string& code) {
  // Deterministic per (state, measure): satisfies State,MeasureCode->StateAvg.
  size_t h = std::hash<std::string>()(u.states[static_cast<size_t>(state)] +
                                      "|" + code);
  return std::to_string(h % 1000) + "/1000";
}

std::string RuleText(const Universe& u) {
  std::string text = R"(# HOSP rules: 23 CFDs + 3 MDs
CFD f1: ZIP -> City
CFD f2: ZIP -> State
CFD f3: City -> County
CFD f4: City -> State
CFD f5: ProviderID -> HospitalName
CFD f6: ProviderID -> Address
CFD f7: ProviderID -> Phone
CFD f8: ProviderID -> ZIP
CFD f9: ProviderID -> HospitalType
CFD f10: ProviderID -> Owner
CFD f11: ProviderID -> EmergencyService
CFD f12: Phone -> ProviderID
CFD f13: MeasureCode -> MeasureName
CFD f14: MeasureCode -> Condition
CFD f15: State, MeasureCode -> StateAvg
CFD s1: EmergencyService='Y' -> EmergencyService='Yes'
CFD s2: EmergencyService='N' -> EmergencyService='No'
)";
  // Six zip-conditioned constant CFDs drawn from the generated universe.
  for (int i = 0; i < 6; ++i) {
    const auto& [code, city_idx] = u.zips[static_cast<size_t>(i * 11)];
    const City& city = u.cities[static_cast<size_t>(city_idx)];
    text += "CFD z" + std::to_string(i) + ": ZIP='" + code + "' -> City='" +
            city.name + "'\n";
  }
  text += R"(MD md1: ProviderID=ProviderID & HospitalName ~jw:0.75 HospitalName -> HospitalName:=HospitalName, Address:=Address, Phone:=Phone
MD md2: ZIP=ZIP & Phone=Phone & HospitalName ~jw:0.70 HospitalName -> HospitalName:=HospitalName, Address:=Address
MD md3: HospitalName ~jw:0.95 HospitalName & Address ~edit:3 Address -> Phone:=Phone, ZIP:=ZIP
)";
  return text;
}

}  // namespace

Dataset GenerateHosp(const GeneratorConfig& config) {
  Rng rng(config.seed);
  Universe u = BuildUniverse(config, &rng);

  auto data_schema = data::MakeSchema(
      "hosp",
      {"ProviderID", "HospitalName", "Address", "City", "State", "ZIP",
       "County", "Phone", "HospitalType", "Owner", "EmergencyService",
       "Condition", "MeasureCode", "MeasureName", "Score", "Sample",
       "StateAvg", "Rating", "FootNote"});
  UC_CHECK_EQ(data_schema->arity(), 19);
  auto master_schema = data::MakeSchema(
      "hosp_master", {"ProviderID", "HospitalName", "Address", "City",
                      "State", "ZIP", "County", "Phone"});

  std::string rule_text = RuleText(u);
  auto rules_result =
      rules::ParseRuleSet(rule_text, data_schema, master_schema);
  UC_CHECK(rules_result.ok()) << rules_result.status().ToString();

  auto provider_row = [&u](const Provider& p) {
    const auto& [zip_code, city_idx] = u.zips[static_cast<size_t>(p.zip)];
    const City& city = u.cities[static_cast<size_t>(city_idx)];
    return std::vector<std::string>{
        p.id,      p.name, p.address, city.name,
        u.states[static_cast<size_t>(city.state)], zip_code, city.county,
        p.phone};
  };

  data::Relation master(master_schema);
  for (int i = 0; i < u.num_master_providers; ++i) {
    master.AddRow(provider_row(u.providers[static_cast<size_t>(i)]), 1.0);
  }

  data::Relation clean(data_schema);
  std::vector<std::pair<data::TupleId, data::TupleId>> true_matches;
  for (int i = 0; i < config.num_tuples; ++i) {
    bool dup = rng.Bernoulli(config.dup_rate);
    size_t provider_idx =
        dup ? rng.Index(static_cast<size_t>(u.num_master_providers))
            : static_cast<size_t>(u.num_master_providers) +
                  rng.Index(u.providers.size() -
                            static_cast<size_t>(u.num_master_providers));
    const Provider& p = u.providers[provider_idx];
    const Measure& m = u.measures[rng.Index(u.measures.size())];
    const auto& [zip_code, city_idx] = u.zips[static_cast<size_t>(p.zip)];
    const City& city = u.cities[static_cast<size_t>(city_idx)];
    const std::string& state = u.states[static_cast<size_t>(city.state)];
    clean.AddRow({p.id, p.name, p.address, city.name, state, zip_code,
                  city.county, p.phone, p.type, p.owner, p.emergency,
                  m.condition, m.code, m.name,
                  std::to_string(rng.Uniform(0, 100)) + "%",
                  std::to_string(rng.Uniform(10, 900)) + " patients",
                  StateAvg(u, city.state, m.code),
                  std::to_string(rng.Uniform(1, 5)),
                  "note" + std::to_string(rng.Uniform(0, 9))});
    if (dup) {
      true_matches.emplace_back(i, static_cast<data::TupleId>(provider_idx));
    }
  }

  Dataset dataset("HOSP", std::move(master), std::move(clean),
                  std::move(rules_result).value());
  dataset.rule_text = std::move(rule_text);
  dataset.true_matches = std::move(true_matches);
  InjectNoise(&dataset.dirty, dataset.rules.RuleAttributes(),
              config.noise_rate, &rng,
              PremiseNoiseScale(dataset.rules,
                                config.md_premise_noise_boost));
  AssignConfidence(&dataset.dirty, dataset.clean, config.asserted_rate,
                   &rng);
  return dataset;
}

}  // namespace gen
}  // namespace uniclean
