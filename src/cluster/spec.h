// Cluster spec: the one file that tells every party — unicleanctl, the
// routing client, the tests — the same story about a cluster: which
// replicas exist (name + address), which rulesets are served (name + the
// file inputs an engine is built from), and the ring parameters
// (replication factor, vnodes, seed). Because the ring is a pure function
// of the spec, anyone holding the file computes identical ownership — there
// is no coordination service to ask.
//
// Line-oriented text, '#' comments, blank lines ignored:
//
//   replication 2
//   vnodes 64
//   seed 8457659301994554734        # optional; default RingOptions::seed
//   snapshot-dir /var/lib/uniclean  # optional; shared warm-start snapshots
//   workers 2                       # optional; per-daemon worker threads
//   replica r1 unix:/tmp/uc-r1.sock
//   replica r2 127.0.0.1:7701
//   ruleset hosp master.csv rules.txt schema.csv
//
// Relative paths are relative to the process's working directory (the
// tools resolve spec-relative paths before building one).

#ifndef UNICLEAN_CLUSTER_SPEC_H_
#define UNICLEAN_CLUSTER_SPEC_H_

#include <string>
#include <vector>

#include "cluster/ring.h"
#include "common/result.h"

namespace uniclean {
namespace cluster {

struct ReplicaSpec {
  std::string name;
  std::string address;  // "unix:PATH" or "host:port"
};

struct RulesetSpec {
  std::string name;
  std::string master_csv;
  std::string rules_file;
  std::string schema_csv;
};

struct ClusterSpec {
  int replication = 2;
  RingOptions ring;
  std::string snapshot_dir;
  int workers = 2;
  std::vector<ReplicaSpec> replicas;
  std::vector<RulesetSpec> rulesets;

  static Result<ClusterSpec> Parse(const std::string& text);
  static Result<ClusterSpec> Load(const std::string& path);

  /// The ring this spec describes (every replica added).
  Ring BuildRing() const;
  /// Owners(ruleset, replication) on the spec's ring.
  std::vector<std::string> OwnersOf(const std::string& ruleset) const;
  /// Rulesets whose owner list includes `replica` — what that replica's
  /// daemon is configured to serve.
  std::vector<std::string> RulesetsOwnedBy(const std::string& replica) const;
  /// NotFound when the name is absent.
  Result<ReplicaSpec> FindReplica(const std::string& name) const;
  Result<RulesetSpec> FindRuleset(const std::string& name) const;
};

}  // namespace cluster
}  // namespace uniclean

#endif  // UNICLEAN_CLUSTER_SPEC_H_
