// ClusterClient: ruleset-sharded routing over a fleet of unicleand
// replicas, layered on serve::Client. Each request's ruleset hashes through
// the consistent-hash ring (ring.h) to an ordered owner list of
// `replication` distinct replicas; the client walks that list — skipping
// ahead of replicas Membership marks down — until one serves the request.
//
// Failover contract (pinned by cluster_test):
//
//  * CLEAN fails over: on connect failure, transport error, or a
//    kUnavailable rejection that survives the per-replica RetryPolicy
//    budget, the client abandons the replica (reporting the failure to
//    Membership, dropping the cached connection) and retries the request on
//    the next owner. CLEAN is safe to re-send: a replica that died
//    mid-request took any partial session with its connection, and the
//    repair itself is deterministic — the re-run journal is byte-identical.
//    Semantic errors (InvalidArgument, a real NotFound, ...) surface
//    immediately: another replica would only say the same thing.
//
//  * DELTA never fails over. Tracked sessions are per-connection state on
//    the replica that opened them, so the cluster client pins each session
//    to that replica's cached connection and sends every DELTA there. If
//    the pinned replica (or its connection) dies, the DELTA fails with the
//    transport error and the session is forgotten — the caller re-CLEANs
//    with track to build a fresh session, exactly as with a single daemon
//    restart. Re-sending a DELTA elsewhere would double-apply edits against
//    an engine that never saw the original CLEAN.
//
//  * Session ids are cluster-minted. Daemon session ids are per-daemon
//    counters that collide across replicas, so a tracked CLEAN's reply
//    carries an id from this client's own space, mapped internally to
//    (replica, remote id).
//
//  * STATS fans out to every non-down replica and merges: counters sum,
//    latency histograms merge bucket-wise through the encoded form
//    (common/latency_histogram.h), so the cluster p99 is exactly what one
//    daemon serving all the traffic would have reported.
//
// Like serve::Client, a ClusterClient is driven by one thread; the
// Membership it shares may be probed concurrently from its own thread.

#ifndef UNICLEAN_CLUSTER_CLUSTER_CLIENT_H_
#define UNICLEAN_CLUSTER_CLUSTER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/membership.h"
#include "cluster/ring.h"
#include "common/result.h"
#include "serve/client.h"

namespace uniclean {
namespace cluster {

struct ClusterClientOptions {
  /// Owners consulted per ruleset (the ring's R): primary + R-1 failovers.
  int replication = 2;
  /// Per-replica kUnavailable retry budget (serve::Client semantics);
  /// exhausting it triggers failover to the next owner.
  serve::RetryPolicy retry;
  /// Socket IO timeout on every replica connection (0 = block forever).
  int io_timeout_ms = 0;
  /// Default deadline stamped on requests whose own deadline_ms is 0.
  uint32_t default_deadline_ms = 0;
};

class ClusterClient {
 public:
  /// The ring is copied (it is a value type); membership is shared with
  /// whoever runs the prober.
  ClusterClient(Ring ring, std::shared_ptr<Membership> membership,
                ClusterClientOptions options = {});

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  /// Routes by request.ruleset (must be non-empty — it is the shard key).
  /// With request.track, the reply's session_id is a cluster-level id for
  /// Delta()/CloseSession() on this client.
  Result<serve::CleanReply> Clean(const serve::CleanRequest& request);

  /// Sends to the replica the session is pinned to; never fails over.
  Result<serve::DeltaReply> Delta(const serve::DeltaRequest& request);

  Status CloseSession(uint64_t session_id);

  /// Fans STATS out to every non-down replica; returns the merged document.
  Result<std::string> Stats();

  const Ring& ring() const { return ring_; }
  Membership& membership() { return *membership_; }

  // --- test / metrics accessors -------------------------------------------
  /// Times a request abandoned one replica and moved to the next owner.
  uint64_t failovers() const { return failovers_; }
  /// The replica a cluster session is pinned to ("" = unknown id).
  std::string SessionReplica(uint64_t session_id) const;
  /// Replicas with a live cached connection.
  std::vector<std::string> ConnectedReplicas() const;

 private:
  /// Owner walk order for a key: ring owners, healthy before suspect
  /// before down (stable within a class, so ring order breaks ties).
  std::vector<std::string> RouteOrder(const std::string& key) const;
  /// Cached connection to `name`, dialling if needed.
  Result<serve::Client*> Conn(const std::string& name);
  /// Drops the cached connection and forgets every session pinned to it.
  void DropConn(const std::string& name);

  Ring ring_;
  std::shared_ptr<Membership> membership_;
  ClusterClientOptions options_;

  std::map<std::string, serve::Client> conns_;

  struct PinnedSession {
    std::string replica;
    uint64_t remote_id = 0;
  };
  std::map<uint64_t, PinnedSession> sessions_;
  uint64_t next_session_ = 1;
  uint64_t failovers_ = 0;
};

// --- STATS-merge helpers (exposed for tests) -------------------------------

/// The brace-balanced `{...}` text of `"<op>": {...}` inside the document's
/// "requests" object.
Result<std::string> StatsOpSection(const std::string& stats_json,
                                   const std::string& op);
/// An integer counter (e.g. "count", "errors") from an op's section.
Result<uint64_t> StatsOpCounter(const std::string& stats_json,
                                const std::string& op, const std::string& key);
/// The encoded latency histogram ("hist") from an op's section.
Result<std::string> StatsOpHist(const std::string& stats_json,
                                const std::string& op);

}  // namespace cluster
}  // namespace uniclean

#endif  // UNICLEAN_CLUSTER_CLUSTER_CLIENT_H_
