// Consistent-hash ring: deterministic ruleset -> replica ownership for the
// unicleand cluster (src/cluster/). Each replica contributes
// `vnodes_per_replica` virtual nodes whose positions are seeded splitmix64
// hashes of (replica name, vnode index); a ruleset's owners are the first R
// distinct replicas clockwise from the ruleset's own hash point. Properties
// the cluster relies on (pinned in cluster_test):
//
//  * Determinism — two Ring instances built from the same options and
//    membership answer every ownership query identically, on any host.
//    unicleanctl, the routing client and the tests all rebuild the ring
//    independently and must agree.
//
//  * Minimal movement — adding a replica to an N-replica ring reassigns
//    only ~1/(N+1) of the keyspace (the slices the new replica's vnodes
//    claim); removing one reassigns only the removed replica's share.
//    Everything else keeps its owner, which is what makes membership
//    changes cheap for a fleet of warm engines.
//
//  * Failover order — Owners(key, R) returns R distinct replicas; entry 0
//    is the primary, entries 1.. are the failover order the routing client
//    walks when the primary is down. The order is a pure function of the
//    key, so every client agrees on who takes over.
//
// The ring is a value type (copyable, no locking): clients rebuild or copy
// it on membership changes rather than mutating a shared instance.

#ifndef UNICLEAN_CLUSTER_RING_H_
#define UNICLEAN_CLUSTER_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace uniclean {
namespace cluster {

/// splitmix64 — the same cheap deterministic mixer serve::Client uses for
/// retry jitter. Exposed so spec/tests can reproduce ring points.
uint64_t SplitMix64(uint64_t x);

/// Seeded FNV-1a-then-splitmix hash of a string; the ring's only hash.
uint64_t HashKey(std::string_view key, uint64_t seed);

struct RingOptions {
  /// Virtual nodes per replica. More vnodes = smoother balance and finer
  /// movement granularity at O(vnodes log vnodes) rebuild cost.
  int vnodes_per_replica = 64;
  /// Hash seed. All parties of one cluster must agree on it.
  uint64_t seed = 0x756e69636c65616eull;  // "uniclean"
};

class Ring {
 public:
  explicit Ring(RingOptions options = {});

  /// Adds a replica's vnodes. InvalidArgument on duplicate/empty name.
  Status AddReplica(const std::string& name);
  /// Removes a replica and its vnodes. NotFound when absent.
  Status RemoveReplica(const std::string& name);
  bool Contains(const std::string& name) const;

  /// Replica names, sorted (not ring order).
  std::vector<std::string> replicas() const;
  int size() const { return static_cast<int>(names_.size()); }
  const RingOptions& options() const { return options_; }

  /// The first `count` distinct replicas clockwise from HashKey(key).
  /// Entry 0 is the primary; the rest are the failover order. Returns
  /// fewer than `count` when the ring has fewer replicas; empty on an
  /// empty ring.
  std::vector<std::string> Owners(std::string_view key, int count) const;
  /// Owners(key, 1) front, or "" on an empty ring.
  std::string PrimaryOwner(std::string_view key) const;

 private:
  struct VNode {
    uint64_t point;
    uint32_t replica;  // index into names_
  };

  void Rebuild();

  RingOptions options_;
  std::vector<std::string> names_;  // sorted; indexes are VNode::replica
  std::vector<VNode> vnodes_;      // sorted by (point, replica name)
};

}  // namespace cluster
}  // namespace uniclean

#endif  // UNICLEAN_CLUSTER_RING_H_
