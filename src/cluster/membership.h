// Cluster membership: per-replica health state driven off the PING opcode.
//
// A Membership holds one entry per replica (name + connectable address) and
// classifies each as healthy / suspect / down with hysteresis: a replica
// leaves `healthy` after `suspect_after` consecutive probe failures, hits
// `down` after `down_after`, and returns to `healthy` only after
// `healthy_after` consecutive successes — so one dropped probe cannot flap
// the routing table, and one lucky pong cannot resurrect a flapping
// replica.
//
// Probes are serve::Client::PingEx round trips under an IO timeout: a
// single cheap opcode yields liveness, instantaneous load (in-flight +
// queued) and per-ruleset engine fingerprints (the rolling-reload
// verification signal). Two probe styles share the same state machine:
//
//  * Start()/Stop() run a background prober thread at `probe_interval_ms`
//    (what unicleanctl status and long-lived routers use);
//
//  * ProbeAll()/ProbeOne() probe synchronously on the caller's thread
//    (what the tests and one-shot tools use);
//
// and the routing client feeds request outcomes in through
// ReportSuccess/ReportFailure, so a replica that dies between probes is
// marked without waiting for the prober to notice.
//
// Thread-safe: all state is behind one mutex; probes themselves run
// unlocked (a slow replica must not block health reads).

#ifndef UNICLEAN_CLUSTER_MEMBERSHIP_H_
#define UNICLEAN_CLUSTER_MEMBERSHIP_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"

namespace uniclean {
namespace cluster {

enum class Health { kHealthy, kSuspect, kDown };

/// "healthy" / "suspect" / "down".
const char* HealthName(Health h);

struct MembershipOptions {
  /// Background prober cadence (Start()); also the retry cadence for down
  /// replicas, so recovery is noticed within one interval.
  int probe_interval_ms = 200;
  /// Per-probe socket budget (connect + ping round trip).
  int probe_timeout_ms = 1000;
  /// Consecutive failures before healthy -> suspect.
  int suspect_after = 1;
  /// Consecutive failures before -> down.
  int down_after = 3;
  /// Consecutive successes before suspect/down -> healthy.
  int healthy_after = 1;
};

/// One replica's view, as of the last probe / report.
struct ReplicaStatus {
  std::string name;
  std::string address;  // "unix:PATH" or "host:port"
  Health health = Health::kHealthy;
  /// From the last successful probe's pong trailer.
  uint32_t inflight = 0;
  uint32_t queued = 0;
  std::vector<std::pair<std::string, uint64_t>> rulesets;
  uint64_t probes = 0;
  uint64_t failures = 0;
  int consecutive_failures = 0;
  int consecutive_successes = 0;
};

class Membership {
 public:
  explicit Membership(MembershipOptions options = {});
  /// Stops the prober thread if running.
  ~Membership();

  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  /// Registers a replica (initially healthy — optimistic, so a fresh router
  /// routes immediately and demotes on evidence). InvalidArgument on
  /// duplicate/empty name.
  Status AddReplica(const std::string& name, const std::string& address);

  Health health(const std::string& name) const;
  /// NotFound for unknown names.
  Result<ReplicaStatus> status(const std::string& name) const;
  /// Every replica's status, sorted by name.
  std::vector<ReplicaStatus> Snapshot() const;
  Result<std::string> address(const std::string& name) const;

  /// One synchronous probe of every replica (callers' thread; no prober
  /// needed). Returns the number of replicas that answered.
  int ProbeAll();
  /// One synchronous probe of one replica; true = it answered.
  bool ProbeOne(const std::string& name);

  /// Request-outcome feedback from the routing client: a transport failure
  /// counts like a failed probe, a served request like a successful one
  /// (without load/fingerprint data).
  void ReportFailure(const std::string& name);
  void ReportSuccess(const std::string& name);

  /// Spawns the background prober. Idempotent.
  void Start();
  /// Stops and joins the prober. Idempotent; also run by the destructor.
  void Stop();

  const MembershipOptions& options() const { return options_; }

 private:
  struct Entry;

  /// Applies one probe/report outcome to the hysteresis state machine.
  void Apply(Entry& entry, bool ok);
  void ProberLoop();

  struct Entry {
    ReplicaStatus status;
  };

  MembershipOptions options_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // sorted by name

  std::thread prober_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace cluster
}  // namespace uniclean

#endif  // UNICLEAN_CLUSTER_MEMBERSHIP_H_
