#include "cluster/membership.h"

#include <algorithm>
#include <chrono>

#include "serve/client.h"

namespace uniclean {
namespace cluster {

const char* HealthName(Health h) {
  switch (h) {
    case Health::kHealthy:
      return "healthy";
    case Health::kSuspect:
      return "suspect";
    case Health::kDown:
      return "down";
  }
  return "unknown";
}

Membership::Membership(MembershipOptions options) : options_(options) {
  if (options_.suspect_after < 1) options_.suspect_after = 1;
  if (options_.down_after < options_.suspect_after) {
    options_.down_after = options_.suspect_after;
  }
  if (options_.healthy_after < 1) options_.healthy_after = 1;
}

Membership::~Membership() { Stop(); }

Status Membership::AddReplica(const std::string& name,
                              const std::string& address) {
  if (name.empty()) {
    return Status::InvalidArgument("membership: replica name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.status.name == name) {
      return Status::InvalidArgument("membership: duplicate replica '" + name +
                                     "'");
    }
  }
  Entry entry;
  entry.status.name = name;
  entry.status.address = address;
  entries_.push_back(std::move(entry));
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.status.name < b.status.name;
            });
  return Status::OK();
}

Health Membership::health(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.status.name == name) return e.status.health;
  }
  // An unknown replica is worse than a down one; routing skips it either
  // way.
  return Health::kDown;
}

Result<ReplicaStatus> Membership::status(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.status.name == name) return e.status;
  }
  return Status::NotFound("membership: unknown replica '" + name + "'");
}

std::vector<ReplicaStatus> Membership::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReplicaStatus> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.status);
  return out;
}

Result<std::string> Membership::address(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.status.name == name) return e.status.address;
  }
  return Status::NotFound("membership: unknown replica '" + name + "'");
}

void Membership::Apply(Entry& entry, bool ok) {
  ReplicaStatus& s = entry.status;
  if (ok) {
    s.consecutive_failures = 0;
    ++s.consecutive_successes;
    if (s.health != Health::kHealthy &&
        s.consecutive_successes >= options_.healthy_after) {
      s.health = Health::kHealthy;
    }
  } else {
    s.consecutive_successes = 0;
    ++s.consecutive_failures;
    ++s.failures;
    if (s.consecutive_failures >= options_.down_after) {
      s.health = Health::kDown;
    } else if (s.consecutive_failures >= options_.suspect_after) {
      s.health = Health::kSuspect;
    }
  }
}

bool Membership::ProbeOne(const std::string& name) {
  std::string address;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool found = false;
    for (Entry& e : entries_) {
      if (e.status.name == name) {
        address = e.status.address;
        ++e.status.probes;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  // Probe unlocked: a hung replica must stall only this probe, never a
  // health() read.
  serve::PingInfo info;
  bool ok = false;
  Result<serve::Client> client = serve::Client::ConnectAddress(address);
  if (client.ok()) {
    (void)client.value().SetIoTimeoutMs(options_.probe_timeout_ms);
    Result<serve::PingInfo> pong = client.value().PingEx();
    if (pong.ok()) {
      info = std::move(pong).value();
      ok = true;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.status.name != name) continue;
    Apply(e, ok);
    if (ok) {
      e.status.inflight = info.inflight;
      e.status.queued = info.queued;
      e.status.rulesets = std::move(info.rulesets);
    }
    break;
  }
  return ok;
}

int Membership::ProbeAll() {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(entries_.size());
    for (const Entry& e : entries_) names.push_back(e.status.name);
  }
  int answered = 0;
  for (const std::string& name : names) {
    if (ProbeOne(name)) ++answered;
  }
  return answered;
}

void Membership::ReportFailure(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.status.name == name) {
      Apply(e, false);
      return;
    }
  }
}

void Membership::ReportSuccess(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.status.name == name) {
      Apply(e, true);
      return;
    }
  }
}

void Membership::Start() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (started_) return;
  stopping_ = false;
  started_ = true;
  prober_ = std::thread(&Membership::ProberLoop, this);
}

void Membership::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  std::lock_guard<std::mutex> lock(stop_mu_);
  started_ = false;
}

void Membership::ProberLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      if (stop_cv_.wait_for(
              lock, std::chrono::milliseconds(options_.probe_interval_ms),
              [&] { return stopping_; })) {
        return;
      }
    }
    ProbeAll();
  }
}

}  // namespace cluster
}  // namespace uniclean
