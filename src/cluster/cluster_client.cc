#include "cluster/cluster_client.h"

#include <algorithm>
#include <utility>

#include "common/latency_histogram.h"

namespace uniclean {
namespace cluster {

namespace {

/// True for failures that indict the replica/connection rather than the
/// request: these are the (only) failover triggers. Transport failures from
/// serve/wire.cc carry their syscall in the message ("connect: ...",
/// "recv: ...", "send: ..."), and a vanished peer surfaces as NotFound
/// ("peer closed the connection") or Corruption ("... mid-frame") from the
/// frame layer — all distinct from the daemon's semantic kError replies,
/// which mean every replica would answer the same and must surface.
bool IsReplicaFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
      // Admission rejection that survived the per-replica retry budget:
      // this replica is overloaded, another owner may not be.
      return true;
    case StatusCode::kInternal:
      return status.message().find("connect:") != std::string::npos ||
             status.message().find("recv:") != std::string::npos ||
             status.message().find("send:") != std::string::npos;
    case StatusCode::kNotFound:
      return status.message().find("peer closed") != std::string::npos;
    case StatusCode::kCorruption:
      return status.message().find("mid-frame") != std::string::npos ||
             status.message().find("truncated") != std::string::npos;
    default:
      return false;
  }
}

int HealthRank(Health h) {
  switch (h) {
    case Health::kHealthy:
      return 0;
    case Health::kSuspect:
      return 1;
    case Health::kDown:
      return 2;
  }
  return 3;
}

}  // namespace

ClusterClient::ClusterClient(Ring ring, std::shared_ptr<Membership> membership,
                             ClusterClientOptions options)
    : ring_(std::move(ring)),
      membership_(std::move(membership)),
      options_(options) {
  if (options_.replication < 1) options_.replication = 1;
}

std::vector<std::string> ClusterClient::RouteOrder(
    const std::string& key) const {
  std::vector<std::string> owners = ring_.Owners(key, options_.replication);
  // Down replicas go last rather than being skipped: health data can be
  // stale, and when every owner looks down the request should still be
  // tried somewhere instead of failing without a connection attempt.
  std::stable_sort(owners.begin(), owners.end(),
                   [&](const std::string& a, const std::string& b) {
                     return HealthRank(membership_->health(a)) <
                            HealthRank(membership_->health(b));
                   });
  return owners;
}

Result<serve::Client*> ClusterClient::Conn(const std::string& name) {
  auto it = conns_.find(name);
  if (it != conns_.end()) return &it->second;
  UC_ASSIGN_OR_RETURN(std::string address, membership_->address(name));
  UC_ASSIGN_OR_RETURN(serve::Client client,
                      serve::Client::ConnectAddress(address));
  if (options_.io_timeout_ms > 0) {
    UC_RETURN_IF_ERROR(client.SetIoTimeoutMs(options_.io_timeout_ms));
  }
  client.set_retry_policy(options_.retry);
  if (options_.default_deadline_ms > 0) {
    client.set_default_deadline_ms(options_.default_deadline_ms);
  }
  return &conns_.emplace(name, std::move(client)).first->second;
}

void ClusterClient::DropConn(const std::string& name) {
  conns_.erase(name);
  // Sessions pinned to that connection died with it server-side; forget
  // them so a later Delta fails fast with a clear error.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.replica == name) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<serve::CleanReply> ClusterClient::Clean(
    const serve::CleanRequest& request) {
  if (request.ruleset.empty()) {
    return Status::InvalidArgument(
        "cluster clean: ruleset name is the shard key and must be non-empty");
  }
  const std::vector<std::string> route = RouteOrder(request.ruleset);
  if (route.empty()) {
    return Status::FailedPrecondition("cluster clean: the ring is empty");
  }
  Status last = Status::Unavailable("no owner reachable for ruleset '" +
                                    request.ruleset + "'");
  for (size_t i = 0; i < route.size(); ++i) {
    const std::string& name = route[i];
    if (i > 0) ++failovers_;
    Result<serve::Client*> conn = Conn(name);
    if (!conn.ok()) {
      membership_->ReportFailure(name);
      last = conn.status();
      continue;
    }
    Result<serve::CleanReply> reply = conn.value()->Clean(request);
    if (reply.ok()) {
      membership_->ReportSuccess(name);
      if (request.track) {
        // Remap the per-daemon session id into this client's space and pin
        // it to the replica (and connection) that owns it.
        const uint64_t cluster_id = next_session_++;
        sessions_[cluster_id] = {name, reply.value().session_id};
        reply.value().session_id = cluster_id;
      }
      return reply;
    }
    if (!IsReplicaFailure(reply.status())) return reply;  // semantic: surface
    membership_->ReportFailure(name);
    DropConn(name);
    last = reply.status();
  }
  return last;
}

Result<serve::DeltaReply> ClusterClient::Delta(
    const serve::DeltaRequest& request) {
  auto it = sessions_.find(request.session_id);
  if (it == sessions_.end()) {
    return Status::NotFound(
        "cluster delta: unknown session " + std::to_string(request.session_id) +
        " (never opened, closed, or lost with its pinned replica — re-CLEAN "
        "with track to open a new one)");
  }
  const std::string replica = it->second.replica;
  serve::DeltaRequest remote = request;
  remote.session_id = it->second.remote_id;
  UC_ASSIGN_OR_RETURN(serve::Client * conn, Conn(replica));
  Result<serve::DeltaReply> reply = conn->Delta(remote);
  if (!reply.ok() && IsReplicaFailure(reply.status())) {
    // The pinned replica is gone and its session with it. No cross-replica
    // retry: no other engine saw this session's CLEAN, so re-sending the
    // delta would apply edits against the wrong base state.
    membership_->ReportFailure(replica);
    DropConn(replica);
    return Status::Unavailable(
        "cluster delta: session " + std::to_string(request.session_id) +
        " was pinned to replica '" + replica +
        "', which failed mid-request (" + reply.status().ToString() +
        "); the session is gone — re-CLEAN with track");
  }
  if (reply.ok()) membership_->ReportSuccess(replica);
  return reply;
}

Status ClusterClient::CloseSession(uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("cluster close: unknown session " +
                            std::to_string(session_id));
  }
  const std::string replica = it->second.replica;
  const uint64_t remote_id = it->second.remote_id;
  sessions_.erase(it);
  UC_ASSIGN_OR_RETURN(serve::Client * conn, Conn(replica));
  Status status = conn->CloseSession(remote_id);
  if (!status.ok() && IsReplicaFailure(status)) {
    // The connection (and with it the session) is already gone server-side;
    // closing a dead session is not an error worth surfacing.
    DropConn(replica);
    return Status::OK();
  }
  return status;
}

std::string ClusterClient::SessionReplica(uint64_t session_id) const {
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? std::string() : it->second.replica;
}

std::vector<std::string> ClusterClient::ConnectedReplicas() const {
  std::vector<std::string> out;
  out.reserve(conns_.size());
  for (const auto& [name, conn] : conns_) out.push_back(name);
  return out;
}

// ---------------------------------------------------------------------------
// STATS fan-out + merge
// ---------------------------------------------------------------------------

Result<std::string> StatsOpSection(const std::string& stats_json,
                                   const std::string& op) {
  const size_t requests = stats_json.find("\"requests\"");
  if (requests == std::string::npos) {
    return Status::Corruption("stats: no \"requests\" object");
  }
  const std::string needle = "\"" + op + "\": {";
  const size_t at = stats_json.find(needle, requests);
  if (at == std::string::npos) {
    return Status::NotFound("stats: no section for op " + op);
  }
  // Brace-balance from the section's opening brace; the requests object
  // holds only counters and encoded-histogram tokens, no brace-bearing
  // strings.
  size_t pos = at + needle.size() - 1;
  int depth = 0;
  for (size_t i = pos; i < stats_json.size(); ++i) {
    if (stats_json[i] == '{') ++depth;
    if (stats_json[i] == '}' && --depth == 0) {
      return stats_json.substr(pos, i - pos + 1);
    }
  }
  return Status::Corruption("stats: unbalanced braces in op section " + op);
}

Result<uint64_t> StatsOpCounter(const std::string& stats_json,
                                const std::string& op,
                                const std::string& key) {
  UC_ASSIGN_OR_RETURN(std::string section, StatsOpSection(stats_json, op));
  const std::string needle = "\"" + key + "\": ";
  const size_t at = section.find(needle);
  if (at == std::string::npos) {
    return Status::NotFound("stats: op " + op + " has no key " + key);
  }
  uint64_t v = 0;
  size_t i = at + needle.size();
  if (i >= section.size() || section[i] < '0' || section[i] > '9') {
    return Status::Corruption("stats: non-numeric value for " + op + "." + key);
  }
  for (; i < section.size() && section[i] >= '0' && section[i] <= '9'; ++i) {
    v = v * 10 + static_cast<uint64_t>(section[i] - '0');
  }
  return v;
}

Result<std::string> StatsOpHist(const std::string& stats_json,
                                const std::string& op) {
  UC_ASSIGN_OR_RETURN(std::string section, StatsOpSection(stats_json, op));
  const std::string needle = "\"hist\": \"";
  const size_t at = section.find(needle);
  if (at == std::string::npos) {
    return Status::NotFound("stats: op " + op + " has no hist field");
  }
  const size_t start = at + needle.size();
  const size_t end = section.find('"', start);
  if (end == std::string::npos) {
    return Status::Corruption("stats: unterminated hist string for op " + op);
  }
  return section.substr(start, end - start);
}

Result<std::string> ClusterClient::Stats() {
  struct PerReplica {
    std::string name;
    Health health;
    std::string json;  // empty = unreachable
  };
  std::vector<PerReplica> replicas;
  int responding = 0;
  for (const ReplicaStatus& status : membership_->Snapshot()) {
    PerReplica pr;
    pr.name = status.name;
    pr.health = status.health;
    if (status.health != Health::kDown) {
      Result<serve::Client*> conn = Conn(status.name);
      if (conn.ok()) {
        Result<std::string> json = conn.value()->Stats();
        if (json.ok()) {
          pr.json = std::move(json).value();
          membership_->ReportSuccess(status.name);
          ++responding;
        } else if (IsReplicaFailure(json.status())) {
          membership_->ReportFailure(status.name);
          DropConn(status.name);
        }
      } else {
        membership_->ReportFailure(status.name);
      }
    }
    replicas.push_back(std::move(pr));
  }

  static const char* kKeys[] = {"count", "errors", "rejected", "cancelled",
                                "deadline_exceeded"};
  std::string out = "{\n";
  out += "  \"cluster\": {\"replicas\": " + std::to_string(replicas.size()) +
         ", \"responding\": " + std::to_string(responding) + "},\n";
  out += "  \"requests\": {";
  bool first_op = true;
  for (int op = static_cast<int>(serve::Op::kPing);
       op <= static_cast<int>(serve::Op::kCancel); ++op) {
    const char* op_name = serve::OpName(static_cast<serve::Op>(op));
    uint64_t sums[5] = {0, 0, 0, 0, 0};
    LatencyHistogram merged;
    for (const PerReplica& pr : replicas) {
      if (pr.json.empty()) continue;
      for (int k = 0; k < 5; ++k) {
        Result<uint64_t> v = StatsOpCounter(pr.json, op_name, kKeys[k]);
        if (v.ok()) sums[k] += v.value();
      }
      Result<std::string> hist = StatsOpHist(pr.json, op_name);
      if (hist.ok()) merged.MergeEncoded(hist.value());
    }
    if (!first_op) out += ',';
    first_op = false;
    out += "\n    \"" + std::string(op_name) + "\": {";
    for (int k = 0; k < 5; ++k) {
      out += std::string(k == 0 ? "" : ", ") + "\"" + kKeys[k] +
             "\": " + std::to_string(sums[k]);
    }
    out += ", \"latency_us\": {\"mean\": " + std::to_string(merged.mean()) +
           ", \"p50\": " + std::to_string(merged.p50()) +
           ", \"p95\": " + std::to_string(merged.p95()) +
           ", \"p99\": " + std::to_string(merged.p99()) +
           ", \"max\": " + std::to_string(merged.max()) + "}";
    out += ", \"hist\": \"" + merged.Encode() + "\"}";
  }
  out += "\n  },\n";
  out += "  \"replicas\": [";
  for (size_t i = 0; i < replicas.size(); ++i) {
    const PerReplica& pr = replicas[i];
    if (i > 0) out += ',';
    out += "\n    {\"name\": \"" + pr.name + "\", \"health\": \"" +
           HealthName(pr.health) + "\", \"responding\": " +
           (pr.json.empty() ? "false" : "true") + ", \"stats\": ";
    if (pr.json.empty()) {
      out += "null";
    } else {
      // The per-replica document is verbatim JSON; strip its trailing
      // newline so the embedding stays tidy.
      std::string body = pr.json;
      while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
        body.pop_back();
      }
      out += body;
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace cluster
}  // namespace uniclean
