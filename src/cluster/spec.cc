#include "cluster/spec.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace uniclean {
namespace cluster {

namespace {

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string word;
  while (in >> word) {
    if (word[0] == '#') break;  // trailing comment
    words.push_back(word);
  }
  return words;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseInt(const std::string& s, int* out) {
  uint64_t v = 0;
  if (!ParseU64(s, &v) || v > 1u << 20) return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

Result<ClusterSpec> ClusterSpec::Parse(const std::string& text) {
  ClusterSpec spec;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string> words = SplitWords(line);
    if (words.empty()) continue;
    const std::string& key = words[0];
    auto fail = [&](const std::string& why) -> Status {
      return Status::InvalidArgument("cluster spec line " +
                                     std::to_string(lineno) + ": " + why);
    };
    if (key == "replication") {
      if (words.size() != 2 || !ParseInt(words[1], &spec.replication) ||
          spec.replication < 1) {
        return fail("replication expects a positive integer");
      }
    } else if (key == "vnodes") {
      if (words.size() != 2 ||
          !ParseInt(words[1], &spec.ring.vnodes_per_replica) ||
          spec.ring.vnodes_per_replica < 1) {
        return fail("vnodes expects a positive integer");
      }
    } else if (key == "seed") {
      if (words.size() != 2 || !ParseU64(words[1], &spec.ring.seed)) {
        return fail("seed expects an unsigned integer");
      }
    } else if (key == "snapshot-dir") {
      if (words.size() != 2) return fail("snapshot-dir expects one path");
      spec.snapshot_dir = words[1];
    } else if (key == "workers") {
      if (words.size() != 2 || !ParseInt(words[1], &spec.workers) ||
          spec.workers < 1) {
        return fail("workers expects a positive integer");
      }
    } else if (key == "replica") {
      if (words.size() != 3) return fail("replica expects NAME ADDRESS");
      for (const ReplicaSpec& r : spec.replicas) {
        if (r.name == words[1]) {
          return fail("duplicate replica '" + words[1] + "'");
        }
      }
      spec.replicas.push_back({words[1], words[2]});
    } else if (key == "ruleset") {
      if (words.size() != 5) {
        return fail("ruleset expects NAME MASTER RULES SCHEMA");
      }
      for (const RulesetSpec& r : spec.rulesets) {
        if (r.name == words[1]) {
          return fail("duplicate ruleset '" + words[1] + "'");
        }
      }
      spec.rulesets.push_back({words[1], words[2], words[3], words[4]});
    } else {
      return fail("unknown directive '" + key + "'");
    }
  }
  if (spec.replicas.empty()) {
    return Status::InvalidArgument("cluster spec: no replicas declared");
  }
  if (spec.rulesets.empty()) {
    return Status::InvalidArgument("cluster spec: no rulesets declared");
  }
  if (spec.replication > static_cast<int>(spec.replicas.size())) {
    spec.replication = static_cast<int>(spec.replicas.size());
  }
  return spec;
}

Result<ClusterSpec> ClusterSpec::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot read cluster spec '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

Ring ClusterSpec::BuildRing() const {
  Ring ring(this->ring);
  for (const ReplicaSpec& r : replicas) {
    // Names were deduplicated at parse time; AddReplica cannot fail here.
    (void)ring.AddReplica(r.name);
  }
  return ring;
}

std::vector<std::string> ClusterSpec::OwnersOf(
    const std::string& ruleset) const {
  return BuildRing().Owners(ruleset, replication);
}

std::vector<std::string> ClusterSpec::RulesetsOwnedBy(
    const std::string& replica) const {
  const Ring ring = BuildRing();
  std::vector<std::string> owned;
  for (const RulesetSpec& rs : rulesets) {
    const std::vector<std::string> owners =
        ring.Owners(rs.name, replication);
    if (std::find(owners.begin(), owners.end(), replica) != owners.end()) {
      owned.push_back(rs.name);
    }
  }
  return owned;
}

Result<ReplicaSpec> ClusterSpec::FindReplica(const std::string& name) const {
  for (const ReplicaSpec& r : replicas) {
    if (r.name == name) return r;
  }
  return Status::NotFound("cluster spec: unknown replica '" + name + "'");
}

Result<RulesetSpec> ClusterSpec::FindRuleset(const std::string& name) const {
  for (const RulesetSpec& r : rulesets) {
    if (r.name == name) return r;
  }
  return Status::NotFound("cluster spec: unknown ruleset '" + name + "'");
}

}  // namespace cluster
}  // namespace uniclean
