#include "cluster/ring.h"

#include <algorithm>

namespace uniclean {
namespace cluster {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashKey(std::string_view key, uint64_t seed) {
  // FNV-1a folds the bytes, splitmix64 scrambles the (weak) FNV output so
  // near-identical keys ("r1"/"r2") land far apart on the ring.
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return SplitMix64(h ^ seed);
}

Ring::Ring(RingOptions options) : options_(options) {
  if (options_.vnodes_per_replica < 1) options_.vnodes_per_replica = 1;
}

Status Ring::AddReplica(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("ring: replica name must be non-empty");
  }
  if (Contains(name)) {
    return Status::InvalidArgument("ring: duplicate replica '" + name + "'");
  }
  names_.push_back(name);
  std::sort(names_.begin(), names_.end());
  Rebuild();
  return Status::OK();
}

Status Ring::RemoveReplica(const std::string& name) {
  auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    return Status::NotFound("ring: unknown replica '" + name + "'");
  }
  names_.erase(it);
  Rebuild();
  return Status::OK();
}

bool Ring::Contains(const std::string& name) const {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

std::vector<std::string> Ring::replicas() const { return names_; }

void Ring::Rebuild() {
  vnodes_.clear();
  vnodes_.reserve(names_.size() *
                  static_cast<size_t>(options_.vnodes_per_replica));
  for (uint32_t r = 0; r < names_.size(); ++r) {
    // A vnode's point depends only on (seed, replica name, vnode index) —
    // never on the replica's position in names_ — so membership changes
    // leave every surviving vnode exactly where it was.
    const uint64_t base = HashKey(names_[r], options_.seed);
    for (int v = 0; v < options_.vnodes_per_replica; ++v) {
      vnodes_.push_back(
          {SplitMix64(base ^ (0x9e3779b97f4a7c15ull *
                              static_cast<uint64_t>(v + 1))),
           r});
    }
  }
  std::sort(vnodes_.begin(), vnodes_.end(),
            [&](const VNode& a, const VNode& b) {
              if (a.point != b.point) return a.point < b.point;
              return names_[a.replica] < names_[b.replica];  // tie-break
            });
}

std::vector<std::string> Ring::Owners(std::string_view key, int count) const {
  std::vector<std::string> owners;
  if (vnodes_.empty() || count <= 0) return owners;
  const uint64_t point = HashKey(key, options_.seed);
  // First vnode clockwise from the key's point (wrapping past the top).
  size_t at = std::lower_bound(vnodes_.begin(), vnodes_.end(), point,
                               [](const VNode& v, uint64_t p) {
                                 return v.point < p;
                               }) -
              vnodes_.begin();
  std::vector<bool> taken(names_.size(), false);
  for (size_t step = 0;
       step < vnodes_.size() && owners.size() < static_cast<size_t>(count);
       ++step, ++at) {
    if (at == vnodes_.size()) at = 0;
    const uint32_t r = vnodes_[at].replica;
    if (taken[r]) continue;
    taken[r] = true;
    owners.push_back(names_[r]);
  }
  return owners;
}

std::string Ring::PrimaryOwner(std::string_view key) const {
  std::vector<std::string> owners = Owners(key, 1);
  return owners.empty() ? std::string() : owners.front();
}

}  // namespace cluster
}  // namespace uniclean
