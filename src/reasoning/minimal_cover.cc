#include "reasoning/minimal_cover.h"

namespace uniclean {
namespace reasoning {

namespace {

/// Rebuilds a RuleSet from kept rule flags.
Result<rules::RuleSet> Subset(const rules::RuleSet& ruleset,
                              const std::vector<bool>& keep_cfd,
                              const std::vector<bool>& keep_md) {
  std::vector<rules::Cfd> cfds;
  for (size_t i = 0; i < ruleset.cfds().size(); ++i) {
    if (keep_cfd[i]) cfds.push_back(ruleset.cfds()[i]);
  }
  std::vector<rules::Md> mds;
  for (size_t i = 0; i < ruleset.mds().size(); ++i) {
    if (keep_md[i]) mds.push_back(ruleset.mds()[i]);
  }
  return rules::RuleSet::Make(ruleset.data_schema_ptr(),
                              ruleset.master_schema_ptr(), std::move(cfds),
                              std::move(mds));
}

}  // namespace

Result<MinimalCoverResult> MinimalCover(const rules::RuleSet& ruleset,
                                        const data::Relation& dm,
                                        const AnalysisOptions& options) {
  std::vector<bool> keep_cfd(ruleset.cfds().size(), true);
  std::vector<bool> keep_md(ruleset.mds().size(), true);
  std::vector<std::string> removed;

  for (size_t i = 0; i < ruleset.cfds().size(); ++i) {
    keep_cfd[i] = false;
    UC_ASSIGN_OR_RETURN(rules::RuleSet candidate,
                        Subset(ruleset, keep_cfd, keep_md));
    auto implied = Implies(candidate, dm, ruleset.cfds()[i], options);
    if (implied.ok() && implied.value()) {
      removed.push_back(ruleset.cfds()[i].name());
      continue;  // stays removed
    }
    // Not implied — or budget exhausted: keep conservatively.
    keep_cfd[i] = true;
  }
  for (size_t i = 0; i < ruleset.mds().size(); ++i) {
    keep_md[i] = false;
    UC_ASSIGN_OR_RETURN(rules::RuleSet candidate,
                        Subset(ruleset, keep_cfd, keep_md));
    auto implied = Implies(candidate, dm, ruleset.mds()[i], options);
    if (implied.ok() && implied.value()) {
      removed.push_back(ruleset.mds()[i].name());
      continue;
    }
    keep_md[i] = true;
  }

  UC_ASSIGN_OR_RETURN(rules::RuleSet cover,
                      Subset(ruleset, keep_cfd, keep_md));
  return MinimalCoverResult{std::move(cover), std::move(removed)};
}

}  // namespace reasoning
}  // namespace uniclean
