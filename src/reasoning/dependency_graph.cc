#include "reasoning/dependency_graph.h"

#include <algorithm>

#include "common/check.h"

namespace uniclean {
namespace reasoning {

DependencyGraph::DependencyGraph(const rules::RuleSet& ruleset) {
  const int n = ruleset.num_rules();
  adjacency_.assign(static_cast<size_t>(n), {});
  in_degree_.assign(static_cast<size_t>(n), 0);
  for (rules::RuleId u = 0; u < n; ++u) {
    data::AttributeId rhs = ruleset.DataRhs(u);
    for (rules::RuleId v = 0; v < n; ++v) {
      const auto& lhs = ruleset.DataLhs(v);
      if (std::find(lhs.begin(), lhs.end(), rhs) != lhs.end()) {
        adjacency_[static_cast<size_t>(u)].push_back(v);
        ++in_degree_[static_cast<size_t>(v)];
      }
    }
  }
}

bool DependencyGraph::HasEdge(rules::RuleId from, rules::RuleId to) const {
  const auto& succ = adjacency_[static_cast<size_t>(from)];
  return std::find(succ.begin(), succ.end(), to) != succ.end();
}

std::vector<std::vector<rules::RuleId>>
DependencyGraph::SccsInTopologicalOrder() const {
  // Iterative Tarjan. Tarjan emits SCCs in reverse topological order of the
  // condensation, so we reverse at the end.
  const int n = num_nodes();
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> lowlink(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> stack;
  std::vector<std::vector<rules::RuleId>> sccs;
  int next_index = 0;

  struct Frame {
    int node;
    size_t child;
  };
  for (int start = 0; start < n; ++start) {
    if (index[static_cast<size_t>(start)] != -1) continue;
    std::vector<Frame> frames{{start, 0}};
    index[static_cast<size_t>(start)] = lowlink[static_cast<size_t>(start)] =
        next_index++;
    stack.push_back(start);
    on_stack[static_cast<size_t>(start)] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& succ = adjacency_[static_cast<size_t>(f.node)];
      if (f.child < succ.size()) {
        int w = succ[f.child++];
        if (index[static_cast<size_t>(w)] == -1) {
          index[static_cast<size_t>(w)] = lowlink[static_cast<size_t>(w)] =
              next_index++;
          stack.push_back(w);
          on_stack[static_cast<size_t>(w)] = true;
          frames.push_back(Frame{w, 0});
        } else if (on_stack[static_cast<size_t>(w)]) {
          lowlink[static_cast<size_t>(f.node)] =
              std::min(lowlink[static_cast<size_t>(f.node)],
                       index[static_cast<size_t>(w)]);
        }
      } else {
        if (lowlink[static_cast<size_t>(f.node)] ==
            index[static_cast<size_t>(f.node)]) {
          std::vector<rules::RuleId> scc;
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<size_t>(w)] = false;
            scc.push_back(w);
            if (w == f.node) break;
          }
          std::sort(scc.begin(), scc.end());
          sccs.push_back(std::move(scc));
        }
        int node = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[static_cast<size_t>(frames.back().node)] =
              std::min(lowlink[static_cast<size_t>(frames.back().node)],
                       lowlink[static_cast<size_t>(node)]);
        }
      }
    }
  }
  std::reverse(sccs.begin(), sccs.end());
  return sccs;
}

std::vector<rules::RuleId> DependencyGraph::ApplicationOrder() const {
  std::vector<rules::RuleId> order;
  for (auto& scc : SccsInTopologicalOrder()) {
    // Decreasing out/in ratio; compare a.out/a.in > b.out/b.in via cross
    // multiplication to avoid division by zero (in-degree 0 sorts first).
    std::stable_sort(scc.begin(), scc.end(),
                     [this](rules::RuleId a, rules::RuleId b) {
                       int64_t lhs = static_cast<int64_t>(OutDegree(a)) *
                                     InDegree(b);
                       int64_t rhs = static_cast<int64_t>(OutDegree(b)) *
                                     InDegree(a);
                       if (InDegree(a) == 0 && InDegree(b) == 0) {
                         return OutDegree(a) > OutDegree(b);
                       }
                       if (InDegree(a) == 0) return true;
                       if (InDegree(b) == 0) return false;
                       if (lhs != rhs) return lhs > rhs;
                       return a < b;
                     });
    for (rules::RuleId id : scc) order.push_back(id);
  }
  UC_CHECK_EQ(static_cast<int>(order.size()), num_nodes());
  return order;
}

}  // namespace reasoning
}  // namespace uniclean
