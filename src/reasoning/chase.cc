#include "reasoning/chase.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace uniclean {
namespace reasoning {

namespace {

using data::Relation;
using data::TupleId;
using data::Value;
using rules::Cfd;
using rules::Md;
using rules::RuleId;
using rules::RuleSet;

std::string GroupKey(const data::Tuple& t,
                     const std::vector<data::AttributeId>& attrs) {
  std::string key;
  for (data::AttributeId a : attrs) {
    key += t.value(a).str();
    key.push_back('\x1f');
  }
  return key;
}

/// Applies one pass of a rule over the database; returns number of updates.
int ApplyRuleOnce(Relation* d, const Relation& dm, const RuleSet& ruleset,
                  RuleId rule, Rng* rng, int budget) {
  int updates = 0;
  if (ruleset.IsCfd(rule)) {
    const Cfd& cfd = ruleset.cfd(rule);
    if (cfd.IsConstantRule()) {
      for (TupleId t = 0; t < d->size() && updates < budget; ++t) {
        data::Tuple& tuple = d->mutable_tuple(t);
        if (cfd.MatchesLhs(tuple) && !cfd.RhsSatisfied(tuple)) {
          tuple.set_value(cfd.rhs()[0],
                          Value(cfd.rhs_pattern()[0].constant()));
          ++updates;
        }
      }
      return updates;
    }
    // Variable CFD: group, then copy a randomly chosen donor's value to the
    // rest of the group (the donor choice is the nondeterminism).
    const data::AttributeId b = cfd.rhs()[0];
    std::unordered_map<std::string, std::vector<TupleId>> groups;
    for (TupleId t = 0; t < d->size(); ++t) {
      if (cfd.MatchesLhs(d->tuple(t)) && !d->tuple(t).value(b).is_null()) {
        groups[GroupKey(d->tuple(t), cfd.lhs())].push_back(t);
      }
    }
    for (const auto& [key, members] : groups) {
      if (updates >= budget) break;
      bool conflict = false;
      for (size_t i = 1; i < members.size(); ++i) {
        if (d->tuple(members[i]).value(b) != d->tuple(members[0]).value(b)) {
          conflict = true;
          break;
        }
      }
      if (!conflict) continue;
      TupleId donor = members[rng->Index(members.size())];
      Value v = d->tuple(donor).value(b);
      for (TupleId t : members) {
        if (updates >= budget) break;
        if (d->tuple(t).value(b) != v) {
          d->mutable_tuple(t).set_value(b, v);
          ++updates;
        }
      }
    }
    return updates;
  }
  const Md& md = ruleset.md(rule);
  const rules::MdAction& action = md.actions()[0];
  for (TupleId t = 0; t < d->size() && updates < budget; ++t) {
    for (TupleId s = 0; s < dm.size(); ++s) {
      if (!md.PremiseHolds(d->tuple(t), dm.tuple(s))) continue;
      if (!Value::SqlEquals(d->tuple(t).value(action.data_attr),
                            dm.tuple(s).value(action.master_attr))) {
        d->mutable_tuple(t).set_value(action.data_attr,
                                      dm.tuple(s).value(action.master_attr));
        ++updates;
        break;  // re-evaluate t against masters on the next pass
      }
    }
  }
  return updates;
}

}  // namespace

ChaseResult RunChase(const Relation& d, const Relation& dm,
                     const RuleSet& ruleset, const ChaseOptions& options) {
  ChaseResult result{false, 0, d.Clone()};
  Rng rng(options.seed);
  std::vector<RuleId> order(static_cast<size_t>(ruleset.num_rules()));
  for (RuleId r = 0; r < ruleset.num_rules(); ++r) {
    order[static_cast<size_t>(r)] = r;
  }
  while (result.steps < options.max_steps) {
    rng.Shuffle(&order);
    int pass_updates = 0;
    for (RuleId r : order) {
      int remaining = options.max_steps - result.steps;
      if (remaining <= 0) break;
      int u = ApplyRuleOnce(&result.fixpoint, dm, ruleset, r, &rng, remaining);
      pass_updates += u;
      result.steps += u;
    }
    if (pass_updates == 0) {
      result.terminated = true;
      return result;
    }
  }
  return result;
}

DeterminismReport AnalyzeDeterminism(const Relation& d, const Relation& dm,
                                     const RuleSet& ruleset, int num_orders,
                                     const ChaseOptions& options) {
  DeterminismReport report;
  report.runs = num_orders;
  report.all_terminated = true;
  std::vector<Relation> fixpoints;
  for (int i = 0; i < num_orders; ++i) {
    ChaseOptions opts = options;
    opts.seed = options.seed + static_cast<uint64_t>(i) * 7919;
    ChaseResult r = RunChase(d, dm, ruleset, opts);
    if (!r.terminated) {
      report.all_terminated = false;
      continue;
    }
    bool is_new = true;
    for (const Relation& f : fixpoints) {
      if (f.CellDiffCount(r.fixpoint) == 0) {
        is_new = false;
        break;
      }
    }
    if (is_new) fixpoints.push_back(std::move(r.fixpoint));
  }
  report.distinct_fixpoints = static_cast<int>(fixpoints.size());
  report.deterministic =
      report.all_terminated && report.distinct_fixpoints <= 1;
  return report;
}

}  // namespace reasoning
}  // namespace uniclean
