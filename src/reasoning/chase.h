// Bounded termination / determinism analysis (§4.2). Both problems are
// PSPACE-complete (Thms 4.7 / 4.8), so no general decision procedure exists
// in practice; this module runs the rule-based cleaning process (the
// "chase") under a step budget and, for determinism, compares the fixpoints
// reached under different rule-application orders. Example 4.6's oscillating
// pair of CFDs is detected as non-terminating within any reasonable budget.

#ifndef UNICLEAN_REASONING_CHASE_H_
#define UNICLEAN_REASONING_CHASE_H_

#include <cstdint>

#include "data/relation.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace reasoning {

struct ChaseOptions {
  /// Maximum number of cell updates before declaring divergence.
  int max_steps = 100000;
  /// Seed for the rule/tuple application order; different seeds explore
  /// different nondeterministic schedules.
  uint64_t seed = 0;
};

struct ChaseResult {
  bool terminated = false;  ///< reached a fixpoint within the budget
  int steps = 0;            ///< cell updates performed
  data::Relation fixpoint;  ///< final database (meaningful if terminated)
};

/// Runs the naive rule-based cleaning process: repeatedly applies any
/// applicable cleaning rule (constant CFD writes its constant; variable CFD
/// copies the RHS from another tuple in the same LHS group; MD copies the
/// master value) until no rule changes the database or the budget runs out.
ChaseResult RunChase(const data::Relation& d, const data::Relation& dm,
                     const rules::RuleSet& ruleset,
                     const ChaseOptions& options = {});

struct DeterminismReport {
  bool all_terminated = false;
  bool deterministic = false;  ///< all terminating runs reached one fixpoint
  int runs = 0;
  int distinct_fixpoints = 0;
};

/// Runs the chase under `num_orders` different schedules and compares the
/// resulting fixpoints cell-by-cell.
DeterminismReport AnalyzeDeterminism(const data::Relation& d,
                                     const data::Relation& dm,
                                     const rules::RuleSet& ruleset,
                                     int num_orders,
                                     const ChaseOptions& options = {});

}  // namespace reasoning
}  // namespace uniclean

#endif  // UNICLEAN_REASONING_CHASE_H_
