// The rule dependency graph of §6.2: one node per normalized rule, an edge
// ξu -> ξv when RHS(ξu) ∩ LHS(ξv) ≠ ∅ (applying ξu can enable ξv). eRepair
// applies rules in an order derived from this graph: Tarjan SCCs, condensed
// DAG in topological order, and within each SCC decreasing out/in-degree
// ratio (Example 6.1).

#ifndef UNICLEAN_REASONING_DEPENDENCY_GRAPH_H_
#define UNICLEAN_REASONING_DEPENDENCY_GRAPH_H_

#include <vector>

#include "rules/ruleset.h"

namespace uniclean {
namespace reasoning {

class DependencyGraph {
 public:
  /// Builds the graph over all normalized rules of `ruleset`.
  explicit DependencyGraph(const rules::RuleSet& ruleset);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }

  /// Successors of a rule (deduplicated, sorted).
  const std::vector<rules::RuleId>& Successors(rules::RuleId id) const {
    return adjacency_[static_cast<size_t>(id)];
  }

  bool HasEdge(rules::RuleId from, rules::RuleId to) const;

  int OutDegree(rules::RuleId id) const {
    return static_cast<int>(adjacency_[static_cast<size_t>(id)].size());
  }
  int InDegree(rules::RuleId id) const {
    return in_degree_[static_cast<size_t>(id)];
  }

  /// Strongly connected components, in topological order of the condensation
  /// (if any member of SCC i can reach SCC j with i != j, then i < j).
  std::vector<std::vector<rules::RuleId>> SccsInTopologicalOrder() const;

  /// The §6.2 application order: SCCs topologically, members of each SCC by
  /// decreasing out/in-degree ratio, ties by rule id.
  std::vector<rules::RuleId> ApplicationOrder() const;

 private:
  std::vector<std::vector<rules::RuleId>> adjacency_;
  std::vector<int> in_degree_;
};

}  // namespace reasoning
}  // namespace uniclean

#endif  // UNICLEAN_REASONING_DEPENDENCY_GRAPH_H_
