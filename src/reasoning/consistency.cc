#include "reasoning/consistency.h"

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/check.h"

namespace uniclean {
namespace reasoning {

namespace {

using data::AttributeId;
using data::Relation;
using data::Tuple;
using data::Value;
using rules::Cfd;
using rules::Md;
using rules::MdClause;
using rules::RuleId;
using rules::RuleSet;

/// A backtracking search for a model of bounded size. Tuples are assigned
/// attribute-by-attribute over per-attribute candidate domains; constraints
/// are re-checked incrementally on the assigned prefix.
class SmallModelSearch {
 public:
  SmallModelSearch(const RuleSet& ruleset, const Relation& dm,
                   int num_tuples, int64_t budget)
      : ruleset_(ruleset),
        dm_(dm),
        num_tuples_(num_tuples),
        budget_(budget) {
    BuildDomains();
  }

  /// Attributes whose value is forced equal across the two tuples (used for
  /// variable-CFD implication counterexamples: t1[X] = t2[X]).
  void ForceEqualAcrossTuples(const std::vector<AttributeId>& attrs) {
    for (AttributeId a : attrs) equal_across_.insert(a);
  }

  /// Additional constraint checked on fully assigned models.
  void AddFinalConstraint(std::function<bool(const std::vector<Tuple>&)> f) {
    final_constraints_.push_back(std::move(f));
  }

  /// Adds a candidate value to the domain of `attr` (used for the constants
  /// of an implication target ξ, which may not appear in Θ or Dm).
  void AddDomainValue(AttributeId attr, const std::string& value) {
    domains_[static_cast<size_t>(attr)].insert(value);
  }

  /// Runs the search. Returns true if a model exists, false if none, or
  /// OutOfRange if the node budget was exhausted.
  Result<bool> FindModel() {
    // Materialize domains as vectors.
    domain_vec_.assign(domains_.size(), {});
    for (size_t a = 0; a < domains_.size(); ++a) {
      domain_vec_[a].assign(domains_[a].begin(), domains_[a].end());
    }
    // Variables: only attributes mentioned by rules or constraints matter;
    // all others take the fresh value and never interact with any rule.
    vars_.clear();
    for (AttributeId a : ruleset_.RuleAttributes()) vars_.push_back(a);
    for (AttributeId a : extra_attrs_) {
      if (!std::binary_search(ruleset_.RuleAttributes().begin(),
                              ruleset_.RuleAttributes().end(), a)) {
        vars_.push_back(a);
      }
    }
    std::sort(vars_.begin(), vars_.end());
    vars_.erase(std::unique(vars_.begin(), vars_.end()), vars_.end());

    tuples_.assign(static_cast<size_t>(num_tuples_),
                   Tuple(ruleset_.data_schema().arity()));
    for (Tuple& t : tuples_) {
      for (AttributeId a = 0; a < ruleset_.data_schema().arity(); ++a) {
        t.set_value(a, Value(FreshValue(a)));
      }
    }
    nodes_ = 0;
    bool found = false;
    Status status = Assign(0, 0, &found);
    if (!status.ok()) return status;
    return found;
  }

  /// Ensures `attr` participates in the search even if no rule mentions it.
  void AddSearchAttribute(AttributeId attr) { extra_attrs_.push_back(attr); }

  /// The k-th fresh value for an attribute: guaranteed distinct from every
  /// constant in Σ and Dm (it contains a NUL byte). A model of n tuples may
  /// need up to n distinct values outside the active constants (e.g. a
  /// two-tuple counterexample with t1[A] != t2[A] on an attribute no rule
  /// constrains), so BuildDomains adds one fresh value per tuple slot.
  static std::string FreshValue(AttributeId attr, int k = 0) {
    std::string v("\x01\x00", 2);
    v += "fresh" + std::to_string(attr) + "_" + std::to_string(k);
    return v;
  }

 private:
  void BuildDomains() {
    domains_.assign(static_cast<size_t>(ruleset_.data_schema().arity()), {});
    // Constants from CFD patterns.
    for (const Cfd& cfd : ruleset_.cfds()) {
      for (size_t i = 0; i < cfd.lhs().size(); ++i) {
        if (!cfd.lhs_pattern()[i].is_wildcard()) {
          domains_[static_cast<size_t>(cfd.lhs()[i])].insert(
              cfd.lhs_pattern()[i].constant());
        }
      }
      if (!cfd.rhs_pattern()[0].is_wildcard()) {
        domains_[static_cast<size_t>(cfd.rhs()[0])].insert(
            cfd.rhs_pattern()[0].constant());
      }
    }
    // Constants from master data relevant to MD clauses and actions.
    for (const Md& md : ruleset_.mds()) {
      for (const MdClause& c : md.premise()) {
        for (const Tuple& s : dm_.tuples()) {
          if (!s.value(c.master_attr).is_null()) {
            domains_[static_cast<size_t>(c.data_attr)].insert(
                s.value(c.master_attr).str());
          }
        }
      }
      const rules::MdAction& a = md.actions()[0];
      for (const Tuple& s : dm_.tuples()) {
        if (!s.value(a.master_attr).is_null()) {
          domains_[static_cast<size_t>(a.data_attr)].insert(
              s.value(a.master_attr).str());
        }
      }
    }
    // One fresh value per attribute per tuple slot.
    for (AttributeId a = 0; a < ruleset_.data_schema().arity(); ++a) {
      for (int k = 0; k < num_tuples_; ++k) {
        domains_[static_cast<size_t>(a)].insert(FreshValue(a, k));
      }
    }
  }

  /// Checks all rules restricted to the currently assigned variables
  /// (prefix of vars_ up to var_count for every tuple up to tuple_count,
  /// where tuple tuple_count is assigned up to var_count).
  bool PrefixConsistent(size_t assigned) const {
    // assigned = number of (tuple, var) assignments done, in tuple-major
    // order per variable: iteration order is var-major (all tuples assigned
    // var 0, then var 1, ...). A rule can be checked once all its attributes
    // are assigned for the relevant tuples.
    size_t full_vars = assigned / static_cast<size_t>(num_tuples_);
    auto var_assigned = [&](AttributeId a) {
      auto it = std::lower_bound(vars_.begin(), vars_.end(), a);
      if (it == vars_.end() || *it != a) return true;  // non-var: fresh, fixed
      size_t idx = static_cast<size_t>(it - vars_.begin());
      return idx < full_vars;
    };
    for (const Cfd& cfd : ruleset_.cfds()) {
      bool ready = var_assigned(cfd.rhs()[0]);
      for (AttributeId a : cfd.lhs()) ready = ready && var_assigned(a);
      if (!ready) continue;
      if (cfd.IsConstantRule()) {
        for (const Tuple& t : tuples_) {
          if (cfd.MatchesLhs(t) && !cfd.RhsSatisfied(t)) return false;
        }
      } else {
        for (int i = 0; i < num_tuples_; ++i) {
          for (int j = i + 1; j < num_tuples_; ++j) {
            const Tuple& t1 = tuples_[static_cast<size_t>(i)];
            const Tuple& t2 = tuples_[static_cast<size_t>(j)];
            if (!cfd.MatchesLhs(t1) || !cfd.MatchesLhs(t2)) continue;
            if (!t1.ProjectionEquals(t2, cfd.lhs())) continue;
            if (t1.value(cfd.rhs()[0]) != t2.value(cfd.rhs()[0])) return false;
          }
        }
      }
    }
    for (const Md& md : ruleset_.mds()) {
      bool ready = var_assigned(md.actions()[0].data_attr);
      for (const MdClause& c : md.premise()) {
        ready = ready && var_assigned(c.data_attr);
      }
      if (!ready) continue;
      const rules::MdAction& action = md.actions()[0];
      for (const Tuple& t : tuples_) {
        for (const Tuple& s : dm_.tuples()) {
          if (!md.PremiseHolds(t, s)) continue;
          if (!Value::SqlEquals(t.value(action.data_attr),
                                s.value(action.master_attr))) {
            return false;
          }
        }
      }
    }
    return true;
  }

  Status Assign(size_t var_idx, int tuple_idx, bool* found) {
    if (*found) return Status::OK();
    if (++nodes_ > budget_) {
      return Status::OutOfRange("analysis node budget exhausted");
    }
    if (var_idx == vars_.size()) {
      for (const auto& f : final_constraints_) {
        if (!f(tuples_)) return Status::OK();
      }
      *found = true;
      return Status::OK();
    }
    AttributeId attr = vars_[var_idx];
    const auto& domain = domain_vec_[static_cast<size_t>(attr)];
    const bool tie_to_first =
        tuple_idx > 0 && equal_across_.count(attr) > 0;
    size_t next_var = (tuple_idx + 1 == num_tuples_) ? var_idx + 1 : var_idx;
    int next_tuple = (tuple_idx + 1 == num_tuples_) ? 0 : tuple_idx + 1;
    size_t assigned_after =
        (var_idx * static_cast<size_t>(num_tuples_)) +
        static_cast<size_t>(tuple_idx) + 1;
    if (tie_to_first) {
      tuples_[static_cast<size_t>(tuple_idx)].set_value(
          attr, tuples_[0].value(attr));
      if (PrefixConsistentAt(assigned_after)) {
        UC_RETURN_IF_ERROR(Assign(next_var, next_tuple, found));
      }
      return Status::OK();
    }
    for (const std::string& v : domain) {
      if (*found) return Status::OK();
      tuples_[static_cast<size_t>(tuple_idx)].set_value(attr, Value(v));
      if (!PrefixConsistentAt(assigned_after)) continue;
      UC_RETURN_IF_ERROR(Assign(next_var, next_tuple, found));
    }
    return Status::OK();
  }

  bool PrefixConsistentAt(size_t assigned) const {
    return PrefixConsistent(assigned);
  }

  const RuleSet& ruleset_;
  const Relation& dm_;
  int num_tuples_;
  int64_t budget_;
  int64_t nodes_ = 0;

  std::vector<std::set<std::string>> domains_;  // per attribute
  std::vector<std::vector<std::string>> domain_vec_;
  std::vector<AttributeId> vars_;
  std::vector<AttributeId> extra_attrs_;
  std::set<AttributeId> equal_across_;
  std::vector<Tuple> tuples_;
  std::vector<std::function<bool(const std::vector<Tuple>&)>>
      final_constraints_;
};

}  // namespace

Result<bool> IsConsistent(const RuleSet& ruleset, const Relation& dm,
                          const AnalysisOptions& options) {
  SmallModelSearch search(ruleset, dm, /*num_tuples=*/1,
                          options.max_search_nodes);
  return search.FindModel();
}

Result<bool> Implies(const RuleSet& ruleset, const Relation& dm,
                     const Cfd& xi, const AnalysisOptions& options) {
  UC_CHECK(xi.normalized()) << "implication target must be normalized";
  // Θ |= ξ iff no model of Θ violates ξ. Constant ξ: a single-tuple
  // counterexample suffices; variable ξ: two tuples agreeing on LHS(ξ).
  if (xi.IsConstantRule()) {
    SmallModelSearch search(ruleset, dm, /*num_tuples=*/1,
                            options.max_search_nodes);
    for (size_t i = 0; i < xi.lhs().size(); ++i) {
      search.AddSearchAttribute(xi.lhs()[i]);
      if (!xi.lhs_pattern()[i].is_wildcard()) {
        search.AddDomainValue(xi.lhs()[i], xi.lhs_pattern()[i].constant());
      }
    }
    search.AddSearchAttribute(xi.rhs()[0]);
    search.AddDomainValue(xi.rhs()[0], xi.rhs_pattern()[0].constant());
    search.AddFinalConstraint([&xi](const std::vector<Tuple>& ts) {
      return xi.MatchesLhs(ts[0]) && !xi.RhsSatisfied(ts[0]);
    });
    UC_ASSIGN_OR_RETURN(bool counterexample, search.FindModel());
    return !counterexample;
  }
  SmallModelSearch search(ruleset, dm, /*num_tuples=*/2,
                          options.max_search_nodes);
  for (size_t i = 0; i < xi.lhs().size(); ++i) {
    search.AddSearchAttribute(xi.lhs()[i]);
    if (!xi.lhs_pattern()[i].is_wildcard()) {
      search.AddDomainValue(xi.lhs()[i], xi.lhs_pattern()[i].constant());
    }
  }
  search.AddSearchAttribute(xi.rhs()[0]);
  search.ForceEqualAcrossTuples(xi.lhs());
  search.AddFinalConstraint([&xi](const std::vector<Tuple>& ts) {
    const Tuple& t1 = ts[0];
    const Tuple& t2 = ts[1];
    if (!xi.MatchesLhs(t1) || !xi.MatchesLhs(t2)) return false;
    if (!t1.ProjectionEquals(t2, xi.lhs())) return false;
    return t1.value(xi.rhs()[0]) != t2.value(xi.rhs()[0]);
  });
  UC_ASSIGN_OR_RETURN(bool counterexample, search.FindModel());
  return !counterexample;
}

Result<bool> Implies(const RuleSet& ruleset, const Relation& dm, const Md& xi,
                     const AnalysisOptions& options) {
  UC_CHECK(xi.normalized()) << "implication target must be normalized";
  SmallModelSearch search(ruleset, dm, /*num_tuples=*/1,
                          options.max_search_nodes);
  for (const MdClause& c : xi.premise()) {
    search.AddSearchAttribute(c.data_attr);
    // The data values that can satisfy (or violate) the clause are master
    // values; add them to the candidate domain.
    for (const Tuple& s : dm.tuples()) {
      if (!s.value(c.master_attr).is_null()) {
        search.AddDomainValue(c.data_attr, s.value(c.master_attr).str());
      }
    }
  }
  search.AddSearchAttribute(xi.actions()[0].data_attr);
  const rules::MdAction action = xi.actions()[0];
  search.AddFinalConstraint([&xi, &dm, action](const std::vector<Tuple>& ts) {
    for (const Tuple& s : dm.tuples()) {
      if (!xi.PremiseHolds(ts[0], s)) continue;
      if (!Value::SqlEquals(ts[0].value(action.data_attr),
                            s.value(action.master_attr))) {
        return true;  // ξ violated by (t, s)
      }
    }
    return false;
  });
  UC_ASSIGN_OR_RETURN(bool counterexample, search.FindModel());
  return !counterexample;
}

}  // namespace reasoning
}  // namespace uniclean
