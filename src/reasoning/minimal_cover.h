// Minimal cover of a rule set: §4.1 motivates the implication analysis as
// the way to "find and remove redundant rules from Θ, i.e., those that are
// a logical consequence of other rules in Θ, to improve performance". This
// module applies it: a rule is dropped when the remaining rules imply it.

#ifndef UNICLEAN_REASONING_MINIMAL_COVER_H_
#define UNICLEAN_REASONING_MINIMAL_COVER_H_

#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "reasoning/consistency.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace reasoning {

struct MinimalCoverResult {
  rules::RuleSet cover;                 ///< the pruned rule set
  std::vector<std::string> removed;     ///< names of dropped rules
};

/// Greedily removes rules implied by the rest (scanning CFDs then MDs, in
/// order). The result is a cover: it implies every removed rule, hence any
/// instance satisfying the cover satisfies the original Θ. Exponential in
/// the worst case (implication is coNP-complete); bounded by
/// `options.max_search_nodes` per implication check — a rule whose check
/// exceeds the budget is conservatively kept.
Result<MinimalCoverResult> MinimalCover(const rules::RuleSet& ruleset,
                                        const data::Relation& dm,
                                        const AnalysisOptions& options = {});

}  // namespace reasoning
}  // namespace uniclean

#endif  // UNICLEAN_REASONING_MINIMAL_COVER_H_
