// Static analyses of Θ = Σ ∪ Γ (§4.1).
//
// Consistency (Thm 4.1, NP-complete): does a nonempty D exist with D |= Σ
// and (D, Dm) |= Γ? By the small-model property it suffices to search for a
// single tuple over the active domains (constants of Σ and Dm plus one fresh
// value per attribute).
//
// Implication (Thm 4.2, coNP-complete): Θ |= ξ? By the proof's small-model
// property a counterexample needs at most two tuples (CFD ξ) or one tuple
// (MD ξ); we search for one.
//
// Both searches are worst-case exponential in the number of attributes
// mentioned by rules — inherent to the problems — and accept a node budget,
// returning OutOfRange when exceeded.

#ifndef UNICLEAN_REASONING_CONSISTENCY_H_
#define UNICLEAN_REASONING_CONSISTENCY_H_

#include <cstdint>

#include "common/result.h"
#include "data/relation.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace reasoning {

struct AnalysisOptions {
  /// Maximum number of partial assignments explored before giving up.
  int64_t max_search_nodes = 4'000'000;
};

/// True iff Θ is consistent w.r.t. master data `dm`: some nonempty instance
/// satisfies all CFDs and MDs of `ruleset`.
Result<bool> IsConsistent(const rules::RuleSet& ruleset,
                          const data::Relation& dm,
                          const AnalysisOptions& options = {});

/// True iff Θ |= ξ for a CFD ξ (every instance satisfying Θ w.r.t. dm also
/// satisfies ξ). ξ must be normalized.
Result<bool> Implies(const rules::RuleSet& ruleset, const data::Relation& dm,
                     const rules::Cfd& xi, const AnalysisOptions& options = {});

/// True iff Θ |= ξ for an MD ξ. ξ must be normalized.
Result<bool> Implies(const rules::RuleSet& ruleset, const data::Relation& dm,
                     const rules::Md& xi, const AnalysisOptions& options = {});

}  // namespace reasoning
}  // namespace uniclean

#endif  // UNICLEAN_REASONING_CONSISTENCY_H_
