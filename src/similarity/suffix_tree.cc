#include "similarity/suffix_tree.h"

#include <algorithm>

#include "common/check.h"

namespace uniclean {
namespace similarity {

namespace {
// Separator symbols are negative and unique per string so no suffix of one
// string can be confused with a suffix of another.
int32_t SeparatorFor(int string_id) { return -1 - string_id; }
int32_t SymbolFor(char c) { return static_cast<unsigned char>(c); }
}  // namespace

int GeneralizedSuffixTree::AddString(std::string_view s) {
  UC_CHECK(!built_) << "AddString after Build";
  int id = static_cast<int>(boundaries_.size());
  boundaries_.push_back(static_cast<int>(text_.size()));
  string_length_.push_back(static_cast<int>(s.size()));
  for (char c : s) text_.push_back(SymbolFor(c));
  text_.push_back(SeparatorFor(id));
  return id;
}

int GeneralizedSuffixTree::NewNode(int start, int end) {
  nodes_.push_back(Node{start, end, 0});
  build_next_.emplace_back();
  return static_cast<int>(nodes_.size() - 1);
}

void GeneralizedSuffixTree::Extend(int pos) {
  int last_new_node = -1;
  ++remainder_;
  const int32_t cur_symbol = text_[static_cast<size_t>(pos)];
  while (remainder_ > 0) {
    if (active_length_ == 0) active_edge_ = pos;
    const int32_t edge_symbol = text_[static_cast<size_t>(active_edge_)];
    auto it = build_next_[static_cast<size_t>(active_node_)].find(edge_symbol);
    if (it == build_next_[static_cast<size_t>(active_node_)].end()) {
      // No edge: create a leaf.
      int leaf = NewNode(pos, kOpenEnd);
      build_next_[static_cast<size_t>(active_node_)][edge_symbol] = leaf;
      if (last_new_node != -1) {
        nodes_[static_cast<size_t>(last_new_node)].link = active_node_;
        last_new_node = -1;
      }
    } else {
      int next_node = it->second;
      int edge_len = EdgeLength(nodes_[static_cast<size_t>(next_node)]);
      if (active_length_ >= edge_len) {
        // Walk down (canonicalize).
        active_edge_ += edge_len;
        active_length_ -= edge_len;
        active_node_ = next_node;
        continue;
      }
      if (text_[static_cast<size_t>(
              nodes_[static_cast<size_t>(next_node)].start + active_length_)] ==
          cur_symbol) {
        // Symbol already present on the edge: rule 3, stop.
        if (last_new_node != -1 && active_node_ != 0) {
          nodes_[static_cast<size_t>(last_new_node)].link = active_node_;
          last_new_node = -1;
        }
        ++active_length_;
        break;
      }
      // Split the edge.
      int split_start = nodes_[static_cast<size_t>(next_node)].start;
      int split = NewNode(split_start, split_start + active_length_);
      build_next_[static_cast<size_t>(active_node_)][edge_symbol] = split;
      int leaf = NewNode(pos, kOpenEnd);
      build_next_[static_cast<size_t>(split)][cur_symbol] = leaf;
      nodes_[static_cast<size_t>(next_node)].start += active_length_;
      build_next_[static_cast<size_t>(split)][text_[static_cast<size_t>(
          nodes_[static_cast<size_t>(next_node)].start)]] = next_node;
      if (last_new_node != -1) {
        nodes_[static_cast<size_t>(last_new_node)].link = split;
      }
      last_new_node = split;
    }
    --remainder_;
    if (active_node_ == 0 && active_length_ > 0) {
      --active_length_;
      active_edge_ = pos - remainder_ + 1;
    } else if (active_node_ != 0) {
      active_node_ = nodes_[static_cast<size_t>(active_node_)].link;
    }
  }
}

void GeneralizedSuffixTree::Build() {
  UC_CHECK(!built_) << "Build called twice";
  built_ = true;
  nodes_.clear();
  build_next_.clear();
  NewNode(-1, -1);  // root
  active_node_ = 0;
  active_edge_ = 0;
  active_length_ = 0;
  remainder_ = 0;
  for (int pos = 0; pos < static_cast<int>(text_.size()); ++pos) {
    Extend(pos);
  }
  // All suffixes end in a unique separator, so remainder_ must have drained.
  UC_CHECK_EQ(remainder_, 0) << "suffix tree build left pending suffixes";

  // Compute suffix starts for leaves (suffix_start = |text| - depth(leaf))
  // and, per node, the contiguous slice of leaf_starts_ covering its
  // subtree, so leaf collection at query time is an array read instead of a
  // subtree walk. The DFS visits children in reverse map-iteration order —
  // the exact order the old per-query stack walk produced — so truncated
  // collections pick the same leaves.
  suffix_start_.assign(nodes_.size(), -1);
  leaf_range_.assign(nodes_.size(), {0, 0});
  leaf_starts_.clear();
  leaf_starts_.reserve(text_.size());
  struct Frame {
    int node;
    int depth;
    bool entered;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, 0, false});
  while (!stack.empty()) {
    Frame& f = stack.back();
    const int node = f.node;
    const auto& children = build_next_[static_cast<size_t>(node)];
    if (!f.entered) {
      f.entered = true;
      leaf_range_[static_cast<size_t>(node)].begin =
          static_cast<int>(leaf_starts_.size());
      if (children.empty() && node != 0) {
        suffix_start_[static_cast<size_t>(node)] =
            static_cast<int>(text_.size()) - f.depth;
        leaf_starts_.push_back(suffix_start_[static_cast<size_t>(node)]);
      } else {
        // Push children in map order; LIFO popping visits them in reverse,
        // matching the old CollectLeaves stack discipline.
        const int depth = f.depth;
        for (const auto& [sym, child] : children) {
          (void)sym;
          stack.push_back(Frame{
              child,
              depth + EdgeLength(nodes_[static_cast<size_t>(child)]), false});
        }
        continue;
      }
    }
    // Post-order: close the node's slice. Children appear below this frame
    // on the stack, so the node's frame resurfaces after its subtree.
    leaf_range_[static_cast<size_t>(node)].end =
        static_cast<int>(leaf_starts_.size());
    stack.pop_back();
  }

  // O(1) suffix-position -> string-id map (replaces the per-leaf binary
  // search over boundaries_).
  pos_string_id_.assign(text_.size(), -1);
  for (size_t id = 0; id < boundaries_.size(); ++id) {
    const int begin = boundaries_[id];
    for (int k = 0; k < string_length_[id]; ++k) {
      pos_string_id_[static_cast<size_t>(begin + k)] = static_cast<int>(id);
    }
  }

  FreezeChildren();
}

void GeneralizedSuffixTree::FreezeChildren() {
  size_t total = 0;
  for (const auto& children : build_next_) total += children.size();
  child_begin_.assign(nodes_.size() + 1, 0);
  child_symbols_.clear();
  child_symbols_.reserve(total);
  child_nodes_.clear();
  child_nodes_.reserve(total);
  std::vector<std::pair<int32_t, int>> sorted;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    child_begin_[i] = static_cast<int>(child_symbols_.size());
    sorted.assign(build_next_[i].begin(), build_next_[i].end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [symbol, child] : sorted) {
      child_symbols_.push_back(symbol);
      child_nodes_.push_back(child);
    }
  }
  child_begin_[nodes_.size()] = static_cast<int>(child_symbols_.size());
  // Release the build maps; queries run on the CSR arrays alone. For a
  // master-scale tree this drops tens of bytes of hash-map overhead per
  // node.
  build_next_.clear();
  build_next_.shrink_to_fit();
}

int GeneralizedSuffixTree::FindChild(int node, int32_t symbol) const {
  const int begin = child_begin_[static_cast<size_t>(node)];
  const int end = child_begin_[static_cast<size_t>(node) + 1];
  const auto first = child_symbols_.begin() + begin;
  const auto last = child_symbols_.begin() + end;
  const auto it = std::lower_bound(first, last, symbol);
  if (it == last || *it != symbol) return -1;
  return child_nodes_[static_cast<size_t>(it - child_symbols_.begin())];
}

std::vector<int> GeneralizedSuffixTree::AllSuffixStarts() const {
  UC_CHECK(built_);
  std::vector<int> starts;
  for (size_t n = 1; n < nodes_.size(); ++n) {
    // Leaves are exactly the nodes the build stamped a suffix start on.
    if (suffix_start_[n] >= 0) starts.push_back(suffix_start_[n]);
  }
  std::sort(starts.begin(), starts.end());
  return starts;
}

int GeneralizedSuffixTree::StringIdAt(int text_pos) const {
  UC_CHECK_GE(text_pos, 0);
  UC_CHECK_LT(static_cast<size_t>(text_pos), text_.size());
  // Precomputed at Build(); separators map to -1. Before Build(), fall back
  // to the binary search over boundaries_.
  if (!pos_string_id_.empty()) {
    return pos_string_id_[static_cast<size_t>(text_pos)];
  }
  if (text_[static_cast<size_t>(text_pos)] < 0) return -1;  // separator
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), text_pos);
  return static_cast<int>(it - boundaries_.begin()) - 1;
}

bool GeneralizedSuffixTree::ContainsSubstring(std::string_view q) const {
  UC_CHECK(built_);
  int node = 0;
  size_t i = 0;
  while (i < q.size()) {
    const int next_node = FindChild(node, SymbolFor(q[i]));
    if (next_node < 0) return false;
    const Node& child = nodes_[static_cast<size_t>(next_node)];
    int len = EdgeLength(child);
    for (int k = 0; k < len && i < q.size(); ++k, ++i) {
      if (text_[static_cast<size_t>(child.start + k)] != SymbolFor(q[i])) {
        return false;
      }
    }
    node = next_node;
  }
  return true;
}

void GeneralizedSuffixTree::CollectLeaves(int node, int limit,
                                          std::vector<int>* starts) const {
  // The node's leaves are a precomputed contiguous slice (see Build()), in
  // the same order the old per-query subtree walk produced them.
  const auto [begin, end] = leaf_range_[static_cast<size_t>(node)];
  const int room = limit - static_cast<int>(starts->size());
  if (room <= 0) return;
  const int take = std::min(room, end - begin);
  starts->insert(starts->end(), leaf_starts_.begin() + begin,
                 leaf_starts_.begin() + begin + take);
}

std::vector<BlockingCandidate> GeneralizedSuffixTree::TopL(
    std::string_view q, int l, int max_leaves_per_probe) const {
  std::vector<BlockingCandidate> result;
  TopL(q, l, max_leaves_per_probe, &result);
  return result;
}

void GeneralizedSuffixTree::TopL(std::string_view q, int l,
                                 int max_leaves_per_probe,
                                 std::vector<BlockingCandidate>* out) const {
  UC_CHECK(built_);
  std::vector<BlockingCandidate>& result = *out;
  result.clear();
  if (l <= 0 || q.empty()) return;

  // For each starting offset of q, descend from the root as far as possible.
  // A string s whose longest common substring with q (starting at this
  // offset) has length m diverges from the descent path either at a node of
  // depth m (different child) or inside an edge (in which case its leaf lies
  // below the edge's child node, recorded when the probe stops there). To
  // credit both cases we record every node boundary visited with its depth,
  // not just the final locus.
  //
  // All probe-internal scratch is thread-local: TopL runs once per distinct
  // probed value (blocking-memo misses and the memo-off ablation), and the
  // per-call vector/map churn was a measured top allocation item.
  struct Probe {
    int node;   // a node on the match path
    int depth;  // matched length at (or within the edge entering) the node
  };
  static thread_local std::vector<Probe> probes;
  probes.clear();
  for (size_t start = 0; start < q.size(); ++start) {
    int node = 0;
    int depth = 0;
    size_t i = start;
    while (i < q.size()) {
      const int next_node = FindChild(node, SymbolFor(q[i]));
      if (next_node < 0) break;
      const Node& child = nodes_[static_cast<size_t>(next_node)];
      int len = EdgeLength(child);
      int advanced = 0;
      bool mismatch = false;
      for (int k = 0; k < len && i < q.size(); ++k, ++i) {
        if (text_[static_cast<size_t>(child.start + k)] != SymbolFor(q[i])) {
          mismatch = true;
          break;
        }
        ++advanced;
      }
      depth += advanced;
      node = next_node;  // even on partial edge match, subtree is correct
      if (depth > 0) probes.push_back(Probe{node, depth});
      if (mismatch || advanced < len) break;
    }
  }

  // Deepest probes first, so each string's recorded score is its best.
  std::sort(probes.begin(), probes.end(),
            [](const Probe& a, const Probe& b) { return a.depth > b.depth; });

  static thread_local std::unordered_map<int, int> best_score;  // sid -> score
  static thread_local std::vector<int> starts;
  best_score.clear();
  for (const Probe& p : probes) {
    starts.clear();
    CollectLeaves(p.node, max_leaves_per_probe, &starts);
    for (int s : starts) {
      int sid = StringIdAt(s);
      if (sid < 0) continue;
      auto [it, inserted] = best_score.emplace(sid, p.depth);
      if (!inserted && it->second < p.depth) it->second = p.depth;
    }
  }

  result.reserve(best_score.size());
  for (const auto& [sid, score] : best_score) {
    result.push_back(BlockingCandidate{sid, score});
  }
  std::sort(result.begin(), result.end(),
            [](const BlockingCandidate& a, const BlockingCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.string_id < b.string_id;
            });
  if (static_cast<int>(result.size()) > l) result.resize(static_cast<size_t>(l));
}

}  // namespace similarity
}  // namespace uniclean
