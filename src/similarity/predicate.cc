#include "similarity/predicate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "similarity/metrics.h"

namespace uniclean {
namespace similarity {

const char* PredicateKindToString(PredicateKind kind) {
  switch (kind) {
    case PredicateKind::kEquals:
      return "equals";
    case PredicateKind::kEditDistance:
      return "edit";
    case PredicateKind::kJaroWinkler:
      return "jaro_winkler";
    case PredicateKind::kQGramJaccard:
      return "qgram_jaccard";
  }
  return "unknown";
}

int SimilarityPredicate::BlockingEditBound(size_t value_length) const {
  switch (kind_) {
    case PredicateKind::kEquals:
      return 0;
    case PredicateKind::kEditDistance:
      return static_cast<int>(threshold_);
    case PredicateKind::kJaroWinkler:
    case PredicateKind::kQGramJaccard: {
      // Heuristic: a similarity of s roughly tolerates (1-s)*len edits.
      double slack = (1.0 - threshold_) * static_cast<double>(value_length);
      return std::max(1, static_cast<int>(std::ceil(slack)) + 1);
    }
  }
  return 1;
}

bool SimilarityPredicate::Evaluate(std::string_view a,
                                   std::string_view b) const {
  switch (kind_) {
    case PredicateKind::kEquals:
      return a == b;
    case PredicateKind::kEditDistance: {
      int k = static_cast<int>(threshold_);
      return BoundedEditDistance(a, b, k) <= k;
    }
    case PredicateKind::kJaroWinkler:
      return JaroWinklerSimilarity(a, b) >= threshold_;
    case PredicateKind::kQGramJaccard:
      return QGramJaccard(a, b, qgram_size_) >= threshold_;
  }
  return false;
}

std::string SimilarityPredicate::ToString() const {
  char buf[64];
  switch (kind_) {
    case PredicateKind::kEquals:
      return "=";
    case PredicateKind::kEditDistance:
      std::snprintf(buf, sizeof(buf), "edit<=%d", static_cast<int>(threshold_));
      return buf;
    case PredicateKind::kJaroWinkler:
      std::snprintf(buf, sizeof(buf), "jw>=%.2f", threshold_);
      return buf;
    case PredicateKind::kQGramJaccard:
      std::snprintf(buf, sizeof(buf), "qgram%d>=%.2f", qgram_size_,
                    threshold_);
      return buf;
  }
  return "?";
}

}  // namespace similarity
}  // namespace uniclean
