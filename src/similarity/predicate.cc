#include "similarity/predicate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "similarity/metrics.h"

namespace uniclean {
namespace similarity {

const char* PredicateKindToString(PredicateKind kind) {
  switch (kind) {
    case PredicateKind::kEquals:
      return "equals";
    case PredicateKind::kEditDistance:
      return "edit";
    case PredicateKind::kJaroWinkler:
      return "jaro_winkler";
    case PredicateKind::kQGramJaccard:
      return "qgram_jaccard";
  }
  return "unknown";
}

int SimilarityPredicate::BlockingEditBound(size_t value_length) const {
  switch (kind_) {
    case PredicateKind::kEquals:
      return 0;
    case PredicateKind::kEditDistance:
      return static_cast<int>(threshold_);
    case PredicateKind::kJaroWinkler:
    case PredicateKind::kQGramJaccard: {
      // Heuristic: a similarity of s roughly tolerates (1-s)*len edits.
      double slack = (1.0 - threshold_) * static_cast<double>(value_length);
      return std::max(1, static_cast<int>(std::ceil(slack)) + 1);
    }
  }
  return 1;
}

bool SimilarityPredicate::Evaluate(std::string_view a,
                                   std::string_view b) const {
  switch (kind_) {
    case PredicateKind::kEquals:
      return a == b;
    case PredicateKind::kEditDistance: {
      int k = static_cast<int>(threshold_);
      // Length pre-filter: the distance is at least the length gap, so
      // obviously-distant pairs never reach the banded DP.
      size_t lo = std::min(a.size(), b.size());
      size_t hi = std::max(a.size(), b.size());
      if (hi - lo > static_cast<size_t>(k)) return false;
      return BoundedEditDistance(a, b, k) <= k;
    }
    case PredicateKind::kJaroWinkler: {
      // Length pre-filter: with m <= min(|a|,|b|) matches, Jaro is at most
      // (m/|a| + m/|b| + 1) / 3, and the Winkler prefix bonus can lift a
      // score j to at most j + 0.4 * (1 - j). Reject when even that upper
      // bound misses the threshold.
      if (!a.empty() && !b.empty()) {
        double lo = static_cast<double>(std::min(a.size(), b.size()));
        double ub_jaro = (lo / static_cast<double>(a.size()) +
                          lo / static_cast<double>(b.size()) + 1.0) /
                         3.0;
        double ub = ub_jaro + 0.4 * (1.0 - ub_jaro);
        if (ub < threshold_) return false;
      }
      return JaroWinklerSimilarity(a, b) >= threshold_;
    }
    case PredicateKind::kQGramJaccard:
      return QGramJaccard(a, b, qgram_size_) >= threshold_;
  }
  return false;
}

std::string SimilarityPredicate::ToString() const {
  char buf[64];
  switch (kind_) {
    case PredicateKind::kEquals:
      return "=";
    case PredicateKind::kEditDistance:
      std::snprintf(buf, sizeof(buf), "edit<=%d", static_cast<int>(threshold_));
      return buf;
    case PredicateKind::kJaroWinkler:
      std::snprintf(buf, sizeof(buf), "jw>=%.2f", threshold_);
      return buf;
    case PredicateKind::kQGramJaccard:
      std::snprintf(buf, sizeof(buf), "qgram%d>=%.2f", qgram_size_,
                    threshold_);
      return buf;
  }
  return "?";
}

}  // namespace similarity
}  // namespace uniclean
