// String similarity metrics used by matching dependencies (§2.2) and by the
// repair cost model (§3.1): edit distance, Hamming, Jaro(-Winkler),
// q-gram Jaccard, and longest common substring.

#ifndef UNICLEAN_SIMILARITY_METRICS_H_
#define UNICLEAN_SIMILARITY_METRICS_H_

#include <string>
#include <string_view>
#include <vector>

namespace uniclean {
namespace similarity {

/// Levenshtein distance (insertions, deletions, substitutions).
int EditDistance(std::string_view a, std::string_view b);

/// Levenshtein distance with early exit: returns the exact distance if it is
/// <= k, otherwise any value > k. Runs the banded DP in O((2k+1)*min(|a|,|b|)).
int BoundedEditDistance(std::string_view a, std::string_view b, int k);

/// Hamming distance; strings of unequal length differ additionally in the
/// length gap (each unmatched trailing character counts as one mismatch).
int HammingDistance(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1] with the standard prefix scale 0.1 and
/// a max common-prefix bonus of 4 characters.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// The sorted multiset of padded q-grams of `s` ('#' padding on both sides).
/// Reference implementation: allocates one std::string per gram. The hot
/// path (QGramJaccard) uses QGramIdProfile instead; this form is kept for
/// callers that need the gram text and as the parity oracle in tests.
std::vector<std::string> QGramProfile(std::string_view s, int q);

/// The same profile with every q-gram interned as an integer id: the gram's
/// q bytes packed big-endian into a uint64, so for a fixed q the sort order
/// and equalities match QGramProfile exactly while building the profile
/// allocates nothing beyond `grams` capacity growth. Requires 1 <= q <= 8
/// (larger grams do not fit an id; QGramJaccard falls back to the string
/// profile there). `grams` is cleared first, so scratch buffers can be
/// reused across calls.
void QGramIdProfile(std::string_view s, int q, std::vector<uint64_t>* grams);

/// Jaccard similarity of the q-gram sets of two strings, in [0, 1].
/// Thread-safe and allocation-free in steady state for q <= 8 (interned
/// gram ids in thread-local scratch).
double QGramJaccard(std::string_view a, std::string_view b, int q = 2);

/// Length of the longest common substring (contiguous). O(|a|*|b|); used as
/// the blocking score oracle for the suffix-tree index (§5.2).
int LongestCommonSubstring(std::string_view a, std::string_view b);

/// Normalized dissimilarity dis(v,v')/max(|v|,|v'|) in [0, 1] used by the
/// repair cost model (§3.1). dis = edit distance; both empty -> 0.
double NormalizedEditDistance(std::string_view a, std::string_view b);

}  // namespace similarity
}  // namespace uniclean

#endif  // UNICLEAN_SIMILARITY_METRICS_H_
