// SimilarityPredicate: the `≈` operators of matching dependencies (§2.2).
// An MD premise clause is R[A] ≈ Rm[B] where ≈ is equality or a fuzzy
// predicate drawn from the set Υ of similarity predicates.

#ifndef UNICLEAN_SIMILARITY_PREDICATE_H_
#define UNICLEAN_SIMILARITY_PREDICATE_H_

#include <string>
#include <string_view>

namespace uniclean {
namespace similarity {

/// Which metric a predicate uses.
enum class PredicateKind {
  kEquals,        ///< exact string equality ('=' in the paper's MDs)
  kEditDistance,  ///< edit distance <= threshold (integer)
  kJaroWinkler,   ///< Jaro-Winkler similarity >= threshold in [0,1]
  kQGramJaccard,  ///< q-gram Jaccard similarity >= threshold in [0,1]
};

const char* PredicateKindToString(PredicateKind kind);

/// A concrete similarity predicate with its threshold.
class SimilarityPredicate {
 public:
  /// Exact equality.
  static SimilarityPredicate Equals() {
    return SimilarityPredicate(PredicateKind::kEquals, 0.0, 0);
  }
  /// Edit distance at most `max_distance`.
  static SimilarityPredicate Edit(int max_distance) {
    return SimilarityPredicate(PredicateKind::kEditDistance,
                               static_cast<double>(max_distance), 0);
  }
  /// Jaro-Winkler similarity at least `min_similarity`.
  static SimilarityPredicate JaroWinkler(double min_similarity) {
    return SimilarityPredicate(PredicateKind::kJaroWinkler, min_similarity, 0);
  }
  /// q-gram Jaccard similarity at least `min_similarity`.
  static SimilarityPredicate QGram(double min_similarity, int q = 2) {
    return SimilarityPredicate(PredicateKind::kQGramJaccard, min_similarity,
                               q);
  }

  PredicateKind kind() const { return kind_; }
  double threshold() const { return threshold_; }
  int qgram_size() const { return qgram_size_; }

  /// Maximum edit distance this predicate can tolerate; for fuzzy predicates
  /// other than edit distance this is a conservative blocking bound used by
  /// the suffix-tree index (strings further apart can still be verified,
  /// blocking only needs a candidate superset heuristic).
  int BlockingEditBound(size_t value_length) const;

  /// True when the predicate is plain equality.
  bool is_equality() const { return kind_ == PredicateKind::kEquals; }

  /// Evaluates the predicate on two (non-null) attribute values.
  bool Evaluate(std::string_view a, std::string_view b) const;

  /// e.g. "edit<=2", "=", "jw>=0.90".
  std::string ToString() const;

  bool operator==(const SimilarityPredicate& o) const {
    return kind_ == o.kind_ && threshold_ == o.threshold_ &&
           qgram_size_ == o.qgram_size_;
  }

 private:
  SimilarityPredicate(PredicateKind kind, double threshold, int qgram_size)
      : kind_(kind), threshold_(threshold), qgram_size_(qgram_size) {}

  PredicateKind kind_;
  double threshold_;
  int qgram_size_;
};

}  // namespace similarity
}  // namespace uniclean

#endif  // UNICLEAN_SIMILARITY_PREDICATE_H_
