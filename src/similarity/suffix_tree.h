// Generalized suffix tree over a set of strings (Ukkonen's algorithm) with a
// top-l longest-common-substring query — the blocking index of §5.2: for a
// query value v, find the l master values sharing the longest common
// substring with v, reducing MD similarity checks from |Dm| to l candidates.
// The per-query cost is O(l * |v|^2), matching the complexity the paper
// states for this structure.

#ifndef UNICLEAN_SIMILARITY_SUFFIX_TREE_H_
#define UNICLEAN_SIMILARITY_SUFFIX_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace uniclean {
namespace snapshot {
class Codec;  // snapshot/codec.h: serializes the built tree's internals
}  // namespace snapshot
namespace similarity {

/// A candidate string produced by a blocking query.
struct BlockingCandidate {
  int string_id;  ///< id returned by AddString
  int score;      ///< length of a common substring found (lower bound on LCS)

  bool operator==(const BlockingCandidate& o) const {
    return string_id == o.string_id && score == o.score;
  }
};

/// Generalized suffix tree: build once over the indexed strings (e.g. the
/// active domain of a master-data attribute), then query many times.
class GeneralizedSuffixTree {
 public:
  GeneralizedSuffixTree() = default;

  /// Registers a string to index. Must be called before Build().
  /// Returns the string id used in query results.
  int AddString(std::string_view s);

  /// Constructs the tree. Call exactly once, after all AddString calls.
  void Build();

  bool built() const { return built_; }
  int num_strings() const { return static_cast<int>(boundaries_.size()); }

  /// True iff `q` occurs as a substring of at least one indexed string.
  /// Requires built(). O(|q|).
  bool ContainsSubstring(std::string_view q) const;

  /// Returns up to `l` indexed strings sharing the longest common substrings
  /// with `q`, best first (ties broken by string id). `max_leaves_per_probe`
  /// bounds the leaf collection under each match locus; with a generous
  /// bound the top-1 score equals the exact LCS length.
  /// Requires built().
  std::vector<BlockingCandidate> TopL(std::string_view q, int l,
                                      int max_leaves_per_probe = 64) const;

  /// Allocation-free form: writes the candidates into `*out` (cleared
  /// first), reusing caller-owned capacity across probes — the hot entry
  /// point for MdMatcher, whose per-probe scratch otherwise dominated the
  /// allocation profile. Probe-internal scratch is thread-local, so
  /// concurrent queries against one built tree are safe (the tree itself is
  /// immutable after Build()).
  void TopL(std::string_view q, int l, int max_leaves_per_probe,
            std::vector<BlockingCandidate>* out) const;

  /// Total number of tree nodes (diagnostics / tests).
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// All leaf suffix start positions, sorted. A correct build yields exactly
  /// {0, ..., total_text_length-1}: one leaf per suffix of the concatenated
  /// text. Exposed for validation in tests.
  std::vector<int> AllSuffixStarts() const;

 private:
  // snapshot::Codec persists a built tree verbatim — nodes, suffix starts
  // and the precomputed leaf slices — so a loaded tree answers TopL with
  // byte-identical candidate order (the DFS that fixes leaf order depends
  // on unordered_map iteration order and must not be re-run on load).
  friend class ::uniclean::snapshot::Codec;

  struct Node {
    int start = -1;  // edge label [start, end) into text_, entering this node
    int end = -1;    // exclusive; kOpenEnd for growing leaves during build
    int link = 0;    // suffix link
  };

  static constexpr int kOpenEnd = -1;

  int EdgeEnd(const Node& n) const {
    return n.end == kOpenEnd ? static_cast<int>(text_.size()) : n.end;
  }
  int EdgeLength(const Node& n) const { return EdgeEnd(n) - n.start; }

  int NewNode(int start, int end);
  void Extend(int pos);

  /// Converts the build-time per-node child maps into the frozen CSR arrays
  /// (children sorted by symbol) and discards the maps. Called at the end of
  /// Build(); a restored tree gets the arrays installed directly.
  void FreezeChildren();

  /// Child of `node` along `symbol` in the frozen arrays, or -1. O(log k)
  /// over the node's k children.
  int FindChild(int node, int32_t symbol) const;

  /// Maps a text position to the id of the string containing it, or -1 for
  /// separator positions.
  int StringIdAt(int text_pos) const;

  /// Collects up to `limit` distinct leaf suffix-starts under `node`.
  void CollectLeaves(int node, int limit, std::vector<int>* starts) const;

  std::vector<int32_t> text_;       // concatenated symbols + unique separators
  std::vector<int> boundaries_;     // start offset of each string in text_
  std::vector<int> string_length_;  // length of each indexed string
  std::vector<Node> nodes_;
  // Build-time children: one mutable map per node, indexed like nodes_,
  // consumed by FreezeChildren() when the build finishes. Empty on a built
  // (or restored) tree — queries never touch it.
  std::vector<std::unordered_map<int32_t, int>> build_next_;
  // Frozen children in CSR form: node i's children are the slice
  // [child_begin_[i], child_begin_[i + 1]) of the symbol/node arrays,
  // sorted by symbol. Flat arrays restore from a snapshot as bulk copies —
  // the reason a warm start costs milliseconds where Ukkonen's build (or
  // rebuilding half a million little hash maps) costs hundreds.
  std::vector<int> child_begin_;       // size nodes_.size() + 1
  std::vector<int32_t> child_symbols_;
  std::vector<int> child_nodes_;
  std::vector<int> suffix_start_;   // per node: suffix start if leaf, else -1
  // Query-time acceleration, precomputed at Build(): the leaves of every
  // subtree as a contiguous slice of a preorder leaf array, and an O(1)
  // text-position -> string-id map.
  std::vector<int> leaf_starts_;                 // leaf suffix starts, preorder
  // Per node: the [begin, end) slice of leaf_starts_ covering its subtree.
  // A plain struct (not std::pair) so the snapshot codec's bulk word
  // transfer sees a trivially copyable element.
  struct LeafRange {
    int begin = 0;
    int end = 0;
  };
  std::vector<LeafRange> leaf_range_;
  std::vector<int> pos_string_id_;               // per text position
  bool built_ = false;

  // Ukkonen build state.
  int active_node_ = 0;
  int active_edge_ = 0;
  int active_length_ = 0;
  int remainder_ = 0;
};

}  // namespace similarity
}  // namespace uniclean

#endif  // UNICLEAN_SIMILARITY_SUFFIX_TREE_H_
