// Generalized suffix tree over a set of strings (Ukkonen's algorithm) with a
// top-l longest-common-substring query — the blocking index of §5.2: for a
// query value v, find the l master values sharing the longest common
// substring with v, reducing MD similarity checks from |Dm| to l candidates.
// The per-query cost is O(l * |v|^2), matching the complexity the paper
// states for this structure.

#ifndef UNICLEAN_SIMILARITY_SUFFIX_TREE_H_
#define UNICLEAN_SIMILARITY_SUFFIX_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace uniclean {
namespace similarity {

/// A candidate string produced by a blocking query.
struct BlockingCandidate {
  int string_id;  ///< id returned by AddString
  int score;      ///< length of a common substring found (lower bound on LCS)

  bool operator==(const BlockingCandidate& o) const {
    return string_id == o.string_id && score == o.score;
  }
};

/// Generalized suffix tree: build once over the indexed strings (e.g. the
/// active domain of a master-data attribute), then query many times.
class GeneralizedSuffixTree {
 public:
  GeneralizedSuffixTree() = default;

  /// Registers a string to index. Must be called before Build().
  /// Returns the string id used in query results.
  int AddString(std::string_view s);

  /// Constructs the tree. Call exactly once, after all AddString calls.
  void Build();

  bool built() const { return built_; }
  int num_strings() const { return static_cast<int>(boundaries_.size()); }

  /// True iff `q` occurs as a substring of at least one indexed string.
  /// Requires built(). O(|q|).
  bool ContainsSubstring(std::string_view q) const;

  /// Returns up to `l` indexed strings sharing the longest common substrings
  /// with `q`, best first (ties broken by string id). `max_leaves_per_probe`
  /// bounds the leaf collection under each match locus; with a generous
  /// bound the top-1 score equals the exact LCS length.
  /// Requires built().
  std::vector<BlockingCandidate> TopL(std::string_view q, int l,
                                      int max_leaves_per_probe = 64) const;

  /// Allocation-free form: writes the candidates into `*out` (cleared
  /// first), reusing caller-owned capacity across probes — the hot entry
  /// point for MdMatcher, whose per-probe scratch otherwise dominated the
  /// allocation profile. Probe-internal scratch is thread-local, so
  /// concurrent queries against one built tree are safe (the tree itself is
  /// immutable after Build()).
  void TopL(std::string_view q, int l, int max_leaves_per_probe,
            std::vector<BlockingCandidate>* out) const;

  /// Total number of tree nodes (diagnostics / tests).
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// All leaf suffix start positions, sorted. A correct build yields exactly
  /// {0, ..., total_text_length-1}: one leaf per suffix of the concatenated
  /// text. Exposed for validation in tests.
  std::vector<int> AllSuffixStarts() const;

 private:
  struct Node {
    int start = -1;  // edge label [start, end) into text_, entering this node
    int end = -1;    // exclusive; kOpenEnd for growing leaves during build
    int link = 0;    // suffix link
    std::unordered_map<int32_t, int> next;
  };

  static constexpr int kOpenEnd = -1;

  int EdgeEnd(const Node& n) const {
    return n.end == kOpenEnd ? static_cast<int>(text_.size()) : n.end;
  }
  int EdgeLength(const Node& n) const { return EdgeEnd(n) - n.start; }

  int NewNode(int start, int end);
  void Extend(int pos);

  /// Maps a text position to the id of the string containing it, or -1 for
  /// separator positions.
  int StringIdAt(int text_pos) const;

  /// Collects up to `limit` distinct leaf suffix-starts under `node`.
  void CollectLeaves(int node, int limit, std::vector<int>* starts) const;

  std::vector<int32_t> text_;       // concatenated symbols + unique separators
  std::vector<int> boundaries_;     // start offset of each string in text_
  std::vector<int> string_length_;  // length of each indexed string
  std::vector<Node> nodes_;
  std::vector<int> suffix_start_;   // per node: suffix start if leaf, else -1
  // Query-time acceleration, precomputed at Build(): the leaves of every
  // subtree as a contiguous slice of a preorder leaf array, and an O(1)
  // text-position -> string-id map.
  std::vector<int> leaf_starts_;                 // leaf suffix starts, preorder
  std::vector<std::pair<int, int>> leaf_range_;  // per node: [begin, end)
  std::vector<int> pos_string_id_;               // per text position
  bool built_ = false;

  // Ukkonen build state.
  int active_node_ = 0;
  int active_edge_ = 0;
  int active_length_ = 0;
  int remainder_ = 0;
};

}  // namespace similarity
}  // namespace uniclean

#endif  // UNICLEAN_SIMILARITY_SUFFIX_TREE_H_
