#include "similarity/metrics.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"

namespace uniclean {
namespace similarity {

int EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

int BoundedEditDistance(std::string_view a, std::string_view b, int k) {
  UC_CHECK_GE(k, 0);
  // Strip the common prefix and suffix: they contribute 0 to the distance,
  // and most near-matches differ in a short middle section, so the banded DP
  // then runs on a fraction of the characters.
  size_t prefix = 0;
  const size_t max_common = std::min(a.size(), b.size());
  while (prefix < max_common && a[prefix] == b[prefix]) ++prefix;
  a.remove_prefix(prefix);
  b.remove_prefix(prefix);
  size_t suffix = 0;
  const size_t max_suffix = std::min(a.size(), b.size());
  while (suffix < max_suffix &&
         a[a.size() - 1 - suffix] == b[b.size() - 1 - suffix]) {
    ++suffix;
  }
  a.remove_suffix(suffix);
  b.remove_suffix(suffix);
  if (a.size() < b.size()) std::swap(a, b);
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n - m > k) return k + 1;
  if (m == 0) return n;  // n <= k here
  // Banded DP: only cells with |i - j| <= k can be <= k.
  const int kInf = k + 1;
  std::vector<int> prev(static_cast<size_t>(m) + 1, kInf);
  std::vector<int> cur(static_cast<size_t>(m) + 1, kInf);
  for (int j = 0; j <= std::min(m, k); ++j) prev[static_cast<size_t>(j)] = j;
  for (int i = 1; i <= n; ++i) {
    int lo = std::max(1, i - k);
    int hi = std::min(m, i + k);
    if (lo > hi) return k + 1;
    std::fill(cur.begin(), cur.end(), kInf);
    if (i <= k) cur[0] = i;
    int row_min = kInf;
    for (int j = lo; j <= hi; ++j) {
      size_t sj = static_cast<size_t>(j);
      int sub = prev[sj - 1] + (a[static_cast<size_t>(i - 1)] ==
                                        b[sj - 1]
                                    ? 0
                                    : 1);
      int del = prev[sj] + 1;   // may be kInf (outside band)
      int ins = cur[sj - 1] + 1;
      int v = std::min({sub, del, ins});
      if (v > kInf) v = kInf;
      cur[sj] = v;
      row_min = std::min(row_min, v);
    }
    if (row_min > k) return k + 1;
    std::swap(prev, cur);
  }
  return std::min(prev[static_cast<size_t>(m)], kInf);
}

int HammingDistance(std::string_view a, std::string_view b) {
  size_t shared = std::min(a.size(), b.size());
  int d = static_cast<int>(std::max(a.size(), b.size()) - shared);
  for (size_t i = 0; i < shared; ++i) {
    if (a[i] != b[i]) ++d;
  }
  return d;
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  // Cheap upper-bound reject: Jaro is 0 exactly when no character of `a`
  // occurs in `b`, so a byte-presence bitmap over the shorter string rejects
  // wildly different values (the common case under blocking) in O(n + m)
  // before the O(n · window) match loop ever runs.
  {
    const std::string_view shorter = n <= m ? a : b;
    const std::string_view longer = n <= m ? b : a;
    bool seen[256] = {};
    for (char c : shorter) seen[static_cast<unsigned char>(c)] = true;
    bool any_common = false;
    for (char c : longer) {
      if (seen[static_cast<unsigned char>(c)]) {
        any_common = true;
        break;
      }
    }
    if (!any_common) return 0.0;
  }
  const int window = std::max(0, std::max(n, m) / 2 - 1);
  // Thread-local scratch instead of two heap-allocated vector<bool> per
  // call: JaroSimilarity is the hottest leaf of the pipeline profile, and
  // the allocations dominated its cost. Byte flags beat bit-packing here.
  static thread_local std::vector<unsigned char> a_matched;
  static thread_local std::vector<unsigned char> b_matched;
  a_matched.assign(static_cast<size_t>(n), 0);
  b_matched.assign(static_cast<size_t>(m), 0);
  int matches = 0;
  for (int i = 0; i < n; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(m - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (b_matched[static_cast<size_t>(j)]) continue;
      if (a[static_cast<size_t>(i)] != b[static_cast<size_t>(j)]) continue;
      a_matched[static_cast<size_t>(i)] = true;
      b_matched[static_cast<size_t>(j)] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < n; ++i) {
    if (!a_matched[static_cast<size_t>(i)]) continue;
    while (!b_matched[static_cast<size_t>(j)]) ++j;
    if (a[static_cast<size_t>(i)] != b[static_cast<size_t>(j)]) {
      ++transpositions;
    }
    ++j;
  }
  double md = matches;
  return (md / n + md / m + (md - transpositions / 2.0) / md) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  int prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (static_cast<size_t>(prefix) < limit &&
         a[static_cast<size_t>(prefix)] == b[static_cast<size_t>(prefix)]) {
    ++prefix;
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

std::vector<std::string> QGramProfile(std::string_view s, int q) {
  UC_CHECK_GE(q, 1);
  std::string padded;
  padded.reserve(s.size() + 2 * static_cast<size_t>(q - 1));
  padded.append(static_cast<size_t>(q - 1), '#');
  padded.append(s);
  padded.append(static_cast<size_t>(q - 1), '#');
  std::vector<std::string> grams;
  if (padded.size() < static_cast<size_t>(q)) return grams;
  for (size_t i = 0; i + static_cast<size_t>(q) <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, static_cast<size_t>(q)));
  }
  std::sort(grams.begin(), grams.end());
  return grams;
}

void QGramIdProfile(std::string_view s, int q, std::vector<uint64_t>* grams) {
  UC_CHECK_GE(q, 1);
  UC_CHECK_LE(q, 8) << "QGramIdProfile: gram does not fit a uint64 id";
  grams->clear();
  // A profile of the '#'-padded string has |s| + q - 1 grams; walk a sliding
  // window over the virtual padded text instead of materializing it. Bytes
  // pack big-endian, so uint64 comparison of same-q ids is exactly the
  // lexicographic byte comparison QGramProfile's std::string sort performs.
  const size_t pad = static_cast<size_t>(q - 1);
  const size_t padded_len = s.size() + 2 * pad;
  if (padded_len < static_cast<size_t>(q)) return;
  grams->reserve(padded_len - static_cast<size_t>(q) + 1);
  auto padded_at = [&](size_t i) -> unsigned char {
    return i < pad || i >= pad + s.size()
               ? static_cast<unsigned char>('#')
               : static_cast<unsigned char>(s[i - pad]);
  };
  uint64_t id = 0;
  const uint64_t mask = q == 8 ? ~uint64_t{0}
                               : ((uint64_t{1} << (8 * q)) - 1);
  for (size_t i = 0; i < padded_len; ++i) {
    id = ((id << 8) | padded_at(i)) & mask;
    if (i + 1 >= static_cast<size_t>(q)) grams->push_back(id);
  }
  std::sort(grams->begin(), grams->end());
}

namespace {

/// Shared Jaccard tail: dedup both sorted profiles, then a sorted-merge
/// intersection count.
template <typename T>
double SortedProfileJaccard(std::vector<T>& ga, std::vector<T>& gb) {
  ga.erase(std::unique(ga.begin(), ga.end()), ga.end());
  gb.erase(std::unique(gb.begin(), gb.end()), gb.end());
  if (ga.empty() && gb.empty()) return 1.0;
  size_t i = 0;
  size_t j = 0;
  size_t inter = 0;
  while (i < ga.size() && j < gb.size()) {
    if (ga[i] == gb[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (ga[i] < gb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = ga.size() + gb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

double QGramJaccard(std::string_view a, std::string_view b, int q) {
  UC_CHECK_GE(q, 1);
  if (q <= 8) {
    // Integer-id profiles in thread-local scratch: no per-evaluation
    // vector<std::string> of substrings (this was the pipeline's top
    // allocation-churn item). thread_local keeps concurrent Session runs
    // independent.
    static thread_local std::vector<uint64_t> ga;
    static thread_local std::vector<uint64_t> gb;
    QGramIdProfile(a, q, &ga);
    QGramIdProfile(b, q, &gb);
    return SortedProfileJaccard(ga, gb);
  }
  std::vector<std::string> ga = QGramProfile(a, q);
  std::vector<std::string> gb = QGramProfile(b, q);
  return SortedProfileJaccard(ga, gb);
}

int LongestCommonSubstring(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<int> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        best = std::max(best, cur[j]);
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return best;
}

double NormalizedEditDistance(std::string_view a, std::string_view b) {
  size_t denom = std::max(a.size(), b.size());
  if (denom == 0) return 0.0;
  return static_cast<double>(EditDistance(a, b)) / static_cast<double>(denom);
}

}  // namespace similarity
}  // namespace uniclean
