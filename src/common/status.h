// Status: error propagation without exceptions, following the idiom used by
// RocksDB / LevelDB / Arrow. Expected failures (bad rule syntax, inconsistent
// rule sets, malformed CSV) travel as Status values; programming errors are
// guarded by UC_CHECK (see check.h).

#ifndef UNICLEAN_COMMON_STATUS_H_
#define UNICLEAN_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace uniclean {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
  kUnavailable,
  kDataLoss,
};

/// Returns a short human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A bounded resource (id space, frame budget, session slots) ran out.
  /// Unlike kOutOfRange — a value outside its domain — this is load-induced
  /// and retryable after the pressure clears; servers surface it to clients
  /// instead of aborting (see serve/wire.h).
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// The caller-supplied deadline passed before the work finished. The
  /// operation unwound cleanly between committed fixes (see
  /// common/cancellation.h); retrying with a larger deadline is safe.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The caller explicitly abandoned the operation via a CancelToken.
  /// Like kDeadlineExceeded the unwind is clean; unlike it, retrying is
  /// pointless unless whoever cancelled changes their mind.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// The service refused the request up front (full queue, admission cap)
  /// without doing any work. Always safe to retry after backing off; the
  /// wire error may carry a retry-after hint (see serve/wire.h).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Stored bytes failed validation: a snapshot with a bad magic/CRC, a
  /// truncated section, a declared length past the file end. Unlike
  /// kCorruption — malformed *input* the caller handed us — this marks data
  /// *we* persisted and can no longer trust; the recovery is to discard the
  /// artifact and rebuild from the primary sources (see src/snapshot/).
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define UC_RETURN_IF_ERROR(expr)                    \
  do {                                              \
    ::uniclean::Status _uc_status = (expr);         \
    if (!_uc_status.ok()) return _uc_status;        \
  } while (0)

}  // namespace uniclean

#endif  // UNICLEAN_COMMON_STATUS_H_
