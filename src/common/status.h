// Status: error propagation without exceptions, following the idiom used by
// RocksDB / LevelDB / Arrow. Expected failures (bad rule syntax, inconsistent
// rule sets, malformed CSV) travel as Status values; programming errors are
// guarded by UC_CHECK (see check.h).

#ifndef UNICLEAN_COMMON_STATUS_H_
#define UNICLEAN_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace uniclean {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// Returns a short human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A bounded resource (id space, frame budget, session slots) ran out.
  /// Unlike kOutOfRange — a value outside its domain — this is load-induced
  /// and retryable after the pressure clears; servers surface it to clients
  /// instead of aborting (see serve/wire.h).
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define UC_RETURN_IF_ERROR(expr)                    \
  do {                                              \
    ::uniclean::Status _uc_status = (expr);         \
    if (!_uc_status.ok()) return _uc_status;        \
  } while (0)

}  // namespace uniclean

#endif  // UNICLEAN_COMMON_STATUS_H_
