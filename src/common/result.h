// Result<T>: a value-or-Status holder (the StatusOr / arrow::Result idiom).

#ifndef UNICLEAN_COMMON_RESULT_H_
#define UNICLEAN_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace uniclean {

/// Holds either a T or a non-OK Status explaining why no T is available.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    UC_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    UC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    UC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    UC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ holds a T.
};

/// Propagates the error of a Result expression, otherwise assigns its value.
#define UC_ASSIGN_OR_RETURN(lhs, expr)              \
  auto UC_CONCAT_(_uc_result_, __LINE__) = (expr);  \
  if (!UC_CONCAT_(_uc_result_, __LINE__).ok())      \
    return UC_CONCAT_(_uc_result_, __LINE__).status(); \
  lhs = std::move(UC_CONCAT_(_uc_result_, __LINE__)).value()

#define UC_CONCAT_IMPL_(a, b) a##b
#define UC_CONCAT_(a, b) UC_CONCAT_IMPL_(a, b)

}  // namespace uniclean

#endif  // UNICLEAN_COMMON_RESULT_H_
