// LatencyHistogram: a thread-safe, mergeable, log-bucketed histogram for
// per-request serving metrics (unicleand records one per request opcode).
// The HDR-histogram bucketing scheme in miniature: values land in
// power-of-two octaves subdivided into 8 linear sub-buckets, so any
// recorded value is attributed with <= 12.5% relative error while the whole
// table is a flat array of 496 counters (~4 KB). Recording is a single
// relaxed atomic increment — safe from any number of threads with no
// locking on the hot path; quantile reads taken while writers are active
// see an approximate but internally consistent snapshot.
//
// Units are the caller's choice (the daemon records microseconds); the
// histogram itself is unit-agnostic.

#ifndef UNICLEAN_COMMON_LATENCY_HISTOGRAM_H_
#define UNICLEAN_COMMON_LATENCY_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace uniclean {

class LatencyHistogram {
 public:
  LatencyHistogram() = default;

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one observation. Lock-free; callable from any thread.
  void Record(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // CAS-max: keep the exact largest observation (bucketing would round it).
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Observations recorded so far.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Exact largest observation (0 when empty).
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Mean of all observations (0 when empty). Exact, not bucketed.
  uint64_t mean() const {
    const uint64_t n = count();
    return n == 0 ? 0 : sum_.load(std::memory_order_relaxed) / n;
  }

  /// Upper bound of the bucket holding the p-quantile observation
  /// (p in [0, 1]), clamped to max() so the tail never over-reports. Within
  /// 12.5% of the true quantile; 0 when empty.
  uint64_t Percentile(double p) const {
    const uint64_t n = count();
    if (n == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    // Rank of the target observation, 1-based; p=0.5 over 10 samples -> 5th.
    uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(n));
    if (rank == 0) rank = 1;
    if (rank > n) rank = n;
    uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      seen += buckets_[b].load(std::memory_order_relaxed);
      if (seen >= rank) {
        const uint64_t upper = BucketUpperBound(b);
        const uint64_t exact_max = max();
        return upper < exact_max ? upper : exact_max;
      }
    }
    return max();  // writers raced count() ahead of the bucket sums
  }

  uint64_t p50() const { return Percentile(0.50); }
  uint64_t p95() const { return Percentile(0.95); }
  uint64_t p99() const { return Percentile(0.99); }

  /// Folds `other`'s observations into this histogram (bucket-wise; the
  /// merged quantiles are exactly what one histogram fed both streams would
  /// report). Safe against concurrent Record() on either side.
  void Merge(const LatencyHistogram& other) {
    for (int b = 0; b < kNumBuckets; ++b) {
      const uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
      if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    uint64_t theirs = other.max();
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (theirs > seen &&
           !max_.compare_exchange_weak(seen, theirs,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Resets every counter to the empty state. Not atomic with respect to
  /// concurrent Record() — quiesce writers first.
  void Reset() {
    for (int b = 0; b < kNumBuckets; ++b) {
      buckets_[b].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  /// Serializes the complete bucket state as a compact ASCII token,
  /// "v1,<count>,<sum>,<max>,<bucket>=<n>,..." (sparse: only non-empty
  /// buckets appear). The alphabet is [0-9a-z,=] so the token embeds in a
  /// JSON string with no escaping — this is how per-replica histograms
  /// travel inside the STATS document so the cluster client can merge them.
  std::string Encode() const {
    std::string out = "v1," + std::to_string(count()) + ',' +
                      std::to_string(sum_.load(std::memory_order_relaxed)) +
                      ',' + std::to_string(max());
    for (int b = 0; b < kNumBuckets; ++b) {
      const uint64_t n = buckets_[b].load(std::memory_order_relaxed);
      if (n != 0) {
        out += ',' + std::to_string(b) + '=' + std::to_string(n);
      }
    }
    return out;
  }

  /// Folds an Encode()d histogram's observations in, exactly as Merge()
  /// would the live histogram. Returns false (leaving this histogram
  /// untouched) on a malformed or unknown-version token.
  bool MergeEncoded(const std::string& encoded) {
    if (encoded.compare(0, 3, "v1,") != 0) return false;
    uint64_t header[3] = {0, 0, 0};  // count, sum, max
    uint64_t add[kNumBuckets] = {};
    int field = 0;
    size_t pos = 3;
    while (pos <= encoded.size()) {
      size_t comma = encoded.find(',', pos);
      if (comma == std::string::npos) comma = encoded.size();
      const std::string tok = encoded.substr(pos, comma - pos);
      if (field < 3) {
        if (!ParseU64(tok, &header[field])) return false;
      } else {
        const size_t eq = tok.find('=');
        uint64_t bucket = 0, n = 0;
        if (eq == std::string::npos ||
            !ParseU64(tok.substr(0, eq), &bucket) ||
            !ParseU64(tok.substr(eq + 1), &n) ||
            bucket >= static_cast<uint64_t>(kNumBuckets)) {
          return false;
        }
        add[bucket] += n;
      }
      ++field;
      pos = comma + 1;
    }
    if (field < 3) return false;
    for (int b = 0; b < kNumBuckets; ++b) {
      if (add[b] != 0) buckets_[b].fetch_add(add[b], std::memory_order_relaxed);
    }
    count_.fetch_add(header[0], std::memory_order_relaxed);
    sum_.fetch_add(header[1], std::memory_order_relaxed);
    uint64_t theirs = header[2];
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (theirs > seen &&
           !max_.compare_exchange_weak(seen, theirs,
                                       std::memory_order_relaxed)) {
    }
    return true;
  }

  /// "count=N mean=M p50=A p95=B p99=C max=D" (no unit suffix).
  std::string Summary() const {
    return "count=" + std::to_string(count()) +
           " mean=" + std::to_string(mean()) +
           " p50=" + std::to_string(p50()) +
           " p95=" + std::to_string(p95()) +
           " p99=" + std::to_string(p99()) + " max=" + std::to_string(max());
  }

 private:
  // 8 linear sub-buckets per power-of-two octave. Buckets 0..15 are exact
  // (values 0..15); from 16 up each octave [2^k, 2^(k+1)) splits into 8
  // ranges of width 2^(k-3).
  static constexpr int kSubBits = 3;
  static constexpr int kSub = 1 << kSubBits;  // 8
  static constexpr int kNumBuckets = ((64 - kSubBits) << kSubBits) + kSub;

  static bool ParseU64(const std::string& s, uint64_t* out) {
    if (s.empty()) return false;
    uint64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = v;
    return true;
  }

  static int BucketFor(uint64_t v) {
    if (v < kSub) return static_cast<int>(v);
    const int msb = 63 - __builtin_clzll(v);
    const int shift = msb - kSubBits;
    return ((shift) << kSubBits) +
           static_cast<int>((v >> shift) & (kSub - 1)) + kSub;
  }

  /// Largest value mapped to bucket `b` (inverse of BucketFor).
  static uint64_t BucketUpperBound(int b) {
    if (b < 2 * kSub) return static_cast<uint64_t>(b);  // exact range 0..15
    const int shift = (b - kSub) >> kSubBits;  // >= 1
    const int msb = shift + kSubBits;
    const uint64_t sub = static_cast<uint64_t>((b - kSub) & (kSub - 1));
    const uint64_t lower = (uint64_t{1} << msb) + (sub << shift);
    return lower + (uint64_t{1} << shift) - 1;
  }

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace uniclean

#endif  // UNICLEAN_COMMON_LATENCY_HISTOGRAM_H_
