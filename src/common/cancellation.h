// CancelToken: cooperative cancellation + deadlines for long-running work.
//
// A token is created by whoever owns the request lifetime (the daemon on
// admission, a CLI on --deadline-ms, a test), shared by shared_ptr with the
// code doing the work, and *polled* — there is no preemption. The repair
// engines poll at committed-fix boundaries only, so a tripped token always
// unwinds between fixes and never leaves a torn relation (pinned by the
// cancellation property tests in cleaner_test / serve_test).
//
// IsCancelled() is the hot-path check: one relaxed atomic load when the
// token is live, plus a steady_clock read only while a deadline is armed
// and unexpired. Cancel() and deadline expiry latch permanently — a token
// never un-cancels — so callers may cache negative results but must not
// cache positive ones... which they get for free, since a tripped token
// makes the caller unwind.

#ifndef UNICLEAN_COMMON_CANCELLATION_H_
#define UNICLEAN_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/status.h"

namespace uniclean {
namespace common {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that never expires on its own; trips only via Cancel().
  CancelToken() = default;

  /// A token that trips itself once `deadline` passes.
  static std::shared_ptr<CancelToken> WithDeadline(Clock::time_point deadline) {
    auto token = std::make_shared<CancelToken>();
    token->deadline_ = deadline;
    token->has_deadline_.store(true, std::memory_order_release);
    return token;
  }

  /// A token that trips itself `timeout_ms` from now.
  static std::shared_ptr<CancelToken> WithTimeout(int64_t timeout_ms) {
    return WithDeadline(Clock::now() + std::chrono::milliseconds(timeout_ms));
  }

  /// Trips the token explicitly. Idempotent; the first caller's reason wins.
  void Cancel(std::string reason) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cancelled_.load(std::memory_order_relaxed)) return;
      reason_ = std::move(reason);
    }
    cancelled_.store(true, std::memory_order_release);
  }

  /// True once the token has tripped (explicit Cancel or deadline expiry).
  /// Safe and cheap to call from any thread at any frequency.
  bool IsCancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (fault_countdown_.load(std::memory_order_relaxed) >= 0 &&
        fault_countdown_.fetch_sub(1, std::memory_order_relaxed) == 0) {
      const_cast<CancelToken*>(this)->Cancel("cancelled by test countdown");
      return true;
    }
    if (has_deadline_.load(std::memory_order_acquire) &&
        Clock::now() >= deadline_) {
      deadline_hit_.store(true, std::memory_order_relaxed);
      cancelled_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// OK while live; DeadlineExceeded / Cancelled (with the reason) once
  /// tripped. The non-OK Status is what the aborted operation returns.
  Status status() const {
    if (!IsCancelled()) return Status::OK();
    if (deadline_hit_.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded("deadline exceeded");
    }
    std::lock_guard<std::mutex> lock(mu_);
    return Status::Cancelled(reason_.empty() ? "cancelled" : reason_);
  }

  bool has_deadline() const {
    return has_deadline_.load(std::memory_order_acquire);
  }
  Clock::time_point deadline() const { return deadline_; }

  /// Test hook: the token self-cancels on the n-th IsCancelled() poll from
  /// now (n = 0 trips the very next poll). Lets the cancellation property
  /// tests stop a run at an arbitrary committed-fix boundary without timing
  /// races. Negative disarms.
  void CancelAfterChecksForTest(int64_t n) {
    fault_countdown_.store(n, std::memory_order_relaxed);
  }

 private:
  // cancelled_ is mutable because IsCancelled() — logically a read — latches
  // deadline expiry and the test countdown into the flag on first sight.
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> deadline_hit_{false};
  std::atomic<bool> has_deadline_{false};
  Clock::time_point deadline_{};
  mutable std::atomic<int64_t> fault_countdown_{-1};
  mutable std::mutex mu_;  // guards reason_
  std::string reason_;
};

/// Polls `token` (which may be null) and returns its non-OK status if it
/// has tripped. The standard guard at phase boundaries and in hot loops:
///   UC_RETURN_IF_ERROR(common::PollCancel(ctx->cancel));
inline Status PollCancel(const CancelToken* token) {
  if (token != nullptr && token->IsCancelled()) return token->status();
  return Status::OK();
}

}  // namespace common
}  // namespace uniclean

#endif  // UNICLEAN_COMMON_CANCELLATION_H_
