// Deterministic random number generation. All generators and noise injectors
// take an explicit seed so every experiment in the paper reproduction is
// bit-for-bit repeatable.

#ifndef UNICLEAN_COMMON_RNG_H_
#define UNICLEAN_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/check.h"

namespace uniclean {

/// Thin deterministic wrapper around std::mt19937_64 with the sampling
/// helpers the data generators need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    UC_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    UC_CHECK(!items.empty());
    return items[static_cast<size_t>(Uniform(0, items.size() - 1))];
  }

  /// Uniformly chosen index in [0, n).
  size_t Index(size_t n) {
    UC_CHECK_GT(n, 0u);
    return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
  }

  /// Zipf-like skewed index in [0, n): smaller indices more likely.
  /// Used to give generated attribute values realistic frequency skew.
  size_t SkewedIndex(size_t n, double skew = 1.0);

  /// Random lowercase ASCII string of the given length.
  std::string RandomWord(size_t length);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      std::swap((*items)[i], (*items)[Index(i + 1)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace uniclean

#endif  // UNICLEAN_COMMON_RNG_H_
