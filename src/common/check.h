// UC_CHECK: fatal invariant assertions for programming errors. Kept enabled in
// release builds — cleaning algorithms rely on nontrivial invariants (queue /
// counter bookkeeping, AVL balance, equivalence-class lattice) and a loud
// failure beats silent data corruption in a cleaning system.

#ifndef UNICLEAN_COMMON_CHECK_H_
#define UNICLEAN_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace uniclean {
namespace internal {

/// Accumulates a failure message and aborts on destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "UC_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace uniclean

#define UC_CHECK(cond)                                                  \
  if (cond) {                                                           \
  } else /* NOLINT */                                                   \
    ::uniclean::internal::CheckFailureStream(#cond, __FILE__, __LINE__)

#define UC_CHECK_EQ(a, b) UC_CHECK((a) == (b))
#define UC_CHECK_NE(a, b) UC_CHECK((a) != (b))
#define UC_CHECK_LT(a, b) UC_CHECK((a) < (b))
#define UC_CHECK_LE(a, b) UC_CHECK((a) <= (b))
#define UC_CHECK_GT(a, b) UC_CHECK((a) > (b))
#define UC_CHECK_GE(a, b) UC_CHECK((a) >= (b))

#endif  // UNICLEAN_COMMON_CHECK_H_
