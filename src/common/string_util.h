// Small string helpers shared across modules.

#ifndef UNICLEAN_COMMON_STRING_UTIL_H_
#define UNICLEAN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace uniclean {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a delimiter string.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace uniclean

#endif  // UNICLEAN_COMMON_STRING_UTIL_H_
