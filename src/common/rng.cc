#include "common/rng.h"

#include <cmath>

namespace uniclean {

size_t Rng::SkewedIndex(size_t n, double skew) {
  UC_CHECK_GT(n, 0u);
  // Inverse-CDF sampling of a truncated Pareto-like distribution; cheap and
  // good enough for value-frequency skew in synthetic data.
  double u = NextDouble();
  double x = std::pow(u, skew + 1.0);
  size_t idx = static_cast<size_t>(x * static_cast<double>(n));
  return idx >= n ? n - 1 : idx;
}

std::string Rng::RandomWord(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(0, 25)));
  }
  return out;
}

}  // namespace uniclean
