// The unicleand wire protocol: length-prefixed binary frames over a byte
// stream (TCP loopback by default), multiplexed by per-request tags — the
// bazil/tra shape (fdbuf.c buffered framing + mux.c tagged RPC) in C++.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     payload length N (bytes after this field; 9 <= N <= cap)
//   4       4     tag (client-chosen request id; responses echo it)
//   8       1     opcode
//   9       4     deadline_ms (request frames: relative deadline for this
//                 request, 0 = use the server default --request-timeout-ms;
//                 response frames: always 0)
//   13      N-9   body (opcode-specific)
//
// A request's response is one or more frames carrying its tag: zero or more
// stream chunks (kJournalChunk / kDataChunk) followed by exactly one
// terminal frame (kCleanDone, kDeltaDone, kPong, kStatsReply, kOk or
// kError). Frames of different tags may interleave, which is what lets one
// connection pipeline requests; chunks of a single tag arrive in order.
//
// Body primitives: u8 / u32 / u64 little-endian, and "lp" strings — a u32
// byte length followed by the raw bytes. Every declared length is validated
// against the remaining payload, so a malformed body yields a Corruption
// error, never an out-of-bounds read.
//
// Request bodies:
//   kPing      arbitrary bytes (echoed back inside kPong)
//   kClean     u8 flags (kCleanTrack | kCleanWantData), lp ruleset name
//              ("" = sole configured ruleset), lp dirty CSV,
//              lp confidence CSV ("" = uniform 0.0)
//   kDelta     u64 session id, lp inserts CSV (header row + tuples;
//              "" = none), lp update ids
//              (newline-separated decimals), lp updates CSV (rows aligned
//              with the update ids), lp delete ids (newline-separated)
//   kStats     empty
//   kReload    lp ruleset name ("" = every configured ruleset)
//   kCloseSession  u64 session id
//   kCancel    u32 target tag: abandon that in-flight request on this
//              connection. Handled on the reader thread (it bypasses the
//              work queue, so it reaches even a stalled worker); the target
//              replies kError(Cancelled) in its own tag, the kCancel itself
//              replies kOk whether or not the tag was found (cancelling an
//              already-finished request is a benign race).
//
// Response bodies:
//   kPong       lp echo (the kPing bytes), u32 in-flight requests,
//               u32 queued requests, u32 ruleset count, then per ruleset
//               lp name + u64 engine fingerprint. The trailer is what lets
//               the cluster layer health-probe and fingerprint replicas
//               with a single cheap opcode; readers facing a pre-cluster
//               daemon fall back to treating the whole body as the echo
//   kJournalChunk / kDataChunk  raw CSV bytes (concatenate per tag)
//   kCleanDone  u64 session id (0 = untracked), u32 total fixes,
//               u32 journal entries, lp phase summary text
//   kDeltaDone  u32 generation, u32 affected tuples, u32 refinement rounds,
//               u32 fixes
//   kStatsReply JSON text (see server.h for the document shape)
//   kOk         lp message
//   kError      u8 wire error code (the numeric StatusCode: 1 =
//               InvalidArgument, 2 = NotFound, 3 = Corruption, 4 =
//               OutOfRange, 5 = FailedPrecondition, 6 = Unimplemented, 7 =
//               Internal, 8 = ResourceExhausted, 9 = DeadlineExceeded,
//               10 = Cancelled, 11 = Unavailable, 12 = DataLoss),
//               lp message,
//               u32 retry_after_ms (backoff hint; non-zero only with
//               Unavailable — wait at least this long before retrying.
//               Absent in pre-deadline peers; readers treat a missing
//               trailer as 0)
//
// Everything here is transport plumbing shared by the daemon and the
// client; policy (what CLEAN does) lives in server.h.

#ifndef UNICLEAN_SERVE_WIRE_H_
#define UNICLEAN_SERVE_WIRE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace uniclean {
namespace serve {

/// Frame opcodes. Requests have the high bit clear, responses set.
enum class Op : uint8_t {
  // Requests.
  kPing = 0x01,
  kClean = 0x02,
  kDelta = 0x03,
  kStats = 0x04,
  kReload = 0x05,
  kCloseSession = 0x06,
  kCancel = 0x07,
  // Responses.
  kPong = 0x81,
  kJournalChunk = 0x82,
  kDataChunk = 0x83,
  kCleanDone = 0x84,
  kDeltaDone = 0x85,
  kStatsReply = 0x86,
  kOk = 0x87,
  kError = 0xEE,
};

/// Short opcode name for metrics / diagnostics, e.g. "CLEAN".
const char* OpName(Op op);

/// True for the request half of the opcode space.
bool IsRequestOp(uint8_t op);

/// kClean flag bits.
constexpr uint8_t kCleanTrack = 0x01;     ///< keep a tracked session open
constexpr uint8_t kCleanWantData = 0x02;  ///< also stream the repaired CSV

/// Hard cap on one frame's payload: a declared length beyond this is a
/// protocol error and closes the connection (the daemon must never be made
/// to allocate attacker-chosen amounts). Large cleans stream in chunks well
/// under this.
constexpr uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB
/// Frame payloads smaller than tag + opcode + deadline are structurally
/// invalid.
constexpr uint32_t kMinFramePayload = 9;

/// One decoded frame.
struct Frame {
  uint32_t tag = 0;
  Op op = Op::kPing;
  /// Relative per-request deadline in milliseconds; 0 = server default.
  /// Meaningful on request frames only (responses carry 0).
  uint32_t deadline_ms = 0;
  std::string body;
};

// --- body encoding helpers -------------------------------------------------

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
/// Appends a length-prefixed string (u32 length + bytes).
void PutLp(std::string* out, std::string_view s);

/// Sequential body decoder; every getter validates against the remaining
/// bytes and fails with Corruption instead of reading out of bounds.
class BodyReader {
 public:
  explicit BodyReader(const std::string& body) : body_(body) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  /// Reads a length-prefixed string.
  Result<std::string> Lp();
  /// The not-yet-consumed tail of the body.
  std::string Rest();
  size_t remaining() const { return body_.size() - pos_; }

 private:
  const std::string& body_;
  size_t pos_ = 0;
};

// --- framed connection -----------------------------------------------------

/// A buffered, framed view of one socket fd (the fdbuf idiom). Reading and
/// writing are independently safe from one thread each; writers that share
/// a connection serialize whole frames through an external mutex (the
/// daemon's per-connection write lock). The FrameChannel owns the fd and
/// closes it on destruction.
class FrameChannel {
 public:
  explicit FrameChannel(int fd) : fd_(fd) {}
  ~FrameChannel();

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  /// Reads one complete frame. Fails with:
  ///   NotFound    — clean EOF at a frame boundary (peer closed)
  ///   Corruption  — malformed header (undersized / oversized declared
  ///                 length) or EOF mid-frame (truncated frame)
  ///   Internal    — transport error (errno text included)
  Result<Frame> ReadFrame();

  /// Writes one complete frame (retrying short writes). SIGPIPE-safe: a
  /// closed peer surfaces as Internal, not a signal. `deadline_ms` goes in
  /// the frame header; responses leave it 0.
  Status WriteFrame(uint32_t tag, Op op, std::string_view body,
                    uint32_t deadline_ms = 0);

  /// Shuts the socket down for writing (EOF at the peer) without closing
  /// the fd. Used by clients to signal "no more requests".
  void ShutdownWrite();

  int fd() const { return fd_; }

 private:
  /// Reads exactly n bytes into out. false + ok status = clean EOF before
  /// the first byte; false + error status otherwise.
  Status ReadExact(char* out, size_t n, bool* clean_eof);

  int fd_;
  std::string rbuf_;
  size_t rpos_ = 0;
};

/// Maps a Status to its one-byte wire error code (kError body). OutOfRange
/// from StringPool id-space exhaustion travels as ResourceExhausted: for a
/// serving daemon that is load pressure, not a caller mistake.
uint8_t WireErrorCode(const Status& status);

/// Reconstructs a Status from a wire error code + message.
Status StatusFromWire(uint8_t code, std::string message);

// --- sockets ---------------------------------------------------------------

/// Creates a listening TCP socket on host:port (port 0 = ephemeral).
/// Returns the fd; *bound_port receives the actual port.
Result<int> ListenTcp(const std::string& host, int port, int* bound_port);

/// Connects to host:port. Returns the connected fd.
Result<int> ConnectTcp(const std::string& host, int port);

/// Creates a listening AF_UNIX socket at `path`, unlinking any stale socket
/// file first. Filesystem permissions on the path are the access control.
Result<int> ListenUnix(const std::string& path);

/// Connects to an AF_UNIX socket at `path`.
Result<int> ConnectUnix(const std::string& path);

/// Connects by address string: "unix:PATH" for AF_UNIX, otherwise
/// "host:port" TCP (the cluster spec's replica address format).
Result<int> ConnectAddress(const std::string& address);

}  // namespace serve
}  // namespace uniclean

#endif  // UNICLEAN_SERVE_WIRE_H_
