#include "serve/safe_csv.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "data/csv.h"
#include "data/string_pool.h"
#include "data/value.h"

namespace uniclean {
namespace serve {

namespace {

constexpr const char* kNullToken = "\\N";

/// Interns one CSV field as a Value without the abort-on-exhaustion path.
Result<data::Value> SafeValue(const std::string& field) {
  if (field == kNullToken) return data::Value::Null();
  UC_ASSIGN_OR_RETURN(data::ValueId id,
                      data::StringPool::Global().TryIntern(field));
  return data::Value::FromId(id);
}

Status CheckHeader(const std::vector<std::string>& fields,
                   const data::Schema& schema) {
  if (static_cast<int>(fields.size()) != schema.arity()) {
    return Status::InvalidArgument(
        "CSV header arity mismatch: got " + std::to_string(fields.size()) +
        " columns, schema has " + std::to_string(schema.arity()));
  }
  for (int a = 0; a < schema.arity(); ++a) {
    if (fields[static_cast<size_t>(a)] != schema.attribute_name(a)) {
      return Status::InvalidArgument(
          "CSV header mismatch at column " + std::to_string(a) +
          ": expected '" + schema.attribute_name(a) + "', got '" +
          fields[static_cast<size_t>(a)] + "'");
    }
  }
  return Status::OK();
}

/// Shared record loop: invokes `row` for every non-header record.
template <typename RowFn>
Status ForEachRecord(const std::string& csv_text, const data::Schema& schema,
                     bool expect_header, RowFn row) {
  std::istringstream in(csv_text);
  std::string record;
  bool saw_header = !expect_header;
  int line_no = 0;
  int lines_read = 0;
  while (data::ReadCsvRecord(in, &record, &lines_read)) {
    line_no += lines_read;
    if (record.empty()) continue;
    UC_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                        data::ParseCsvRecord(record));
    if (!saw_header) {
      saw_header = true;
      UC_RETURN_IF_ERROR(CheckHeader(fields, schema));
      continue;
    }
    if (static_cast<int>(fields.size()) != schema.arity()) {
      return Status::InvalidArgument(
          "CSV record arity mismatch at line " + std::to_string(line_no) +
          ": got " + std::to_string(fields.size()) + " columns, expected " +
          std::to_string(schema.arity()));
    }
    UC_RETURN_IF_ERROR(row(fields, line_no));
  }
  if (!saw_header) {
    return Status::InvalidArgument("CSV is empty (header row required)");
  }
  return Status::OK();
}

Result<data::Tuple> RowToTuple(const std::vector<std::string>& fields,
                               const data::Schema& schema) {
  data::Tuple t(schema.arity());
  for (int a = 0; a < schema.arity(); ++a) {
    UC_ASSIGN_OR_RETURN(data::Value v, SafeValue(fields[static_cast<size_t>(a)]));
    t.set_value(a, v);
  }
  return t;
}

}  // namespace

Result<data::Relation> ParseRelationCsv(const std::string& csv_text,
                                        data::SchemaPtr schema) {
  data::Relation relation(schema);
  UC_RETURN_IF_ERROR(ForEachRecord(
      csv_text, *schema, /*expect_header=*/true,
      [&](const std::vector<std::string>& fields, int) -> Status {
        auto t = RowToTuple(fields, *schema);
        if (!t.ok()) return t.status();
        relation.AddTuple(std::move(t).value());
        return Status::OK();
      }));
  return relation;
}

Result<std::vector<data::Tuple>> ParseTupleRows(
    const std::string& csv_text, const data::SchemaPtr& schema,
    bool expect_header) {
  std::vector<data::Tuple> rows;
  UC_RETURN_IF_ERROR(ForEachRecord(
      csv_text, *schema, expect_header,
      [&](const std::vector<std::string>& fields, int) -> Status {
        auto t = RowToTuple(fields, *schema);
        if (!t.ok()) return t.status();
        rows.push_back(std::move(t).value());
        return Status::OK();
      }));
  return rows;
}

Status ApplyConfidenceCsv(const std::string& csv_text,
                          data::Relation* relation) {
  data::TupleId next = 0;
  UC_RETURN_IF_ERROR(ForEachRecord(
      csv_text, relation->schema(), /*expect_header=*/true,
      [&](const std::vector<std::string>& fields, int line_no) -> Status {
        if (next >= relation->size()) {
          return Status::InvalidArgument(
              "confidence CSV has more rows than the data relation");
        }
        data::Tuple& t = relation->mutable_tuple(next);
        for (int a = 0; a < relation->schema().arity(); ++a) {
          const std::string& f = fields[static_cast<size_t>(a)];
          double cf = 0.0;
          if (!f.empty() && f != kNullToken) {
            errno = 0;
            char* end = nullptr;
            cf = std::strtod(f.c_str(), &end);
            if (end == f.c_str() || *end != '\0' || errno == ERANGE ||
                cf < 0.0 || cf > 1.0) {
              return Status::InvalidArgument(
                  "confidence CSV line " + std::to_string(line_no) +
                  " column " + std::to_string(a) + ": '" + f +
                  "' is not a number in [0, 1]");
            }
          }
          t.set_confidence(a, cf);
        }
        ++next;
        return Status::OK();
      }));
  if (next != relation->size()) {
    return Status::InvalidArgument(
        "confidence CSV has " + std::to_string(next) +
        " rows but the data relation has " + std::to_string(relation->size()));
  }
  return Status::OK();
}

Result<std::vector<data::TupleId>> ParseIdList(const std::string& text) {
  std::vector<data::TupleId> ids;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    errno = 0;
    char* end = nullptr;
    long v = std::strtol(line.c_str(), &end, 10);
    if (end == line.c_str() || *end != '\0' || errno == ERANGE || v < 0 ||
        v > INT32_MAX) {
      return Status::InvalidArgument("bad tuple id '" + line + "'");
    }
    ids.push_back(static_cast<data::TupleId>(v));
  }
  return ids;
}

}  // namespace serve
}  // namespace uniclean
