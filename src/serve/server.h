// unicleand's serving core: a long-lived daemon holding one warm
// shared_ptr<CleanEngine> per configured ruleset, a TCP acceptor, one
// frame-reader thread per connection and a shared worker pool the decoded
// requests fan out over (the bazil/tra srv.c + work.c shape). Highlights:
//
//  * Engine registry & hot reload — every request resolves its ruleset to a
//    shared_ptr<CleanEngine> copy, so a RELOAD (which rebuilds the engine
//    from the configured CSV/rule files, warms it up, then atomically swaps
//    the pointer) never disturbs in-flight requests: they finish on the old
//    engine, which dies with its last reference. A failed rebuild leaves
//    the old engine serving.
//
//  * Tracked sessions — a CLEAN with the kCleanTrack flag keeps the
//    Session (and the cleaned relation it borrows) alive in a
//    per-connection registry and returns its id; DELTA requests stream
//    edits into it via Session::ApplyDelta. Sessions die with an explicit
//    CLOSE_SESSION or with their connection — a client that disconnects
//    mid-stream leaks nothing.
//
//  * Hardened ingestion — wire bodies decode through BodyReader and
//    client CSV through serve/safe_csv.h (StringPool::TryIntern), so a
//    malformed, oversized or pool-exhausting request yields a kError
//    response (or a connection close for unframeable garbage), never a
//    CHECK-abort of the daemon.
//
//  * Overload control — the work queue is bounded (DaemonOptions::
//    max_queue) and each ruleset caps its concurrently running CLEANs
//    (max_inflight_per_ruleset); a request over either limit is refused
//    *immediately* with kUnavailable plus a retry-after-ms hint, on the
//    reader thread, so overload degrades into fast rejections instead of
//    unbounded queue growth. Every admitted request carries a
//    common::CancelToken armed from its wire deadline (or the
//    request_timeout_ms default); the repair engines poll it between
//    committed fixes, so an expired or CANCELled request unwinds with
//    kDeadlineExceeded / kCancelled and zero partial fixes. The CANCEL
//    opcode is handled on the reader thread — it reaches a request even
//    when every worker is busy.
//
//  * Observability — per-opcode request/error/rejected/cancelled/
//    deadline-exceeded counters and microsecond LatencyHistograms
//    (common/latency_histogram.h), engine MemoStats, fingerprints and
//    reload counts, StringPool occupancy; all exposed as the STATS JSON
//    document and rendered once more as the shutdown summary. Optional
//    per-request JSON log (request_log_path).
//
// Shutdown() is a graceful drain: stop accepting, EOF every reader, finish
// the queued work, then join — except that after drain_grace_ms every
// still-running request's token is cancelled, so a wedged request cannot
// hold the drain hostage. The unicleand binary wires SIGTERM to it.

#ifndef UNICLEAN_SERVE_SERVER_H_
#define UNICLEAN_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/latency_histogram.h"
#include "common/result.h"
#include "serve/wire.h"
#include "uniclean/engine.h"

namespace uniclean {
namespace serve {

/// One served ruleset: the file inputs and thresholds an engine is built
/// (and rebuilt, on RELOAD) from.
struct RulesetConfig {
  std::string name = "default";
  /// Master relation CSV (header row names the attributes).
  std::string master_csv;
  /// Rule program file (rules/parser.h syntax).
  std::string rules_file;
  /// CSV whose header row declares the data schema the rules parse against
  /// (the dirty data itself, or a header-only file).
  std::string schema_csv;
  double eta = 0.8;
  int delta1 = 5;
  double delta2 = 0.8;
  /// Per-memo-map resident entry cap (0 = unbounded) — the long-lived
  /// serving knob.
  int memo_cap = 0;
  bool run_crepair = true;
  bool run_erepair = true;
  bool run_hrepair = true;
};

struct DaemonOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is Daemon::port() after Start().
  int port = 0;
  /// When non-empty, overrides host/port: "unix:PATH" listens on an AF_UNIX
  /// stream socket at PATH (unlinked on Shutdown). Filesystem permissions
  /// on the path are the access control — the pre-TLS story for exposing a
  /// daemon beyond loopback, and what the same-host cluster tests use to
  /// dodge port allocation races. port() stays 0 in this mode.
  std::string listen;
  int n_workers = 4;
  /// Byte size of streamed kJournalChunk / kDataChunk frames.
  size_t chunk_size = 64 * 1024;
  /// Build the match environments at Start() instead of on first request.
  bool warmup = true;
  /// Work-queue bound (admission control): a request arriving while this
  /// many are already queued is refused immediately with kUnavailable plus
  /// a retry-after-ms hint instead of queueing unboundedly. 0 = unbounded
  /// (the pre-admission-control behaviour).
  int max_queue = 0;
  /// Per-ruleset cap on concurrently *running* CLEANs: one hot ruleset
  /// cannot occupy every worker. Excess CLEANs get kUnavailable +
  /// retry-after. 0 = uncapped.
  int max_inflight_per_ruleset = 0;
  /// Default per-request deadline, applied when the request frame's
  /// deadline_ms field is 0. Enforced cooperatively: the repair engines
  /// poll the deadline between committed fixes and unwind with
  /// kDeadlineExceeded. 0 = no default (requests without an explicit
  /// deadline never expire).
  int request_timeout_ms = 0;
  /// Graceful-shutdown drain budget: after this long, still-running
  /// requests have their cancel tokens tripped ("daemon shutting down") and
  /// the drain completes as they unwind. <= 0 = wait forever (the
  /// pre-cancellation behaviour).
  int drain_grace_ms = 5000;
  /// When non-empty, one JSON line per request (opcode, ruleset, tag, bytes
  /// in/out, queue-wait us, run us, status) is appended here, line-buffered.
  std::string request_log_path;
  /// When non-empty, engine snapshots (src/snapshot/) live here as
  /// <name>.ucsnap, one per ruleset. Start() warm-starts each engine from
  /// its snapshot when the fingerprint matches (falling back to a cold
  /// build on any mismatch or corruption, never failing startup because of
  /// a bad snapshot) and writes a fresh snapshot after every cold build,
  /// after every successful RELOAD, and at graceful Shutdown() — the last
  /// one with the memo contents the process earned while serving, so a
  /// replacement starts with the previous process's hit rates. Implies
  /// warmup: an engine must be warm to be persisted.
  std::string snapshot_dir;
};

class Daemon {
 public:
  Daemon(DaemonOptions options, std::vector<RulesetConfig> rulesets);
  /// Joins every thread; equivalent to Shutdown() if still running.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Builds every ruleset's engine, binds the listen socket and spawns the
  /// acceptor + worker threads. Fails (InvalidArgument / NotFound / ...)
  /// without leaving threads behind.
  Status Start();

  /// The bound TCP port (valid after a successful Start(); 0 in unix-socket
  /// mode).
  int port() const { return port_; }

  /// The connectable address: "unix:PATH" or "host:port".
  std::string address() const;

  /// Graceful drain: stop accepting, EOF every connection's reader, finish
  /// all queued and in-flight requests, join every thread, release every
  /// session. Idempotent; also invoked by the destructor.
  void Shutdown();

  /// The STATS JSON document (also served over the wire). Safe while
  /// requests are running.
  std::string StatsJson() const;

  /// Human-readable per-opcode latency/error summary for the shutdown log.
  std::string SummaryText() const;

  // --- test / metrics accessors -------------------------------------------
  /// Tracked sessions currently alive across all connections.
  uint64_t live_sessions() const { return sessions_open_.load(); }
  /// Connections currently alive.
  uint64_t live_connections() const { return conns_open_.load(); }
  /// Frames that failed protocol decoding (bad header, garbage opcode,
  /// malformed body).
  uint64_t protocol_errors() const { return protocol_errors_.load(); }
  /// Requests refused at admission (full queue / per-ruleset cap), i.e.
  /// answered kUnavailable without any work.
  uint64_t requests_rejected() const { return rejected_total_.load(); }
  /// Requests that unwound with kCancelled (CANCEL opcode or shutdown).
  uint64_t requests_cancelled() const { return cancelled_total_.load(); }
  /// Requests that unwound with kDeadlineExceeded.
  uint64_t deadlines_exceeded() const { return deadline_total_.load(); }

  /// Test-only fault injection: when set (before Start), handlers invoke the
  /// hook at named points ("clean.before_run", "delta.before_apply") with
  /// the request's cancel token. A hook that blocks models a stalled
  /// worker — it should poll the token and return its status once tripped; a
  /// non-OK return is reported as that request's failure.
  using FaultHook =
      std::function<Status(std::string_view point, const common::CancelToken*)>;
  void SetFaultHookForTest(FaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  struct ServeSession;
  struct Conn;
  struct EngineEntry;
  struct Work;

  // Acceptor / reader / worker loops.
  void AcceptLoop();
  void ReadLoop(std::shared_ptr<Conn> conn);
  void WorkerLoop();

  // Request handlers (run on worker threads; CANCEL runs on the reader).
  void Dispatch(Work& work);
  Status HandleClean(Work& work);
  Status HandleDelta(Work& work);
  Status HandleStats(Work& work);
  Status HandleReload(Work& work);
  Status HandleCloseSession(Work& work);
  void HandleCancelInline(Conn& conn, const Frame& frame);

  /// Streams `text` as chunked frames of `op` under the request's tag.
  Status StreamChunks(Work& work, Op op, const std::string& text);
  /// `retry_after_ms` rides the kError trailer (0 = no hint).
  Status WriteError(Conn& conn, uint32_t tag, const Status& error,
                    uint32_t retry_after_ms = 0);

  // Admission / cancellation plumbing.
  std::shared_ptr<common::CancelToken> MakeToken(uint32_t deadline_ms);
  void RegisterToken(uint64_t conn_id, uint32_t tag,
                     std::shared_ptr<common::CancelToken> token);
  void UnregisterToken(uint64_t conn_id, uint32_t tag);
  /// Backoff hint for kUnavailable: roughly one median CLEAN, clamped.
  uint32_t RetryAfterMsHint() const;
  void LogRequest(const Work& work, uint64_t run_us, const Status& status);

  /// Resolves a ruleset by name ("" = the sole configured one).
  Result<EngineEntry*> FindRuleset(const std::string& name);
  /// Builds a fresh engine from `cfg` (reload path re-reads the files).
  /// With a non-empty `snapshot_path`, tries EngineBuilder::FromSnapshot
  /// first and falls back to the cold build on any snapshot failure (the
  /// fallback reason is logged; a missing file is the normal first start).
  static Result<std::shared_ptr<CleanEngine>> BuildEngine(
      const RulesetConfig& cfg, bool warmup,
      const std::string& snapshot_path = {});
  /// <snapshot_dir>/<name>.ucsnap, or "" when snapshots are disabled.
  std::string SnapshotPath(const RulesetConfig& cfg) const;
  /// Persists `engine` to the ruleset's snapshot path (no-op when
  /// disabled); failures are logged, never fatal — a serving daemon must
  /// not die because a snapshot write failed.
  void MaybeWriteSnapshot(const RulesetConfig& cfg, const CleanEngine& engine);

  DaemonOptions options_;
  std::vector<std::unique_ptr<EngineEntry>> engines_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Reader bookkeeping: readers register themselves so Shutdown can EOF
  // them, and their threads are joined on the way out.
  std::mutex conns_mu_;
  std::unordered_map<uint64_t, std::weak_ptr<Conn>> conns_;
  std::vector<std::thread> readers_;
  uint64_t next_conn_id_ = 1;

  // Work queue (readers produce, workers consume).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<Work> queue_;
  int in_flight_ = 0;
  bool stop_workers_ = false;  // guarded by queue_mu_

  // Cancel-token registry, keyed (connection id, request tag). Lives at
  // daemon level — not on the Conn — because a reader unregisters its Conn
  // on exit while its requests may still be in flight, and Shutdown's drain
  // grace must reach every live token.
  std::mutex tokens_mu_;
  std::map<std::pair<uint64_t, uint32_t>,
           std::shared_ptr<common::CancelToken>>
      tokens_;
  void CancelAllTokens(const std::string& reason);

  // Structured request log (--log-requests); null when disabled.
  std::FILE* request_log_ = nullptr;
  std::mutex request_log_mu_;

  FaultHook fault_hook_;

  // Metrics.
  struct OpMetrics {
    /// Dispatched to a worker (== accepted; rejected requests never count
    /// here).
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
    /// Refused at admission with kUnavailable (full queue / ruleset cap).
    std::atomic<uint64_t> rejected{0};
    /// Unwound with kCancelled (CANCEL opcode, client gone, or shutdown).
    std::atomic<uint64_t> cancelled{0};
    /// Unwound with kDeadlineExceeded.
    std::atomic<uint64_t> deadline_exceeded{0};
    LatencyHistogram latency_us;
  };
  static constexpr int kNumRequestOps = static_cast<int>(Op::kCancel) + 1;
  OpMetrics op_metrics_[kNumRequestOps];
  std::atomic<uint64_t> conns_accepted_{0};
  std::atomic<uint64_t> conns_open_{0};
  std::atomic<uint64_t> sessions_open_{0};
  std::atomic<uint64_t> sessions_opened_total_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> rejected_total_{0};
  std::atomic<uint64_t> cancelled_total_{0};
  std::atomic<uint64_t> deadline_total_{0};
  std::atomic<uint64_t> next_session_id_{1};
  double start_time_s_ = 0.0;
};

}  // namespace serve
}  // namespace uniclean

#endif  // UNICLEAN_SERVE_SERVER_H_
