// unicleand's serving core: a long-lived daemon holding one warm
// shared_ptr<CleanEngine> per configured ruleset, a TCP acceptor, one
// frame-reader thread per connection and a shared worker pool the decoded
// requests fan out over (the bazil/tra srv.c + work.c shape). Highlights:
//
//  * Engine registry & hot reload — every request resolves its ruleset to a
//    shared_ptr<CleanEngine> copy, so a RELOAD (which rebuilds the engine
//    from the configured CSV/rule files, warms it up, then atomically swaps
//    the pointer) never disturbs in-flight requests: they finish on the old
//    engine, which dies with its last reference. A failed rebuild leaves
//    the old engine serving.
//
//  * Tracked sessions — a CLEAN with the kCleanTrack flag keeps the
//    Session (and the cleaned relation it borrows) alive in a
//    per-connection registry and returns its id; DELTA requests stream
//    edits into it via Session::ApplyDelta. Sessions die with an explicit
//    CLOSE_SESSION or with their connection — a client that disconnects
//    mid-stream leaks nothing.
//
//  * Hardened ingestion — wire bodies decode through BodyReader and
//    client CSV through serve/safe_csv.h (StringPool::TryIntern), so a
//    malformed, oversized or pool-exhausting request yields a kError
//    response (or a connection close for unframeable garbage), never a
//    CHECK-abort of the daemon.
//
//  * Observability — per-opcode request/error counters and microsecond
//    LatencyHistograms (common/latency_histogram.h), engine MemoStats,
//    fingerprints and reload counts, StringPool occupancy; all exposed as
//    the STATS JSON document and rendered once more as the shutdown
//    summary.
//
// Shutdown() is a graceful drain: stop accepting, EOF every reader, finish
// the queued work, then join. The unicleand binary wires SIGTERM to it.

#ifndef UNICLEAN_SERVE_SERVER_H_
#define UNICLEAN_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/latency_histogram.h"
#include "common/result.h"
#include "serve/wire.h"
#include "uniclean/engine.h"

namespace uniclean {
namespace serve {

/// One served ruleset: the file inputs and thresholds an engine is built
/// (and rebuilt, on RELOAD) from.
struct RulesetConfig {
  std::string name = "default";
  /// Master relation CSV (header row names the attributes).
  std::string master_csv;
  /// Rule program file (rules/parser.h syntax).
  std::string rules_file;
  /// CSV whose header row declares the data schema the rules parse against
  /// (the dirty data itself, or a header-only file).
  std::string schema_csv;
  double eta = 0.8;
  int delta1 = 5;
  double delta2 = 0.8;
  /// Per-memo-map resident entry cap (0 = unbounded) — the long-lived
  /// serving knob.
  int memo_cap = 0;
  bool run_crepair = true;
  bool run_erepair = true;
  bool run_hrepair = true;
};

struct DaemonOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is Daemon::port() after Start().
  int port = 0;
  int n_workers = 4;
  /// Byte size of streamed kJournalChunk / kDataChunk frames.
  size_t chunk_size = 64 * 1024;
  /// Build the match environments at Start() instead of on first request.
  bool warmup = true;
};

class Daemon {
 public:
  Daemon(DaemonOptions options, std::vector<RulesetConfig> rulesets);
  /// Joins every thread; equivalent to Shutdown() if still running.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Builds every ruleset's engine, binds the listen socket and spawns the
  /// acceptor + worker threads. Fails (InvalidArgument / NotFound / ...)
  /// without leaving threads behind.
  Status Start();

  /// The bound TCP port (valid after a successful Start()).
  int port() const { return port_; }

  /// Graceful drain: stop accepting, EOF every connection's reader, finish
  /// all queued and in-flight requests, join every thread, release every
  /// session. Idempotent; also invoked by the destructor.
  void Shutdown();

  /// The STATS JSON document (also served over the wire). Safe while
  /// requests are running.
  std::string StatsJson() const;

  /// Human-readable per-opcode latency/error summary for the shutdown log.
  std::string SummaryText() const;

  // --- test / metrics accessors -------------------------------------------
  /// Tracked sessions currently alive across all connections.
  uint64_t live_sessions() const { return sessions_open_.load(); }
  /// Connections currently alive.
  uint64_t live_connections() const { return conns_open_.load(); }
  /// Frames that failed protocol decoding (bad header, garbage opcode,
  /// malformed body).
  uint64_t protocol_errors() const { return protocol_errors_.load(); }

 private:
  struct ServeSession;
  struct Conn;
  struct EngineEntry;
  struct Work;

  // Acceptor / reader / worker loops.
  void AcceptLoop();
  void ReadLoop(std::shared_ptr<Conn> conn);
  void WorkerLoop();

  // Request handlers (run on worker threads).
  void Dispatch(Work& work);
  Status HandleClean(Conn& conn, const Frame& frame);
  Status HandleDelta(Conn& conn, const Frame& frame);
  Status HandleStats(Conn& conn, const Frame& frame);
  Status HandleReload(Conn& conn, const Frame& frame);
  Status HandleCloseSession(Conn& conn, const Frame& frame);

  /// Streams `text` as chunked frames of `op` under the request's tag.
  Status StreamChunks(Conn& conn, uint32_t tag, Op op,
                      const std::string& text);
  Status WriteError(Conn& conn, uint32_t tag, const Status& error);

  /// Resolves a ruleset by name ("" = the sole configured one).
  Result<EngineEntry*> FindRuleset(const std::string& name);
  /// Builds a fresh engine from `cfg` (reload path re-reads the files).
  static Result<std::shared_ptr<CleanEngine>> BuildEngine(
      const RulesetConfig& cfg, bool warmup);

  DaemonOptions options_;
  std::vector<std::unique_ptr<EngineEntry>> engines_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Reader bookkeeping: readers register themselves so Shutdown can EOF
  // them, and their threads are joined on the way out.
  std::mutex conns_mu_;
  std::unordered_map<uint64_t, std::weak_ptr<Conn>> conns_;
  std::vector<std::thread> readers_;
  uint64_t next_conn_id_ = 1;

  // Work queue (readers produce, workers consume).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<Work> queue_;
  int in_flight_ = 0;
  bool stop_workers_ = false;  // guarded by queue_mu_

  // Metrics.
  struct OpMetrics {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
    LatencyHistogram latency_us;
  };
  static constexpr int kNumRequestOps =
      static_cast<int>(Op::kCloseSession) + 1;
  OpMetrics op_metrics_[kNumRequestOps];
  std::atomic<uint64_t> conns_accepted_{0};
  std::atomic<uint64_t> conns_open_{0};
  std::atomic<uint64_t> sessions_open_{0};
  std::atomic<uint64_t> sessions_opened_total_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> next_session_id_{1};
  double start_time_s_ = 0.0;
};

}  // namespace serve
}  // namespace uniclean

#endif  // UNICLEAN_SERVE_SERVER_H_
