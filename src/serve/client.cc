#include "serve/client.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <chrono>
#include <thread>
#include <utility>

namespace uniclean {
namespace serve {

namespace {

std::string IdListText(const std::vector<data::TupleId>& ids) {
  std::string out;
  for (data::TupleId t : ids) {
    out += std::to_string(t);
    out += '\n';
  }
  return out;
}

// splitmix64: a cheap, stateless mixer — good enough to decorrelate the
// backoff of clients that share a seed-by-index convention, and fully
// deterministic for tests.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, int port) {
  UC_ASSIGN_OR_RETURN(int fd, ConnectTcp(host, port));
  return Client(std::make_unique<FrameChannel>(fd));
}

Result<Client> Client::ConnectAddress(const std::string& address) {
  UC_ASSIGN_OR_RETURN(int fd, serve::ConnectAddress(address));
  return Client(std::make_unique<FrameChannel>(fd));
}

Status Client::SetIoTimeoutMs(int ms) {
  if (!channel_) return Status::FailedPrecondition("client is not connected");
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  if (::setsockopt(channel_->fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
          0 ||
      ::setsockopt(channel_->fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) !=
          0) {
    return Status::Internal("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO) failed");
  }
  return Status::OK();
}

Status Client::Send(uint32_t tag, Op op, std::string_view body,
                    uint32_t deadline_ms) {
  if (!channel_) return Status::FailedPrecondition("client is not connected");
  return channel_->WriteFrame(tag, op, body,
                              deadline_ms != 0 ? deadline_ms
                                               : default_deadline_ms_);
}

uint32_t Client::BackoffMs(int attempt) const {
  uint64_t backoff = retry_policy_.base_backoff_ms;
  // Saturating doubling: attempt counts can exceed the bits in a u64 when
  // a caller configures a huge retry budget.
  for (int i = 0; i < attempt && backoff < retry_policy_.max_backoff_ms; ++i) {
    backoff *= 2;
  }
  if (backoff > retry_policy_.max_backoff_ms) {
    backoff = retry_policy_.max_backoff_ms;
  }
  const uint64_t jitter =
      SplitMix64(retry_policy_.jitter_seed ^
                 (0x5bf03635ull * static_cast<uint64_t>(attempt + 1))) %
      (backoff / 2 + 1);
  uint64_t wait = backoff - backoff / 2 + jitter;  // in [ceil(b/2), b]
  if (last_retry_after_ms_ > wait) wait = last_retry_after_ms_;
  return static_cast<uint32_t>(wait);
}

bool Client::MaybeBackoff(int attempt) {
  if (attempt >= retry_policy_.max_retries) return false;
  ++retries_performed_;
  std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs(attempt)));
  return true;
}

Result<Frame> Client::ReadFor(uint32_t tag) {
  auto it = pending_.find(tag);
  if (it != pending_.end() && !it->second.empty()) {
    Frame frame = std::move(it->second.front());
    it->second.erase(it->second.begin());
    if (it->second.empty()) pending_.erase(it);
    return frame;
  }
  if (!channel_) return Status::FailedPrecondition("client is not connected");
  for (;;) {
    UC_ASSIGN_OR_RETURN(Frame frame, channel_->ReadFrame());
    if (frame.tag == tag) return frame;
    pending_[frame.tag].push_back(std::move(frame));
  }
}

Result<Frame> Client::ReadTerminal(uint32_t tag, Op expect,
                                   std::string* journal, std::string* data) {
  for (;;) {
    UC_ASSIGN_OR_RETURN(Frame frame, ReadFor(tag));
    switch (frame.op) {
      case Op::kJournalChunk:
        if (journal) *journal += frame.body;
        continue;
      case Op::kDataChunk:
        if (data) *data += frame.body;
        continue;
      case Op::kError: {
        BodyReader body(frame.body);
        UC_ASSIGN_OR_RETURN(uint8_t code, body.U8());
        UC_ASSIGN_OR_RETURN(std::string message, body.Lp());
        // Optional trailer (absent in pre-deadline daemons): the backoff
        // hint for kUnavailable rejections.
        last_retry_after_ms_ =
            body.remaining() >= 4 ? body.U32().value() : 0;
        return StatusFromWire(code, std::move(message));
      }
      default:
        if (frame.op != expect) {
          return Status::Corruption(
              "unexpected reply opcode " + std::string(OpName(frame.op)) +
              " (wanted " + std::string(OpName(expect)) + ")");
        }
        return frame;
    }
  }
}

Status Client::Ping() {
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kPing, "unicleand?"));
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kPong, nullptr, nullptr));
  (void)frame;
  return Status::OK();
}

Result<PingInfo> Client::PingEx() {
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kPing, "unicleand?"));
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kPong, nullptr, nullptr));
  PingInfo info;
  // Best-effort trailer parse: a pre-trailer daemon echoes the raw payload,
  // which won't decode as the structured layout — that is still a healthy
  // pong, just without load/fingerprint data.
  BodyReader body(frame.body);
  Result<std::string> echo = body.Lp();
  if (!echo.ok()) return info;
  Result<uint32_t> inflight = body.U32();
  Result<uint32_t> queued = inflight.ok() ? body.U32() : inflight;
  Result<uint32_t> count = queued.ok() ? body.U32() : queued;
  if (!count.ok()) return info;
  info.inflight = inflight.value();
  info.queued = queued.value();
  for (uint32_t i = 0; i < count.value(); ++i) {
    Result<std::string> name = body.Lp();
    if (!name.ok()) break;
    Result<uint64_t> fingerprint = body.U64();
    if (!fingerprint.ok()) break;
    info.rulesets.emplace_back(std::move(name).value(), fingerprint.value());
  }
  return info;
}

Result<uint32_t> Client::SendClean(const CleanRequest& request) {
  std::string body;
  uint8_t flags = 0;
  if (request.track) flags |= kCleanTrack;
  if (request.want_data) flags |= kCleanWantData;
  PutU8(&body, flags);
  PutLp(&body, request.ruleset);
  PutLp(&body, request.data_csv);
  PutLp(&body, request.confidence_csv);
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kClean, body, request.deadline_ms));
  return tag;
}

Result<CleanReply> Client::AwaitClean(uint32_t tag) {
  CleanReply reply;
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kCleanDone, &reply.journal_csv,
                                   &reply.data_csv));
  BodyReader body(frame.body);
  UC_ASSIGN_OR_RETURN(reply.session_id, body.U64());
  UC_ASSIGN_OR_RETURN(reply.total_fixes, body.U32());
  UC_ASSIGN_OR_RETURN(reply.journal_entries, body.U32());
  UC_ASSIGN_OR_RETURN(reply.phase_summary, body.Lp());
  return reply;
}

Result<CleanReply> Client::Clean(const CleanRequest& request) {
  for (int attempt = 0;; ++attempt) {
    UC_ASSIGN_OR_RETURN(uint32_t tag, SendClean(request));
    Result<CleanReply> reply = AwaitClean(tag);
    // Only kUnavailable retries: the daemon rejected before doing any
    // work, so resending cannot double-apply.
    if (reply.ok() || reply.status().code() != StatusCode::kUnavailable ||
        !MaybeBackoff(attempt)) {
      return reply;
    }
  }
}

Result<DeltaReply> Client::Delta(const DeltaRequest& request) {
  std::string body;
  PutU64(&body, request.session_id);
  PutLp(&body, request.inserts_csv);
  PutLp(&body, IdListText(request.update_ids));
  PutLp(&body, request.updates_csv);
  PutLp(&body, IdListText(request.delete_ids));
  for (int attempt = 0;; ++attempt) {
    const uint32_t tag = next_tag_++;
    UC_RETURN_IF_ERROR(Send(tag, Op::kDelta, body, request.deadline_ms));
    Result<DeltaReply> reply = AwaitDelta(tag);
    if (reply.ok() || reply.status().code() != StatusCode::kUnavailable ||
        !MaybeBackoff(attempt)) {
      return reply;
    }
  }
}

Result<DeltaReply> Client::AwaitDelta(uint32_t tag) {
  DeltaReply reply;
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kDeltaDone, &reply.journal_csv,
                                   nullptr));
  BodyReader done(frame.body);
  UC_ASSIGN_OR_RETURN(reply.generation, done.U32());
  UC_ASSIGN_OR_RETURN(reply.affected, done.U32());
  UC_ASSIGN_OR_RETURN(reply.refinement_rounds, done.U32());
  UC_ASSIGN_OR_RETURN(reply.total_fixes, done.U32());
  UC_ASSIGN_OR_RETURN(std::string inserted, done.Lp());
  std::string line;
  for (char c : inserted) {
    if (c == '\n') {
      if (!line.empty()) {
        reply.inserted_ids.push_back(
            static_cast<data::TupleId>(std::stoul(line)));
      }
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  return reply;
}

Result<std::string> Client::Stats() {
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kStats, ""));
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kStatsReply, nullptr, nullptr));
  return frame.body;
}

Result<uint32_t> Client::SendReload(const std::string& ruleset) {
  std::string body;
  PutLp(&body, ruleset);
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kReload, body));
  return tag;
}

Result<std::string> Client::AwaitReload(uint32_t tag) {
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kOk, nullptr, nullptr));
  BodyReader body(frame.body);
  return body.Lp();
}

Result<std::string> Client::Reload(const std::string& ruleset) {
  UC_ASSIGN_OR_RETURN(uint32_t tag, SendReload(ruleset));
  return AwaitReload(tag);
}

Status Client::Cancel(uint32_t target_tag) {
  std::string body;
  PutU32(&body, target_tag);
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kCancel, body));
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kOk, nullptr, nullptr));
  (void)frame;
  return Status::OK();
}

Status Client::CloseSession(uint64_t session_id) {
  std::string body;
  PutU64(&body, session_id);
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kCloseSession, body));
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kOk, nullptr, nullptr));
  (void)frame;
  return Status::OK();
}

}  // namespace serve
}  // namespace uniclean
