#include "serve/client.h"

#include <utility>

namespace uniclean {
namespace serve {

namespace {

std::string IdListText(const std::vector<data::TupleId>& ids) {
  std::string out;
  for (data::TupleId t : ids) {
    out += std::to_string(t);
    out += '\n';
  }
  return out;
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, int port) {
  UC_ASSIGN_OR_RETURN(int fd, ConnectTcp(host, port));
  return Client(std::make_unique<FrameChannel>(fd));
}

Status Client::Send(uint32_t tag, Op op, std::string_view body) {
  if (!channel_) return Status::FailedPrecondition("client is not connected");
  return channel_->WriteFrame(tag, op, body);
}

Result<Frame> Client::ReadFor(uint32_t tag) {
  auto it = pending_.find(tag);
  if (it != pending_.end() && !it->second.empty()) {
    Frame frame = std::move(it->second.front());
    it->second.erase(it->second.begin());
    if (it->second.empty()) pending_.erase(it);
    return frame;
  }
  if (!channel_) return Status::FailedPrecondition("client is not connected");
  for (;;) {
    UC_ASSIGN_OR_RETURN(Frame frame, channel_->ReadFrame());
    if (frame.tag == tag) return frame;
    pending_[frame.tag].push_back(std::move(frame));
  }
}

Result<Frame> Client::ReadTerminal(uint32_t tag, Op expect,
                                   std::string* journal, std::string* data) {
  for (;;) {
    UC_ASSIGN_OR_RETURN(Frame frame, ReadFor(tag));
    switch (frame.op) {
      case Op::kJournalChunk:
        if (journal) *journal += frame.body;
        continue;
      case Op::kDataChunk:
        if (data) *data += frame.body;
        continue;
      case Op::kError: {
        BodyReader body(frame.body);
        UC_ASSIGN_OR_RETURN(uint8_t code, body.U8());
        UC_ASSIGN_OR_RETURN(std::string message, body.Lp());
        return StatusFromWire(code, std::move(message));
      }
      default:
        if (frame.op != expect) {
          return Status::Corruption(
              "unexpected reply opcode " + std::string(OpName(frame.op)) +
              " (wanted " + std::string(OpName(expect)) + ")");
        }
        return frame;
    }
  }
}

Status Client::Ping() {
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kPing, "unicleand?"));
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kPong, nullptr, nullptr));
  (void)frame;
  return Status::OK();
}

Result<uint32_t> Client::SendClean(const CleanRequest& request) {
  std::string body;
  uint8_t flags = 0;
  if (request.track) flags |= kCleanTrack;
  if (request.want_data) flags |= kCleanWantData;
  PutU8(&body, flags);
  PutLp(&body, request.ruleset);
  PutLp(&body, request.data_csv);
  PutLp(&body, request.confidence_csv);
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kClean, body));
  return tag;
}

Result<CleanReply> Client::AwaitClean(uint32_t tag) {
  CleanReply reply;
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kCleanDone, &reply.journal_csv,
                                   &reply.data_csv));
  BodyReader body(frame.body);
  UC_ASSIGN_OR_RETURN(reply.session_id, body.U64());
  UC_ASSIGN_OR_RETURN(reply.total_fixes, body.U32());
  UC_ASSIGN_OR_RETURN(reply.journal_entries, body.U32());
  UC_ASSIGN_OR_RETURN(reply.phase_summary, body.Lp());
  return reply;
}

Result<CleanReply> Client::Clean(const CleanRequest& request) {
  UC_ASSIGN_OR_RETURN(uint32_t tag, SendClean(request));
  return AwaitClean(tag);
}

Result<DeltaReply> Client::Delta(const DeltaRequest& request) {
  std::string body;
  PutU64(&body, request.session_id);
  PutLp(&body, request.inserts_csv);
  PutLp(&body, IdListText(request.update_ids));
  PutLp(&body, request.updates_csv);
  PutLp(&body, IdListText(request.delete_ids));
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kDelta, body));

  DeltaReply reply;
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kDeltaDone, &reply.journal_csv,
                                   nullptr));
  BodyReader done(frame.body);
  UC_ASSIGN_OR_RETURN(reply.generation, done.U32());
  UC_ASSIGN_OR_RETURN(reply.affected, done.U32());
  UC_ASSIGN_OR_RETURN(reply.refinement_rounds, done.U32());
  UC_ASSIGN_OR_RETURN(reply.total_fixes, done.U32());
  UC_ASSIGN_OR_RETURN(std::string inserted, done.Lp());
  std::string line;
  for (char c : inserted) {
    if (c == '\n') {
      if (!line.empty()) {
        reply.inserted_ids.push_back(
            static_cast<data::TupleId>(std::stoul(line)));
      }
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  return reply;
}

Result<std::string> Client::Stats() {
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kStats, ""));
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kStatsReply, nullptr, nullptr));
  return frame.body;
}

Result<uint32_t> Client::SendReload(const std::string& ruleset) {
  std::string body;
  PutLp(&body, ruleset);
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kReload, body));
  return tag;
}

Result<std::string> Client::AwaitReload(uint32_t tag) {
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kOk, nullptr, nullptr));
  BodyReader body(frame.body);
  return body.Lp();
}

Result<std::string> Client::Reload(const std::string& ruleset) {
  UC_ASSIGN_OR_RETURN(uint32_t tag, SendReload(ruleset));
  return AwaitReload(tag);
}

Status Client::CloseSession(uint64_t session_id) {
  std::string body;
  PutU64(&body, session_id);
  const uint32_t tag = next_tag_++;
  UC_RETURN_IF_ERROR(Send(tag, Op::kCloseSession, body));
  UC_ASSIGN_OR_RETURN(Frame frame,
                      ReadTerminal(tag, Op::kOk, nullptr, nullptr));
  (void)frame;
  return Status::OK();
}

}  // namespace serve
}  // namespace uniclean
