#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "data/csv.h"
#include "data/string_pool.h"
#include "serve/safe_csv.h"
#include "snapshot/snapshot.h"

namespace uniclean {
namespace serve {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string HistogramJson(const LatencyHistogram& h) {
  return "{\"mean\": " + std::to_string(h.mean()) +
         ", \"p50\": " + std::to_string(h.p50()) +
         ", \"p95\": " + std::to_string(h.p95()) +
         ", \"p99\": " + std::to_string(h.p99()) +
         ", \"max\": " + std::to_string(h.max()) + "}";
}

std::string FingerprintHex(uint64_t fp) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fp);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

/// One tracked session and the relation it cleans (the Session borrows the
/// relation, so the daemon owns both with the same lifetime). `mu`
/// serializes DELTA requests — a Session must not run from two threads.
struct Daemon::ServeSession {
  std::unique_ptr<data::Relation> relation;
  Session session;
  std::mutex mu;
};

/// One client connection: the framed channel, a write lock serializing
/// response frames from concurrent workers, and the tracked sessions this
/// connection opened (reclaimed with the connection — see ~Conn).
struct Daemon::Conn {
  Conn(Daemon* daemon, int fd, uint64_t id)
      : daemon(daemon), channel(fd), id(id) {}
  ~Conn() {
    daemon->sessions_open_.fetch_sub(sessions.size(),
                                     std::memory_order_relaxed);
    daemon->conns_open_.fetch_sub(1, std::memory_order_relaxed);
  }

  Daemon* daemon;
  FrameChannel channel;
  uint64_t id;
  std::mutex write_mu;
  std::mutex sessions_mu;
  std::unordered_map<uint64_t, std::shared_ptr<ServeSession>> sessions;
  std::atomic<bool> closing{false};
};

/// One served ruleset: the rebuild recipe plus the hot-swappable engine.
/// Requests copy the shared_ptr under `mu`; RELOAD builds a replacement
/// from `cfg` and swaps it in — in-flight sessions finish on the old
/// engine, which they keep alive through their own shared_ptr.
struct Daemon::EngineEntry {
  RulesetConfig cfg;
  mutable std::mutex mu;
  std::shared_ptr<CleanEngine> engine;
  std::atomic<uint64_t> reloads{0};
  /// CLEANs currently running against this ruleset (admission cap).
  std::atomic<int> inflight{0};

  std::shared_ptr<CleanEngine> Get() const {
    std::lock_guard<std::mutex> lock(mu);
    return engine;
  }
};

struct Daemon::Work {
  std::shared_ptr<Conn> conn;
  Frame frame;
  uint64_t enqueue_us = 0;
  /// When the worker picked it up (queue wait = dequeue - enqueue).
  uint64_t dequeue_us = 0;
  /// Armed at admission from the frame's deadline_ms (or the server
  /// default); reachable for CANCEL/shutdown through the token registry.
  std::shared_ptr<common::CancelToken> token;
  /// Filled by handlers that resolve one (request-log field).
  std::string ruleset;
  /// Response bytes written for this request (request-log field).
  uint64_t bytes_out = 0;
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Daemon::Daemon(DaemonOptions options, std::vector<RulesetConfig> rulesets)
    : options_(std::move(options)) {
  engines_.reserve(rulesets.size());
  for (RulesetConfig& cfg : rulesets) {
    auto entry = std::make_unique<EngineEntry>();
    entry->cfg = std::move(cfg);
    engines_.push_back(std::move(entry));
  }
}

Daemon::~Daemon() { Shutdown(); }

Result<std::shared_ptr<CleanEngine>> Daemon::BuildEngine(
    const RulesetConfig& cfg, bool warmup, const std::string& snapshot_path) {
  if (cfg.master_csv.empty() || cfg.rules_file.empty() ||
      cfg.schema_csv.empty()) {
    return Status::InvalidArgument(
        "ruleset '" + cfg.name +
        "' needs master CSV, rules file and data-schema CSV paths");
  }
  UC_ASSIGN_OR_RETURN(data::SchemaPtr schema,
                      data::InferCsvSchema(cfg.schema_csv, "data"));
  core::MdMatcherOptions matcher;
  matcher.memo_capacity = static_cast<size_t>(cfg.memo_cap);
  const auto configure = [&](EngineBuilder& builder) {
    builder.WithDataSchema(schema)
        .WithMasterCsv(cfg.master_csv)
        .WithRulesFile(cfg.rules_file)
        .WithEta(cfg.eta)
        .WithDelta1(cfg.delta1)
        .WithDelta2(cfg.delta2)
        .WithMatcherOptions(matcher)
        .WithDefaultPhases(cfg.run_crepair, cfg.run_erepair, cfg.run_hrepair);
  };
  if (!snapshot_path.empty()) {
    EngineBuilder from_snapshot;
    configure(from_snapshot);
    Result<std::shared_ptr<CleanEngine>> loaded =
        from_snapshot.FromSnapshot(snapshot_path);
    if (loaded.ok()) return loaded;  // env already warm
    // A bad or stale snapshot must never take the daemon down: report why
    // and cold-build from the primary sources. A missing file is the
    // normal first start and stays quiet.
    if (loaded.status().code() != StatusCode::kNotFound) {
      std::fprintf(stderr,
                   "unicleand: ruleset '%s': snapshot %s rejected (%s); "
                   "cold-building\n",
                   cfg.name.c_str(), snapshot_path.c_str(),
                   loaded.status().ToString().c_str());
    }
  }
  EngineBuilder cold;
  configure(cold);
  UC_ASSIGN_OR_RETURN(std::shared_ptr<CleanEngine> engine, cold.BuildEngine());
  // Reload path: warm the replacement BEFORE the swap, so a hot-reloaded
  // engine never serves its first requests through a cold index build.
  if (warmup) engine->Warmup();
  return engine;
}

std::string Daemon::SnapshotPath(const RulesetConfig& cfg) const {
  if (options_.snapshot_dir.empty()) return {};
  return options_.snapshot_dir + "/" + cfg.name + ".ucsnap";
}

void Daemon::MaybeWriteSnapshot(const RulesetConfig& cfg,
                                const CleanEngine& engine) {
  const std::string path = SnapshotPath(cfg);
  if (path.empty()) return;
  const Status status = snapshot::WriteSnapshot(engine, path);
  if (status.ok()) {
    std::fprintf(stderr, "unicleand: ruleset '%s': snapshot written to %s\n",
                 cfg.name.c_str(), path.c_str());
  } else {
    std::fprintf(stderr,
                 "unicleand: ruleset '%s': snapshot write to %s failed "
                 "(%s)\n",
                 cfg.name.c_str(), path.c_str(), status.ToString().c_str());
  }
}

Status Daemon::Start() {
  if (engines_.empty()) {
    return Status::InvalidArgument("unicleand needs at least one ruleset");
  }
  for (size_t i = 0; i < engines_.size(); ++i) {
    for (size_t j = i + 1; j < engines_.size(); ++j) {
      if (engines_[i]->cfg.name == engines_[j]->cfg.name) {
        return Status::InvalidArgument("duplicate ruleset name '" +
                                       engines_[i]->cfg.name + "'");
      }
    }
    EngineEntry& entry = *engines_[i];
    const double t0 = NowS();
    UC_ASSIGN_OR_RETURN(
        entry.engine,
        BuildEngine(entry.cfg, options_.warmup, SnapshotPath(entry.cfg)));
    const double build_s = NowS() - t0;
    const bool from_snapshot = !entry.engine->snapshot_source().empty();
    std::fprintf(stderr,
                 "unicleand: ruleset '%s' engine ready in %.3fs (%s)\n",
                 entry.cfg.name.c_str(), build_s,
                 from_snapshot
                     ? ("snapshot " + entry.engine->snapshot_source()).c_str()
                     : "cold build");
    // A cold-built engine leaves a snapshot behind for the next start; a
    // snapshot-warmed one already matches the file on disk.
    if (!from_snapshot) MaybeWriteSnapshot(entry.cfg, *entry.engine);
  }
  if (!options_.request_log_path.empty()) {
    request_log_ = std::fopen(options_.request_log_path.c_str(), "a");
    if (request_log_ == nullptr) {
      return Status::InvalidArgument("cannot open request log '" +
                                     options_.request_log_path + "'");
    }
    // Line-buffered: each request's JSON line is visible as soon as it is
    // written, without per-line flush syscall storms.
    std::setvbuf(request_log_, nullptr, _IOLBF, 1 << 16);
  }
  if (options_.listen.rfind("unix:", 0) == 0) {
    UC_ASSIGN_OR_RETURN(listen_fd_, ListenUnix(options_.listen.substr(5)));
    port_ = 0;
  } else if (!options_.listen.empty()) {
    return Status::InvalidArgument("bad listen address (want unix:PATH): " +
                                   options_.listen);
  } else {
    UC_ASSIGN_OR_RETURN(listen_fd_,
                        ListenTcp(options_.host, options_.port, &port_));
  }
  start_time_s_ = NowS();
  running_.store(true);
  stop_workers_ = false;
  acceptor_ = std::thread(&Daemon::AcceptLoop, this);
  const int n = std::max(1, options_.n_workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(&Daemon::WorkerLoop, this);
  }
  return Status::OK();
}

void Daemon::Shutdown() {
  if (!running_.exchange(false)) return;
  // 1. Stop accepting (the poll loop sees running_ == false).
  if (acceptor_.joinable()) acceptor_.join();
  // 2. EOF every connection's read side so readers stop enqueuing, then
  //    join them. In-flight and queued requests are untouched.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, weak] : conns_) {
      if (std::shared_ptr<Conn> conn = weak.lock()) {
        ::shutdown(conn->channel.fd(), SHUT_RD);
      }
    }
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers.swap(readers_);
  }
  for (std::thread& t : readers) t.join();
  // 3. Drain: every queued request is served before the workers stop — but
  //    a request wedged past the grace budget has its token cancelled, so
  //    the engines unwind it cooperatively and the drain still completes.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    const auto drained = [&] { return queue_.empty() && in_flight_ == 0; };
    if (options_.drain_grace_ms > 0 &&
        !drained_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.drain_grace_ms),
            drained)) {
      lock.unlock();
      CancelAllTokens("daemon shutting down");
      lock.lock();
    }
    drained_cv_.wait(lock, drained);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // 4. Release connection handles; sessions die with their Conn.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  // 5. The drain left every engine quiescent; refresh the snapshots so the
  //    memo heat this process earned (match lists, blocking candidates,
  //    similarity outcomes) survives into the next start. A kill -9 skips
  //    this and the replacement falls back to the build-time snapshot.
  for (const auto& entry : engines_) {
    if (std::shared_ptr<CleanEngine> engine = entry->Get()) {
      MaybeWriteSnapshot(entry->cfg, *engine);
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (options_.listen.rfind("unix:", 0) == 0) {
    ::unlink(options_.listen.substr(5).c_str());
  }
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    tokens_.clear();
  }
  if (request_log_ != nullptr) {
    std::fclose(request_log_);
    request_log_ = nullptr;
  }
}

std::string Daemon::address() const {
  if (!options_.listen.empty()) return options_.listen;
  return options_.host + ":" + std::to_string(port_);
}

void Daemon::CancelAllTokens(const std::string& reason) {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  for (auto& [key, token] : tokens_) token->Cancel(reason);
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

void Daemon::AcceptLoop() {
  while (running_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, 200);
    if (r <= 0) continue;  // timeout (re-check running_) or EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // A peer that stops reading must not wedge a worker in send() forever:
    // bound the write side, then treat a timeout as a dead connection.
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    conns_accepted_.fetch_add(1, std::memory_order_relaxed);
    conns_open_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mu_);
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_shared<Conn>(this, fd, id);
    conns_.emplace(id, conn);
    readers_.emplace_back(&Daemon::ReadLoop, this, std::move(conn));
  }
}

void Daemon::ReadLoop(std::shared_ptr<Conn> conn) {
  for (;;) {
    Result<Frame> frame = conn->channel.ReadFrame();
    if (!frame.ok()) {
      // NotFound = clean EOF at a frame boundary; anything else (truncated
      // frame, oversized declared length, transport error) is a protocol
      // error — notify best-effort under tag 0, then drop the connection.
      if (frame.status().code() != StatusCode::kNotFound) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        WriteError(*conn, 0, frame.status());
      }
      break;
    }
    if (!IsRequestOp(static_cast<uint8_t>(frame->op))) {
      // Garbage opcode inside a well-formed frame: framing is still intact,
      // so answer the tag and keep the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      WriteError(*conn, frame->tag,
                 Status::InvalidArgument(
                     "unknown request opcode " +
                     std::to_string(static_cast<uint8_t>(frame->op))));
      continue;
    }
    if (frame->op == Op::kCancel) {
      // Handled right here on the reader thread: CANCEL must reach its
      // target even when the queue is full and every worker is wedged.
      HandleCancelInline(*conn, *frame);
      continue;
    }
    // Admission control. The queue bound is checked under queue_mu_ so the
    // limit is exact; a refused request is answered immediately (with a
    // backoff hint) and costs no worker time and no queue slot.
    Work work;
    work.conn = conn;
    work.frame = std::move(frame).value();
    work.token = MakeToken(work.frame.deadline_ms);
    const int op_index = static_cast<int>(work.frame.op);
    bool admitted = true;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (options_.max_queue > 0 &&
          queue_.size() >= static_cast<size_t>(options_.max_queue)) {
        admitted = false;
      } else {
        work.enqueue_us = NowUs();
        RegisterToken(conn->id, work.frame.tag, work.token);
        queue_.push_back(std::move(work));
      }
    }
    if (!admitted) {
      op_metrics_[op_index].rejected.fetch_add(1, std::memory_order_relaxed);
      rejected_total_.fetch_add(1, std::memory_order_relaxed);
      const Status unavailable = Status::Unavailable(
          "work queue full (" + std::to_string(options_.max_queue) +
          " queued); retry after the hinted backoff");
      LogRequest(work, /*run_us=*/0, unavailable);
      WriteError(*conn, work.frame.tag, unavailable, RetryAfterMsHint());
      continue;
    }
    queue_cv_.notify_one();
  }
  conn->closing.store(true);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn->id);
}

void Daemon::WorkerLoop() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      work = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    work.dequeue_us = NowUs();
    Dispatch(work);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drained_cv_.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch & handlers
// ---------------------------------------------------------------------------

void Daemon::Dispatch(Work& work) {
  Conn& conn = *work.conn;
  const int op_index = static_cast<int>(work.frame.op);
  OpMetrics& metrics = op_metrics_[op_index];
  metrics.requests.fetch_add(1, std::memory_order_relaxed);
  Status status = Status::OK();
  if (conn.closing.load()) {
    // The client is gone; don't spend a clean on a response nobody reads.
    metrics.errors.fetch_add(1, std::memory_order_relaxed);
  } else if (work.token != nullptr && work.token->IsCancelled()) {
    // Expired (or cancelled) while queued: answer without running the
    // handler — the deadline covers queue wait, not just execution.
    status = work.token->status();
  } else {
    switch (work.frame.op) {
      case Op::kPing: {
        // PONG carries a health/identity trailer behind the echo: load
        // (in-flight + queued) and per-ruleset engine fingerprints. One
        // cheap opcode gives the cluster prober liveness, load and
        // rolling-reload verification in a single round trip.
        std::string body;
        PutLp(&body, work.frame.body);
        uint32_t queued = 0;
        {
          std::lock_guard<std::mutex> lock(queue_mu_);
          queued = static_cast<uint32_t>(queue_.size());
          PutU32(&body, static_cast<uint32_t>(in_flight_));
        }
        PutU32(&body, queued);
        PutU32(&body, static_cast<uint32_t>(engines_.size()));
        for (const auto& entry : engines_) {
          PutLp(&body, entry->cfg.name);
          std::shared_ptr<CleanEngine> engine = entry->Get();
          PutU64(&body, engine != nullptr ? engine->Fingerprint() : 0);
        }
        std::lock_guard<std::mutex> lock(conn.write_mu);
        status = conn.channel.WriteFrame(work.frame.tag, Op::kPong, body);
        work.bytes_out += body.size();
        break;
      }
      case Op::kClean:
        status = HandleClean(work);
        break;
      case Op::kDelta:
        status = HandleDelta(work);
        break;
      case Op::kStats:
        status = HandleStats(work);
        break;
      case Op::kReload:
        status = HandleReload(work);
        break;
      case Op::kCloseSession:
        status = HandleCloseSession(work);
        break;
      default:
        status = Status::Internal("unreachable: non-request op dispatched");
    }
  }
  if (!status.ok()) {
    metrics.errors.fetch_add(1, std::memory_order_relaxed);
    if (status.code() == StatusCode::kCancelled) {
      metrics.cancelled.fetch_add(1, std::memory_order_relaxed);
      cancelled_total_.fetch_add(1, std::memory_order_relaxed);
    } else if (status.code() == StatusCode::kDeadlineExceeded) {
      metrics.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      deadline_total_.fetch_add(1, std::memory_order_relaxed);
    } else if (status.code() == StatusCode::kUnavailable) {
      // The per-ruleset in-flight cap refuses inside the handler; it is
      // still an admission rejection, not a failure of the work itself.
      metrics.rejected.fetch_add(1, std::memory_order_relaxed);
      rejected_total_.fetch_add(1, std::memory_order_relaxed);
    }
    // The counters record the unwind either way; the response is only
    // worth writing while someone is still reading (shutdown-drain
    // cancellations typically race the reader's exit).
    if (!conn.closing.load()) {
      WriteError(conn, work.frame.tag, status,
                 status.code() == StatusCode::kUnavailable ? RetryAfterMsHint()
                                                           : 0);
    }
  }
  UnregisterToken(conn.id, work.frame.tag);
  const uint64_t now = NowUs();
  metrics.latency_us.Record(now - work.enqueue_us);
  LogRequest(work, now - work.dequeue_us, status);
}

Result<Daemon::EngineEntry*> Daemon::FindRuleset(const std::string& name) {
  if (name.empty()) {
    if (engines_.size() == 1) return engines_.front().get();
    return Status::InvalidArgument(
        "ruleset name required: " + std::to_string(engines_.size()) +
        " rulesets are configured");
  }
  for (const auto& entry : engines_) {
    if (entry->cfg.name == name) return entry.get();
  }
  return Status::NotFound("unknown ruleset '" + name + "'");
}

Status Daemon::StreamChunks(Work& work, Op op, const std::string& text) {
  Conn& conn = *work.conn;
  const size_t chunk = std::max<size_t>(1, options_.chunk_size);
  for (size_t at = 0; at < text.size(); at += chunk) {
    std::string_view piece(text.data() + at,
                           std::min(chunk, text.size() - at));
    std::lock_guard<std::mutex> lock(conn.write_mu);
    UC_RETURN_IF_ERROR(conn.channel.WriteFrame(work.frame.tag, op, piece));
    work.bytes_out += piece.size();
  }
  return Status::OK();
}

Status Daemon::WriteError(Conn& conn, uint32_t tag, const Status& error,
                          uint32_t retry_after_ms) {
  std::string body;
  PutU8(&body, WireErrorCode(error));
  PutLp(&body, error.message());
  PutU32(&body, retry_after_ms);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  return conn.channel.WriteFrame(tag, Op::kError, body);
}

namespace {

/// Releases a per-ruleset in-flight slot on every exit path.
struct InflightGuard {
  std::atomic<int>* counter;
  ~InflightGuard() {
    if (counter != nullptr) counter->fetch_sub(1, std::memory_order_acq_rel);
  }
};

}  // namespace

Status Daemon::HandleClean(Work& work) {
  Conn& conn = *work.conn;
  const Frame& frame = work.frame;
  BodyReader body(frame.body);
  UC_ASSIGN_OR_RETURN(uint8_t flags, body.U8());
  UC_ASSIGN_OR_RETURN(std::string ruleset, body.Lp());
  UC_ASSIGN_OR_RETURN(std::string data_csv, body.Lp());
  UC_ASSIGN_OR_RETURN(std::string confidence_csv, body.Lp());

  UC_ASSIGN_OR_RETURN(EngineEntry * entry, FindRuleset(ruleset));
  work.ruleset = entry->cfg.name;

  // Per-ruleset admission: one hot ruleset must not occupy every worker.
  // fetch_add-then-check keeps the cap exact under concurrent CLEANs.
  InflightGuard inflight{nullptr};
  if (options_.max_inflight_per_ruleset > 0) {
    if (entry->inflight.fetch_add(1, std::memory_order_acq_rel) >=
        options_.max_inflight_per_ruleset) {
      entry->inflight.fetch_sub(1, std::memory_order_acq_rel);
      return Status::Unavailable(
          "ruleset '" + entry->cfg.name + "' is at its in-flight CLEAN cap (" +
          std::to_string(options_.max_inflight_per_ruleset) +
          "); retry after the hinted backoff");
    }
    inflight.counter = &entry->inflight;
  }

  std::shared_ptr<CleanEngine> engine = entry->Get();

  if (fault_hook_) {
    UC_RETURN_IF_ERROR(fault_hook_("clean.before_run", work.token.get()));
  }

  auto session = std::make_shared<ServeSession>();
  {
    UC_ASSIGN_OR_RETURN(
        data::Relation relation,
        ParseRelationCsv(data_csv, engine->rules().data_schema_ptr()));
    session->relation =
        std::make_unique<data::Relation>(std::move(relation));
  }
  if (!confidence_csv.empty()) {
    UC_RETURN_IF_ERROR(
        ApplyConfidenceCsv(confidence_csv, session->relation.get()));
  }

  const bool track = (flags & kCleanTrack) != 0;
  session->session =
      track ? engine->NewTrackedSession() : engine->NewSession();
  // The token is cleared again right after Run: a tracked session outlives
  // this request, and later DELTAs must not observe a long-tripped token.
  session->session.set_cancel_token(work.token);
  Result<CleanResult> result = session->session.Run(session->relation.get());
  session->session.set_cancel_token(nullptr);
  if (!result.ok()) return result.status();

  std::ostringstream journal_csv;
  UC_RETURN_IF_ERROR(result->journal.WriteCsv(journal_csv));
  UC_RETURN_IF_ERROR(
      StreamChunks(work, Op::kJournalChunk, journal_csv.str()));
  if ((flags & kCleanWantData) != 0) {
    std::ostringstream data_out;
    UC_RETURN_IF_ERROR(data::WriteCsv(data_out, *session->relation));
    UC_RETURN_IF_ERROR(StreamChunks(work, Op::kDataChunk, data_out.str()));
  }

  uint64_t session_id = 0;
  if (track) {
    std::lock_guard<std::mutex> lock(conn.sessions_mu);
    if (!conn.closing.load()) {
      session_id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
      conn.sessions.emplace(session_id, std::move(session));
      sessions_open_.fetch_add(1, std::memory_order_relaxed);
      sessions_opened_total_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::string summary;
  for (const PhaseStats& stats : result->phases) {
    if (!summary.empty()) summary += ' ';
    summary += stats.phase + "=" + std::to_string(stats.fixes);
  }
  std::string done;
  PutU64(&done, session_id);
  PutU32(&done, static_cast<uint32_t>(result->total_fixes()));
  PutU32(&done, static_cast<uint32_t>(result->journal.size()));
  PutLp(&done, summary);
  work.bytes_out += done.size();
  std::lock_guard<std::mutex> lock(conn.write_mu);
  return conn.channel.WriteFrame(frame.tag, Op::kCleanDone, done);
}

Status Daemon::HandleDelta(Work& work) {
  Conn& conn = *work.conn;
  const Frame& frame = work.frame;
  BodyReader body(frame.body);
  UC_ASSIGN_OR_RETURN(uint64_t session_id, body.U64());
  UC_ASSIGN_OR_RETURN(std::string inserts_csv, body.Lp());
  UC_ASSIGN_OR_RETURN(std::string update_ids_text, body.Lp());
  UC_ASSIGN_OR_RETURN(std::string updates_csv, body.Lp());
  UC_ASSIGN_OR_RETURN(std::string delete_ids_text, body.Lp());

  std::shared_ptr<ServeSession> session;
  {
    std::lock_guard<std::mutex> lock(conn.sessions_mu);
    auto it = conn.sessions.find(session_id);
    if (it == conn.sessions.end()) {
      return Status::NotFound("unknown session id " +
                              std::to_string(session_id) +
                              " (tracked sessions live with their "
                              "connection; CLEAN with the track flag first)");
    }
    session = it->second;
  }
  const data::SchemaPtr& schema = session->relation->schema_ptr();

  Delta delta;
  if (!inserts_csv.empty()) {
    UC_ASSIGN_OR_RETURN(delta.inserts,
                        ParseTupleRows(inserts_csv, schema,
                                       /*expect_header=*/true));
  }
  UC_ASSIGN_OR_RETURN(std::vector<data::TupleId> update_ids,
                      ParseIdList(update_ids_text));
  std::vector<data::Tuple> update_rows;
  if (!updates_csv.empty()) {
    UC_ASSIGN_OR_RETURN(update_rows,
                        ParseTupleRows(updates_csv, schema,
                                       /*expect_header=*/false));
  }
  if (update_ids.size() != update_rows.size()) {
    return Status::InvalidArgument(
        "DELTA: " + std::to_string(update_ids.size()) + " update ids but " +
        std::to_string(update_rows.size()) + " update rows");
  }
  for (size_t i = 0; i < update_ids.size(); ++i) {
    delta.updates.emplace_back(update_ids[i], std::move(update_rows[i]));
  }
  UC_ASSIGN_OR_RETURN(delta.deletes, ParseIdList(delete_ids_text));

  // One DELTA at a time per session (Session is single-threaded); DELTAs to
  // different sessions proceed in parallel on other workers.
  std::lock_guard<std::mutex> session_lock(session->mu);
  if (fault_hook_) {
    UC_RETURN_IF_ERROR(fault_hook_("delta.before_apply", work.token.get()));
  }
  // Token cleared right after: the session outlives this request.
  session->session.set_cancel_token(work.token);
  Result<DeltaResult> dr = session->session.ApplyDelta(delta);
  session->session.set_cancel_token(nullptr);
  if (!dr.ok()) return dr.status();

  // The canonical journal is the covering, batch-equivalent view — what the
  // CLI writes after --delta, and the byte-identity anchor for clients.
  std::ostringstream journal_csv;
  UC_RETURN_IF_ERROR(
      session->session.CanonicalJournal().WriteCsv(journal_csv));
  UC_RETURN_IF_ERROR(
      StreamChunks(work, Op::kJournalChunk, journal_csv.str()));

  std::string inserted_ids;
  for (data::TupleId t : dr->inserted_ids) {
    inserted_ids += std::to_string(t);
    inserted_ids += '\n';
  }
  std::string done;
  PutU32(&done, static_cast<uint32_t>(dr->generation));
  PutU32(&done, static_cast<uint32_t>(dr->affected));
  PutU32(&done, static_cast<uint32_t>(dr->refinement_rounds));
  PutU32(&done, static_cast<uint32_t>(dr->total_fixes()));
  PutLp(&done, inserted_ids);
  work.bytes_out += done.size();
  std::lock_guard<std::mutex> lock(conn.write_mu);
  return conn.channel.WriteFrame(frame.tag, Op::kDeltaDone, done);
}

Status Daemon::HandleStats(Work& work) {
  Conn& conn = *work.conn;
  const std::string json = StatsJson();
  work.bytes_out += json.size();
  std::lock_guard<std::mutex> lock(conn.write_mu);
  return conn.channel.WriteFrame(work.frame.tag, Op::kStatsReply, json);
}

Status Daemon::HandleReload(Work& work) {
  Conn& conn = *work.conn;
  const Frame& frame = work.frame;
  BodyReader body(frame.body);
  UC_ASSIGN_OR_RETURN(std::string name, body.Lp());
  std::vector<EngineEntry*> targets;
  if (name.empty()) {
    for (const auto& entry : engines_) targets.push_back(entry.get());
  } else {
    UC_ASSIGN_OR_RETURN(EngineEntry * entry, FindRuleset(name));
    targets.push_back(entry);
  }
  std::string message;
  for (EngineEntry* entry : targets) {
    // Build + warm the replacement before touching the served pointer: a
    // failed rebuild (missing file, bad rules) leaves the old engine up.
    UC_ASSIGN_OR_RETURN(std::shared_ptr<CleanEngine> rebuilt,
                        BuildEngine(entry->cfg, /*warmup=*/true));
    const uint64_t new_fp = rebuilt->Fingerprint();
    uint64_t old_fp = 0;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      old_fp = entry->engine->Fingerprint();
      entry->engine = std::move(rebuilt);
    }
    entry->reloads.fetch_add(1, std::memory_order_relaxed);
    // The reload deliberately did NOT consult the snapshot (its point is
    // re-reading the source files); the freshly built engine now overwrites
    // it so the next start warm-starts from the reloaded state.
    MaybeWriteSnapshot(entry->cfg, *entry->Get());
    if (!message.empty()) message += '\n';
    message += entry->cfg.name + ": fingerprint " + FingerprintHex(old_fp) +
               " -> " + FingerprintHex(new_fp) +
               (old_fp == new_fp ? " (unchanged)" : " (changed)");
  }
  std::string ok_body;
  PutLp(&ok_body, message);
  work.bytes_out += ok_body.size();
  std::lock_guard<std::mutex> lock(conn.write_mu);
  return conn.channel.WriteFrame(frame.tag, Op::kOk, ok_body);
}

Status Daemon::HandleCloseSession(Work& work) {
  Conn& conn = *work.conn;
  const Frame& frame = work.frame;
  BodyReader body(frame.body);
  UC_ASSIGN_OR_RETURN(uint64_t session_id, body.U64());
  {
    std::lock_guard<std::mutex> lock(conn.sessions_mu);
    if (conn.sessions.erase(session_id) == 0) {
      return Status::NotFound("unknown session id " +
                              std::to_string(session_id));
    }
  }
  sessions_open_.fetch_sub(1, std::memory_order_relaxed);
  std::string ok_body;
  PutLp(&ok_body, "session " + std::to_string(session_id) + " closed");
  work.bytes_out += ok_body.size();
  std::lock_guard<std::mutex> lock(conn.write_mu);
  return conn.channel.WriteFrame(frame.tag, Op::kOk, ok_body);
}

void Daemon::HandleCancelInline(Conn& conn, const Frame& frame) {
  OpMetrics& metrics = op_metrics_[static_cast<int>(Op::kCancel)];
  metrics.requests.fetch_add(1, std::memory_order_relaxed);
  const uint64_t t0 = NowUs();
  BodyReader body(frame.body);
  Result<uint32_t> target = body.U32();
  if (!target.ok()) {
    metrics.errors.fetch_add(1, std::memory_order_relaxed);
    WriteError(conn, frame.tag, target.status());
    return;
  }
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    auto it = tokens_.find({conn.id, target.value()});
    if (it != tokens_.end()) {
      it->second->Cancel("cancelled by client");
      found = true;
    }
  }
  // kOk either way: cancelling a request that already finished is a benign
  // race, not an error the client can act on.
  std::string ok_body;
  PutLp(&ok_body, "tag " + std::to_string(target.value()) +
                      (found ? " cancelled" : " not in flight"));
  {
    std::lock_guard<std::mutex> lock(conn.write_mu);
    if (!conn.channel.WriteFrame(frame.tag, Op::kOk, ok_body).ok()) {
      metrics.errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
  metrics.latency_us.Record(NowUs() - t0);
}

// ---------------------------------------------------------------------------
// Admission / cancellation plumbing
// ---------------------------------------------------------------------------

std::shared_ptr<common::CancelToken> Daemon::MakeToken(uint32_t deadline_ms) {
  const int64_t ms = deadline_ms != 0
                         ? static_cast<int64_t>(deadline_ms)
                         : static_cast<int64_t>(options_.request_timeout_ms);
  if (ms > 0) return common::CancelToken::WithTimeout(ms);
  return std::make_shared<common::CancelToken>();
}

void Daemon::RegisterToken(uint64_t conn_id, uint32_t tag,
                           std::shared_ptr<common::CancelToken> token) {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  // A tag reused while its predecessor is in flight simply replaces the
  // registry entry; CANCEL then reaches the newer request, which is what
  // the client meant by reusing the tag.
  tokens_[{conn_id, tag}] = std::move(token);
}

void Daemon::UnregisterToken(uint64_t conn_id, uint32_t tag) {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  tokens_.erase({conn_id, tag});
}

uint32_t Daemon::RetryAfterMsHint() const {
  // Roughly one median CLEAN of breathing room. With no samples yet (cold
  // daemon under instant overload) suggest a conservative 50 ms.
  const double p50_us =
      op_metrics_[static_cast<int>(Op::kClean)].latency_us.p50();
  if (p50_us <= 0) return 50;
  const double ms = p50_us / 1000.0;
  if (ms < 10) return 10;
  if (ms > 2000) return 2000;
  return static_cast<uint32_t>(ms);
}

void Daemon::LogRequest(const Work& work, uint64_t run_us,
                        const Status& status) {
  if (request_log_ == nullptr) return;
  const uint64_t queue_wait_us = work.dequeue_us > work.enqueue_us
                                     ? work.dequeue_us - work.enqueue_us
                                     : 0;
  std::string line = "{\"op\": \"";
  line += OpName(work.frame.op);
  line += "\", \"ruleset\": \"" + JsonEscape(work.ruleset) + "\"";
  line += ", \"tag\": " + std::to_string(work.frame.tag);
  line += ", \"bytes_in\": " + std::to_string(work.frame.body.size());
  line += ", \"bytes_out\": " + std::to_string(work.bytes_out);
  line += ", \"queue_wait_us\": " + std::to_string(queue_wait_us);
  line += ", \"run_us\": " + std::to_string(run_us);
  line += ", \"status\": \"";
  line += StatusCodeToString(status.code());
  line += "\"}\n";
  std::lock_guard<std::mutex> lock(request_log_mu_);
  std::fputs(line.c_str(), request_log_);
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

std::string Daemon::StatsJson() const {
  std::string out = "{\n";
  out += "  \"uptime_s\": " +
         std::to_string(running_.load() ? NowS() - start_time_s_ : 0.0) +
         ",\n";
  out += "  \"connections\": {\"live\": " +
         std::to_string(conns_open_.load()) + ", \"accepted\": " +
         std::to_string(conns_accepted_.load()) + "},\n";
  out += "  \"sessions\": {\"live\": " + std::to_string(sessions_open_.load()) +
         ", \"opened\": " + std::to_string(sessions_opened_total_.load()) +
         "},\n";
  out += "  \"protocol_errors\": " + std::to_string(protocol_errors_.load()) +
         ",\n";
  out += "  \"overload\": {\"rejected\": " + std::to_string(
             rejected_total_.load()) +
         ", \"cancelled\": " + std::to_string(cancelled_total_.load()) +
         ", \"deadline_exceeded\": " + std::to_string(deadline_total_.load()) +
         "},\n";
  out += "  \"requests\": {";
  bool first = true;
  for (int op = static_cast<int>(Op::kPing);
       op <= static_cast<int>(Op::kCancel); ++op) {
    const OpMetrics& m = op_metrics_[op];
    if (!first) out += ',';
    first = false;
    out += "\n    \"" + std::string(OpName(static_cast<Op>(op))) +
           "\": {\"count\": " + std::to_string(m.requests.load()) +
           ", \"errors\": " + std::to_string(m.errors.load()) +
           ", \"rejected\": " + std::to_string(m.rejected.load()) +
           ", \"cancelled\": " + std::to_string(m.cancelled.load()) +
           ", \"deadline_exceeded\": " +
           std::to_string(m.deadline_exceeded.load()) +
           ", \"latency_us\": " + HistogramJson(m.latency_us) +
           ", \"hist\": \"" + m.latency_us.Encode() + "\"}";
  }
  out += "\n  },\n";
  out += "  \"rulesets\": [";
  core::MemoStats memo_total;
  int snapshot_warmed = 0;
  for (size_t i = 0; i < engines_.size(); ++i) {
    const EngineEntry& entry = *engines_[i];
    std::shared_ptr<CleanEngine> engine = entry.Get();
    if (i > 0) out += ',';
    const core::MemoStats memo = engine->MemoStats();
    memo_total += memo;
    if (!engine->snapshot_source().empty()) ++snapshot_warmed;
    out += "\n    {\"name\": \"" + JsonEscape(entry.cfg.name) +
           "\", \"fingerprint\": \"" + FingerprintHex(engine->Fingerprint()) +
           "\", \"reloads\": " + std::to_string(entry.reloads.load()) +
           ", \"master_tuples\": " + std::to_string(engine->master().size()) +
           ", \"cfds\": " + std::to_string(engine->rules().cfds().size()) +
           ", \"mds\": " + std::to_string(engine->rules().mds().size()) +
           ", \"snapshot\": {\"source\": \"" +
           JsonEscape(engine->snapshot_source()) + "\", \"load_s\": " +
           std::to_string(engine->snapshot_load_seconds()) + "}" +
           ", \"memo\": {\"entries\": " + std::to_string(memo.entries) +
           ", \"bytes\": " + std::to_string(memo.bytes) +
           ", \"hits\": " + std::to_string(memo.hits) +
           ", \"misses\": " + std::to_string(memo.misses) +
           ", \"evictions\": " + std::to_string(memo.evictions) + "}}";
  }
  out += "\n  ],\n";
  const data::StringPoolStats pool = data::StringPool::Global().Stats();
  // The warm-state footprint rollup: everything a restart would have to
  // rebuild (or a snapshot restores) in one place.
  out += "  \"engine_memory\": {\"string_pool\": {\"interned\": " +
         std::to_string(pool.interned) +
         ", \"chunks\": " + std::to_string(pool.chunks) +
         ", \"string_bytes\": " + std::to_string(pool.string_bytes) +
         "}, \"memo\": {\"entries\": " + std::to_string(memo_total.entries) +
         ", \"bytes\": " + std::to_string(memo_total.bytes) +
         "}, \"snapshot_warmed_engines\": " + std::to_string(snapshot_warmed) +
         "},\n";
  out += "  \"string_pool\": {\"interned\": " + std::to_string(pool.interned) +
         ", \"remaining\": " + std::to_string(pool.remaining) +
         ", \"string_bytes\": " + std::to_string(pool.string_bytes) + "}\n";
  out += "}\n";
  return out;
}

std::string Daemon::SummaryText() const {
  std::string out = "unicleand summary: " +
                    std::to_string(conns_accepted_.load()) +
                    " connection(s), " +
                    std::to_string(sessions_opened_total_.load()) +
                    " tracked session(s), " +
                    std::to_string(protocol_errors_.load()) +
                    " protocol error(s)\n";
  out += "  overload: " + std::to_string(rejected_total_.load()) +
         " rejected, " + std::to_string(cancelled_total_.load()) +
         " cancelled, " + std::to_string(deadline_total_.load()) +
         " deadline-exceeded\n";
  for (int op = static_cast<int>(Op::kPing);
       op <= static_cast<int>(Op::kCancel); ++op) {
    const OpMetrics& m = op_metrics_[op];
    if (m.requests.load() == 0 && m.rejected.load() == 0) continue;
    out += "  " + std::string(OpName(static_cast<Op>(op))) + ": " +
           std::to_string(m.requests.load()) + " request(s), " +
           std::to_string(m.errors.load()) + " error(s)";
    if (m.rejected.load() != 0) {
      out += ", " + std::to_string(m.rejected.load()) + " rejected";
    }
    if (m.cancelled.load() != 0) {
      out += ", " + std::to_string(m.cancelled.load()) + " cancelled";
    }
    if (m.deadline_exceeded.load() != 0) {
      out += ", " + std::to_string(m.deadline_exceeded.load()) +
             " deadline-exceeded";
    }
    out += ", latency_us " + m.latency_us.Summary() + "\n";
  }
  for (const auto& entry : engines_) {
    std::shared_ptr<CleanEngine> engine = entry->Get();
    const core::MemoStats memo = engine->MemoStats();
    const uint64_t lookups = memo.hits + memo.misses;
    out += "  ruleset " + entry->cfg.name + ": " +
           std::to_string(entry->reloads.load()) + " reload(s), memo hit "
           "rate " +
           std::to_string(lookups == 0 ? 0.0
                                       : 100.0 * static_cast<double>(memo.hits) /
                                             static_cast<double>(lookups)) +
           "% (" + std::to_string(memo.hits) + "/" + std::to_string(lookups) +
           ")";
    if (!engine->snapshot_source().empty()) {
      out += ", warm-started from snapshot in " +
             std::to_string(engine->snapshot_load_seconds()) + "s";
    }
    out += "\n";
  }
  return out;
}

}  // namespace serve
}  // namespace uniclean
