// Hardened CSV ingestion for wire-supplied data. data::ReadCsv interns cell
// strings through Value's constructor, which CHECK-aborts the process when
// the StringPool id space is exhausted — acceptable for a CLI, fatal for a
// daemon a client can feed unbounded distinct values. These parsers follow
// the exact RFC-4180 record/quote/null semantics of data::ReadCsv (they
// share ReadCsvRecord / ParseCsvRecord, so a given CSV text produces an
// identical relation) but intern through StringPool::TryIntern and surface
// every failure as a Status: pool exhaustion, arity mismatches, bad headers
// and malformed confidences all come back as error values the daemon turns
// into protocol error responses, never an abort.

#ifndef UNICLEAN_SERVE_SAFE_CSV_H_
#define UNICLEAN_SERVE_SAFE_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "data/schema.h"

namespace uniclean {
namespace serve {

/// Parses `csv_text` (header row required, matching `schema`) into a
/// relation, interning every cell via StringPool::TryIntern. Fails with
/// Corruption on malformed CSV, InvalidArgument on a header/arity mismatch
/// and OutOfRange ("StringPool: ...") on pool exhaustion — the wire layer
/// maps the latter to ResourceExhausted (see WireErrorCode).
Result<data::Relation> ParseRelationCsv(const std::string& csv_text,
                                        data::SchemaPtr schema);

/// Parses a CSV of rows shaped like `schema` into tuples (same cell
/// semantics as ParseRelationCsv). Delta inserts travel as a full CSV
/// document (expect_header = true, validated against the schema); delta
/// update rows are header-less, index-aligned with their id list
/// (expect_header = false).
Result<std::vector<data::Tuple>> ParseTupleRows(const std::string& csv_text,
                                                const data::SchemaPtr& schema,
                                                bool expect_header);

/// Applies a confidence CSV (same shape as the relation, header row
/// required) to `*relation`: every cell must parse as a number in [0, 1].
/// Mirrors data::ReadConfidenceCsvFile but fails with InvalidArgument
/// instead of trusting the input.
Status ApplyConfidenceCsv(const std::string& csv_text,
                          data::Relation* relation);

/// Parses a newline-separated list of non-negative decimal tuple ids
/// (blank lines ignored). Fails with InvalidArgument on anything else.
Result<std::vector<data::TupleId>> ParseIdList(const std::string& text);

}  // namespace serve
}  // namespace uniclean

#endif  // UNICLEAN_SERVE_SAFE_CSV_H_
