// Synchronous client for the unicleand wire protocol (serve/wire.h), the
// clnt.c counterpart to serve/server.h. One Client wraps one connection.
//
// Two usage styles:
//
//  * Blocking calls — Ping/Clean/Delta/Stats/Reload/CloseSession each send
//    a request and read frames until its terminal reply, collecting
//    streamed journal/data chunks along the way.
//
//  * Pipelined calls — SendClean/SendReload return immediately with the
//    request's tag; AwaitClean/AwaitReload later read to that tag's
//    terminal frame. Replies for other outstanding tags that arrive in
//    between are buffered, so requests can overlap on one connection (how
//    serve_test exercises RELOAD against in-flight CLEANs).
//
// A Client is NOT thread-safe: one thread drives it. For concurrent
// traffic, open one Client per thread (connections are cheap; tracked
// sessions are per-connection server-side).

#ifndef UNICLEAN_SERVE_CLIENT_H_
#define UNICLEAN_SERVE_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "serve/wire.h"

namespace uniclean {
namespace serve {

/// A batch-clean request. `data_csv` / `confidence_csv` are full CSV
/// documents (header row included); an empty confidence CSV means uniform
/// 0.0 confidence.
struct CleanRequest {
  std::string ruleset;  // "" = the daemon's sole ruleset
  std::string data_csv;
  std::string confidence_csv;
  /// Keep the session alive server-side for follow-up DELTAs.
  bool track = false;
  /// Also stream back the repaired relation as CSV.
  bool want_data = false;
};

struct CleanReply {
  /// Tracked session id (0 if track was false).
  uint64_t session_id = 0;
  uint32_t total_fixes = 0;
  uint32_t journal_entries = 0;
  /// "cRepair=12 eRepair=3 hRepair=0"-style per-phase fix counts.
  std::string phase_summary;
  /// The fix journal CSV — byte-identical to FixJournal::WriteCsv of an
  /// in-process Session::Run on the same inputs.
  std::string journal_csv;
  /// The repaired relation CSV (empty unless want_data).
  std::string data_csv;
};

/// An incremental edit batch against a tracked session. `updates_csv`
/// holds header-less rows index-aligned with `update_ids`.
struct DeltaRequest {
  uint64_t session_id = 0;
  std::string inserts_csv;  // header row + inserted tuples ("" = none)
  std::vector<data::TupleId> update_ids;
  std::string updates_csv;  // header-less rows, one per update id
  std::vector<data::TupleId> delete_ids;
};

struct DeltaReply {
  uint32_t generation = 0;
  uint32_t affected = 0;
  uint32_t refinement_rounds = 0;
  uint32_t total_fixes = 0;
  /// Ids minted for the inserts, index-matched to the request.
  std::vector<data::TupleId> inserted_ids;
  /// The covering canonical journal CSV — byte-identical to
  /// Session::CanonicalJournal().WriteCsv after the same in-process edits.
  std::string journal_csv;
};

class Client {
 public:
  static Result<Client> Connect(const std::string& host, int port);

  /// An unconnected client; every call fails until one is move-assigned.
  Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Round-trips an opaque payload through kPing/kPong.
  Status Ping();
  Result<CleanReply> Clean(const CleanRequest& request);
  Result<DeltaReply> Delta(const DeltaRequest& request);
  /// The daemon's STATS JSON document.
  Result<std::string> Stats();
  /// Hot-reloads the named ruleset ("" = all). Returns the daemon's
  /// per-ruleset fingerprint report.
  Result<std::string> Reload(const std::string& ruleset = "");
  Status CloseSession(uint64_t session_id);

  // --- pipelined variants ---------------------------------------------------
  /// Sends without waiting; pass the returned tag to the Await call.
  Result<uint32_t> SendClean(const CleanRequest& request);
  Result<uint32_t> SendReload(const std::string& ruleset);
  Result<CleanReply> AwaitClean(uint32_t tag);
  Result<std::string> AwaitReload(uint32_t tag);

  bool connected() const { return channel_ != nullptr; }
  /// The raw socket (tests use it to simulate abrupt disconnects and
  /// hand-craft malformed frames).
  int fd() const { return channel_ ? channel_->fd() : -1; }
  /// Drops the connection (server reclaims any tracked sessions).
  void Close() { channel_.reset(); }

 private:
  explicit Client(std::unique_ptr<FrameChannel> channel)
      : channel_(std::move(channel)) {}

  Status Send(uint32_t tag, Op op, std::string_view body);
  /// Reads until a frame for `tag` arrives, buffering other tags' frames.
  Result<Frame> ReadFor(uint32_t tag);
  Result<Frame> ReadTerminal(uint32_t tag, Op expect, std::string* journal,
                             std::string* data);

  std::unique_ptr<FrameChannel> channel_;
  uint32_t next_tag_ = 1;
  /// Frames received for tags other than the one currently awaited.
  std::map<uint32_t, std::vector<Frame>> pending_;
};

}  // namespace serve
}  // namespace uniclean

#endif  // UNICLEAN_SERVE_CLIENT_H_
